#!/usr/bin/env bash
# Offline CI gate for the adv-hsc-moe workspace.
#
# Everything here must pass with no network access: the workspace has
# zero external dependencies and Cargo.lock is committed. Usage:
#
#   scripts/ci.sh            # full gate
#   SKIP_FMT=1 scripts/ci.sh # skip the format check (e.g. no rustfmt)
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

if [[ -z "${SKIP_FMT:-}" ]]; then
  step "cargo fmt --check"
  cargo fmt --all --check
fi

step "cargo build --release --offline"
cargo build --release --offline --workspace --benches --bins

step "cargo test -q --offline (workspace)"
cargo test -q --offline --release --workspace

step "serving thread-sweep bench (smoke)"
AMOE_BENCH_SMOKE=1 cargo run --release --offline -p amoe-bench --bin serving_sweep

step "ci green"
