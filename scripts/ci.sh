#!/usr/bin/env bash
# Offline CI gate for the adv-hsc-moe workspace.
#
# Everything here must pass with no network access: the workspace has
# zero external dependencies and Cargo.lock is committed. Usage:
#
#   scripts/ci.sh               # full gate
#   SKIP_FMT=1 scripts/ci.sh    # skip the format check (e.g. no rustfmt)
#   SKIP_CLIPPY=1 scripts/ci.sh # skip the lint gate (e.g. no clippy)
set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

step "repo hygiene: no build artifacts tracked"
if git ls-files -- 'target/*' '*/target/*' | grep -q .; then
  echo "FAIL: build artifacts are tracked in git:" >&2
  git ls-files -- 'target/*' '*/target/*' | head >&2
  exit 1
fi

if [[ -z "${SKIP_FMT:-}" ]]; then
  step "cargo fmt --check"
  cargo fmt --all --check
fi

if [[ -z "${SKIP_CLIPPY:-}" ]]; then
  step "cargo clippy --workspace -- -D warnings"
  cargo clippy --offline --workspace --all-targets -- -D warnings
fi

step "cargo build --release --offline"
cargo build --release --offline --workspace --benches --bins

step "cargo test -q --offline (workspace)"
cargo test -q --offline --release --workspace

step "kernel smoke: serving_sweep GEMM micro-bench + quantized stage"
# serving_sweep's exit code covers the kernel exactness gates, the
# quantized-score tolerance, and JSONL validation of its own run log
# (via amoe_bench::obs_check) — see validate_run_log in the binary.
rm -f target/ci_kernel_smoke.jsonl
AMOE_OBS=target/ci_kernel_smoke.jsonl AMOE_BENCH_SMOKE=1 \
  cargo run --release --offline -p amoe-bench --bin serving_sweep

step "telemetry smoke: tiny training run emits valid JSONL"
AMOE_OBS=target/ci_obs_smoke.jsonl \
  cargo run --release --offline -p amoe-bench --bin obs_smoke

step "serving smoke: load_sweep drives an amoe-serve server over TCP"
rm -f target/ci_serve_smoke.jsonl
AMOE_OBS=target/ci_serve_smoke.jsonl \
  cargo run --release --offline -p amoe-bench --bin load_sweep -- --smoke

step "multi-shard smoke: amoe-serve --shards 2 driven over real TCP"
# Exercises the standalone binary end to end: demo-export a
# checkpoint, serve it with two batcher shards, drive it with
# load_sweep's external (closed+open loop) stages over a pipelined v3
# connection, read the per-shard STATS block, then drain gracefully.
cargo build --release --offline -p amoe-serve --bin amoe-serve
rm -rf target/ci_shard_demo && mkdir -p target/ci_shard_demo
./target/release/amoe-serve demo-export --out target/ci_shard_demo >/dev/null
./target/release/amoe-serve serve \
  --ckpt target/ci_shard_demo/model.amoe --spec target/ci_shard_demo/model.spec \
  --addr 127.0.0.1:0 --shards 2 --obs-addr 127.0.0.1:0 \
  > target/ci_shard_demo/addr.txt &
SERVE_PID=$!
ADDR=""
OBS_ADDR=""
for _ in $(seq 100); do
  ADDR="$(sed -n 1p target/ci_shard_demo/addr.txt 2>/dev/null || true)"
  OBS_ADDR="$(sed -n '2s/^obs //p' target/ci_shard_demo/addr.txt 2>/dev/null || true)"
  [[ -n "$ADDR" && -n "$OBS_ADDR" ]] && break
  sleep 0.1
done
if [[ -z "$ADDR" || -z "$OBS_ADDR" ]]; then
  echo "FAIL: amoe-serve did not print its bound addresses" >&2
  kill "$SERVE_PID" 2>/dev/null || true
  exit 1
fi
AMOE_BENCH_SMOKE=1 \
  cargo run --release --offline -p amoe-bench --bin load_sweep -- --smoke --addr "$ADDR"
./target/release/amoe-serve stats --addr "$ADDR" | grep -q "shard0" || {
  echo "FAIL: stats reply carries no per-shard block" >&2; exit 1; }

step "obs smoke: /metrics lints clean, /healthz and /readyz answer"
# The scrape subcommand is the in-repo Prometheus client: --lint runs
# the exposition validator (grammar, amoe_* naming, monotone cumulative
# buckets, exemplar syntax) over the live page, so a malformed
# exposition fails CI before a real scraper ever sees it.
./target/release/amoe-serve scrape --obs-addr "$OBS_ADDR" --lint \
  > target/ci_shard_demo/metrics.txt
grep -q '^amoe_build_info{' target/ci_shard_demo/metrics.txt || {
  echo "FAIL: /metrics page carries no amoe_build_info gauge" >&2; exit 1; }
grep -q '^amoe_serve_window_request_latency_seconds_bucket{' \
  target/ci_shard_demo/metrics.txt || {
  echo "FAIL: /metrics page carries no windowed latency family" >&2; exit 1; }
./target/release/amoe-serve scrape --obs-addr "$OBS_ADDR" --path /healthz \
  | grep -qx ok || { echo "FAIL: /healthz did not answer ok" >&2; exit 1; }
./target/release/amoe-serve scrape --obs-addr "$OBS_ADDR" --path /readyz \
  | grep -qx ready || { echo "FAIL: /readyz did not answer ready" >&2; exit 1; }
./target/release/amoe-serve shutdown --addr "$ADDR"
wait "$SERVE_PID"

step "online-loop smoke: continuous train→reload under drift"
# A 2-shard server boots from a demo-export checkpoint; the amoe-online
# daemon consumes the drifting session stream, refits on its sliding
# window and hot-swaps the server through two RELOAD cycles. The daemon
# itself exits non-zero on any failed in-flight request or if fewer
# than --min-reloads swaps land; the scrape afterwards pins the
# freshness gauges (generation counter, model age) on /metrics.
cargo build --release --offline -p amoe-online --bin amoe-online
rm -rf target/ci_online_demo && mkdir -p target/ci_online_demo
./target/release/amoe-serve demo-export --out target/ci_online_demo >/dev/null
./target/release/amoe-serve serve \
  --ckpt target/ci_online_demo/model.amoe --spec target/ci_online_demo/model.spec \
  --addr 127.0.0.1:0 --shards 2 --obs-addr 127.0.0.1:0 \
  > target/ci_online_demo/addr.txt &
ONLINE_SERVE_PID=$!
OADDR=""
OOBS=""
for _ in $(seq 100); do
  OADDR="$(sed -n 1p target/ci_online_demo/addr.txt 2>/dev/null || true)"
  OOBS="$(sed -n '2s/^obs //p' target/ci_online_demo/addr.txt 2>/dev/null || true)"
  [[ -n "$OADDR" && -n "$OOBS" ]] && break
  sleep 0.1
done
if [[ -z "$OADDR" || -z "$OOBS" ]]; then
  echo "FAIL: amoe-serve did not print its bound addresses" >&2
  kill "$ONLINE_SERVE_PID" 2>/dev/null || true
  exit 1
fi
./target/release/amoe-online run --addr "$OADDR" \
  --spec target/ci_online_demo/model.spec \
  --seed-ckpt target/ci_online_demo/model.amoe \
  --export-dir target/ci_online_demo/exports \
  --ticks 6 --refit-every 3 --sessions-per-tick 12 --epochs 1 \
  --min-reloads 2
./target/release/amoe-serve scrape --obs-addr "$OOBS" --lint \
  > target/ci_online_demo/metrics.txt
grep -q '^amoe_model_generation 2$' target/ci_online_demo/metrics.txt || {
  echo "FAIL: /metrics generation gauge did not reach 2 after two reloads" >&2
  exit 1; }
grep -q '^amoe_model_age_seconds ' target/ci_online_demo/metrics.txt || {
  echo "FAIL: /metrics page carries no model age gauge" >&2; exit 1; }
./target/release/amoe-serve shutdown --addr "$OADDR"
wait "$ONLINE_SERVE_PID"

step "staleness smoke: online_sweep frozen-vs-fresh with validated JSONL"
# The bench fails on its own if any swap drops a request, if fewer than
# one refit/RELOAD cycle completes, or if the continuously refreshed
# model does not beat the frozen seed under drift; with AMOE_OBS set it
# re-validates its online_window_row/online_swap_row/online_summary
# records against the obs_check schema.
rm -f target/ci_online_sweep.jsonl
AMOE_OBS=target/ci_online_sweep.jsonl AMOE_BENCH_SMOKE=1 \
  cargo run --release --offline -p amoe-bench --bin online_sweep -- --smoke

step "trace smoke: end-to-end request tracing emits valid Chrome JSON"
# trace_smoke starts a live server with AMOE_TRACE set, drives traced
# traffic, and validates both export paths (the TRACE_DUMP frame and
# the drain-time file) against the Chrome trace-event contract —
# schema, finite numbers, monotone per-thread timestamps — via
# amoe_bench::obs_check::validate_chrome_trace.
rm -f target/ci_trace_smoke.json
AMOE_TRACE=target/ci_trace_smoke.json \
  cargo run --release --offline -p amoe-bench --bin trace_smoke

step "noalloc guard: disabled telemetry and tracing allocate nothing"
# Debug build on purpose: the counting allocator must not be optimised
# around, and the zero-allocation contract has to hold without the
# optimiser's help.
cargo test -q --offline --test obs_noalloc

step "ci green"
