//! Expert anatomy: looks inside a trained MoE — which experts each
//! category activates, how concentrated the routing is, and how much
//! the adversarial regularizer decorrelates expert outputs (the paper's
//! Fig. 6 / Fig. 8 mechanics, in text form).
//!
//! Run with: `cargo run --release --example expert_anatomy`

use adv_hsc_moe::dataset::{generate, Batch, GeneratorConfig};
use adv_hsc_moe::moe::ranker::OptimConfig;
use adv_hsc_moe::moe::{MoeConfig, MoeModel, TrainConfig, Trainer};
use adv_hsc_moe::tensor::Matrix;

/// Mean pairwise Pearson correlation between expert output columns.
fn mean_expert_correlation(experts: &Matrix) -> f64 {
    let (rows, cols) = experts.shape();
    let col = |c: usize| -> Vec<f64> { (0..rows).map(|r| f64::from(experts[(r, c)])).collect() };
    let mut total = 0.0;
    let mut pairs = 0;
    for a in 0..cols {
        for b in a + 1..cols {
            let (xa, xb) = (col(a), col(b));
            let n = rows as f64;
            let (ma, mb) = (xa.iter().sum::<f64>() / n, xb.iter().sum::<f64>() / n);
            let cov: f64 = xa.iter().zip(&xb).map(|(x, y)| (x - ma) * (y - mb)).sum();
            let va: f64 = xa.iter().map(|x| (x - ma) * (x - ma)).sum();
            let vb: f64 = xb.iter().map(|y| (y - mb) * (y - mb)).sum();
            if va > 0.0 && vb > 0.0 {
                total += cov / (va * vb).sqrt();
                pairs += 1;
            }
        }
    }
    total / f64::from(pairs.max(1))
}

fn train(data: &adv_hsc_moe::dataset::Dataset, adversarial: bool) -> MoeModel {
    let mut model = MoeModel::new(
        &data.meta,
        MoeConfig {
            adversarial,
            hsc: adversarial, // plain MoE vs the full Adv & HSC model
            lambda1: 1e-1,
            lambda2: 1e-2,
            ..MoeConfig::default()
        },
        OptimConfig::default(),
    );
    let trainer = Trainer::new(TrainConfig {
        epochs: 4,
        ..TrainConfig::default()
    });
    trainer.fit(&mut model, &data.train);
    model
}

fn main() {
    let data = generate(&GeneratorConfig {
        train_sessions: 4_000,
        test_sessions: 800,
        ..GeneratorConfig::default()
    });

    let plain = train(&data, false);
    let ours = train(&data, true);

    // Per-top-category mean gate distribution under the full model.
    println!("mean gate probability per expert, by top-category (Adv & HSC-MoE):");
    println!("{:<16} expert 0..9 (x100, top-2 starred)", "category");
    for tc in 0..data.hierarchy.num_tc() {
        let idx: Vec<usize> = data
            .test
            .examples
            .iter()
            .enumerate()
            .filter(|(_, e)| e.true_tc == tc)
            .map(|(i, _)| i)
            .take(200)
            .collect();
        if idx.len() < 20 {
            continue;
        }
        let batch = Batch::from_split(&data.test, &idx);
        let gate = ours.gate_probs_full(&batch);
        let mut mean = vec![0f32; gate.cols()];
        for r in 0..gate.rows() {
            for (m, &v) in mean.iter_mut().zip(gate.row(r)) {
                *m += v;
            }
        }
        mean.iter_mut().for_each(|m| *m /= gate.rows() as f32);
        let mut ranked: Vec<usize> = (0..mean.len()).collect();
        ranked.sort_by(|&a, &b| mean[b].partial_cmp(&mean[a]).unwrap());
        let cells: Vec<String> = mean
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                let star = if ranked[..2].contains(&i) { "*" } else { "" };
                format!("{:>4.0}{star}", m * 100.0)
            })
            .collect();
        println!("{:<16} {}", data.hierarchy.tc_name(tc), cells.join(" "));
    }

    // Expert output decorrelation.
    let idx: Vec<usize> = (0..600.min(data.test.len())).collect();
    let batch = Batch::from_split(&data.test, &idx);
    let (plain_experts, _) = plain.expert_logits(&batch);
    let (ours_experts, _) = ours.expert_logits(&batch);
    println!(
        "\nmean pairwise expert-output correlation:\n  plain MoE      {:+.3}\n  Adv & HSC-MoE  {:+.3}",
        mean_expert_correlation(&plain_experts),
        mean_expert_correlation(&ours_experts)
    );
    println!("(lower = more diverse experts; the adversarial loss pushes this down)");
}
