//! Serving: export a trained MoE to the tape-free sparse top-K path and
//! demonstrate the paper's constant-serving-cost property — latency
//! stays roughly flat as the expert count N grows (at fixed K), while
//! the dense path grows linearly.
//!
//! Run with: `cargo run --release --example serving`

use std::time::Instant;

use adv_hsc_moe::dataset::{generate, Batch, GeneratorConfig};
use adv_hsc_moe::moe::ranker::OptimConfig;
use adv_hsc_moe::moe::serving::ServingMoe;
use adv_hsc_moe::moe::{MoeConfig, MoeModel, Ranker, TrainConfig, Trainer};

fn main() {
    let data = generate(&GeneratorConfig {
        train_sessions: 1_200,
        test_sessions: 400,
        ..GeneratorConfig::default()
    });
    let idx: Vec<usize> = (0..512.min(data.test.len())).collect();
    let batch = Batch::from_split(&data.test, &idx);
    let trainer = Trainer::new(TrainConfig {
        epochs: 1,
        ..TrainConfig::default()
    });

    println!(
        "batch of {} candidates, K = 4 active experts\n",
        batch.len()
    );
    println!(
        "{:>4}  {:>12}  {:>12}  {:>8}",
        "N", "sparse (ms)", "dense (ms)", "ratio"
    );

    for n in [8usize, 16, 32, 64] {
        let mut model = MoeModel::new(
            &data.meta,
            MoeConfig {
                n_experts: n,
                top_k: 4,
                ..MoeConfig::default()
            },
            OptimConfig::default(),
        );
        trainer.fit(&mut model, &data.train);

        // Verify the sparse path is numerically identical first.
        let serving = ServingMoe::new(&model);
        let dense = model.predict(&batch);
        let sparse = serving.predict(&batch);
        let max_diff = dense
            .iter()
            .zip(&sparse)
            .map(|(a, b)| (a - b).abs())
            .fold(0f32, f32::max);
        assert!(max_diff < 1e-4, "paths diverge by {max_diff}");

        let time = |f: &dyn Fn() -> Vec<f32>| -> f64 {
            let reps = 20;
            let t = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(f());
            }
            t.elapsed().as_secs_f64() * 1000.0 / f64::from(reps)
        };
        let sparse_ms = time(&|| serving.predict(&batch));
        let dense_ms = time(&|| model.predict(&batch));
        println!(
            "{n:>4}  {sparse_ms:>12.3}  {dense_ms:>12.3}  {:>7.1}x",
            dense_ms / sparse_ms
        );
    }

    println!(
        "\nSparse serving computes only the K selected towers per example\n\
         (expert-major batching), so its cost is ~flat in N — the property\n\
         that lets MoE capacity grow at constant serving cost (paper Sec. 1)."
    );
}
