//! Category transfer: the paper's small-category story (Table 3 /
//! Fig. 5) on three categories of very different sizes.
//!
//! Trains a DNN and an Adv & HSC-MoE jointly on Mobile Phone (large),
//! Books (large) and Clothing (small), and a dedicated per-category DNN
//! for each, then compares per-category AUC. The expected pattern: joint
//! training helps the small category most, and the MoE model converts
//! the shared data into larger per-category gains than the joint DNN.
//!
//! Run with: `cargo run --release --example category_transfer`

use adv_hsc_moe::dataset::{generate, GeneratorConfig};
use adv_hsc_moe::moe::ranker::OptimConfig;
use adv_hsc_moe::moe::{DnnModel, MoeConfig, MoeModel, TrainConfig, Trainer};

fn main() {
    let data = generate(&GeneratorConfig {
        train_sessions: 5_000,
        test_sessions: 1_200,
        ..GeneratorConfig::default()
    });
    let names = ["Mobile Phone", "Books", "Clothing"];
    let tcs: Vec<usize> = names
        .iter()
        .map(|n| data.hierarchy.tc_by_name(n).expect("category exists"))
        .collect();

    let per_cat_train: Vec<_> = tcs.iter().map(|&tc| data.train.filter_tcs(&[tc])).collect();
    let per_cat_test: Vec<_> = tcs.iter().map(|&tc| data.test.filter_tcs(&[tc])).collect();
    let joint_train = data.train.filter_tcs(&tcs);

    for (name, split) in names.iter().zip(&per_cat_train) {
        println!("{name}: {} training examples", split.len());
    }

    let trainer = Trainer::new(TrainConfig {
        epochs: 4,
        ..TrainConfig::default()
    });
    let base = MoeConfig::default();
    let optim = OptimConfig::default();

    // Dedicated per-category DNNs.
    let mut solo_auc = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let mut dnn = DnnModel::new(&data.meta, &base, optim);
        trainer.fit(&mut dnn, &per_cat_train[i]);
        let auc = trainer.evaluate(&dnn, &per_cat_test[i]).auc;
        solo_auc.push(auc);
        println!("{name}-only DNN: AUC {auc:.4}");
    }

    // Joint DNN.
    let mut joint_dnn = DnnModel::new(&data.meta, &base, optim);
    trainer.fit(&mut joint_dnn, &joint_train);

    // Joint Adv & HSC-MoE.
    let mut ours = MoeModel::new(
        &data.meta,
        MoeConfig {
            adversarial: true,
            hsc: true,
            lambda1: 1e-1,
            lambda2: 1e-2,
            ..base
        },
        optim,
    );
    trainer.fit(&mut ours, &joint_train);

    println!("\ncategory        solo-DNN  joint-DNN  joint-Ours   ours vs solo");
    for (i, name) in names.iter().enumerate() {
        let jd = trainer.evaluate(&joint_dnn, &per_cat_test[i]).auc;
        let jo = trainer.evaluate(&ours, &per_cat_test[i]).auc;
        println!(
            "{name:<14}  {:.4}    {jd:.4}     {jo:.4}       {:+.2}pp",
            solo_auc[i],
            (jo - solo_auc[i]) * 100.0
        );
    }
    println!(
        "\nThe smallest category (Clothing) should gain the most from joint\n\
         training, and the MoE should extract more transfer than the DNN."
    );
}
