//! Extract & fine-tune: the paper's forward-looking workflow.
//!
//! Sec. 1 motivates transparent expert↔category assignment because it
//! enables "extraction and tweaking of category-dedicated models from
//! the unified ensemble", and Sec. 6 proposes fine-tuning individual
//! experts. This example does both:
//!
//! 1. train the full Adv & HSC-MoE;
//! 2. extract a compact dedicated model for one sub-category and verify
//!    it scores that category's traffic identically at a fraction of the
//!    parameters;
//! 3. fine-tune only that category's experts on its own split (gates,
//!    embeddings and other experts frozen) and compare before/after.
//!
//! Run with: `cargo run --release --example extract_and_finetune`

use adv_hsc_moe::dataset::{generate, Batch, GeneratorConfig};
use adv_hsc_moe::moe::extraction::{expert_usage, extract_category_model, extraction_fidelity};
use adv_hsc_moe::moe::finetune::FineTuner;
use adv_hsc_moe::moe::ranker::OptimConfig;
use adv_hsc_moe::moe::{MoeConfig, MoeModel, Ranker, TrainConfig, Trainer};

fn main() {
    let data = generate(&GeneratorConfig {
        train_sessions: 4_000,
        test_sessions: 1_000,
        ..GeneratorConfig::default()
    });
    let trainer = Trainer::new(TrainConfig {
        epochs: 4,
        ..TrainConfig::default()
    });

    // 1. Train the full model.
    let mut model = MoeModel::new(
        &data.meta,
        MoeConfig {
            adversarial: true,
            hsc: true,
            lambda1: 1e-1,
            lambda2: 1e-2,
            ..MoeConfig::default()
        },
        OptimConfig::default(),
    );
    trainer.fit(&mut model, &data.train);
    println!("full ensemble: {} parameters", model.num_parameters());

    // Expert usage audit: which experts carry real traffic.
    let usage = expert_usage(&model);
    let pretty: Vec<String> = usage.iter().map(|u| format!("{:.0}%", u * 100.0)).collect();
    println!(
        "expert usage across all sub-categories: {}",
        pretty.join(" ")
    );

    // 2. Extract a dedicated model for the busiest predicted SC.
    let mut counts = vec![0usize; data.meta.sc_vocab];
    for e in &data.test.examples {
        counts[e.pred_sc] += 1;
    }
    let sc = counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .expect("non-empty vocabulary");
    let tc = data.hierarchy.parent(sc);
    println!(
        "\nextracting a dedicated model for SC {sc} (under {})",
        data.hierarchy.tc_name(tc)
    );
    let extracted = extract_category_model(&model, sc);
    println!(
        "  experts kept: {:?} with weights {:?}",
        extracted.expert_indices,
        extracted
            .weights
            .iter()
            .map(|w| (w * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!(
        "  parameters: {} ({}% of the ensemble)",
        extracted.num_parameters(),
        100 * extracted.num_parameters() / model.num_parameters()
    );

    let idx: Vec<usize> = data
        .test
        .examples
        .iter()
        .enumerate()
        .filter(|(_, e)| e.pred_sc == sc)
        .map(|(i, _)| i)
        .take(200)
        .collect();
    if idx.len() >= 5 {
        let batch = Batch::from_split(&data.test, &idx);
        let fid = extraction_fidelity(&model, &extracted, &batch);
        println!(
            "  max |ensemble − extracted| on {} candidates: {fid:.2e}",
            idx.len()
        );
    }

    // 3. Fine-tune only this category's experts on its own split.
    let cat_train = data.train.filter_tcs(&[tc]);
    let cat_test = data.test.filter_tcs(&[tc]);
    let before = trainer.evaluate(&model, &cat_test);
    let mut tuner = FineTuner::for_category(&model, sc, 5e-4);
    tuner.fit(&mut model, &cat_train, 2, 256, 99);
    let after = trainer.evaluate(&model, &cat_test);
    println!(
        "\nfine-tuning {}'s experts on its own {} examples:",
        data.hierarchy.tc_name(tc),
        cat_train.len()
    );
    println!(
        "  category AUC {:.4} -> {:.4}, log-loss {:.4} -> {:.4}",
        before.auc, after.auc, before.log_loss, after.log_loss
    );

    // The rest of the catalogue must be untouched in routing and nearly
    // untouched in quality (only shared experts moved).
    let rest_tcs: Vec<usize> = (0..data.hierarchy.num_tc()).filter(|&t| t != tc).collect();
    let rest_test = data.test.filter_tcs(&rest_tcs);
    let rest = trainer.evaluate(&model, &rest_test);
    println!(
        "  rest-of-catalogue AUC after fine-tuning: {:.4} (gates/embeddings frozen)",
        rest.auc
    );
}
