//! Quickstart: generate a synthetic search log, train the paper's best
//! model (Adv & HSC-MoE), evaluate it session-level against a DNN
//! baseline, and round-trip a checkpoint.
//!
//! Run with: `cargo run --release --example quickstart`

use adv_hsc_moe::dataset::{generate, GeneratorConfig};
use adv_hsc_moe::moe::ranker::OptimConfig;
use adv_hsc_moe::moe::{DnnModel, MoeConfig, MoeModel, Ranker, TrainConfig, Trainer};

fn main() {
    // 1. A synthetic e-commerce search log (deterministic in the seed):
    //    ~80k training examples over 12 top-categories. MoE capacity
    //    pays off once there is enough data for experts to specialise;
    //    below ~50k examples a single DNN keeps up.
    let data = generate(&GeneratorConfig {
        train_sessions: 5_000,
        test_sessions: 1_000,
        ..GeneratorConfig::default()
    });
    println!(
        "dataset: {} train / {} test examples, {} TCs / {} SCs, {:.1}% positives",
        data.train.len(),
        data.test.len(),
        data.hierarchy.num_tc(),
        data.hierarchy.num_sc(),
        100.0 * data.train.positive_rate()
    );

    // 2. The paper's best candidate: 10 experts, top-4 gating fed by the
    //    query's sub-category, adversarial regularization (D = 1) and
    //    the hierarchical soft constraint.
    let config = MoeConfig {
        adversarial: true,
        hsc: true,
        lambda1: 1e-1,
        lambda2: 1e-2,
        ..MoeConfig::default()
    };
    let mut model = MoeModel::new(&data.meta, config, OptimConfig::default());
    println!(
        "model: {} with {} parameters",
        model.name(),
        model.num_parameters()
    );

    // 3. Train and evaluate with the paper's session-level protocol.
    let trainer = Trainer::new(TrainConfig {
        epochs: 4,
        verbose: true,
        ..TrainConfig::default()
    });
    let stats = trainer.fit(&mut model, &data.train);
    println!(
        "final epoch: loss {:.4} (ce {:.4}, hsc {:.5}, adv {:.5})",
        stats.loss, stats.ce, stats.hsc, stats.adv
    );
    let ours = trainer.evaluate(&model, &data.test);

    let mut dnn = DnnModel::new(&data.meta, &MoeConfig::default(), OptimConfig::default());
    trainer.fit(&mut dnn, &data.train);
    let baseline = trainer.evaluate(&dnn, &data.test);

    println!("\n               AUC     NDCG@10  NDCG");
    println!(
        "DNN            {:.4}  {:.4}   {:.4}",
        baseline.auc, baseline.ndcg_at_10, baseline.ndcg
    );
    println!(
        "Adv & HSC-MoE  {:.4}  {:.4}   {:.4}",
        ours.auc, ours.ndcg_at_10, ours.ndcg
    );

    // 4. Checkpoint round-trip.
    let path = std::env::temp_dir().join("adv_hsc_moe_quickstart.ckpt");
    model.params().save(&path).expect("save checkpoint");
    let restored = adv_hsc_moe::nn::ParamSet::load(&path).expect("load checkpoint");
    model
        .params_mut()
        .load_values_from(&restored)
        .expect("restore weights");
    let again = trainer.evaluate(&model, &data.test);
    assert!(
        (again.auc - ours.auc).abs() < 1e-9,
        "checkpoint changed the model"
    );
    println!("\ncheckpoint round-trip OK ({})", path.display());
    std::fs::remove_file(&path).ok();
}
