/root/repo/target/debug/examples/serving-20eb00702ca15862.d: examples/serving.rs

/root/repo/target/debug/examples/serving-20eb00702ca15862: examples/serving.rs

examples/serving.rs:
