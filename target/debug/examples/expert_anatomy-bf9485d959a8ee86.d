/root/repo/target/debug/examples/expert_anatomy-bf9485d959a8ee86.d: examples/expert_anatomy.rs

/root/repo/target/debug/examples/expert_anatomy-bf9485d959a8ee86: examples/expert_anatomy.rs

examples/expert_anatomy.rs:
