/root/repo/target/debug/examples/category_transfer-368cede918e155bd.d: examples/category_transfer.rs

/root/repo/target/debug/examples/category_transfer-368cede918e155bd: examples/category_transfer.rs

examples/category_transfer.rs:
