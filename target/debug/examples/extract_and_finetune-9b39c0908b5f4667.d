/root/repo/target/debug/examples/extract_and_finetune-9b39c0908b5f4667.d: examples/extract_and_finetune.rs

/root/repo/target/debug/examples/extract_and_finetune-9b39c0908b5f4667: examples/extract_and_finetune.rs

examples/extract_and_finetune.rs:
