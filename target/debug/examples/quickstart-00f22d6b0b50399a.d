/root/repo/target/debug/examples/quickstart-00f22d6b0b50399a.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-00f22d6b0b50399a: examples/quickstart.rs

examples/quickstart.rs:
