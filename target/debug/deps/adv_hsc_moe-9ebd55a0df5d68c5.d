/root/repo/target/debug/deps/adv_hsc_moe-9ebd55a0df5d68c5.d: src/lib.rs

/root/repo/target/debug/deps/adv_hsc_moe-9ebd55a0df5d68c5: src/lib.rs

src/lib.rs:
