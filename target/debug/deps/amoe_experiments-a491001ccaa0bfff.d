/root/repo/target/debug/deps/amoe_experiments-a491001ccaa0bfff.d: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/case_study.rs crates/experiments/src/fig2.rs crates/experiments/src/fig3.rs crates/experiments/src/fig5.rs crates/experiments/src/fig6.rs crates/experiments/src/fig7.rs crates/experiments/src/suite.rs crates/experiments/src/table1.rs crates/experiments/src/table2.rs crates/experiments/src/table3.rs crates/experiments/src/table5.rs crates/experiments/src/table6.rs crates/experiments/src/tablefmt.rs

/root/repo/target/debug/deps/libamoe_experiments-a491001ccaa0bfff.rlib: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/case_study.rs crates/experiments/src/fig2.rs crates/experiments/src/fig3.rs crates/experiments/src/fig5.rs crates/experiments/src/fig6.rs crates/experiments/src/fig7.rs crates/experiments/src/suite.rs crates/experiments/src/table1.rs crates/experiments/src/table2.rs crates/experiments/src/table3.rs crates/experiments/src/table5.rs crates/experiments/src/table6.rs crates/experiments/src/tablefmt.rs

/root/repo/target/debug/deps/libamoe_experiments-a491001ccaa0bfff.rmeta: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/case_study.rs crates/experiments/src/fig2.rs crates/experiments/src/fig3.rs crates/experiments/src/fig5.rs crates/experiments/src/fig6.rs crates/experiments/src/fig7.rs crates/experiments/src/suite.rs crates/experiments/src/table1.rs crates/experiments/src/table2.rs crates/experiments/src/table3.rs crates/experiments/src/table5.rs crates/experiments/src/table6.rs crates/experiments/src/tablefmt.rs

crates/experiments/src/lib.rs:
crates/experiments/src/ablations.rs:
crates/experiments/src/case_study.rs:
crates/experiments/src/fig2.rs:
crates/experiments/src/fig3.rs:
crates/experiments/src/fig5.rs:
crates/experiments/src/fig6.rs:
crates/experiments/src/fig7.rs:
crates/experiments/src/suite.rs:
crates/experiments/src/table1.rs:
crates/experiments/src/table2.rs:
crates/experiments/src/table3.rs:
crates/experiments/src/table5.rs:
crates/experiments/src/table6.rs:
crates/experiments/src/tablefmt.rs:
