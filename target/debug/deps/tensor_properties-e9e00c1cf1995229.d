/root/repo/target/debug/deps/tensor_properties-e9e00c1cf1995229.d: tests/tensor_properties.rs

/root/repo/target/debug/deps/tensor_properties-e9e00c1cf1995229: tests/tensor_properties.rs

tests/tensor_properties.rs:
