/root/repo/target/debug/deps/amoe_tensor-d95918bcbc18424c.d: crates/tensor/src/lib.rs crates/tensor/src/check.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/pool.rs crates/tensor/src/reduce.rs crates/tensor/src/rng.rs crates/tensor/src/topk.rs

/root/repo/target/debug/deps/libamoe_tensor-d95918bcbc18424c.rlib: crates/tensor/src/lib.rs crates/tensor/src/check.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/pool.rs crates/tensor/src/reduce.rs crates/tensor/src/rng.rs crates/tensor/src/topk.rs

/root/repo/target/debug/deps/libamoe_tensor-d95918bcbc18424c.rmeta: crates/tensor/src/lib.rs crates/tensor/src/check.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/pool.rs crates/tensor/src/reduce.rs crates/tensor/src/rng.rs crates/tensor/src/topk.rs

crates/tensor/src/lib.rs:
crates/tensor/src/check.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/reduce.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/topk.rs:
