/root/repo/target/debug/deps/amoe_metrics-00748113cc581813.d: crates/metrics/src/lib.rs crates/metrics/src/auc.rs crates/metrics/src/calibration.rs crates/metrics/src/concentration.rs crates/metrics/src/feature_importance.rs crates/metrics/src/logloss.rs crates/metrics/src/ndcg.rs crates/metrics/src/silhouette.rs

/root/repo/target/debug/deps/libamoe_metrics-00748113cc581813.rlib: crates/metrics/src/lib.rs crates/metrics/src/auc.rs crates/metrics/src/calibration.rs crates/metrics/src/concentration.rs crates/metrics/src/feature_importance.rs crates/metrics/src/logloss.rs crates/metrics/src/ndcg.rs crates/metrics/src/silhouette.rs

/root/repo/target/debug/deps/libamoe_metrics-00748113cc581813.rmeta: crates/metrics/src/lib.rs crates/metrics/src/auc.rs crates/metrics/src/calibration.rs crates/metrics/src/concentration.rs crates/metrics/src/feature_importance.rs crates/metrics/src/logloss.rs crates/metrics/src/ndcg.rs crates/metrics/src/silhouette.rs

crates/metrics/src/lib.rs:
crates/metrics/src/auc.rs:
crates/metrics/src/calibration.rs:
crates/metrics/src/concentration.rs:
crates/metrics/src/feature_importance.rs:
crates/metrics/src/logloss.rs:
crates/metrics/src/ndcg.rs:
crates/metrics/src/silhouette.rs:
