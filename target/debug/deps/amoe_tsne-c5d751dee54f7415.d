/root/repo/target/debug/deps/amoe_tsne-c5d751dee54f7415.d: crates/tsne/src/lib.rs

/root/repo/target/debug/deps/libamoe_tsne-c5d751dee54f7415.rlib: crates/tsne/src/lib.rs

/root/repo/target/debug/deps/libamoe_tsne-c5d751dee54f7415.rmeta: crates/tsne/src/lib.rs

crates/tsne/src/lib.rs:
