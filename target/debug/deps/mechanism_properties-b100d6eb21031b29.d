/root/repo/target/debug/deps/mechanism_properties-b100d6eb21031b29.d: tests/mechanism_properties.rs

/root/repo/target/debug/deps/mechanism_properties-b100d6eb21031b29: tests/mechanism_properties.rs

tests/mechanism_properties.rs:
