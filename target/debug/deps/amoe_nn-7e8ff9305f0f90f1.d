/root/repo/target/debug/deps/amoe_nn-7e8ff9305f0f90f1.d: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs crates/nn/src/schedule.rs crates/nn/src/serialize.rs

/root/repo/target/debug/deps/libamoe_nn-7e8ff9305f0f90f1.rlib: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs crates/nn/src/schedule.rs crates/nn/src/serialize.rs

/root/repo/target/debug/deps/libamoe_nn-7e8ff9305f0f90f1.rmeta: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs crates/nn/src/schedule.rs crates/nn/src/serialize.rs

crates/nn/src/lib.rs:
crates/nn/src/init.rs:
crates/nn/src/layers.rs:
crates/nn/src/optim.rs:
crates/nn/src/params.rs:
crates/nn/src/schedule.rs:
crates/nn/src/serialize.rs:
