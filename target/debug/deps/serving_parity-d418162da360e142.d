/root/repo/target/debug/deps/serving_parity-d418162da360e142.d: tests/serving_parity.rs

/root/repo/target/debug/deps/serving_parity-d418162da360e142: tests/serving_parity.rs

tests/serving_parity.rs:
