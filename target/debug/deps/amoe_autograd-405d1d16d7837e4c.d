/root/repo/target/debug/deps/amoe_autograd-405d1d16d7837e4c.d: crates/autograd/src/lib.rs crates/autograd/src/gradcheck.rs crates/autograd/src/tape.rs crates/autograd/src/var.rs

/root/repo/target/debug/deps/libamoe_autograd-405d1d16d7837e4c.rlib: crates/autograd/src/lib.rs crates/autograd/src/gradcheck.rs crates/autograd/src/tape.rs crates/autograd/src/var.rs

/root/repo/target/debug/deps/libamoe_autograd-405d1d16d7837e4c.rmeta: crates/autograd/src/lib.rs crates/autograd/src/gradcheck.rs crates/autograd/src/tape.rs crates/autograd/src/var.rs

crates/autograd/src/lib.rs:
crates/autograd/src/gradcheck.rs:
crates/autograd/src/tape.rs:
crates/autograd/src/var.rs:
