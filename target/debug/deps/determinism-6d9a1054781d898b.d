/root/repo/target/debug/deps/determinism-6d9a1054781d898b.d: tests/determinism.rs

/root/repo/target/debug/deps/determinism-6d9a1054781d898b: tests/determinism.rs

tests/determinism.rs:
