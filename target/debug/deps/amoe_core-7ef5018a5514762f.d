/root/repo/target/debug/deps/amoe_core-7ef5018a5514762f.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/config.rs crates/core/src/extraction.rs crates/core/src/features.rs crates/core/src/finetune.rs crates/core/src/gating.rs crates/core/src/losses.rs crates/core/src/models.rs crates/core/src/ranker.rs crates/core/src/serving.rs crates/core/src/trainer.rs

/root/repo/target/debug/deps/libamoe_core-7ef5018a5514762f.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/config.rs crates/core/src/extraction.rs crates/core/src/features.rs crates/core/src/finetune.rs crates/core/src/gating.rs crates/core/src/losses.rs crates/core/src/models.rs crates/core/src/ranker.rs crates/core/src/serving.rs crates/core/src/trainer.rs

/root/repo/target/debug/deps/libamoe_core-7ef5018a5514762f.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/config.rs crates/core/src/extraction.rs crates/core/src/features.rs crates/core/src/finetune.rs crates/core/src/gating.rs crates/core/src/losses.rs crates/core/src/models.rs crates/core/src/ranker.rs crates/core/src/serving.rs crates/core/src/trainer.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/config.rs:
crates/core/src/extraction.rs:
crates/core/src/features.rs:
crates/core/src/finetune.rs:
crates/core/src/gating.rs:
crates/core/src/losses.rs:
crates/core/src/models.rs:
crates/core/src/ranker.rs:
crates/core/src/serving.rs:
crates/core/src/trainer.rs:
