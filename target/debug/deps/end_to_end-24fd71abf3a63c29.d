/root/repo/target/debug/deps/end_to_end-24fd71abf3a63c29.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-24fd71abf3a63c29: tests/end_to_end.rs

tests/end_to_end.rs:
