/root/repo/target/debug/deps/amoe_dataset-5911c5d8ac8ffa4d.d: crates/dataset/src/lib.rs crates/dataset/src/batch.rs crates/dataset/src/brands.rs crates/dataset/src/buckets.rs crates/dataset/src/config.rs crates/dataset/src/data.rs crates/dataset/src/export.rs crates/dataset/src/generator.rs crates/dataset/src/hierarchy.rs crates/dataset/src/query_model.rs crates/dataset/src/stats.rs crates/dataset/src/truth.rs

/root/repo/target/debug/deps/libamoe_dataset-5911c5d8ac8ffa4d.rlib: crates/dataset/src/lib.rs crates/dataset/src/batch.rs crates/dataset/src/brands.rs crates/dataset/src/buckets.rs crates/dataset/src/config.rs crates/dataset/src/data.rs crates/dataset/src/export.rs crates/dataset/src/generator.rs crates/dataset/src/hierarchy.rs crates/dataset/src/query_model.rs crates/dataset/src/stats.rs crates/dataset/src/truth.rs

/root/repo/target/debug/deps/libamoe_dataset-5911c5d8ac8ffa4d.rmeta: crates/dataset/src/lib.rs crates/dataset/src/batch.rs crates/dataset/src/brands.rs crates/dataset/src/buckets.rs crates/dataset/src/config.rs crates/dataset/src/data.rs crates/dataset/src/export.rs crates/dataset/src/generator.rs crates/dataset/src/hierarchy.rs crates/dataset/src/query_model.rs crates/dataset/src/stats.rs crates/dataset/src/truth.rs

crates/dataset/src/lib.rs:
crates/dataset/src/batch.rs:
crates/dataset/src/brands.rs:
crates/dataset/src/buckets.rs:
crates/dataset/src/config.rs:
crates/dataset/src/data.rs:
crates/dataset/src/export.rs:
crates/dataset/src/generator.rs:
crates/dataset/src/hierarchy.rs:
crates/dataset/src/query_model.rs:
crates/dataset/src/stats.rs:
crates/dataset/src/truth.rs:
