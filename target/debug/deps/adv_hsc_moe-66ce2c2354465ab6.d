/root/repo/target/debug/deps/adv_hsc_moe-66ce2c2354465ab6.d: src/lib.rs

/root/repo/target/debug/deps/libadv_hsc_moe-66ce2c2354465ab6.rlib: src/lib.rs

/root/repo/target/debug/deps/libadv_hsc_moe-66ce2c2354465ab6.rmeta: src/lib.rs

src/lib.rs:
