/root/repo/target/release/examples/extract_and_finetune-480a282f87e99f80.d: examples/extract_and_finetune.rs

/root/repo/target/release/examples/extract_and_finetune-480a282f87e99f80: examples/extract_and_finetune.rs

examples/extract_and_finetune.rs:
