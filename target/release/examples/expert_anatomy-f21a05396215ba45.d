/root/repo/target/release/examples/expert_anatomy-f21a05396215ba45.d: examples/expert_anatomy.rs

/root/repo/target/release/examples/expert_anatomy-f21a05396215ba45: examples/expert_anatomy.rs

examples/expert_anatomy.rs:
