/root/repo/target/release/examples/quickstart-96f6cbdc38f98cb4.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-96f6cbdc38f98cb4: examples/quickstart.rs

examples/quickstart.rs:
