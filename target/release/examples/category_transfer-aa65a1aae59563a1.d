/root/repo/target/release/examples/category_transfer-aa65a1aae59563a1.d: examples/category_transfer.rs

/root/repo/target/release/examples/category_transfer-aa65a1aae59563a1: examples/category_transfer.rs

examples/category_transfer.rs:
