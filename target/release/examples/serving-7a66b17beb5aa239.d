/root/repo/target/release/examples/serving-7a66b17beb5aa239.d: examples/serving.rs

/root/repo/target/release/examples/serving-7a66b17beb5aa239: examples/serving.rs

examples/serving.rs:
