/root/repo/target/release/deps/repro_all-b8bd672d23260248.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/release/deps/repro_all-b8bd672d23260248: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
