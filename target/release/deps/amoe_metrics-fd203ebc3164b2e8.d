/root/repo/target/release/deps/amoe_metrics-fd203ebc3164b2e8.d: crates/metrics/src/lib.rs crates/metrics/src/auc.rs crates/metrics/src/calibration.rs crates/metrics/src/concentration.rs crates/metrics/src/feature_importance.rs crates/metrics/src/logloss.rs crates/metrics/src/ndcg.rs crates/metrics/src/silhouette.rs

/root/repo/target/release/deps/libamoe_metrics-fd203ebc3164b2e8.rlib: crates/metrics/src/lib.rs crates/metrics/src/auc.rs crates/metrics/src/calibration.rs crates/metrics/src/concentration.rs crates/metrics/src/feature_importance.rs crates/metrics/src/logloss.rs crates/metrics/src/ndcg.rs crates/metrics/src/silhouette.rs

/root/repo/target/release/deps/libamoe_metrics-fd203ebc3164b2e8.rmeta: crates/metrics/src/lib.rs crates/metrics/src/auc.rs crates/metrics/src/calibration.rs crates/metrics/src/concentration.rs crates/metrics/src/feature_importance.rs crates/metrics/src/logloss.rs crates/metrics/src/ndcg.rs crates/metrics/src/silhouette.rs

crates/metrics/src/lib.rs:
crates/metrics/src/auc.rs:
crates/metrics/src/calibration.rs:
crates/metrics/src/concentration.rs:
crates/metrics/src/feature_importance.rs:
crates/metrics/src/logloss.rs:
crates/metrics/src/ndcg.rs:
crates/metrics/src/silhouette.rs:
