/root/repo/target/release/deps/fig2-e073dc4bcf28a2cc.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-e073dc4bcf28a2cc: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
