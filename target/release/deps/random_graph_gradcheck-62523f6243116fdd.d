/root/repo/target/release/deps/random_graph_gradcheck-62523f6243116fdd.d: crates/autograd/tests/random_graph_gradcheck.rs

/root/repo/target/release/deps/random_graph_gradcheck-62523f6243116fdd: crates/autograd/tests/random_graph_gradcheck.rs

crates/autograd/tests/random_graph_gradcheck.rs:
