/root/repo/target/release/deps/amoe_nn-6e383736f0241681.d: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs crates/nn/src/schedule.rs crates/nn/src/serialize.rs

/root/repo/target/release/deps/libamoe_nn-6e383736f0241681.rlib: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs crates/nn/src/schedule.rs crates/nn/src/serialize.rs

/root/repo/target/release/deps/libamoe_nn-6e383736f0241681.rmeta: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs crates/nn/src/schedule.rs crates/nn/src/serialize.rs

crates/nn/src/lib.rs:
crates/nn/src/init.rs:
crates/nn/src/layers.rs:
crates/nn/src/optim.rs:
crates/nn/src/params.rs:
crates/nn/src/schedule.rs:
crates/nn/src/serialize.rs:
