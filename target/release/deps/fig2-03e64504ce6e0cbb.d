/root/repo/target/release/deps/fig2-03e64504ce6e0cbb.d: crates/bench/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-03e64504ce6e0cbb: crates/bench/src/bin/fig2.rs

crates/bench/src/bin/fig2.rs:
