/root/repo/target/release/deps/fig7-380c415d8aa8173e.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-380c415d8aa8173e: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
