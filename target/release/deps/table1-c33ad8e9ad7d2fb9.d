/root/repo/target/release/deps/table1-c33ad8e9ad7d2fb9.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-c33ad8e9ad7d2fb9: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
