/root/repo/target/release/deps/amoe_metrics-2e5970faa0c72ae4.d: crates/metrics/src/lib.rs crates/metrics/src/auc.rs crates/metrics/src/calibration.rs crates/metrics/src/concentration.rs crates/metrics/src/feature_importance.rs crates/metrics/src/logloss.rs crates/metrics/src/ndcg.rs crates/metrics/src/silhouette.rs

/root/repo/target/release/deps/amoe_metrics-2e5970faa0c72ae4: crates/metrics/src/lib.rs crates/metrics/src/auc.rs crates/metrics/src/calibration.rs crates/metrics/src/concentration.rs crates/metrics/src/feature_importance.rs crates/metrics/src/logloss.rs crates/metrics/src/ndcg.rs crates/metrics/src/silhouette.rs

crates/metrics/src/lib.rs:
crates/metrics/src/auc.rs:
crates/metrics/src/calibration.rs:
crates/metrics/src/concentration.rs:
crates/metrics/src/feature_importance.rs:
crates/metrics/src/logloss.rs:
crates/metrics/src/ndcg.rs:
crates/metrics/src/silhouette.rs:
