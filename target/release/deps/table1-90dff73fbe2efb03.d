/root/repo/target/release/deps/table1-90dff73fbe2efb03.d: crates/bench/src/bin/table1.rs

/root/repo/target/release/deps/table1-90dff73fbe2efb03: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
