/root/repo/target/release/deps/amoe_core-ca88ff828e5fb3f9.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/config.rs crates/core/src/extraction.rs crates/core/src/features.rs crates/core/src/finetune.rs crates/core/src/gating.rs crates/core/src/losses.rs crates/core/src/models.rs crates/core/src/ranker.rs crates/core/src/serving.rs crates/core/src/trainer.rs

/root/repo/target/release/deps/libamoe_core-ca88ff828e5fb3f9.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/config.rs crates/core/src/extraction.rs crates/core/src/features.rs crates/core/src/finetune.rs crates/core/src/gating.rs crates/core/src/losses.rs crates/core/src/models.rs crates/core/src/ranker.rs crates/core/src/serving.rs crates/core/src/trainer.rs

/root/repo/target/release/deps/libamoe_core-ca88ff828e5fb3f9.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/config.rs crates/core/src/extraction.rs crates/core/src/features.rs crates/core/src/finetune.rs crates/core/src/gating.rs crates/core/src/losses.rs crates/core/src/models.rs crates/core/src/ranker.rs crates/core/src/serving.rs crates/core/src/trainer.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/config.rs:
crates/core/src/extraction.rs:
crates/core/src/features.rs:
crates/core/src/finetune.rs:
crates/core/src/gating.rs:
crates/core/src/losses.rs:
crates/core/src/models.rs:
crates/core/src/ranker.rs:
crates/core/src/serving.rs:
crates/core/src/trainer.rs:
