/root/repo/target/release/deps/full_loss_gradcheck-15e6cd800a3ec3a5.d: crates/core/tests/full_loss_gradcheck.rs

/root/repo/target/release/deps/full_loss_gradcheck-15e6cd800a3ec3a5: crates/core/tests/full_loss_gradcheck.rs

crates/core/tests/full_loss_gradcheck.rs:
