/root/repo/target/release/deps/fig3-36224e8f71f30882.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-36224e8f71f30882: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
