/root/repo/target/release/deps/amoe_bench-774ffeb7d9645e6b.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libamoe_bench-774ffeb7d9645e6b.rlib: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libamoe_bench-774ffeb7d9645e6b.rmeta: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
