/root/repo/target/release/deps/fig7-9065101f99d9ad26.d: crates/bench/src/bin/fig7.rs

/root/repo/target/release/deps/fig7-9065101f99d9ad26: crates/bench/src/bin/fig7.rs

crates/bench/src/bin/fig7.rs:
