/root/repo/target/release/deps/amoe_nn-8833f071234ffbfc.d: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs crates/nn/src/schedule.rs crates/nn/src/serialize.rs

/root/repo/target/release/deps/amoe_nn-8833f071234ffbfc: crates/nn/src/lib.rs crates/nn/src/init.rs crates/nn/src/layers.rs crates/nn/src/optim.rs crates/nn/src/params.rs crates/nn/src/schedule.rs crates/nn/src/serialize.rs

crates/nn/src/lib.rs:
crates/nn/src/init.rs:
crates/nn/src/layers.rs:
crates/nn/src/optim.rs:
crates/nn/src/params.rs:
crates/nn/src/schedule.rs:
crates/nn/src/serialize.rs:
