/root/repo/target/release/deps/serving_sweep-9c4dc6bde71104e1.d: crates/bench/src/bin/serving_sweep.rs

/root/repo/target/release/deps/serving_sweep-9c4dc6bde71104e1: crates/bench/src/bin/serving_sweep.rs

crates/bench/src/bin/serving_sweep.rs:
