/root/repo/target/release/deps/table5-51ad0b4f66b751af.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-51ad0b4f66b751af: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
