/root/repo/target/release/deps/serving_sweep-7dc9f9187a154f97.d: crates/bench/src/bin/serving_sweep.rs

/root/repo/target/release/deps/serving_sweep-7dc9f9187a154f97: crates/bench/src/bin/serving_sweep.rs

crates/bench/src/bin/serving_sweep.rs:
