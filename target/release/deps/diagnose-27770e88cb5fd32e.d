/root/repo/target/release/deps/diagnose-27770e88cb5fd32e.d: crates/bench/src/bin/diagnose.rs

/root/repo/target/release/deps/diagnose-27770e88cb5fd32e: crates/bench/src/bin/diagnose.rs

crates/bench/src/bin/diagnose.rs:
