/root/repo/target/release/deps/training-e987b84a64df070e.d: crates/bench/benches/training.rs

/root/repo/target/release/deps/training-e987b84a64df070e: crates/bench/benches/training.rs

crates/bench/benches/training.rs:
