/root/repo/target/release/deps/amoe_autograd-8686e9e0931737d6.d: crates/autograd/src/lib.rs crates/autograd/src/gradcheck.rs crates/autograd/src/tape.rs crates/autograd/src/var.rs

/root/repo/target/release/deps/libamoe_autograd-8686e9e0931737d6.rlib: crates/autograd/src/lib.rs crates/autograd/src/gradcheck.rs crates/autograd/src/tape.rs crates/autograd/src/var.rs

/root/repo/target/release/deps/libamoe_autograd-8686e9e0931737d6.rmeta: crates/autograd/src/lib.rs crates/autograd/src/gradcheck.rs crates/autograd/src/tape.rs crates/autograd/src/var.rs

crates/autograd/src/lib.rs:
crates/autograd/src/gradcheck.rs:
crates/autograd/src/tape.rs:
crates/autograd/src/var.rs:
