/root/repo/target/release/deps/mechanism_properties-1918cf16b2248206.d: tests/mechanism_properties.rs

/root/repo/target/release/deps/mechanism_properties-1918cf16b2248206: tests/mechanism_properties.rs

tests/mechanism_properties.rs:
