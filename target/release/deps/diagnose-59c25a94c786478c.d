/root/repo/target/release/deps/diagnose-59c25a94c786478c.d: crates/bench/src/bin/diagnose.rs

/root/repo/target/release/deps/diagnose-59c25a94c786478c: crates/bench/src/bin/diagnose.rs

crates/bench/src/bin/diagnose.rs:
