/root/repo/target/release/deps/repro_all-2a9e9ffb2afedf20.d: crates/bench/src/bin/repro_all.rs

/root/repo/target/release/deps/repro_all-2a9e9ffb2afedf20: crates/bench/src/bin/repro_all.rs

crates/bench/src/bin/repro_all.rs:
