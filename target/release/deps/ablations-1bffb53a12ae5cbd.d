/root/repo/target/release/deps/ablations-1bffb53a12ae5cbd.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-1bffb53a12ae5cbd: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
