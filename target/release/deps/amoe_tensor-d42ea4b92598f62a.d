/root/repo/target/release/deps/amoe_tensor-d42ea4b92598f62a.d: crates/tensor/src/lib.rs crates/tensor/src/check.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/pool.rs crates/tensor/src/reduce.rs crates/tensor/src/rng.rs crates/tensor/src/topk.rs

/root/repo/target/release/deps/libamoe_tensor-d42ea4b92598f62a.rlib: crates/tensor/src/lib.rs crates/tensor/src/check.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/pool.rs crates/tensor/src/reduce.rs crates/tensor/src/rng.rs crates/tensor/src/topk.rs

/root/repo/target/release/deps/libamoe_tensor-d42ea4b92598f62a.rmeta: crates/tensor/src/lib.rs crates/tensor/src/check.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/pool.rs crates/tensor/src/reduce.rs crates/tensor/src/rng.rs crates/tensor/src/topk.rs

crates/tensor/src/lib.rs:
crates/tensor/src/check.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/reduce.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/topk.rs:
