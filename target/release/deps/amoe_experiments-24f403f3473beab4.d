/root/repo/target/release/deps/amoe_experiments-24f403f3473beab4.d: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/case_study.rs crates/experiments/src/fig2.rs crates/experiments/src/fig3.rs crates/experiments/src/fig5.rs crates/experiments/src/fig6.rs crates/experiments/src/fig7.rs crates/experiments/src/suite.rs crates/experiments/src/table1.rs crates/experiments/src/table2.rs crates/experiments/src/table3.rs crates/experiments/src/table5.rs crates/experiments/src/table6.rs crates/experiments/src/tablefmt.rs

/root/repo/target/release/deps/libamoe_experiments-24f403f3473beab4.rlib: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/case_study.rs crates/experiments/src/fig2.rs crates/experiments/src/fig3.rs crates/experiments/src/fig5.rs crates/experiments/src/fig6.rs crates/experiments/src/fig7.rs crates/experiments/src/suite.rs crates/experiments/src/table1.rs crates/experiments/src/table2.rs crates/experiments/src/table3.rs crates/experiments/src/table5.rs crates/experiments/src/table6.rs crates/experiments/src/tablefmt.rs

/root/repo/target/release/deps/libamoe_experiments-24f403f3473beab4.rmeta: crates/experiments/src/lib.rs crates/experiments/src/ablations.rs crates/experiments/src/case_study.rs crates/experiments/src/fig2.rs crates/experiments/src/fig3.rs crates/experiments/src/fig5.rs crates/experiments/src/fig6.rs crates/experiments/src/fig7.rs crates/experiments/src/suite.rs crates/experiments/src/table1.rs crates/experiments/src/table2.rs crates/experiments/src/table3.rs crates/experiments/src/table5.rs crates/experiments/src/table6.rs crates/experiments/src/tablefmt.rs

crates/experiments/src/lib.rs:
crates/experiments/src/ablations.rs:
crates/experiments/src/case_study.rs:
crates/experiments/src/fig2.rs:
crates/experiments/src/fig3.rs:
crates/experiments/src/fig5.rs:
crates/experiments/src/fig6.rs:
crates/experiments/src/fig7.rs:
crates/experiments/src/suite.rs:
crates/experiments/src/table1.rs:
crates/experiments/src/table2.rs:
crates/experiments/src/table3.rs:
crates/experiments/src/table5.rs:
crates/experiments/src/table6.rs:
crates/experiments/src/tablefmt.rs:
