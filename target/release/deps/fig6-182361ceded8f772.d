/root/repo/target/release/deps/fig6-182361ceded8f772.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-182361ceded8f772: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
