/root/repo/target/release/deps/ops_gradcheck-bb402bd85b5a0ab3.d: crates/autograd/tests/ops_gradcheck.rs

/root/repo/target/release/deps/ops_gradcheck-bb402bd85b5a0ab3: crates/autograd/tests/ops_gradcheck.rs

crates/autograd/tests/ops_gradcheck.rs:
