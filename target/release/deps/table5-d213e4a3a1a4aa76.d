/root/repo/target/release/deps/table5-d213e4a3a1a4aa76.d: crates/bench/src/bin/table5.rs

/root/repo/target/release/deps/table5-d213e4a3a1a4aa76: crates/bench/src/bin/table5.rs

crates/bench/src/bin/table5.rs:
