/root/repo/target/release/deps/amoe_tsne-cfd5d1503b9ee76d.d: crates/tsne/src/lib.rs

/root/repo/target/release/deps/libamoe_tsne-cfd5d1503b9ee76d.rlib: crates/tsne/src/lib.rs

/root/repo/target/release/deps/libamoe_tsne-cfd5d1503b9ee76d.rmeta: crates/tsne/src/lib.rs

crates/tsne/src/lib.rs:
