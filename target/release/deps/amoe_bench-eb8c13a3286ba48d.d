/root/repo/target/release/deps/amoe_bench-eb8c13a3286ba48d.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/amoe_bench-eb8c13a3286ba48d: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
