/root/repo/target/release/deps/serving-cf1cf2f42cff30ff.d: crates/bench/benches/serving.rs

/root/repo/target/release/deps/serving-cf1cf2f42cff30ff: crates/bench/benches/serving.rs

crates/bench/benches/serving.rs:
