/root/repo/target/release/deps/fig3-197aac04bd6a0c49.d: crates/bench/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-197aac04bd6a0c49: crates/bench/src/bin/fig3.rs

crates/bench/src/bin/fig3.rs:
