/root/repo/target/release/deps/table3-f0342564ad44f44b.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-f0342564ad44f44b: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
