/root/repo/target/release/deps/serving_parity-ba5d671d8da2d890.d: tests/serving_parity.rs

/root/repo/target/release/deps/serving_parity-ba5d671d8da2d890: tests/serving_parity.rs

tests/serving_parity.rs:
