/root/repo/target/release/deps/end_to_end-396a05bf24a8e188.d: tests/end_to_end.rs

/root/repo/target/release/deps/end_to_end-396a05bf24a8e188: tests/end_to_end.rs

tests/end_to_end.rs:
