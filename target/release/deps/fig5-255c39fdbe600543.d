/root/repo/target/release/deps/fig5-255c39fdbe600543.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-255c39fdbe600543: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
