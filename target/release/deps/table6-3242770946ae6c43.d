/root/repo/target/release/deps/table6-3242770946ae6c43.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-3242770946ae6c43: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
