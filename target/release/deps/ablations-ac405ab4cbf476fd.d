/root/repo/target/release/deps/ablations-ac405ab4cbf476fd.d: crates/bench/src/bin/ablations.rs

/root/repo/target/release/deps/ablations-ac405ab4cbf476fd: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
