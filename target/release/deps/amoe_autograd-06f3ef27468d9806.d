/root/repo/target/release/deps/amoe_autograd-06f3ef27468d9806.d: crates/autograd/src/lib.rs crates/autograd/src/gradcheck.rs crates/autograd/src/tape.rs crates/autograd/src/var.rs

/root/repo/target/release/deps/amoe_autograd-06f3ef27468d9806: crates/autograd/src/lib.rs crates/autograd/src/gradcheck.rs crates/autograd/src/tape.rs crates/autograd/src/var.rs

crates/autograd/src/lib.rs:
crates/autograd/src/gradcheck.rs:
crates/autograd/src/tape.rs:
crates/autograd/src/var.rs:
