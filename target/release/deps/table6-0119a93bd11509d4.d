/root/repo/target/release/deps/table6-0119a93bd11509d4.d: crates/bench/src/bin/table6.rs

/root/repo/target/release/deps/table6-0119a93bd11509d4: crates/bench/src/bin/table6.rs

crates/bench/src/bin/table6.rs:
