/root/repo/target/release/deps/amoe_tsne-e97dd2738011fea6.d: crates/tsne/src/lib.rs

/root/repo/target/release/deps/amoe_tsne-e97dd2738011fea6: crates/tsne/src/lib.rs

crates/tsne/src/lib.rs:
