/root/repo/target/release/deps/table2-55a86e5963104127.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-55a86e5963104127: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
