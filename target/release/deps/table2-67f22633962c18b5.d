/root/repo/target/release/deps/table2-67f22633962c18b5.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-67f22633962c18b5: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
