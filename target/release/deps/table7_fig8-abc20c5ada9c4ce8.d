/root/repo/target/release/deps/table7_fig8-abc20c5ada9c4ce8.d: crates/bench/src/bin/table7_fig8.rs

/root/repo/target/release/deps/table7_fig8-abc20c5ada9c4ce8: crates/bench/src/bin/table7_fig8.rs

crates/bench/src/bin/table7_fig8.rs:
