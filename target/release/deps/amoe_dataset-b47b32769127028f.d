/root/repo/target/release/deps/amoe_dataset-b47b32769127028f.d: crates/dataset/src/lib.rs crates/dataset/src/batch.rs crates/dataset/src/brands.rs crates/dataset/src/buckets.rs crates/dataset/src/config.rs crates/dataset/src/data.rs crates/dataset/src/export.rs crates/dataset/src/generator.rs crates/dataset/src/hierarchy.rs crates/dataset/src/query_model.rs crates/dataset/src/stats.rs crates/dataset/src/truth.rs

/root/repo/target/release/deps/amoe_dataset-b47b32769127028f: crates/dataset/src/lib.rs crates/dataset/src/batch.rs crates/dataset/src/brands.rs crates/dataset/src/buckets.rs crates/dataset/src/config.rs crates/dataset/src/data.rs crates/dataset/src/export.rs crates/dataset/src/generator.rs crates/dataset/src/hierarchy.rs crates/dataset/src/query_model.rs crates/dataset/src/stats.rs crates/dataset/src/truth.rs

crates/dataset/src/lib.rs:
crates/dataset/src/batch.rs:
crates/dataset/src/brands.rs:
crates/dataset/src/buckets.rs:
crates/dataset/src/config.rs:
crates/dataset/src/data.rs:
crates/dataset/src/export.rs:
crates/dataset/src/generator.rs:
crates/dataset/src/hierarchy.rs:
crates/dataset/src/query_model.rs:
crates/dataset/src/stats.rs:
crates/dataset/src/truth.rs:
