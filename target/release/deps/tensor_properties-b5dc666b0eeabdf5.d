/root/repo/target/release/deps/tensor_properties-b5dc666b0eeabdf5.d: tests/tensor_properties.rs

/root/repo/target/release/deps/tensor_properties-b5dc666b0eeabdf5: tests/tensor_properties.rs

tests/tensor_properties.rs:
