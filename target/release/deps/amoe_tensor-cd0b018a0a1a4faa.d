/root/repo/target/release/deps/amoe_tensor-cd0b018a0a1a4faa.d: crates/tensor/src/lib.rs crates/tensor/src/check.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/pool.rs crates/tensor/src/reduce.rs crates/tensor/src/rng.rs crates/tensor/src/topk.rs

/root/repo/target/release/deps/amoe_tensor-cd0b018a0a1a4faa: crates/tensor/src/lib.rs crates/tensor/src/check.rs crates/tensor/src/matmul.rs crates/tensor/src/matrix.rs crates/tensor/src/ops.rs crates/tensor/src/pool.rs crates/tensor/src/reduce.rs crates/tensor/src/rng.rs crates/tensor/src/topk.rs

crates/tensor/src/lib.rs:
crates/tensor/src/check.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/matrix.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/pool.rs:
crates/tensor/src/reduce.rs:
crates/tensor/src/rng.rs:
crates/tensor/src/topk.rs:
