/root/repo/target/release/deps/table3-634461b62a07221c.d: crates/bench/src/bin/table3.rs

/root/repo/target/release/deps/table3-634461b62a07221c: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
