/root/repo/target/release/deps/fig5-36feffc858c2e4bc.d: crates/bench/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-36feffc858c2e4bc: crates/bench/src/bin/fig5.rs

crates/bench/src/bin/fig5.rs:
