/root/repo/target/release/deps/determinism-35c2f2aa3b8a5be8.d: tests/determinism.rs

/root/repo/target/release/deps/determinism-35c2f2aa3b8a5be8: tests/determinism.rs

tests/determinism.rs:
