/root/repo/target/release/deps/fig6-f683505650b21371.d: crates/bench/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-f683505650b21371: crates/bench/src/bin/fig6.rs

crates/bench/src/bin/fig6.rs:
