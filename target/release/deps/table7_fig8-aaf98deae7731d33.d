/root/repo/target/release/deps/table7_fig8-aaf98deae7731d33.d: crates/bench/src/bin/table7_fig8.rs

/root/repo/target/release/deps/table7_fig8-aaf98deae7731d33: crates/bench/src/bin/table7_fig8.rs

crates/bench/src/bin/table7_fig8.rs:
