/root/repo/target/release/deps/adv_hsc_moe-2b5fff5e1beff822.d: src/lib.rs

/root/repo/target/release/deps/libadv_hsc_moe-2b5fff5e1beff822.rlib: src/lib.rs

/root/repo/target/release/deps/libadv_hsc_moe-2b5fff5e1beff822.rmeta: src/lib.rs

src/lib.rs:
