/root/repo/target/release/deps/kernels-bc6b10f2bce81bb5.d: crates/bench/benches/kernels.rs

/root/repo/target/release/deps/kernels-bc6b10f2bce81bb5: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
