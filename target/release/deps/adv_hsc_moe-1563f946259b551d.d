/root/repo/target/release/deps/adv_hsc_moe-1563f946259b551d.d: src/lib.rs

/root/repo/target/release/deps/adv_hsc_moe-1563f946259b551d: src/lib.rs

src/lib.rs:
