//! End-to-end tests for the HTTP observability listener: readiness
//! semantics across a graceful drain, scrape correctness under
//! concurrent admin traffic, exemplar round-trips from `/metrics` to
//! the trace export, and protocol robustness against malformed HTTP.
//!
//! Each test starts its own in-process [`Server`] on an ephemeral
//! loopback port with `obs_addr` enabled, so the tests exercise the
//! real TCP + HTTP stack rather than the parser in isolation.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use amoe_core::ranker::{OptimConfig, Ranker};
use amoe_core::{MoeConfig, MoeModel, TowerConfig};
use amoe_dataset::{generate, Batch, Dataset, GeneratorConfig};
use amoe_obs::json::Value;
use amoe_obs::trace;
use amoe_serve::{http_get, Client, FeatureRow, ServeConfig, Server};

const GET_TIMEOUT: Duration = Duration::from_secs(5);

fn trained_model(d: &Dataset) -> MoeModel {
    let cfg = MoeConfig {
        n_experts: 6,
        top_k: 2,
        tower: TowerConfig {
            hidden: vec![12, 6],
        },
        ..MoeConfig::default()
    };
    let mut model = MoeModel::new(&d.meta, cfg, OptimConfig::default());
    let batch = Batch::from_split(&d.train, &(0..128).collect::<Vec<_>>());
    for _ in 0..5 {
        model.train_step(&batch);
    }
    model
}

fn feature_rows(d: &Dataset, n: usize) -> Vec<FeatureRow> {
    d.test.examples[..n]
        .iter()
        .map(|e| FeatureRow {
            sc: e.pred_sc as u32,
            tc: e.pred_tc as u32,
            brand: e.brand as u32,
            shop: e.shop as u32,
            user_segment: e.user_segment as u32,
            price_bucket: e.price_bucket as u32,
            query: e.query,
            numeric: e.numeric.to_vec(),
        })
        .collect()
}

fn start_server(d: &Dataset, config: ServeConfig) -> Server {
    let config = ServeConfig {
        obs_addr: Some("127.0.0.1:0".into()),
        ..config
    };
    Server::start("127.0.0.1:0", trained_model(d), d.meta.clone(), config).expect("server start")
}

/// `/readyz` must flip to 503 at drain *start* — while the already
/// admitted in-flight request still completes — and `/healthz` must
/// stay 200 until `join()` tears the listener down.
#[test]
fn readyz_flips_at_drain_start_while_inflight_completes() {
    let d = generate(&GeneratorConfig::tiny(41));
    // A throttled batcher keeps the submitted request in flight long
    // enough to observe the draining state around it.
    let server = start_server(
        &d,
        ServeConfig {
            batcher_delay: Some(Duration::from_millis(150)),
            ..ServeConfig::default()
        },
    );
    let addr = server.local_addr();
    let obs = server.obs_addr().expect("obs listener is configured");

    let rows = feature_rows(&d, 4);
    let mut pipelined = Client::connect(addr).expect("connect");
    let (status, _) = http_get(obs, "/healthz", GET_TIMEOUT).expect("healthz");
    assert_eq!(status, 200);
    let (status, body) = http_get(obs, "/readyz", GET_TIMEOUT).expect("readyz");
    assert_eq!(status, 200);
    assert_eq!(body, "ready\n");

    // Admit one request, then ask for a drain while it is in flight.
    let id = pipelined.submit(&rows).expect("submit");
    let mut admin = Client::connect(addr).expect("admin connect");
    admin.shutdown().expect("shutdown");

    // Readiness flips as soon as the drain flag is up; poll briefly to
    // absorb scheduling between the SHUTDOWN ack and the HTTP read.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (status, body) = http_get(obs, "/readyz", GET_TIMEOUT).expect("readyz during drain");
        if status == 503 {
            assert_eq!(body, "draining\n");
            break;
        }
        assert!(Instant::now() < deadline, "/readyz never reported draining");
        std::thread::sleep(Duration::from_millis(10));
    }
    // Liveness is not readiness: the process is healthy mid-drain.
    let (status, _) = http_get(obs, "/healthz", GET_TIMEOUT).expect("healthz during drain");
    assert_eq!(status, 200);

    // The admitted request must still be answered by the drain.
    let scores = pipelined.wait(id).expect("in-flight request answered");
    assert_eq!(scores.len(), rows.len());

    server.join();
    // join() stops the listener last; the port must now be closed.
    assert!(
        http_get(obs, "/healthz", Duration::from_millis(500)).is_err(),
        "obs listener still answering after join()"
    );
}

/// Scraping `/metrics` concurrently with a checkpoint hot-swap must
/// never see a malformed page, and the reload itself must succeed.
#[test]
fn concurrent_scrape_during_reload_stays_clean() {
    let d = generate(&GeneratorConfig::tiny(41));
    let server = start_server(&d, ServeConfig::default());
    let addr = server.local_addr();
    let obs = server.obs_addr().expect("obs listener is configured");

    let dir = std::path::Path::new("target/obs_http");
    std::fs::create_dir_all(dir).expect("mkdir");
    let ckpt = dir.join("reload.amoe");
    trained_model(&d).params().save(&ckpt).expect("save ckpt");

    let scraper = std::thread::spawn(move || {
        let mut pages = 0usize;
        for _ in 0..30 {
            let (status, body) = http_get(obs, "/metrics", GET_TIMEOUT).expect("scrape");
            assert_eq!(status, 200);
            amoe_obs::expose::validate_exposition(&body)
                .unwrap_or_else(|e| panic!("scraped page fails lint: {e}"));
            pages += 1;
            std::thread::sleep(Duration::from_millis(2));
        }
        pages
    });

    let rows = feature_rows(&d, 4);
    let mut client = Client::connect(addr).expect("connect");
    for _ in 0..5 {
        client.score(&rows).expect("score before reload");
    }
    // The boot model is generation 0 until the first successful swap.
    let (_, page) = http_get(obs, "/metrics", GET_TIMEOUT).expect("metrics before reload");
    assert!(
        page.contains("amoe_model_generation 0"),
        "boot model should expose generation 0"
    );
    client
        .reload(&ckpt.to_string_lossy())
        .expect("reload under scrape");
    for _ in 0..5 {
        client.score(&rows).expect("score after reload");
    }
    // Freshness gauges move on the successful RELOAD: the generation
    // increments and the model age restarts from the swap instant.
    let (_, page) = http_get(obs, "/metrics", GET_TIMEOUT).expect("metrics after reload");
    assert!(
        page.contains("amoe_model_generation 1"),
        "reload did not advance amoe_model_generation"
    );
    assert!(
        page.contains("amoe_model_age_seconds"),
        "missing amoe_model_age_seconds gauge"
    );

    assert_eq!(scraper.join().expect("scraper panicked"), 30);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.reloads, 1);
    client.shutdown().expect("shutdown");
    server.join();
}

/// The `/metrics` page must lint clean, and a windowed-quantile
/// exemplar's trace id must resolve to events in the `/trace` export —
/// the spike-to-trace workflow the exemplars exist for.
#[test]
fn metrics_exemplar_trace_id_round_trips_to_trace_export() {
    const TRACE_ID: u64 = 777_001;
    trace::set_enabled(true);
    trace::set_sample(1);

    let d = generate(&GeneratorConfig::tiny(41));
    let server = start_server(&d, ServeConfig::default());
    let addr = server.local_addr();
    let obs = server.obs_addr().expect("obs listener is configured");

    let rows = feature_rows(&d, 4);
    let mut client = Client::connect(addr).expect("connect");
    for _ in 0..3 {
        client.score_traced(&rows, TRACE_ID).expect("traced score");
    }

    let (status, page) = http_get(obs, "/metrics", GET_TIMEOUT).expect("metrics");
    assert_eq!(status, 200);
    let samples = amoe_obs::expose::validate_exposition(&page)
        .unwrap_or_else(|e| panic!("/metrics fails lint: {e}"));
    assert!(samples > 0);
    assert!(page.contains("amoe_build_info{"), "missing build info");
    assert!(
        page.contains("amoe_serve_window_request_latency_seconds_bucket"),
        "missing windowed latency family"
    );
    assert!(
        page.contains("amoe_model_generation"),
        "missing model freshness generation gauge"
    );
    assert!(
        page.contains("amoe_model_age_seconds"),
        "missing model age gauge"
    );
    // Every windowed sample this server saw carried our trace id, so
    // the retained max-value exemplar must too.
    let needle = format!("# {{trace_id=\"{TRACE_ID}\"}}");
    assert!(
        page.contains(&needle),
        "no exemplar with trace id {TRACE_ID} on the page"
    );

    let (status, body) = http_get(obs, "/trace", GET_TIMEOUT).expect("trace");
    assert_eq!(status, 200);
    let doc = amoe_obs::json::parse(&body).expect("trace export parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    let matched = events
        .iter()
        .filter(|e| {
            e.get("args")
                .and_then(|a| a.get("trace_id"))
                .and_then(Value::as_f64)
                == Some(TRACE_ID as f64)
        })
        .count();
    assert!(
        matched > 0,
        "exemplar trace id {TRACE_ID} has no events in the /trace export"
    );

    client.shutdown().expect("shutdown");
    server.join();
    trace::set_enabled(false);
}

/// Raw-socket robustness: garbage gets 400 then a closed connection,
/// oversized headers get 431, unknown paths 404, non-GET 405 — and
/// none of it disturbs the serving path.
#[test]
fn malformed_http_is_rejected_without_harming_the_server() {
    let d = generate(&GeneratorConfig::tiny(41));
    let server = start_server(&d, ServeConfig::default());
    let addr = server.local_addr();
    let obs = server.obs_addr().expect("obs listener is configured");

    // Binary garbage: one 400, then the server closes the connection.
    {
        let mut s = TcpStream::connect(obs).expect("connect obs");
        s.write_all(b"\x01\x02\x7fnot http at all\r\n\r\n")
            .expect("write garbage");
        let mut reply = String::new();
        s.read_to_string(&mut reply).expect("read until close");
        assert!(reply.starts_with("HTTP/1.1 400 "), "garbage got: {reply:?}");
    }

    // Headers past the cap: 431 without waiting for a terminator.
    {
        let mut s = TcpStream::connect(obs).expect("connect obs");
        // One write holding the whole >8 KiB head (and no terminator),
        // so the server's reply-and-close cannot race a later write
        // into an RST that discards the 431.
        let head = format!("GET /metrics HTTP/1.1\r\nX-Junk: {}\r\n", "a".repeat(9000));
        s.write_all(head.as_bytes()).expect("write oversized head");
        let mut reply = String::new();
        s.read_to_string(&mut reply).expect("read until close");
        assert!(
            reply.starts_with("HTTP/1.1 431 "),
            "oversized head got: {reply:?}"
        );
    }

    let (status, _) = http_get(obs, "/definitely-not-a-route", GET_TIMEOUT).expect("404 route");
    assert_eq!(status, 404);

    // Non-GET methods are rejected but keep the connection usable.
    {
        let mut s = TcpStream::connect(obs).expect("connect obs");
        s.write_all(b"POST /metrics HTTP/1.1\r\nConnection: close\r\n\r\n")
            .expect("write POST");
        let mut reply = String::new();
        s.read_to_string(&mut reply).expect("read until close");
        assert!(reply.starts_with("HTTP/1.1 405 "), "POST got: {reply:?}");
    }

    // The protocol port is unaffected by the HTTP abuse.
    let rows = feature_rows(&d, 4);
    let mut client = Client::connect(addr).expect("connect");
    let scores = client.score(&rows).expect("score after HTTP abuse");
    assert_eq!(scores.len(), rows.len());
    client.shutdown().expect("shutdown");
    server.join();
}
