#![warn(missing_docs)]

//! Online inference service for the Adv & HSC-MoE ranker.
//!
//! The crate is both a library (embed a [`Server`] in tests or a
//! larger process) and a binary (`amoe-serve`) exposing the service
//! over TCP. Like the rest of the workspace it uses **no external
//! dependencies** — the protocol, queue and threading are all std.
//!
//! # Architecture
//!
//! ```text
//!  client ══frames══▶ reader thread ──Pending──▶ queue[shard_of(id)] ─┐
//!     ▲   (pipelined:      │                                          ▼
//!     ║    many SCOREs     │ admin            batcher shard 0 ── predict
//!     ║    in flight)      ▼                  batcher shard 1 ── predict
//!     ╚══════════════ writer thread ◀──ScoreDone (any order)──── ...
//! ```
//!
//! * **Protocol** ([`protocol`]): length-prefixed binary frames over
//!   TCP; `SCORE`, `RELOAD`, `SHUTDOWN`, `STATS` requests. v3 adds
//!   pipelining: requests carry correlation ids, a connection may have
//!   many scores in flight, and replies arrive in completion order.
//! * **Batcher shards** ([`batcher`], [`ServeConfig::shards`]): each
//!   shard owns a bounded queue and flush loop; requests hash to a
//!   shard by request id ([`shard_of`]). Concurrently queued requests
//!   coalesce into one model call per shard (scores stay bit-identical
//!   at any shard count — every model path is row-independent).
//! * **Backpressure** ([`queue`], [`ServeConfig::overload`]): a full
//!   shard queue rejects with `OVERLOADED` (v3: a correlated
//!   `SCORE_ERROR`), or blocks with a deadline under
//!   [`OverloadPolicy::Block`]. Admission is per shard.
//! * **Hot-swap** ([`client::Client::reload`]): `RELOAD <path>` builds
//!   a fresh model from an `AMOE` checkpoint off the serving path and
//!   swaps it atomically; in-flight batches finish on the old weights.
//! * **Graceful drain**: `SHUTDOWN` closes every shard's queue,
//!   answers every admitted request on every shard, then exits.
//!
//! All stages are instrumented through `amoe-obs` (queue-depth gauge,
//! batch-size / queue-wait / latency histograms, `serve_request` and
//! `serve_batch` JSONL events) when `AMOE_OBS` is set.
//!
//! Independent of `AMOE_OBS`, the server keeps **always-on
//! sliding-window stage histograms** (queue wait, compute, reply
//! write, end-to-end latency, queue depth) reported as p50/p95/p99
//! through the v2 `STATS` reply (v3 adds per-shard batch/overload
//! counters and queue depths), and supports **request-scoped
//! tracing** (`AMOE_TRACE=path`, sampled via `AMOE_TRACE_SAMPLE=1/N`)
//! exportable as Chrome trace-event JSON through `TRACE_DUMP` or at
//! drain. Protocol v1 peers interoperate via hello negotiation.

pub mod batcher;
pub mod client;
pub mod config;
pub mod http;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::{Client, Completion, ServeError};
pub use config::{ModelSpec, OverloadPolicy, ServeConfig};
pub use http::http_get;
pub use protocol::{FeatureRow, QuantileSummary, ShardStats, StatsSnapshot, WindowedStats};
pub use server::{shard_of, Server};
