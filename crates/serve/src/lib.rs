#![warn(missing_docs)]

//! Online inference service for the Adv & HSC-MoE ranker.
//!
//! The crate is both a library (embed a [`Server`] in tests or a
//! larger process) and a binary (`amoe-serve`) exposing the service
//! over TCP. Like the rest of the workspace it uses **no external
//! dependencies** — the protocol, queue and threading are all std.
//!
//! # Architecture
//!
//! ```text
//!  client ──frame──▶ handler thread ──Pending──▶ bounded queue
//!                        ▲                          │
//!                        │ scores (mpsc)            ▼ coalesce ≤ max_batch_rows
//!                        └───────────────── batcher thread ── ServingMoe::predict
//! ```
//!
//! * **Protocol** ([`protocol`]): length-prefixed binary frames over
//!   TCP; `SCORE`, `RELOAD`, `SHUTDOWN`, `STATS` requests.
//! * **Micro-batching** ([`batcher`]): concurrently queued requests
//!   are coalesced into one model call (scores stay bit-identical —
//!   every model path is row-independent).
//! * **Backpressure** ([`queue`], [`ServeConfig::overload`]): a full
//!   admission queue rejects with `OVERLOADED` (or blocks with a
//!   deadline under [`OverloadPolicy::Block`]).
//! * **Hot-swap** ([`client::Client::reload`]): `RELOAD <path>` builds
//!   a fresh model from an `AMOE` checkpoint off the serving path and
//!   swaps it atomically; in-flight batches finish on the old weights.
//! * **Graceful drain**: `SHUTDOWN` closes the queue, answers every
//!   admitted request, then exits.
//!
//! All stages are instrumented through `amoe-obs` (queue-depth gauge,
//! batch-size / queue-wait / latency histograms, `serve_request` and
//! `serve_batch` JSONL events) when `AMOE_OBS` is set.
//!
//! Independent of `AMOE_OBS`, the server keeps **always-on
//! sliding-window stage histograms** (queue wait, compute, reply
//! write, end-to-end latency, queue depth) reported as p50/p95/p99
//! through the v2 `STATS` reply, and supports **request-scoped
//! tracing** (`AMOE_TRACE=path`, sampled via `AMOE_TRACE_SAMPLE=1/N`)
//! exportable as Chrome trace-event JSON through `TRACE_DUMP` or at
//! drain. Protocol v1 peers interoperate via hello negotiation.

pub mod batcher;
pub mod client;
pub mod config;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::{Client, ServeError};
pub use config::{ModelSpec, OverloadPolicy, ServeConfig};
pub use protocol::{FeatureRow, QuantileSummary, StatsSnapshot, WindowedStats};
pub use server::Server;
