//! Server tuning knobs and the checkpoint sidecar spec.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;
use std::time::Duration;

use amoe_core::{GateInput, MoeConfig, TowerConfig};
use amoe_dataset::DatasetMeta;

/// What to do with a score request when the admission queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Reply `OVERLOADED` immediately (shed load; the default).
    Reject,
    /// Block the connection thread for up to this long waiting for
    /// queue space, then reply `OVERLOADED`.
    Block(Duration),
}

/// Micro-batcher and admission-control configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Coalesce at most this many feature rows into one model call.
    pub max_batch_rows: usize,
    /// After the first request of a batch arrives, wait at most this
    /// long for more requests before dispatching.
    pub max_wait: Duration,
    /// Admission queue capacity in *requests* (not rows), **per
    /// batcher shard**.
    pub queue_cap: usize,
    /// Number of batcher shards. Each shard owns its own bounded queue
    /// (of `queue_cap` requests) and flush loop; requests hash to a
    /// shard by request id ([`crate::shard_of`]). Admission control
    /// and graceful drain are per-shard; scores stay bit-identical to
    /// the single-shard path at every shard count.
    pub shards: usize,
    /// Full-queue behaviour.
    pub overload: OverloadPolicy,
    /// Test-only throttle: sleep this long before every model call so
    /// tests can fill the queue deterministically. `None` in
    /// production.
    pub batcher_delay: Option<Duration>,
    /// Serve with int8-quantized expert weights
    /// ([`amoe_core::serving::QuantizedExperts`]). Opt-in: scores drift
    /// from the f32 oracle by up to
    /// [`amoe_core::serving::QUANT_SCORE_TOLERANCE`]; routing is
    /// unaffected (the gate stays f32). Applies to the initial load and
    /// every `RELOAD`.
    pub quantized: bool,
    /// Length of the sliding window behind the `STATS` p50/p95/p99
    /// readout (latency, queue wait, compute, reply write, queue
    /// depth). Always on — windowed accounting is a handful of
    /// histogram increments per request, independent of `AMOE_OBS`.
    pub stats_window: Duration,
    /// Bind address for the HTTP observability listener (`/metrics`,
    /// `/healthz`, `/readyz`, `/vars`, `/trace`) — a **separate** port
    /// from the score protocol, so scrapes never compete with the
    /// binary framing. `None` (the default) disables the listener.
    /// Use port 0 for an ephemeral port
    /// ([`crate::Server::obs_addr`] resolves it).
    pub obs_addr: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch_rows: 256,
            max_wait: Duration::from_micros(2000),
            queue_cap: 128,
            shards: 1,
            overload: OverloadPolicy::Reject,
            batcher_delay: None,
            quantized: false,
            stats_window: Duration::from_secs(60),
            obs_addr: None,
        }
    }
}

impl ServeConfig {
    /// Panics on nonsensical settings (zero capacities).
    pub fn validate(&self) {
        assert!(self.max_batch_rows > 0, "max_batch_rows must be positive");
        assert!(self.queue_cap > 0, "queue_cap must be positive");
        assert!(self.shards > 0, "shards must be positive");
        assert!(
            self.stats_window > Duration::ZERO,
            "stats_window must be positive"
        );
    }
}

/// Everything needed to rebuild a model's *structure* from a
/// weights-only `AMOE` checkpoint: the dataset vocabulary sizes plus
/// the architecture fields of [`MoeConfig`].
///
/// Stored as a `key=value` text sidecar next to the checkpoint so a
/// server can be pointed at `(model.amoe, model.spec)` with no access
/// to the training process.
#[derive(Clone, Debug)]
pub struct ModelSpec {
    /// Vocabulary sizes and numeric width.
    pub meta: DatasetMeta,
    /// Architecture configuration (loss weights ride along so a
    /// fine-tune resuming from the spec reproduces training behaviour).
    pub config: MoeConfig,
    /// Deployment hint: serve this checkpoint with int8 expert weights.
    /// The server ORs it with its own `--quantized` flag; older specs
    /// without the key parse as `false`, and older parsers skip the key
    /// (unknown keys are ignored on both sides).
    pub serve_quantized: bool,
}

impl ModelSpec {
    /// Serialises the spec to its text form.
    #[must_use]
    pub fn to_text(&self) -> String {
        let m = &self.meta;
        let c = &self.config;
        let mut s = String::new();
        let _ = writeln!(s, "# amoe-serve model spec v1");
        for (k, v) in [
            ("sc_vocab", m.sc_vocab),
            ("tc_vocab", m.tc_vocab),
            ("brand_vocab", m.brand_vocab),
            ("shop_vocab", m.shop_vocab),
            ("user_segment_vocab", m.user_segment_vocab),
            ("price_bucket_vocab", m.price_bucket_vocab),
            ("query_vocab", m.query_vocab),
            ("n_numeric", m.n_numeric),
            ("n_experts", c.n_experts),
            ("top_k", c.top_k),
            ("n_adversarial", c.n_adversarial),
            ("emb_dim", c.emb_dim),
        ] {
            let _ = writeln!(s, "{k}={v}");
        }
        for (k, v) in [
            ("adversarial", c.adversarial),
            ("hsc", c.hsc),
            ("noisy_gating", c.noisy_gating),
            ("serve_quantized", self.serve_quantized),
        ] {
            let _ = writeln!(s, "{k}={v}");
        }
        let _ = writeln!(s, "lambda1={}", c.lambda1);
        let _ = writeln!(s, "lambda2={}", c.lambda2);
        let _ = writeln!(s, "load_balance={}", c.load_balance);
        let hidden: Vec<String> = c.tower.hidden.iter().map(ToString::to_string).collect();
        let _ = writeln!(s, "tower_hidden={}", hidden.join(","));
        let _ = writeln!(s, "gate_input={}", gate_input_name(c.gate_input));
        let _ = writeln!(s, "seed={}", c.seed);
        s
    }

    /// Parses the text form produced by [`ModelSpec::to_text`].
    /// Unknown keys are ignored (forward compatibility); missing
    /// required keys are an error.
    pub fn from_text(text: &str) -> io::Result<ModelSpec> {
        let mut meta = DatasetMeta {
            sc_vocab: 0,
            tc_vocab: 0,
            brand_vocab: 0,
            shop_vocab: 0,
            user_segment_vocab: 0,
            price_bucket_vocab: 0,
            query_vocab: 0,
            n_numeric: 0,
        };
        let mut config = MoeConfig::default();
        let mut serve_quantized = false;
        let mut seen_sc = false;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| bad(format!("spec line {}: expected key=value", lineno + 1)))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "sc_vocab" => {
                    meta.sc_vocab = parse_usize(key, value)?;
                    seen_sc = true;
                }
                "tc_vocab" => meta.tc_vocab = parse_usize(key, value)?,
                "brand_vocab" => meta.brand_vocab = parse_usize(key, value)?,
                "shop_vocab" => meta.shop_vocab = parse_usize(key, value)?,
                "user_segment_vocab" => meta.user_segment_vocab = parse_usize(key, value)?,
                "price_bucket_vocab" => meta.price_bucket_vocab = parse_usize(key, value)?,
                "query_vocab" => meta.query_vocab = parse_usize(key, value)?,
                "n_numeric" => meta.n_numeric = parse_usize(key, value)?,
                "n_experts" => config.n_experts = parse_usize(key, value)?,
                "top_k" => config.top_k = parse_usize(key, value)?,
                "n_adversarial" => config.n_adversarial = parse_usize(key, value)?,
                "emb_dim" => config.emb_dim = parse_usize(key, value)?,
                "adversarial" => config.adversarial = parse_bool(key, value)?,
                "hsc" => config.hsc = parse_bool(key, value)?,
                "noisy_gating" => config.noisy_gating = parse_bool(key, value)?,
                "serve_quantized" => serve_quantized = parse_bool(key, value)?,
                "lambda1" => config.lambda1 = parse_f32(key, value)?,
                "lambda2" => config.lambda2 = parse_f32(key, value)?,
                "load_balance" => config.load_balance = parse_f32(key, value)?,
                "tower_hidden" => {
                    let mut hidden = Vec::new();
                    for part in value.split(',').filter(|p| !p.trim().is_empty()) {
                        hidden.push(parse_usize(key, part.trim())?);
                    }
                    config.tower = TowerConfig { hidden };
                }
                "gate_input" => config.gate_input = parse_gate_input(value)?,
                "seed" => {
                    config.seed = value
                        .parse::<u64>()
                        .map_err(|_| bad(format!("spec key {key}: bad u64 {value:?}")))?;
                }
                _ => {}
            }
        }
        if !seen_sc || meta.sc_vocab == 0 || meta.n_numeric == 0 {
            return Err(bad("spec missing required vocabulary/n_numeric keys"));
        }
        Ok(ModelSpec {
            meta,
            config,
            serve_quantized,
        })
    }

    /// Writes the spec sidecar file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_text())
    }

    /// Writes the spec via a sibling temp file plus `rename`, pairing
    /// with [`amoe_nn::ParamSet::save_atomic`] so a versioned export
    /// directory never holds a torn sidecar while a server is being
    /// pointed at it.
    pub fn save_atomic(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        fs::write(&tmp, self.to_text())?;
        fs::rename(&tmp, path).inspect_err(|_| {
            let _ = fs::remove_file(&tmp);
        })
    }

    /// Reads a spec sidecar file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<ModelSpec> {
        Self::from_text(&fs::read_to_string(path)?)
    }
}

fn gate_input_name(g: GateInput) -> &'static str {
    match g {
        GateInput::Sc => "sc",
        GateInput::TcSc => "tc_sc",
        GateInput::QueryTcSc => "query_tc_sc",
        GateInput::UserTcSc => "user_tc_sc",
        GateInput::All => "all",
    }
}

fn parse_gate_input(value: &str) -> io::Result<GateInput> {
    Ok(match value {
        "sc" => GateInput::Sc,
        "tc_sc" => GateInput::TcSc,
        "query_tc_sc" => GateInput::QueryTcSc,
        "user_tc_sc" => GateInput::UserTcSc,
        "all" => GateInput::All,
        other => return Err(bad(format!("spec: unknown gate_input {other:?}"))),
    })
}

fn parse_usize(key: &str, value: &str) -> io::Result<usize> {
    value
        .parse::<usize>()
        .map_err(|_| bad(format!("spec key {key}: bad integer {value:?}")))
}

fn parse_bool(key: &str, value: &str) -> io::Result<bool> {
    match value {
        "true" => Ok(true),
        "false" => Ok(false),
        _ => Err(bad(format!("spec key {key}: bad bool {value:?}"))),
    }
}

fn parse_f32(key: &str, value: &str) -> io::Result<f32> {
    let v = value
        .parse::<f32>()
        .map_err(|_| bad(format!("spec key {key}: bad float {value:?}")))?;
    if !v.is_finite() {
        return Err(bad(format!("spec key {key}: non-finite value")));
    }
    Ok(v)
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> ModelSpec {
        ModelSpec {
            meta: DatasetMeta {
                sc_vocab: 24,
                tc_vocab: 3,
                brand_vocab: 30,
                shop_vocab: 12,
                user_segment_vocab: 4,
                price_bucket_vocab: 5,
                query_vocab: 50,
                n_numeric: 8,
            },
            config: MoeConfig {
                n_experts: 6,
                top_k: 2,
                tower: TowerConfig {
                    hidden: vec![12, 6],
                },
                adversarial: true,
                hsc: true,
                seed: 999,
                ..MoeConfig::default()
            },
            serve_quantized: true,
        }
    }

    #[test]
    fn spec_round_trips_through_text() {
        let spec = sample_spec();
        let parsed = ModelSpec::from_text(&spec.to_text()).expect("parse");
        assert_eq!(parsed.meta, spec.meta);
        assert_eq!(parsed.config.n_experts, spec.config.n_experts);
        assert_eq!(parsed.config.top_k, spec.config.top_k);
        assert_eq!(parsed.config.tower.hidden, spec.config.tower.hidden);
        assert_eq!(parsed.config.gate_input, spec.config.gate_input);
        assert_eq!(parsed.config.adversarial, spec.config.adversarial);
        assert_eq!(parsed.config.hsc, spec.config.hsc);
        assert_eq!(parsed.config.noisy_gating, spec.config.noisy_gating);
        assert_eq!(parsed.config.seed, spec.config.seed);
        assert_eq!(parsed.serve_quantized, spec.serve_quantized);
    }

    #[test]
    fn spec_without_quantized_key_defaults_to_f32() {
        let text = sample_spec()
            .to_text()
            .lines()
            .filter(|l| !l.starts_with("serve_quantized"))
            .collect::<Vec<_>>()
            .join("\n");
        let parsed = ModelSpec::from_text(&text).expect("parse");
        assert!(!parsed.serve_quantized);
    }

    #[test]
    fn spec_rejects_missing_required_keys() {
        assert!(ModelSpec::from_text("n_experts=4\n").is_err());
    }

    #[test]
    fn spec_rejects_malformed_lines() {
        let mut text = sample_spec().to_text();
        text.push_str("not a key value line\n");
        assert!(ModelSpec::from_text(&text).is_err());
    }

    #[test]
    fn spec_ignores_unknown_keys() {
        let mut text = sample_spec().to_text();
        text.push_str("future_knob=42\n");
        assert!(ModelSpec::from_text(&text).is_ok());
    }
}
