//! A minimal synchronous client for the amoe-serve protocol.

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{self, FeatureRow, Request, Response, StatsSnapshot, WindowedStats};

/// What a serve call can fail with.
#[derive(Debug)]
pub enum ServeError {
    /// Transport failure.
    Io(io::Error),
    /// The server shed the request under load; retry later or
    /// elsewhere.
    Overloaded,
    /// The server answered with an error message (validation, bad
    /// checkpoint, shutdown in progress, ...).
    Server(String),
    /// The peer violated the wire protocol.
    Protocol(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Overloaded => write!(f, "server overloaded"),
            ServeError::Server(m) => write!(f, "server error: {m}"),
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// One connection to an amoe-serve server. Requests are synchronous:
/// each call writes one frame and blocks for the reply. Use one client
/// per thread for concurrency.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    version: u32,
}

impl Client {
    /// Connects and negotiates the protocol version: the client offers
    /// its newest, the server answers with `min(client, server)`, so
    /// either side may lag the other.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        protocol::write_hello(&mut stream, protocol::VERSION)?;
        let answered =
            protocol::read_hello(&mut stream).map_err(|e| ServeError::Protocol(e.to_string()))?;
        let version =
            protocol::negotiate(answered).map_err(|e| ServeError::Protocol(e.to_string()))?;
        Ok(Client {
            stream,
            next_id: 1,
            version,
        })
    }

    /// The protocol version agreed at connect time.
    #[must_use]
    pub fn negotiated_version(&self) -> u32 {
        self.version
    }

    fn round_trip(&mut self, request: &Request) -> Result<Response, ServeError> {
        protocol::write_frame(&mut self.stream, &request.encode())?;
        let payload = protocol::read_frame(&mut self.stream)?;
        Response::decode(&payload).map_err(|e| ServeError::Protocol(e.to_string()))
    }

    /// Scores a batch of feature rows; returns one score per row, in
    /// row order.
    pub fn score(&mut self, rows: &[FeatureRow]) -> Result<Vec<f32>, ServeError> {
        self.score_inner(rows, 0)
    }

    /// Like [`Client::score`], but asks the server to trace this
    /// request under `trace_id` (non-zero; bypasses trace sampling).
    /// Requires a v2 connection — a v1 server cannot carry the id.
    pub fn score_traced(
        &mut self,
        rows: &[FeatureRow],
        trace_id: u64,
    ) -> Result<Vec<f32>, ServeError> {
        if trace_id == 0 {
            return Err(ServeError::Protocol("trace_id must be non-zero".into()));
        }
        if self.version < 2 {
            return Err(ServeError::Protocol(
                "server negotiated protocol v1: trace ids unsupported".into(),
            ));
        }
        self.score_inner(rows, trace_id)
    }

    fn score_inner(&mut self, rows: &[FeatureRow], trace_id: u64) -> Result<Vec<f32>, ServeError> {
        let request_id = self.next_id;
        self.next_id += 1;
        let resp = self.round_trip(&Request::Score {
            request_id,
            trace_id,
            rows: rows.to_vec(),
        })?;
        match resp {
            Response::Scores {
                request_id: echoed,
                scores,
            } => {
                if echoed != request_id {
                    return Err(ServeError::Protocol(format!(
                        "response id {echoed} for request {request_id}"
                    )));
                }
                if scores.len() != rows.len() {
                    return Err(ServeError::Protocol(format!(
                        "{} scores for {} rows",
                        scores.len(),
                        rows.len()
                    )));
                }
                Ok(scores)
            }
            Response::Overloaded => Err(ServeError::Overloaded),
            Response::Error { message } => Err(ServeError::Server(message)),
            other => Err(ServeError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Asks the server to hot-swap its weights from a checkpoint path
    /// on the *server's* filesystem.
    pub fn reload(&mut self, path: &str) -> Result<(), ServeError> {
        match self.round_trip(&Request::Reload { path: path.into() })? {
            Response::Ok => Ok(()),
            Response::Error { message } => Err(ServeError::Server(message)),
            other => Err(ServeError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Initiates graceful shutdown: the server drains its queue,
    /// answers every admitted request, and exits.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            Response::Error { message } => Err(ServeError::Server(message)),
            other => Err(ServeError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Reads the server's counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ServeError> {
        self.stats_full().map(|(snapshot, _)| snapshot)
    }

    /// Reads the server's counters plus, on v2 connections, the
    /// sliding-window stage quantiles (`None` from a v1 server).
    pub fn stats_full(&mut self) -> Result<(StatsSnapshot, Option<WindowedStats>), ServeError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats { snapshot, window } => Ok((snapshot, window.map(|w| *w))),
            Response::Error { message } => Err(ServeError::Server(message)),
            other => Err(ServeError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Fetches the server's trace ring as Chrome trace-event JSON
    /// (empty document when tracing is off). Requires a v2 connection.
    pub fn trace_dump(&mut self) -> Result<String, ServeError> {
        if self.version < 2 {
            return Err(ServeError::Protocol(
                "server negotiated protocol v1: TRACE_DUMP unsupported".into(),
            ));
        }
        match self.round_trip(&Request::TraceDump)? {
            Response::TraceDump { json } => Ok(json),
            Response::Error { message } => Err(ServeError::Server(message)),
            other => Err(ServeError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }
}
