//! A synchronous client for the amoe-serve protocol, with a pipelined
//! `submit`/`poll` API on v3 connections.
//!
//! The classic calls ([`Client::score`], [`Client::reload`], ...) stay
//! strictly request/response. On a v3 connection the client may also
//! keep several scores in flight at once: [`Client::submit`] writes a
//! `SCORE` without waiting, [`Client::poll`] / [`Client::wait`] read
//! completions in whatever order the server's batcher shards finish
//! them, matched back to their request by correlation id. Replies for
//! ids that were never submitted (or already answered) are protocol
//! errors — the client never silently trusts reply ordering.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    self, FeatureRow, Request, Response, ShardStats, StatsSnapshot, WindowedStats,
};

/// What a serve call can fail with.
#[derive(Debug)]
pub enum ServeError {
    /// Transport failure.
    Io(io::Error),
    /// The server shed the request under load; retry later or
    /// elsewhere.
    Overloaded,
    /// The server answered with an error message (validation, bad
    /// checkpoint, shutdown in progress, ...).
    Server(String),
    /// The peer violated the wire protocol.
    Protocol(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Overloaded => write!(f, "server overloaded"),
            ServeError::Server(m) => write!(f, "server error: {m}"),
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// One finished pipelined request: which request, and how it ended.
#[derive(Debug)]
pub struct Completion {
    /// The id [`Client::submit`] returned for this request.
    pub request_id: u64,
    /// One score per submitted row in row order, or the request's own
    /// failure ([`ServeError::Overloaded`], a validation error, ...).
    pub result: Result<Vec<f32>, ServeError>,
}

/// One connection to an amoe-serve server. Use one client per thread
/// for concurrency.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    version: u32,
    /// Submitted but not yet completed request ids → expected row
    /// count.
    outstanding: HashMap<u64, usize>,
    /// Completions read off the wire while looking for something else
    /// (admin replies, a different `wait` target), in arrival order.
    completed: VecDeque<Completion>,
}

impl Client {
    /// Connects and negotiates the protocol version: the client offers
    /// its newest, the server answers with `min(client, server)`, so
    /// either side may lag the other.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        protocol::write_hello(&mut stream, protocol::VERSION)?;
        let answered =
            protocol::read_hello(&mut stream).map_err(|e| ServeError::Protocol(e.to_string()))?;
        let version =
            protocol::negotiate(answered).map_err(|e| ServeError::Protocol(e.to_string()))?;
        Ok(Client {
            stream,
            next_id: 1,
            version,
            outstanding: HashMap::new(),
            completed: VecDeque::new(),
        })
    }

    /// The protocol version agreed at connect time.
    #[must_use]
    pub fn negotiated_version(&self) -> u32 {
        self.version
    }

    /// Requests submitted or completed but not yet handed to the
    /// caller.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.outstanding.len() + self.completed.len()
    }

    fn read_response(&mut self) -> Result<Response, ServeError> {
        let payload = protocol::read_frame(&mut self.stream)?;
        Response::decode(&payload).map_err(|e| ServeError::Protocol(e.to_string()))
    }

    /// Writes an admin request and blocks for its reply. On a
    /// pipelined connection, score completions may arrive first; they
    /// are stashed for a later [`Client::poll`].
    fn round_trip(&mut self, request: &Request) -> Result<Response, ServeError> {
        protocol::write_frame(&mut self.stream, &request.encode())?;
        loop {
            let resp = self.read_response()?;
            if self.is_inflight_completion(&resp) {
                let done = self.take_completion(resp)?;
                self.completed.push_back(done);
                continue;
            }
            return Ok(resp);
        }
    }

    /// Is this frame the completion of a request we have in flight?
    fn is_inflight_completion(&self, resp: &Response) -> bool {
        match resp {
            Response::Scores { request_id, .. } | Response::ScoreError { request_id, .. } => {
                self.outstanding.contains_key(request_id)
            }
            _ => false,
        }
    }

    /// Resolves a score completion frame against the outstanding set.
    /// A completion for an id we never submitted (or already resolved)
    /// means the server lost track of the conversation — that is a
    /// connection-level protocol error, not a per-request failure.
    fn take_completion(&mut self, resp: Response) -> Result<Completion, ServeError> {
        match resp {
            Response::Scores { request_id, scores } => {
                let Some(expected_rows) = self.outstanding.remove(&request_id) else {
                    return Err(ServeError::Protocol(format!(
                        "scores for unknown request id {request_id}"
                    )));
                };
                let result = if scores.len() == expected_rows {
                    Ok(scores)
                } else {
                    Err(ServeError::Protocol(format!(
                        "{} scores for {} rows",
                        scores.len(),
                        expected_rows
                    )))
                };
                Ok(Completion { request_id, result })
            }
            Response::ScoreError {
                request_id,
                overloaded,
                message,
            } => {
                if self.outstanding.remove(&request_id).is_none() {
                    return Err(ServeError::Protocol(format!(
                        "score error for unknown request id {request_id}"
                    )));
                }
                let result = if overloaded {
                    Err(ServeError::Overloaded)
                } else {
                    Err(ServeError::Server(message))
                };
                Ok(Completion { request_id, result })
            }
            other => Err(ServeError::Protocol(format!(
                "unexpected response {other:?} while awaiting scores"
            ))),
        }
    }

    /// Submits a score request without waiting for its reply; returns
    /// the correlation id to pass to [`Client::wait`] (or match
    /// against [`Client::poll`] completions). Requires a v3
    /// connection — older servers answer strictly in order.
    pub fn submit(&mut self, rows: &[FeatureRow]) -> Result<u64, ServeError> {
        self.submit_inner(rows, 0)
    }

    /// Like [`Client::submit`], but asks the server to trace this
    /// request under `trace_id` (non-zero; bypasses trace sampling).
    pub fn submit_traced(&mut self, rows: &[FeatureRow], trace_id: u64) -> Result<u64, ServeError> {
        if trace_id == 0 {
            return Err(ServeError::Protocol("trace_id must be non-zero".into()));
        }
        self.submit_inner(rows, trace_id)
    }

    fn submit_inner(&mut self, rows: &[FeatureRow], trace_id: u64) -> Result<u64, ServeError> {
        if self.version < 3 {
            return Err(ServeError::Protocol(format!(
                "server negotiated protocol v{}: pipelined submit needs v3",
                self.version
            )));
        }
        let request_id = self.next_id;
        self.next_id += 1;
        let request = Request::Score {
            request_id,
            trace_id,
            rows: rows.to_vec(),
        };
        protocol::write_frame(&mut self.stream, &request.encode())?;
        self.outstanding.insert(request_id, rows.len());
        Ok(request_id)
    }

    /// Returns the next completion, in whichever order the server
    /// finished them: a previously stashed one if available, otherwise
    /// blocks on the wire. Errors with [`ServeError::Protocol`] when
    /// nothing is in flight.
    pub fn poll(&mut self) -> Result<Completion, ServeError> {
        if let Some(done) = self.completed.pop_front() {
            return Ok(done);
        }
        if self.outstanding.is_empty() {
            return Err(ServeError::Protocol(
                "poll with no requests in flight".into(),
            ));
        }
        let resp = self.read_response()?;
        self.take_completion(resp)
    }

    /// Blocks until `request_id` completes, stashing any other
    /// completions that arrive first for later [`Client::poll`] calls.
    pub fn wait(&mut self, request_id: u64) -> Result<Vec<f32>, ServeError> {
        if let Some(at) = self
            .completed
            .iter()
            .position(|c| c.request_id == request_id)
        {
            return self
                .completed
                .remove(at)
                .expect("position is in range")
                .result;
        }
        if !self.outstanding.contains_key(&request_id) {
            return Err(ServeError::Protocol(format!(
                "request {request_id} is not in flight"
            )));
        }
        loop {
            let resp = self.read_response()?;
            let done = self.take_completion(resp)?;
            if done.request_id == request_id {
                return done.result;
            }
            self.completed.push_back(done);
        }
    }

    /// Scores a batch of feature rows; returns one score per row, in
    /// row order.
    pub fn score(&mut self, rows: &[FeatureRow]) -> Result<Vec<f32>, ServeError> {
        self.score_inner(rows, 0)
    }

    /// Like [`Client::score`], but asks the server to trace this
    /// request under `trace_id` (non-zero; bypasses trace sampling).
    /// Requires a v2 connection — a v1 server cannot carry the id.
    pub fn score_traced(
        &mut self,
        rows: &[FeatureRow],
        trace_id: u64,
    ) -> Result<Vec<f32>, ServeError> {
        if trace_id == 0 {
            return Err(ServeError::Protocol("trace_id must be non-zero".into()));
        }
        if self.version < 2 {
            return Err(ServeError::Protocol(
                "server negotiated protocol v1: trace ids unsupported".into(),
            ));
        }
        self.score_inner(rows, trace_id)
    }

    fn score_inner(&mut self, rows: &[FeatureRow], trace_id: u64) -> Result<Vec<f32>, ServeError> {
        if self.version >= 3 {
            let request_id = self.submit_inner(rows, trace_id)?;
            return self.wait(request_id);
        }
        // v≤2: strict request/response — the reply is for this request
        // by construction, but the echo is still verified.
        let request_id = self.next_id;
        self.next_id += 1;
        let resp = self.round_trip(&Request::Score {
            request_id,
            trace_id,
            rows: rows.to_vec(),
        })?;
        match resp {
            Response::Scores {
                request_id: echoed,
                scores,
            } => {
                if echoed != request_id {
                    return Err(ServeError::Protocol(format!(
                        "response id {echoed} for request {request_id}"
                    )));
                }
                if scores.len() != rows.len() {
                    return Err(ServeError::Protocol(format!(
                        "{} scores for {} rows",
                        scores.len(),
                        rows.len()
                    )));
                }
                Ok(scores)
            }
            Response::Overloaded => Err(ServeError::Overloaded),
            Response::Error { message } => Err(ServeError::Server(message)),
            other => Err(ServeError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Asks the server to hot-swap its weights from a checkpoint path
    /// on the *server's* filesystem.
    pub fn reload(&mut self, path: &str) -> Result<(), ServeError> {
        match self.round_trip(&Request::Reload { path: path.into() })? {
            Response::Ok => Ok(()),
            Response::Error { message } => Err(ServeError::Server(message)),
            other => Err(ServeError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Initiates graceful shutdown: the server drains every shard's
    /// queue, answers every admitted request, and exits.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            Response::Error { message } => Err(ServeError::Server(message)),
            other => Err(ServeError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Reads the server's counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ServeError> {
        self.stats_full().map(|(snapshot, _)| snapshot)
    }

    /// Reads the server's counters plus, on v2+ connections, the
    /// sliding-window stage quantiles (`None` from a v1 server).
    pub fn stats_full(&mut self) -> Result<(StatsSnapshot, Option<WindowedStats>), ServeError> {
        self.stats_report()
            .map(|(snapshot, window, _)| (snapshot, window))
    }

    /// Reads counters, window quantiles and, on v3 connections, the
    /// per-shard batcher counters (`None` from older servers).
    #[allow(clippy::type_complexity)]
    pub fn stats_report(
        &mut self,
    ) -> Result<
        (
            StatsSnapshot,
            Option<WindowedStats>,
            Option<Vec<ShardStats>>,
        ),
        ServeError,
    > {
        match self.round_trip(&Request::Stats)? {
            Response::Stats {
                snapshot,
                window,
                shards,
            } => Ok((snapshot, window.map(|w| *w), shards)),
            Response::Error { message } => Err(ServeError::Server(message)),
            other => Err(ServeError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Fetches the server's trace ring as Chrome trace-event JSON
    /// (empty document when tracing is off). Requires a v2 connection.
    pub fn trace_dump(&mut self) -> Result<String, ServeError> {
        if self.version < 2 {
            return Err(ServeError::Protocol(
                "server negotiated protocol v1: TRACE_DUMP unsupported".into(),
            ));
        }
        match self.round_trip(&Request::TraceDump)? {
            Response::TraceDump { json } => Ok(json),
            Response::Error { message } => Err(ServeError::Server(message)),
            other => Err(ServeError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{SocketAddr, TcpListener};
    use std::thread::JoinHandle;

    fn row() -> FeatureRow {
        FeatureRow {
            sc: 0,
            tc: 0,
            brand: 0,
            shop: 0,
            user_segment: 0,
            price_bucket: 0,
            query: 0,
            numeric: vec![0.5],
        }
    }

    /// A hand-rolled one-connection server that answers the hello with
    /// `min(negotiated, cap)` and then hands the connection to `f` —
    /// for scripting deliberately broken reply sequences.
    fn spawn_fake(
        cap: u32,
        f: impl FnOnce(TcpStream) + Send + 'static,
    ) -> (SocketAddr, JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("local addr");
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let offered = protocol::read_hello(&mut stream).expect("hello");
            let version = protocol::negotiate(offered).expect("negotiate").min(cap);
            protocol::write_hello(&mut stream, version).expect("hello reply");
            f(stream);
        });
        (addr, handle)
    }

    fn read_score_id(stream: &mut TcpStream) -> u64 {
        let payload = protocol::read_frame(stream).expect("request frame");
        match Request::decode(&payload).expect("decode request") {
            Request::Score { request_id, .. } => request_id,
            other => panic!("expected a score request, got {other:?}"),
        }
    }

    fn write_scores(stream: &mut TcpStream, request_id: u64, scores: Vec<f32>) {
        let resp = Response::Scores { request_id, scores };
        protocol::write_frame(stream, &resp.encode()).expect("write scores");
    }

    #[test]
    fn reply_with_wrong_request_id_is_a_protocol_error() {
        let (addr, server) = spawn_fake(3, |mut stream| {
            let _ = read_score_id(&mut stream);
            // Reply to an id the client never submitted.
            write_scores(&mut stream, 999, vec![0.5]);
        });
        let mut client = Client::connect(addr).expect("connect");
        let err = client.score(&[row()]).expect_err("mismatched id must fail");
        assert!(
            matches!(&err, ServeError::Protocol(m) if m.contains("unknown request id 999")),
            "unexpected error: {err}"
        );
        server.join().unwrap();
    }

    #[test]
    fn duplicate_score_reply_is_a_protocol_error() {
        let (addr, server) = spawn_fake(3, |mut stream| {
            let first = read_score_id(&mut stream);
            write_scores(&mut stream, first, vec![0.25]);
            let _second = read_score_id(&mut stream);
            // Answer the second request with the first one's id again.
            write_scores(&mut stream, first, vec![0.25]);
        });
        let mut client = Client::connect(addr).expect("connect");
        let id = client.submit(&[row()]).expect("submit");
        assert_eq!(client.wait(id).expect("first reply is fine"), vec![0.25]);
        let _second = client.submit(&[row()]).expect("submit again");
        let err = client.poll().expect_err("duplicate reply must fail");
        assert!(
            matches!(&err, ServeError::Protocol(m) if m.contains("unknown request id")),
            "unexpected error: {err}"
        );
        server.join().unwrap();
    }

    #[test]
    fn submit_requires_a_v3_server() {
        let (addr, server) = spawn_fake(2, |_stream| {});
        let mut client = Client::connect(addr).expect("connect");
        assert_eq!(client.negotiated_version(), 2);
        let err = client.submit(&[row()]).expect_err("v2 cannot pipeline");
        assert!(
            matches!(&err, ServeError::Protocol(m) if m.contains("needs v3")),
            "unexpected error: {err}"
        );
        assert_eq!(client.in_flight(), 0);
        server.join().unwrap();
    }
}
