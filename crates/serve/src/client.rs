//! A minimal synchronous client for the amoe-serve protocol.

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{self, FeatureRow, Request, Response, StatsSnapshot};

/// What a serve call can fail with.
#[derive(Debug)]
pub enum ServeError {
    /// Transport failure.
    Io(io::Error),
    /// The server shed the request under load; retry later or
    /// elsewhere.
    Overloaded,
    /// The server answered with an error message (validation, bad
    /// checkpoint, shutdown in progress, ...).
    Server(String),
    /// The peer violated the wire protocol.
    Protocol(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Overloaded => write!(f, "server overloaded"),
            ServeError::Server(m) => write!(f, "server error: {m}"),
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// One connection to an amoe-serve server. Requests are synchronous:
/// each call writes one frame and blocks for the reply. Use one client
/// per thread for concurrency.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects and performs the protocol handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        protocol::write_handshake(&mut stream)?;
        protocol::read_handshake(&mut stream).map_err(|e| ServeError::Protocol(e.to_string()))?;
        Ok(Client { stream, next_id: 1 })
    }

    fn round_trip(&mut self, request: &Request) -> Result<Response, ServeError> {
        protocol::write_frame(&mut self.stream, &request.encode())?;
        let payload = protocol::read_frame(&mut self.stream)?;
        Response::decode(&payload).map_err(|e| ServeError::Protocol(e.to_string()))
    }

    /// Scores a batch of feature rows; returns one score per row, in
    /// row order.
    pub fn score(&mut self, rows: &[FeatureRow]) -> Result<Vec<f32>, ServeError> {
        let request_id = self.next_id;
        self.next_id += 1;
        let resp = self.round_trip(&Request::Score {
            request_id,
            rows: rows.to_vec(),
        })?;
        match resp {
            Response::Scores {
                request_id: echoed,
                scores,
            } => {
                if echoed != request_id {
                    return Err(ServeError::Protocol(format!(
                        "response id {echoed} for request {request_id}"
                    )));
                }
                if scores.len() != rows.len() {
                    return Err(ServeError::Protocol(format!(
                        "{} scores for {} rows",
                        scores.len(),
                        rows.len()
                    )));
                }
                Ok(scores)
            }
            Response::Overloaded => Err(ServeError::Overloaded),
            Response::Error { message } => Err(ServeError::Server(message)),
            other => Err(ServeError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Asks the server to hot-swap its weights from a checkpoint path
    /// on the *server's* filesystem.
    pub fn reload(&mut self, path: &str) -> Result<(), ServeError> {
        match self.round_trip(&Request::Reload { path: path.into() })? {
            Response::Ok => Ok(()),
            Response::Error { message } => Err(ServeError::Server(message)),
            other => Err(ServeError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Initiates graceful shutdown: the server drains its queue,
    /// answers every admitted request, and exits.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        match self.round_trip(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            Response::Error { message } => Err(ServeError::Server(message)),
            other => Err(ServeError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }

    /// Reads the server's counters.
    pub fn stats(&mut self) -> Result<StatsSnapshot, ServeError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            Response::Error { message } => Err(ServeError::Server(message)),
            other => Err(ServeError::Protocol(format!(
                "unexpected response {other:?}"
            ))),
        }
    }
}
