//! Standalone inference server.
//!
//! ```text
//! amoe-serve demo-export --out DIR [--seed N] [--steps N]
//!     Train a small model on the synthetic dataset and write
//!     DIR/model.amoe (weights) + DIR/model.spec (architecture).
//!
//! amoe-serve serve --ckpt FILE --spec FILE [--addr HOST:PORT]
//!                  [--obs-addr HOST:PORT] [--max-batch-rows N]
//!                  [--max-wait-us N] [--queue-cap N] [--shards N]
//!                  [--block-ms N] [--quantized]
//!     Serve the checkpoint over TCP. Prints the bound address on
//!     stdout, then blocks until a SHUTDOWN request. `--shards` runs
//!     N batcher shards, each with its own `--queue-cap`-deep
//!     admission queue (scores are bit-identical at any shard count).
//!     `--quantized` (or `serve_quantized=true` in the spec) serves
//!     int8 expert weights; see DESIGN.md for the error contract.
//!     `--obs-addr` starts the HTTP observability listener (GET
//!     /metrics /healthz /readyz /vars /trace) on a second port,
//!     printed as an `obs HOST:PORT` line after the protocol address.
//!
//! amoe-serve stats --addr HOST:PORT [--watch] [--interval-ms N]
//!     Print the server's counters, sliding-window stage quantiles
//!     (p50/p95/p99 over the server's stats window) and per-shard
//!     batcher counters. `--watch` refreshes every `--interval-ms`
//!     (default 1000) until interrupted.
//!
//! amoe-serve trace-dump --addr HOST:PORT [--out FILE]
//!     Fetch the server's trace ring as Chrome trace-event JSON
//!     (load in ui.perfetto.dev). Writes FILE or stdout.
//!
//! amoe-serve shutdown --addr HOST:PORT
//!     Ask the server to drain gracefully: every shard queue closes,
//!     every admitted request is answered, then the process exits.
//!
//! amoe-serve scrape --obs-addr HOST:PORT [--path /metrics] [--lint]
//!     Fetch one observability endpoint with the in-repo HTTP client
//!     and print the body. `--lint` additionally runs the Prometheus
//!     exposition linter on the response (exit 1 on violations) —
//!     the CI smoke stage's scrape-correctness gate.
//! ```

use std::process::ExitCode;
use std::time::Duration;

use amoe_core::ranker::OptimConfig;
use amoe_core::{MoeConfig, MoeModel, Ranker, TowerConfig};
use amoe_dataset::{generate, Batch, GeneratorConfig};
use amoe_nn::ParamSet;
use amoe_serve::{
    Client, ModelSpec, OverloadPolicy, QuantileSummary, ServeConfig, Server, ShardStats,
    StatsSnapshot, WindowedStats,
};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("demo-export") => demo_export(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("trace-dump") => trace_dump(&args[1..]),
        Some("shutdown") => shutdown(&args[1..]),
        Some("scrape") => scrape(&args[1..]),
        _ => {
            eprintln!(
                "usage: amoe-serve <demo-export|serve|stats|trace-dump|shutdown|scrape> [options]"
            );
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("amoe-serve: {message}");
            ExitCode::FAILURE
        }
    }
}

/// `--key value` option lookup; repeated keys take the last value.
fn opt(args: &[String], key: &str) -> Result<Option<String>, String> {
    let mut found = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == key {
            match it.next() {
                Some(v) => found = Some(v.clone()),
                None => return Err(format!("{key} needs a value")),
            }
        }
    }
    Ok(found)
}

fn opt_parse<T: std::str::FromStr>(args: &[String], key: &str) -> Result<Option<T>, String> {
    match opt(args, key)? {
        Some(v) => v
            .parse::<T>()
            .map(Some)
            .map_err(|_| format!("{key}: cannot parse {v:?}")),
        None => Ok(None),
    }
}

fn demo_export(args: &[String]) -> Result<(), String> {
    let out = opt(args, "--out")?.ok_or("demo-export: --out DIR is required")?;
    let seed: u64 = opt_parse(args, "--seed")?.unwrap_or(41);
    let steps: usize = opt_parse(args, "--steps")?.unwrap_or(20);

    let dataset = generate(&GeneratorConfig::tiny(seed));
    let config = MoeConfig {
        n_experts: 6,
        top_k: 2,
        tower: TowerConfig {
            hidden: vec![12, 6],
        },
        seed,
        ..MoeConfig::default()
    };
    let mut model = MoeModel::new(&dataset.meta, config.clone(), OptimConfig::default());
    let n = dataset.train.len().min(256);
    let batch = Batch::from_split(&dataset.train, &(0..n).collect::<Vec<_>>());
    for _ in 0..steps {
        model.train_step(&batch);
    }

    std::fs::create_dir_all(&out).map_err(|e| format!("create {out}: {e}"))?;
    let ckpt = format!("{out}/model.amoe");
    let spec_path = format!("{out}/model.spec");
    model
        .params()
        .save(&ckpt)
        .map_err(|e| format!("save {ckpt}: {e}"))?;
    ModelSpec {
        meta: dataset.meta.clone(),
        config,
        serve_quantized: false,
    }
    .save(&spec_path)
    .map_err(|e| format!("save {spec_path}: {e}"))?;
    println!("{ckpt}");
    println!("{spec_path}");
    Ok(())
}

fn serve(args: &[String]) -> Result<(), String> {
    let ckpt = opt(args, "--ckpt")?.ok_or("serve: --ckpt FILE is required")?;
    let spec_path = opt(args, "--spec")?.ok_or("serve: --spec FILE is required")?;
    let addr = opt(args, "--addr")?.unwrap_or_else(|| "127.0.0.1:0".into());

    let mut config = ServeConfig::default();
    if let Some(v) = opt_parse::<usize>(args, "--max-batch-rows")? {
        config.max_batch_rows = v;
    }
    if let Some(v) = opt_parse::<u64>(args, "--max-wait-us")? {
        config.max_wait = Duration::from_micros(v);
    }
    if let Some(v) = opt_parse::<usize>(args, "--queue-cap")? {
        config.queue_cap = v;
    }
    if let Some(v) = opt_parse::<usize>(args, "--shards")? {
        if v == 0 {
            return Err("serve: --shards must be positive".into());
        }
        config.shards = v;
    }
    if let Some(v) = opt_parse::<u64>(args, "--block-ms")? {
        config.overload = OverloadPolicy::Block(Duration::from_millis(v));
    }
    config.obs_addr = opt(args, "--obs-addr")?;

    let spec = ModelSpec::load(&spec_path).map_err(|e| format!("load {spec_path}: {e}"))?;
    // Either side may opt in: the operator's flag or the checkpoint's
    // deployment hint.
    config.quantized = args.iter().any(|a| a == "--quantized") || spec.serve_quantized;
    let params = ParamSet::load(&ckpt).map_err(|e| format!("load {ckpt}: {e}"))?;
    let model = MoeModel::from_params(
        &spec.meta,
        spec.config.clone(),
        OptimConfig::default(),
        &params,
    )
    .map_err(|e| format!("checkpoint does not match spec: {e}"))?;

    let server =
        Server::start(&addr, model, spec.meta, config).map_err(|e| format!("bind {addr}: {e}"))?;
    // The load generator (and humans) read the bound address from the
    // first stdout line; ephemeral ports make parallel runs safe. The
    // observability port, when enabled, follows on a second line.
    println!("{}", server.local_addr());
    if let Some(obs) = server.obs_addr() {
        println!("obs {obs}");
    }
    server.join();
    Ok(())
}

fn scrape(args: &[String]) -> Result<(), String> {
    let addr = opt(args, "--obs-addr")?.ok_or("scrape: --obs-addr HOST:PORT is required")?;
    let path = opt(args, "--path")?.unwrap_or_else(|| "/metrics".into());
    let lint = args.iter().any(|a| a == "--lint");
    let (status, body) = amoe_serve::http_get(&addr, &path, Duration::from_secs(10))
        .map_err(|e| format!("GET {addr}{path}: {e}"))?;
    if status != 200 {
        return Err(format!("GET {addr}{path}: HTTP {status}"));
    }
    print!("{body}");
    if lint {
        let samples = amoe_obs::expose::validate_exposition(&body)
            .map_err(|e| format!("exposition lint failed: {e}"))?;
        eprintln!("scrape: {samples} samples, lint clean");
    }
    Ok(())
}

fn stats(args: &[String]) -> Result<(), String> {
    let addr = opt(args, "--addr")?.ok_or("stats: --addr HOST:PORT is required")?;
    let watch = args.iter().any(|a| a == "--watch");
    let interval_ms: u64 = opt_parse(args, "--interval-ms")?.unwrap_or(1000);
    let mut client = Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    loop {
        let (snapshot, window, shards) = client
            .stats_report()
            .map_err(|e| format!("stats from {addr}: {e}"))?;
        print_stats(&snapshot, window.as_ref(), shards.as_deref());
        if !watch {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(interval_ms.max(50)));
        println!();
    }
}

fn print_stats(s: &StatsSnapshot, w: Option<&WindowedStats>, shards: Option<&[ShardStats]>) {
    println!(
        "requests={} rows={} ok={} overloaded={} errors={} batches={} reloads={} queue_depth={}",
        s.requests, s.rows, s.ok, s.overloaded, s.errors, s.batches, s.reloads, s.queue_depth
    );
    match w {
        None => println!("(v1 server: no windowed quantiles)"),
        Some(w) => {
            println!("window={}s", w.window_secs);
            let stages: [(&str, &QuantileSummary); 5] = [
                ("latency_us", &w.request_latency_us),
                ("queue_wait_us", &w.queue_wait_us),
                ("compute_us", &w.compute_us),
                ("reply_write_us", &w.reply_write_us),
                ("queue_depth", &w.queue_depth),
            ];
            for (name, q) in stages {
                println!(
                    "  {name:<16} n={:<8} p50={:<12.1} p95={:<12.1} p99={:.1}",
                    q.count, q.p50, q.p95, q.p99
                );
            }
        }
    }
    if let Some(shards) = shards {
        for (i, sh) in shards.iter().enumerate() {
            println!(
                "  shard{i:<11} batches={:<8} overloaded={:<8} queue_depth={:<6} depth_p99={:.1}",
                sh.batches, sh.overloaded, sh.queue_depth, sh.queue_depth_p99
            );
        }
    }
}

fn trace_dump(args: &[String]) -> Result<(), String> {
    let addr = opt(args, "--addr")?.ok_or("trace-dump: --addr HOST:PORT is required")?;
    let out = opt(args, "--out")?;
    let mut client = Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let json = client
        .trace_dump()
        .map_err(|e| format!("trace-dump: {e}"))?;
    match out {
        Some(path) => {
            std::fs::write(&path, &json).map_err(|e| format!("write {path}: {e}"))?;
            eprintln!("wrote {} bytes to {path}", json.len());
        }
        None => println!("{json}"),
    }
    Ok(())
}

fn shutdown(args: &[String]) -> Result<(), String> {
    let addr = opt(args, "--addr")?.ok_or("shutdown: --addr HOST:PORT is required")?;
    let mut client = Client::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    println!("server at {addr} draining");
    Ok(())
}
