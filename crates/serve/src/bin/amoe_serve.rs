//! Standalone inference server.
//!
//! ```text
//! amoe-serve demo-export --out DIR [--seed N] [--steps N]
//!     Train a small model on the synthetic dataset and write
//!     DIR/model.amoe (weights) + DIR/model.spec (architecture).
//!
//! amoe-serve serve --ckpt FILE --spec FILE [--addr HOST:PORT]
//!                  [--max-batch-rows N] [--max-wait-us N]
//!                  [--queue-cap N] [--block-ms N] [--quantized]
//!     Serve the checkpoint over TCP. Prints the bound address on
//!     stdout, then blocks until a SHUTDOWN request. `--quantized`
//!     (or `serve_quantized=true` in the spec) serves int8 expert
//!     weights; see DESIGN.md for the error contract.
//! ```

use std::process::ExitCode;
use std::time::Duration;

use amoe_core::ranker::OptimConfig;
use amoe_core::{MoeConfig, MoeModel, Ranker, TowerConfig};
use amoe_dataset::{generate, Batch, GeneratorConfig};
use amoe_nn::ParamSet;
use amoe_serve::{ModelSpec, OverloadPolicy, ServeConfig, Server};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("demo-export") => demo_export(&args[1..]),
        Some("serve") => serve(&args[1..]),
        _ => {
            eprintln!("usage: amoe-serve <demo-export|serve> [options]");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("amoe-serve: {message}");
            ExitCode::FAILURE
        }
    }
}

/// `--key value` option lookup; repeated keys take the last value.
fn opt(args: &[String], key: &str) -> Result<Option<String>, String> {
    let mut found = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == key {
            match it.next() {
                Some(v) => found = Some(v.clone()),
                None => return Err(format!("{key} needs a value")),
            }
        }
    }
    Ok(found)
}

fn opt_parse<T: std::str::FromStr>(args: &[String], key: &str) -> Result<Option<T>, String> {
    match opt(args, key)? {
        Some(v) => v
            .parse::<T>()
            .map(Some)
            .map_err(|_| format!("{key}: cannot parse {v:?}")),
        None => Ok(None),
    }
}

fn demo_export(args: &[String]) -> Result<(), String> {
    let out = opt(args, "--out")?.ok_or("demo-export: --out DIR is required")?;
    let seed: u64 = opt_parse(args, "--seed")?.unwrap_or(41);
    let steps: usize = opt_parse(args, "--steps")?.unwrap_or(20);

    let dataset = generate(&GeneratorConfig::tiny(seed));
    let config = MoeConfig {
        n_experts: 6,
        top_k: 2,
        tower: TowerConfig {
            hidden: vec![12, 6],
        },
        seed,
        ..MoeConfig::default()
    };
    let mut model = MoeModel::new(&dataset.meta, config.clone(), OptimConfig::default());
    let n = dataset.train.len().min(256);
    let batch = Batch::from_split(&dataset.train, &(0..n).collect::<Vec<_>>());
    for _ in 0..steps {
        model.train_step(&batch);
    }

    std::fs::create_dir_all(&out).map_err(|e| format!("create {out}: {e}"))?;
    let ckpt = format!("{out}/model.amoe");
    let spec_path = format!("{out}/model.spec");
    model
        .params()
        .save(&ckpt)
        .map_err(|e| format!("save {ckpt}: {e}"))?;
    ModelSpec {
        meta: dataset.meta.clone(),
        config,
        serve_quantized: false,
    }
    .save(&spec_path)
    .map_err(|e| format!("save {spec_path}: {e}"))?;
    println!("{ckpt}");
    println!("{spec_path}");
    Ok(())
}

fn serve(args: &[String]) -> Result<(), String> {
    let ckpt = opt(args, "--ckpt")?.ok_or("serve: --ckpt FILE is required")?;
    let spec_path = opt(args, "--spec")?.ok_or("serve: --spec FILE is required")?;
    let addr = opt(args, "--addr")?.unwrap_or_else(|| "127.0.0.1:0".into());

    let mut config = ServeConfig::default();
    if let Some(v) = opt_parse::<usize>(args, "--max-batch-rows")? {
        config.max_batch_rows = v;
    }
    if let Some(v) = opt_parse::<u64>(args, "--max-wait-us")? {
        config.max_wait = Duration::from_micros(v);
    }
    if let Some(v) = opt_parse::<usize>(args, "--queue-cap")? {
        config.queue_cap = v;
    }
    if let Some(v) = opt_parse::<u64>(args, "--block-ms")? {
        config.overload = OverloadPolicy::Block(Duration::from_millis(v));
    }

    let spec = ModelSpec::load(&spec_path).map_err(|e| format!("load {spec_path}: {e}"))?;
    // Either side may opt in: the operator's flag or the checkpoint's
    // deployment hint.
    config.quantized = args.iter().any(|a| a == "--quantized") || spec.serve_quantized;
    let params = ParamSet::load(&ckpt).map_err(|e| format!("load {ckpt}: {e}"))?;
    let model = MoeModel::from_params(
        &spec.meta,
        spec.config.clone(),
        OptimConfig::default(),
        &params,
    )
    .map_err(|e| format!("checkpoint does not match spec: {e}"))?;

    let server =
        Server::start(&addr, model, spec.meta, config).map_err(|e| format!("bind {addr}: {e}"))?;
    // The load generator (and humans) read the bound address from the
    // first stdout line; ephemeral ports make parallel runs safe.
    println!("{}", server.local_addr());
    server.join();
    Ok(())
}
