//! Bounded MPSC admission queue (`Mutex` + `Condvar`, std only).
//!
//! Producers are connection handler threads; the single consumer is
//! the batcher thread. The queue is the backpressure point of the
//! service: when it is full, [`RequestQueue::push`] either fails
//! immediately ([`OverloadPolicy::Reject`]) or blocks with a deadline
//! ([`OverloadPolicy::Block`]).
//!
//! Closing the queue ([`RequestQueue::close`]) starts the drain phase:
//! pushes fail with [`PushError::Closed`], but pops keep returning the
//! already-admitted items until the queue is empty — this is what lets
//! `SHUTDOWN` guarantee that no admitted request is dropped.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::config::OverloadPolicy;

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue was at capacity (and stayed there past the block
    /// deadline, if any). The caller should reply `OVERLOADED`.
    Full,
    /// The queue is closed (server shutting down).
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Callback observing the queue depth after every push/pop, invoked
/// **while the queue lock is held** so the observed depth can never be
/// stale (a read-then-set from outside the lock races concurrent
/// pops). Keep it cheap; it must not touch the queue.
type DepthObserver = Box<dyn Fn(usize) + Send + Sync>;

/// A bounded multi-producer single-consumer queue.
pub struct RequestQueue<T> {
    state: Mutex<State<T>>,
    /// Signals consumers when an item arrives or the queue closes.
    not_empty: Condvar,
    /// Signals producers when space frees up.
    not_full: Condvar,
    cap: usize,
    /// Installed once at construction time (before the queue is
    /// shared), hence no lock of its own.
    observer: Option<DepthObserver>,
}

impl<T> RequestQueue<T> {
    /// Creates a queue holding at most `cap` items.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "RequestQueue: capacity must be positive");
        RequestQueue {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(cap),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap,
            observer: None,
        }
    }

    /// Installs the depth observer (see [`DepthObserver`]). Takes
    /// `&mut self`: set it before the queue is shared.
    pub fn set_depth_observer(&mut self, f: impl Fn(usize) + Send + Sync + 'static) {
        self.observer = Some(Box::new(f));
    }

    /// Reports `depth` to the observer. Callers hold the state lock,
    /// which is what makes the published depth exact.
    fn observe(&self, depth: usize) {
        if let Some(obs) = &self.observer {
            obs(depth);
        }
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to enqueue an item under the given overload policy.
    pub fn push(&self, item: T, policy: OverloadPolicy) -> Result<(), PushError> {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return Err(PushError::Closed);
        }
        if st.items.len() >= self.cap {
            match policy {
                OverloadPolicy::Reject => return Err(PushError::Full),
                OverloadPolicy::Block(max_block) => {
                    let deadline = Instant::now() + max_block;
                    while st.items.len() >= self.cap && !st.closed {
                        // Saturating: the clock may pass `deadline`
                        // between iterations, and `deadline - now`
                        // would panic on the underflow.
                        let remaining = deadline.saturating_duration_since(Instant::now());
                        if remaining.is_zero() {
                            return Err(PushError::Full);
                        }
                        let (next, timeout) = self.not_full.wait_timeout(st, remaining).unwrap();
                        st = next;
                        if timeout.timed_out() && st.items.len() >= self.cap {
                            return Err(PushError::Full);
                        }
                    }
                    if st.closed {
                        return Err(PushError::Closed);
                    }
                }
            }
        }
        st.items.push_back(item);
        self.observe(st.items.len());
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// empty (drain complete), in which case `None` is returned.
    pub fn pop_wait(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(item) = st.items.pop_front() {
                self.observe(st.items.len());
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap();
        }
    }

    /// Like [`RequestQueue::pop_wait`] but gives up at `deadline`.
    /// `None` means either the deadline passed with the queue empty or
    /// the queue is closed and fully drained.
    pub fn pop_until(&self, deadline: Instant) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(item) = st.items.pop_front() {
                self.observe(st.items.len());
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            // Saturating for the same reason as in `push`: an elapsed
            // deadline must mean "give up now", never a panic.
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            let (next, _timeout) = self.not_empty.wait_timeout(st, remaining).unwrap();
            st = next;
        }
    }

    /// Closes the queue: future pushes fail, pops drain what remains.
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// True once [`RequestQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn reject_policy_fails_fast_when_full() {
        let q = RequestQueue::new(2);
        q.push(1, OverloadPolicy::Reject).unwrap();
        q.push(2, OverloadPolicy::Reject).unwrap();
        assert_eq!(q.push(3, OverloadPolicy::Reject), Err(PushError::Full));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn block_policy_times_out_when_nobody_pops() {
        let q = RequestQueue::new(1);
        q.push(1, OverloadPolicy::Reject).unwrap();
        let policy = OverloadPolicy::Block(Duration::from_millis(20));
        assert_eq!(q.push(2, policy), Err(PushError::Full));
    }

    #[test]
    fn block_policy_succeeds_when_space_frees_up() {
        let q = Arc::new(RequestQueue::new(1));
        q.push(1, OverloadPolicy::Reject).unwrap();
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                q.pop_wait()
            })
        };
        let policy = OverloadPolicy::Block(Duration::from_secs(5));
        q.push(2, policy).expect("push should succeed after pop");
        assert_eq!(consumer.join().unwrap(), Some(1));
        assert_eq!(q.pop_wait(), Some(2));
    }

    #[test]
    fn close_drains_remaining_items_then_returns_none() {
        let q = RequestQueue::new(4);
        q.push(1, OverloadPolicy::Reject).unwrap();
        q.push(2, OverloadPolicy::Reject).unwrap();
        q.close();
        assert_eq!(q.push(3, OverloadPolicy::Reject), Err(PushError::Closed));
        assert_eq!(q.pop_wait(), Some(1));
        assert_eq!(q.pop_wait(), Some(2));
        assert_eq!(q.pop_wait(), None);
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        let q = Arc::new(RequestQueue::<u32>::new(1));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop_wait())
        };
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn depth_observer_sees_every_transition_under_the_lock() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let depths = Arc::new(Mutex::new(Vec::new()));
        let last = Arc::new(AtomicUsize::new(usize::MAX));
        let mut q = RequestQueue::new(4);
        {
            let depths = Arc::clone(&depths);
            let last = Arc::clone(&last);
            q.set_depth_observer(move |d| {
                depths.lock().unwrap().push(d);
                last.store(d, Ordering::SeqCst);
            });
        }
        q.push(1, OverloadPolicy::Reject).unwrap();
        q.push(2, OverloadPolicy::Reject).unwrap();
        assert_eq!(q.pop_wait(), Some(1));
        q.push(3, OverloadPolicy::Reject).unwrap();
        assert_eq!(q.pop_until(Instant::now()), Some(2));
        assert_eq!(q.pop_wait(), Some(3));
        // One observation per transition, each the exact post-op depth.
        assert_eq!(*depths.lock().unwrap(), vec![1, 2, 1, 2, 1, 0]);
        // The final published depth matches reality — the property the
        // old read-then-set gauge could violate.
        assert_eq!(last.load(Ordering::SeqCst), q.len());
    }

    #[test]
    fn zero_block_deadline_rejects_full_queue_without_panicking() {
        // Regression: a zero (or already-elapsed) block budget used to
        // race `Instant::now()` against the deadline subtraction.
        let q = RequestQueue::new(1);
        q.push(1, OverloadPolicy::Reject).unwrap();
        assert_eq!(
            q.push(2, OverloadPolicy::Block(Duration::ZERO)),
            Err(PushError::Full)
        );
        assert_eq!(
            q.push(3, OverloadPolicy::Block(Duration::from_nanos(1))),
            Err(PushError::Full)
        );
    }

    #[test]
    fn elapsed_pop_deadline_returns_none_without_panicking() {
        let q = RequestQueue::<u32>::new(1);
        let now = Instant::now();
        // A deadline in the past and one exactly "now": both must be a
        // clean empty pop, not an Instant-arithmetic panic.
        let past = now.checked_sub(Duration::from_millis(50)).unwrap_or(now);
        assert_eq!(q.pop_until(past), None);
        assert_eq!(q.pop_until(Instant::now()), None);
        // Still functional afterwards.
        q.push(7, OverloadPolicy::Reject).unwrap();
        assert_eq!(q.pop_until(Instant::now()), Some(7));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let q = RequestQueue::<u32>::new(1);
        let t0 = Instant::now();
        let got = q.pop_until(t0 + Duration::from_millis(15));
        assert_eq!(got, None);
        assert!(t0.elapsed() >= Duration::from_millis(10));
    }
}
