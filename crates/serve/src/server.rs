//! The TCP server: accept loop, per-connection handlers (strict
//! request/response for v≤2 peers, pipelined with a per-connection
//! writer thread for v3), N batcher shards with per-shard admission
//! control, checkpoint hot-swap and graceful drain.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use amoe_core::ranker::OptimConfig;
use amoe_core::serving::ServingModel;
use amoe_core::{MoeConfig, MoeModel};
use amoe_dataset::{Batch, DatasetMeta};
use amoe_nn::ParamSet;
use amoe_obs::trace;
use amoe_obs::WindowedHistogram;
use amoe_tensor::Matrix;

use crate::batcher::{self, Pending, ScoreDone, WriterMsg};
use crate::config::ServeConfig;
use crate::protocol::{
    self, FeatureRow, QuantileSummary, Request, Response, ShardStats, StatsSnapshot, WindowedStats,
};
use crate::queue::{PushError, RequestQueue};

/// Interns `serve.queue_depth.shard{N}` gauge names: the registry
/// wants `&'static str` keys, and interning bounds the leak to one
/// string per distinct shard index ever used (not per server start).
fn shard_gauge_name(shard: usize) -> &'static str {
    static NAMES: std::sync::OnceLock<Mutex<Vec<&'static str>>> = std::sync::OnceLock::new();
    let names = NAMES.get_or_init(|| Mutex::new(Vec::new()));
    let mut v = names.lock().unwrap();
    while v.len() <= shard {
        let s: &'static str =
            Box::leak(format!("serve.queue_depth.shard{}", v.len()).into_boxed_str());
        v.push(s);
    }
    v[shard]
}

/// Maps a request id to its batcher shard: a Fibonacci multiplicative
/// hash of the id, reduced modulo the shard count. Deterministic and
/// stable across runs, so tests and load generators can precompute a
/// request's shard from the ids a [`crate::Client`] assigns
/// (sequential from 1 per connection).
#[must_use]
pub fn shard_of(request_id: u64, shards: usize) -> usize {
    debug_assert!(shards > 0, "shard_of: zero shards");
    if shards <= 1 {
        return 0;
    }
    // 2^64 / φ; the multiply diffuses sequential ids across the high
    // bits so consecutive requests spread over the shards.
    ((request_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % shards as u64) as usize
}

/// One batcher shard's sliding-window stage histograms. Traced
/// requests leave an [`amoe_obs::Exemplar`] in each window (the
/// max-value traced sample per slot), surfaced as OpenMetrics
/// exemplars on `/metrics` so a quantile spike links to its trace.
pub(crate) struct StageWindows {
    /// End-to-end request latency (admission → reply written), µs.
    pub request_latency_us: WindowedHistogram,
    /// Admission-queue wait per request, µs.
    pub queue_wait_us: WindowedHistogram,
    /// Model compute per batch, µs.
    pub compute_us: WindowedHistogram,
    /// Reply serialisation + socket write per request, µs.
    pub reply_write_us: WindowedHistogram,
    /// Queue depth observed at every push/pop of this shard's queue.
    pub queue_depth: WindowedHistogram,
}

impl StageWindows {
    fn new(window: Duration) -> Self {
        let mk = || WindowedHistogram::new(window, amoe_obs::window::DEFAULT_SLOTS);
        StageWindows {
            request_latency_us: mk(),
            queue_wait_us: mk(),
            compute_us: mk(),
            reply_write_us: mk(),
            queue_depth: mk(),
        }
    }
}

/// Sliding-window stage histograms behind the v2 `STATS` quantiles and
/// the `/metrics` per-shard quantile families. Always on (a handful of
/// histogram increments per request), independent of the `AMOE_OBS`
/// telemetry gate. Kept **per shard** (index = shard id) so `/metrics`
/// exposes `{shard="N"}` series; the cross-shard `STATS` readout is a
/// bucket-exact merge of the shard windows.
pub(crate) struct ServeWindows {
    pub shards: Vec<StageWindows>,
}

impl ServeWindows {
    fn new(window: Duration, shards: usize) -> Self {
        ServeWindows {
            shards: (0..shards).map(|_| StageWindows::new(window)).collect(),
        }
    }

    /// Merges one stage's histograms across every shard.
    fn merged_stage(
        &mut self,
        stage: impl Fn(&mut StageWindows) -> &mut WindowedHistogram,
    ) -> amoe_obs::registry::Histogram {
        let mut out = amoe_obs::registry::Histogram::new();
        for s in &mut self.shards {
            out.merge(&stage(s).merged());
        }
        out
    }
}

/// Monotonic service counters, updated lock-free by handler threads
/// and the batcher shards, plus the sliding-window stage histograms.
pub struct ServerStats {
    pub(crate) requests: AtomicU64,
    pub(crate) rows: AtomicU64,
    pub(crate) ok: AtomicU64,
    pub(crate) overloaded: AtomicU64,
    pub(crate) errors: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) reloads: AtomicU64,
    /// Per-shard slices of `batches` / `overloaded` (index = shard id).
    pub(crate) shard_batches: Vec<AtomicU64>,
    pub(crate) shard_overloaded: Vec<AtomicU64>,
    /// Allocator for trace batch ids (`fetch_add + 1`, so ids start at
    /// 1 and 0 stays "no batch"). Shared across shards, so batch ids
    /// are unique service-wide.
    batch_seq: AtomicU64,
    pub(crate) windows: Mutex<ServeWindows>,
}

impl ServerStats {
    fn new(window: Duration, shards: usize) -> Self {
        ServerStats {
            requests: AtomicU64::new(0),
            rows: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            shard_batches: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            shard_overloaded: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            batch_seq: AtomicU64::new(0),
            windows: Mutex::new(ServeWindows::new(window, shards)),
        }
    }

    pub(crate) fn note_batch(&self, shard: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.shard_batches[shard].fetch_add(1, Ordering::Relaxed);
    }

    fn note_overloaded(&self, shard: usize) {
        self.overloaded.fetch_add(1, Ordering::Relaxed);
        self.shard_overloaded[shard].fetch_add(1, Ordering::Relaxed);
    }

    /// Allocates the next trace batch id (≥ 1).
    pub(crate) fn next_batch_id(&self) -> u64 {
        self.batch_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    pub(crate) fn snapshot(&self, queue_depth: usize) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            rows: self.rows.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            overloaded: self.overloaded.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
            queue_depth: queue_depth as u64,
        }
    }

    /// Folds the sliding windows into the v2 `STATS` quantile block
    /// (bucket-exact merge across every shard's stage windows).
    pub(crate) fn window_stats(&self) -> WindowedStats {
        let mut w = self.windows.lock().unwrap();
        let window_secs = w.shards[0].request_latency_us.window().as_secs_f64();
        WindowedStats {
            window_secs,
            request_latency_us: QuantileSummary::from_histogram(
                &w.merged_stage(|s| &mut s.request_latency_us),
            ),
            queue_wait_us: QuantileSummary::from_histogram(
                &w.merged_stage(|s| &mut s.queue_wait_us),
            ),
            compute_us: QuantileSummary::from_histogram(&w.merged_stage(|s| &mut s.compute_us)),
            reply_write_us: QuantileSummary::from_histogram(
                &w.merged_stage(|s| &mut s.reply_write_us),
            ),
            queue_depth: QuantileSummary::from_histogram(&w.merged_stage(|s| &mut s.queue_depth)),
        }
    }

    /// Per-shard counters for the v3 `STATS` shard block.
    pub(crate) fn shard_stats(&self, queues: &[RequestQueue<Pending>]) -> Vec<ShardStats> {
        // Depths first: each queue's depth observer takes the windows
        // lock while holding the queue lock, so reading queue lengths
        // under the windows lock would invert that order.
        let depths: Vec<u64> = queues.iter().map(|q| q.len() as u64).collect();
        let mut w = self.windows.lock().unwrap();
        (0..queues.len())
            .map(|i| ShardStats {
                batches: self.shard_batches[i].load(Ordering::Relaxed),
                overloaded: self.shard_overloaded[i].load(Ordering::Relaxed),
                queue_depth: depths[i],
                queue_depth_p99: w.shards[i].queue_depth.merged().quantile(0.99),
            })
            .collect()
    }
}

/// State shared by the accept loop, handler threads and the batcher
/// shards.
pub(crate) struct Shared {
    /// The serving bundle (model + optional int8 expert snapshot,
    /// quantized once at load). Handlers swap the `Arc` on RELOAD; the
    /// batcher clones it per batch, so in-flight batches finish on
    /// the model they started with.
    pub model: Mutex<Arc<ServingModel>>,
    /// Schema the server validates incoming ids against.
    pub meta: DatasetMeta,
    /// Architecture used to rebuild models on RELOAD.
    pub model_config: MoeConfig,
    /// One bounded admission queue per batcher shard (index = shard
    /// id; requests hash to a shard via [`shard_of`]).
    pub queues: Vec<RequestQueue<Pending>>,
    /// Tuning knobs.
    pub config: ServeConfig,
    /// Set once SHUTDOWN is received — the **first** store of
    /// [`initiate_shutdown`], before the queues close, so `/readyz`
    /// flips to 503 at drain start while in-flight requests (and
    /// `/healthz`) keep being served.
    pub shutdown: AtomicBool,
    /// Server start time, behind `amoe_uptime_seconds` and `/vars`.
    pub started: Instant,
    /// Checkpoint generation currently live: 0 for the boot model,
    /// +1 on every successful RELOAD. Behind `amoe_model_generation`.
    pub model_generation: AtomicU64,
    /// Instant of the last successful model swap (start time until
    /// the first RELOAD). Behind `amoe_model_age_seconds` — the
    /// freshness signal the online train→reload loop is judged by.
    pub model_swapped: Mutex<Instant>,
    /// Service counters (`Arc` so each queue's depth observer can hold
    /// a reference without a cycle through `Shared`).
    pub stats: Arc<ServerStats>,
    /// Read-half handles of every accepted connection, so shutdown can
    /// unblock handler threads parked in `read_frame` on idle
    /// connections (their write halves stay open for in-flight
    /// replies).
    pub conns: Mutex<Vec<TcpStream>>,
}

impl Shared {
    /// Total queued requests across every shard.
    pub(crate) fn queue_depth_total(&self) -> usize {
        self.queues.iter().map(RequestQueue::len).sum()
    }
}

/// A running inference service.
///
/// Dropping the handle does **not** stop the server; send `SHUTDOWN`
/// (e.g. via [`crate::client::Client::shutdown`]) and then
/// [`Server::join`].
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    batcher_threads: Vec<JoinHandle<()>>,
    /// The HTTP observability listener, when `obs_addr` is configured.
    obs: Option<crate::http::ObsListener>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop and one batcher thread per configured shard. Every
    /// gate-input configuration is servable (the tape-free path
    /// mirrors the training encoder for each variant).
    ///
    /// # Errors
    /// Fails on bind or thread-spawn errors.
    pub fn start(
        addr: impl ToSocketAddrs,
        model: MoeModel,
        meta: DatasetMeta,
        config: ServeConfig,
    ) -> io::Result<Server> {
        config.validate();
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shards = config.shards;
        let stats = Arc::new(ServerStats::new(config.stats_window, shards));
        let mut queues = Vec::with_capacity(shards);
        for shard in 0..shards {
            let mut queue = RequestQueue::new(config.queue_cap);
            // Depth accounting runs inside the queue lock, so the
            // published depth is exact even under concurrent pops
            // (a read-then-set from outside the lock can go stale).
            let stats = Arc::clone(&stats);
            let gauge_name = shard_gauge_name(shard);
            let single = shards == 1;
            queue.set_depth_observer(move |depth| {
                {
                    let mut w = stats.windows.lock().unwrap();
                    w.shards[shard].queue_depth.record(depth as f64);
                }
                if amoe_obs::enabled() {
                    amoe_obs::gauge_set(gauge_name, depth as f64);
                    if single {
                        // Single-shard servers keep publishing the
                        // pre-sharding aggregate gauge name.
                        amoe_obs::gauge_set("serve.queue_depth", depth as f64);
                    }
                }
            });
            queues.push(queue);
        }
        let shared = Arc::new(Shared {
            model_config: model.config().clone(),
            model: Mutex::new(Arc::new(ServingModel::new(model, config.quantized))),
            meta,
            queues,
            config,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            model_generation: AtomicU64::new(0),
            model_swapped: Mutex::new(Instant::now()),
            stats,
            conns: Mutex::new(Vec::new()),
        });
        // The observability listener binds before the batchers spawn so
        // a bind failure aborts startup instead of leaving a half-dead
        // server that scores but cannot be scraped.
        let obs = match shared.config.obs_addr.clone() {
            Some(addr) => Some(crate::http::ObsListener::start(&addr, Arc::clone(&shared))?),
            None => None,
        };

        let mut batcher_threads = Vec::with_capacity(shards);
        for shard in 0..shards {
            let shared = Arc::clone(&shared);
            batcher_threads.push(
                thread::Builder::new()
                    .name(format!("amoe-serve-batcher-{shard}"))
                    .spawn(move || batcher::run(&shared, shard))?,
            );
        }
        let accept_thread = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("amoe-serve-accept".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        Ok(Server {
            addr: local,
            shared,
            accept_thread: Some(accept_thread),
            batcher_threads,
            obs,
        })
    }

    /// The bound address (resolves ephemeral ports).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The HTTP observability listener's bound address (resolves
    /// ephemeral ports); `None` when no `obs_addr` was configured.
    #[must_use]
    pub fn obs_addr(&self) -> Option<SocketAddr> {
        self.obs.as_ref().map(crate::http::ObsListener::local_addr)
    }

    /// Current service counters.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot(self.shared.queue_depth_total())
    }

    /// Sliding-window stage quantiles (the v2 `STATS` block).
    #[must_use]
    pub fn window_stats(&self) -> WindowedStats {
        self.shared.stats.window_stats()
    }

    /// Per-shard batcher counters (the v3 `STATS` shard block).
    #[must_use]
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shared.stats.shard_stats(&self.shared.queues)
    }

    /// Blocks until the server has shut down (all connections
    /// answered, every shard's queue drained, threads exited). Only
    /// returns after a `SHUTDOWN` request.
    ///
    /// The observability listener is stopped **last**: `/healthz`
    /// answers 200 (and `/readyz` 503) throughout the drain, so a load
    /// balancer sees "alive but not ready" until the process is
    /// actually done.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for t in self.batcher_threads.drain(..) {
            let _ = t.join();
        }
        if let Some(obs) = self.obs.take() {
            obs.stop();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(stream) => {
                if let Ok(clone) = stream.try_clone() {
                    shared.conns.lock().unwrap().push(clone);
                }
                let shared = Arc::clone(shared);
                let handle =
                    thread::Builder::new()
                        .name("amoe-serve-conn".into())
                        .spawn(move || {
                            let _ = handle_connection(stream, &shared);
                        });
                match handle {
                    Ok(h) => handlers.push(h),
                    Err(_) => continue,
                }
            }
            Err(_) => continue,
        }
    }
    // Drain phase. Handlers parked in read_frame on connections the
    // client left open would block join forever; half-closing the read
    // side (sticky, so it also covers handlers that re-enter
    // read_frame later) turns their next read into EOF while replies
    // still flow out the write half. This sweep is complete because
    // this thread is the only registrar and has stopped accepting.
    for conn in shared.conns.lock().unwrap().iter() {
        let _ = conn.shutdown(std::net::Shutdown::Read);
    }
    // Connections that raced the shutdown sit un-accepted in the
    // backlog; their clients would hang awaiting a handshake. Accept
    // and drop them so they see EOF instead.
    if listener.set_nonblocking(true).is_ok() {
        while let Ok((s, _)) = listener.accept() {
            drop(s);
        }
    }
    // Every admitted request must be answered before join() returns,
    // so wait for all connection threads (a pipelined handler in turn
    // joins its writer, which drains every in-flight completion).
    for h in handlers {
        let _ = h.join();
    }
    // With every request answered, the trace ring is final: export it
    // to the `AMOE_TRACE` path, if one is configured.
    if let Some((path, n)) = trace::dump_if_env() {
        eprintln!("amoe-serve: wrote {n} trace events to {}", path.display());
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    // Replies must not sit in the kernel waiting for an ACK.
    let _ = stream.set_nodelay(true);
    // Version negotiation: the client offers, we answer with
    // min(client, ours) and speak that for the connection — v1 peers
    // keep working against a v3 server.
    let offered = protocol::read_hello(&mut stream)?;
    let version = protocol::negotiate(offered)?;
    protocol::write_hello(&mut stream, version)?;
    if version >= 3 {
        return handle_connection_pipelined(stream, shared);
    }
    // v1/v2: strict request/response, kept wire-exact for old peers
    // (one in-flight score, replies written by this thread).
    loop {
        let payload = match protocol::read_frame(&mut stream) {
            Ok(p) => p,
            // Peer hung up between requests: normal connection end.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                reply(
                    &mut stream,
                    &Response::Error {
                        message: format!("malformed request: {e}"),
                    },
                )?;
                continue;
            }
        };
        match request {
            Request::Score {
                request_id,
                trace_id,
                rows,
            } => {
                handle_score(&mut stream, shared, request_id, trace_id, rows)?;
            }
            Request::Reload { path } => {
                let resp = reload_response(shared, &path);
                reply(&mut stream, &resp)?;
            }
            Request::Stats => {
                let resp = stats_response(shared, version);
                reply(&mut stream, &resp)?;
            }
            Request::TraceDump => {
                // An empty document (tracing off) is still valid
                // Chrome trace JSON, so no special case.
                let json = trace::chrome_json();
                reply(&mut stream, &Response::TraceDump { json })?;
            }
            Request::Shutdown => {
                initiate_shutdown(&stream, shared)?;
                reply(&mut stream, &Response::Ok)?;
                return Ok(());
            }
        }
    }
}

/// v3 connections: the reader (this thread) decodes requests and
/// admits scores without waiting for their completions; a dedicated
/// writer thread owns the write half and sends replies in whatever
/// order the batcher shards finish.
fn handle_connection_pipelined(mut stream: TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    let write_half = stream.try_clone()?;
    let (tx, rx) = mpsc::channel::<WriterMsg>();
    let writer = {
        let shared = Arc::clone(shared);
        thread::Builder::new()
            .name("amoe-serve-writer".into())
            .spawn(move || writer_loop(write_half, &rx, &shared))?
    };
    let result = pipelined_read_loop(&mut stream, shared, &tx);
    // Dropping the reader's sender lets the writer drain and exit:
    // every in-flight Pending holds its own sender clone, so the
    // channel only closes once each admitted request has been
    // answered (or its batch dropped the reply). That join IS the
    // per-connection drain guarantee.
    drop(tx);
    let _ = writer.join();
    result
}

fn pipelined_read_loop(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    tx: &mpsc::Sender<WriterMsg>,
) -> io::Result<()> {
    loop {
        let payload = match protocol::read_frame(stream) {
            Ok(p) => p,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        let request = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
                // No request id survived decoding, so this cannot ride
                // SCORE_ERROR; it is answered in admin order.
                let _ = tx.send(WriterMsg::Admin(Response::Error {
                    message: format!("malformed request: {e}"),
                }));
                continue;
            }
        };
        match request {
            Request::Score {
                request_id,
                trace_id,
                rows,
            } => {
                let t0 = Instant::now();
                if let Err(r) = admit_score(shared, request_id, trace_id, &rows, t0, tx.clone()) {
                    let _ = tx.send(WriterMsg::Admin(Response::ScoreError {
                        request_id,
                        overloaded: r.overloaded,
                        message: r.message,
                    }));
                }
            }
            Request::Reload { path } => {
                let _ = tx.send(WriterMsg::Admin(reload_response(shared, &path)));
            }
            Request::Stats => {
                let _ = tx.send(WriterMsg::Admin(stats_response(shared, 3)));
            }
            Request::TraceDump => {
                let _ = tx.send(WriterMsg::Admin(Response::TraceDump {
                    json: trace::chrome_json(),
                }));
            }
            Request::Shutdown => {
                initiate_shutdown(stream, shared)?;
                let _ = tx.send(WriterMsg::Admin(Response::Ok));
                return Ok(());
            }
        }
    }
}

/// The per-connection reply writer (v3): single owner of the
/// connection's write half. Completions arrive from whichever batcher
/// shard finishes first; admin responses arrive from the reader in
/// request order. Runs until every sender (the reader plus one clone
/// per in-flight request) is gone. Write errors don't stop the drain:
/// remaining completions still need their accounting, and their
/// writes fail fast on the dead socket.
fn writer_loop(mut stream: TcpStream, rx: &mpsc::Receiver<WriterMsg>, shared: &Arc<Shared>) {
    for msg in rx.iter() {
        let _ = match msg {
            WriterMsg::Done(done) => write_score_reply(&mut stream, shared, done),
            WriterMsg::Admin(resp) => reply(&mut stream, &resp),
        };
    }
}

/// Why a score request was not admitted to a shard queue.
struct ScoreReject {
    /// True when admission control shed it (reply `OVERLOADED` /
    /// `SCORE_ERROR{overloaded}`), false for validation/shutdown
    /// errors.
    overloaded: bool,
    message: String,
}

/// Validates a score request and enqueues it onto its shard (shared by
/// the sync and pipelined paths). On success the request's reply lane
/// is registered with the shard's batcher; the caller gets the shard
/// index for telemetry.
fn admit_score(
    shared: &Arc<Shared>,
    request_id: u64,
    client_trace_id: u64,
    rows: &[FeatureRow],
    t0: Instant,
    reply: mpsc::Sender<WriterMsg>,
) -> Result<usize, ScoreReject> {
    shared.stats.requests.fetch_add(1, Ordering::Relaxed);
    shared
        .stats
        .rows
        .fetch_add(rows.len() as u64, Ordering::Relaxed);
    // A client-supplied id is an explicit ask to trace this request, so
    // it bypasses sampling; server-assigned ids keep 1-in-N. 0 means
    // untraced (including whenever tracing is off).
    let trace_id = if client_trace_id != 0 && trace::enabled() {
        client_trace_id
    } else {
        trace::next_trace_id().unwrap_or(0)
    };
    let n_rows_in = rows.len() as u64;

    let batch = match rows_to_batch(rows, &shared.meta) {
        Ok(b) => b,
        Err(message) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            return Err(ScoreReject {
                overloaded: false,
                message,
            });
        }
    };
    if trace_id != 0 {
        trace::record(
            trace_id,
            0,
            "admitted",
            trace::instant_ns(t0),
            trace::now_ns(),
            n_rows_in,
        );
    }

    let shard = shard_of(request_id, shared.queues.len());
    let pending = Pending {
        batch,
        request_id,
        trace_id,
        reply,
        enqueued: t0,
    };
    match shared.queues[shard].push(pending, shared.config.overload) {
        Ok(()) => {}
        Err(PushError::Full) => {
            shared.stats.note_overloaded(shard);
            if amoe_obs::enabled() {
                amoe_obs::counter_add("serve.overloaded", 1);
            }
            return Err(ScoreReject {
                overloaded: true,
                message: "admission queue full".into(),
            });
        }
        Err(PushError::Closed) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            return Err(ScoreReject {
                overloaded: false,
                message: "server is shutting down".into(),
            });
        }
    }
    // Per-shard queue-depth gauges are published by each queue's depth
    // observer, under the queue lock — not here, where a concurrent pop
    // could already have made the depth stale.
    if trace_id != 0 {
        trace::record_instant(trace_id, 0, "enqueued", n_rows_in);
    }
    Ok(shard)
}

/// v≤2 score handling: admit, then block this connection thread until
/// the shard's batcher answers (strict request/response).
fn handle_score(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    request_id: u64,
    trace_id: u64,
    rows: Vec<FeatureRow>,
) -> io::Result<()> {
    let t0 = Instant::now();
    let (tx, rx) = mpsc::channel();
    if let Err(r) = admit_score(shared, request_id, trace_id, &rows, t0, tx) {
        // Old peers get the uncorrelated v1 rejection frames.
        return if r.overloaded {
            reply(stream, &Response::Overloaded)
        } else {
            reply(stream, &Response::Error { message: r.message })
        };
    }
    // The batcher always answers admitted requests (drain included);
    // a recv error means it panicked.
    let Ok(WriterMsg::Done(done)) = rx.recv() else {
        shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        return reply(
            stream,
            &Response::Error {
                message: "internal error: batcher unavailable".into(),
            },
        );
    };
    write_score_reply(stream, shared, done)
}

/// Writes one completed score and records the per-request completion
/// telemetry — shared by the sync path and the pipelined writer, so
/// windowed accounting stays exactly once per request on both.
fn write_score_reply(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    done: ScoreDone,
) -> io::Result<()> {
    shared.stats.ok.fetch_add(1, Ordering::Relaxed);
    let n_rows = done.scores.len();
    let write_t0 = Instant::now();
    let result = reply(
        stream,
        &Response::Scores {
            request_id: done.request_id,
            scores: done.scores,
        },
    );
    let reply_us = write_t0.elapsed().as_micros() as f64;
    let latency_us = done.enqueued.elapsed().as_micros() as u64;
    {
        // Always-on windowed stage accounting behind the v2 STATS
        // quantiles and the per-shard /metrics families: a couple of
        // histogram increments per request. Traced requests double as
        // exemplar candidates.
        let mut w = shared.stats.windows.lock().unwrap();
        let sw = &mut w.shards[done.shard];
        sw.reply_write_us.record_traced(reply_us, done.trace_id);
        sw.request_latency_us
            .record_traced(latency_us as f64, done.trace_id);
    }
    if done.trace_id != 0 {
        trace::record(
            done.trace_id,
            done.batch_id,
            "reply_written",
            trace::instant_ns(write_t0),
            trace::now_ns(),
            n_rows as u64,
        );
    }
    if amoe_obs::enabled() {
        amoe_obs::counter_add("serve.requests", 1);
        amoe_obs::histogram_record("serve.request_latency_us", latency_us as f64);
        amoe_obs::emit(
            &amoe_obs::Event::new("serve_request")
                .u64("request_id", done.request_id)
                .u64("rows", n_rows as u64)
                .u64("shard", done.shard as u64)
                .u64("latency_us", latency_us)
                .u64("queue_depth", shared.queue_depth_total() as u64),
        );
    }
    result
}

fn reload_response(shared: &Arc<Shared>, path: &str) -> Response {
    let swapped = ParamSet::load(path)
        .map_err(|e| format!("checkpoint load failed: {e}"))
        .and_then(|params| {
            MoeModel::from_params(
                &shared.meta,
                shared.model_config.clone(),
                OptimConfig::default(),
                &params,
            )
            .map_err(|e| format!("checkpoint incompatible with serving config: {e}"))
        });
    match swapped {
        Ok(new_model) => {
            // Quantization policy survives the swap: the bundle is
            // rebuilt with the server's configured mode.
            *shared.model.lock().unwrap() =
                Arc::new(ServingModel::new(new_model, shared.config.quantized));
            shared.stats.reloads.fetch_add(1, Ordering::Relaxed);
            let generation = shared.model_generation.fetch_add(1, Ordering::Relaxed) + 1;
            *shared.model_swapped.lock().unwrap() = Instant::now();
            if amoe_obs::enabled() {
                amoe_obs::counter_add("serve.reloads", 1);
                amoe_obs::gauge_set("serve.model_generation", generation as f64);
                amoe_obs::emit(
                    &amoe_obs::Event::new("serve_reload")
                        .str("path", path)
                        .u64("generation", generation)
                        .u64("ok", 1),
                );
            }
            Response::Ok
        }
        Err(message) => {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            if amoe_obs::enabled() {
                amoe_obs::emit(
                    &amoe_obs::Event::new("serve_reload")
                        .str("path", path)
                        .u64("ok", 0),
                );
            }
            Response::Error { message }
        }
    }
}

/// Builds the version-appropriate `STATS` reply: v1 counters only, v2
/// adds the window block, v3 adds per-shard counters on top.
fn stats_response(shared: &Arc<Shared>, version: u32) -> Response {
    let snapshot = shared.stats.snapshot(shared.queue_depth_total());
    let window = (version >= 2).then(|| Box::new(shared.stats.window_stats()));
    let shards = (version >= 3).then(|| shared.stats.shard_stats(&shared.queues));
    Response::Stats {
        snapshot,
        window,
        shards,
    }
}

/// Flips the shutdown flag, closes every shard queue (admitted
/// requests drain, new ones are refused) and wakes the accept loop.
/// The caller still owes the client its `OK` reply.
fn initiate_shutdown(stream: &TcpStream, shared: &Arc<Shared>) -> io::Result<()> {
    shared.shutdown.store(true, Ordering::SeqCst);
    // Close the queues first: each shard's batcher exits once its
    // queue is empty, so every admitted request on every shard is
    // still answered.
    for q in &shared.queues {
        q.close();
    }
    // Wake the accept loop (it blocks in accept()) with a throwaway
    // connection to our own listening address; the shutdown flag makes
    // it break out instead of serving it. The accept loop then
    // half-closes idle connections and drains the backlog.
    let _ = TcpStream::connect(stream.local_addr()?);
    Ok(())
}

fn reply(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    protocol::write_frame(stream, &response.encode())
}

/// Validates feature rows against the schema and assembles the model
/// batch. Returns a client-facing message on the first violation.
pub(crate) fn rows_to_batch(rows: &[FeatureRow], meta: &DatasetMeta) -> Result<Batch, String> {
    if rows.is_empty() {
        return Err("no rows".into());
    }
    let b = rows.len();
    let mut numeric = Matrix::zeros(b, meta.n_numeric);
    let mut sc = Vec::with_capacity(b);
    let mut tc = Vec::with_capacity(b);
    let mut brand = Vec::with_capacity(b);
    let mut shop = Vec::with_capacity(b);
    let mut user_segment = Vec::with_capacity(b);
    let mut price_bucket = Vec::with_capacity(b);
    let mut query = Vec::with_capacity(b);
    for (i, row) in rows.iter().enumerate() {
        for (field, id, vocab) in [
            ("sc", row.sc, meta.sc_vocab),
            ("tc", row.tc, meta.tc_vocab),
            ("brand", row.brand, meta.brand_vocab),
            ("shop", row.shop, meta.shop_vocab),
            ("user_segment", row.user_segment, meta.user_segment_vocab),
            ("price_bucket", row.price_bucket, meta.price_bucket_vocab),
            ("query", row.query, meta.query_vocab),
        ] {
            if id as usize >= vocab {
                return Err(format!(
                    "row {i}: {field} id {id} out of range (vocab {vocab})"
                ));
            }
        }
        if row.numeric.len() != meta.n_numeric {
            return Err(format!(
                "row {i}: {} numeric features, schema wants {}",
                row.numeric.len(),
                meta.n_numeric
            ));
        }
        if let Some(v) = row.numeric.iter().find(|v| !v.is_finite()) {
            return Err(format!("row {i}: non-finite numeric feature {v}"));
        }
        numeric.row_mut(i).copy_from_slice(&row.numeric);
        sc.push(row.sc as usize);
        tc.push(row.tc as usize);
        brand.push(row.brand as usize);
        shop.push(row.shop as usize);
        user_segment.push(row.user_segment as usize);
        price_bucket.push(row.price_bucket as usize);
        query.push(row.query as usize);
    }
    Ok(Batch {
        numeric,
        labels: Matrix::zeros(b, 1),
        sc,
        tc,
        brand,
        shop,
        user_segment,
        price_bucket,
        query,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> DatasetMeta {
        DatasetMeta {
            sc_vocab: 10,
            tc_vocab: 3,
            brand_vocab: 20,
            shop_vocab: 5,
            user_segment_vocab: 4,
            price_bucket_vocab: 5,
            query_vocab: 40,
            n_numeric: 2,
        }
    }

    fn ok_row() -> FeatureRow {
        FeatureRow {
            sc: 1,
            tc: 2,
            brand: 3,
            shop: 4,
            user_segment: 0,
            price_bucket: 0,
            query: 7,
            numeric: vec![0.1, -0.2],
        }
    }

    #[test]
    fn valid_rows_become_a_batch() {
        let batch = rows_to_batch(&[ok_row(), ok_row()], &meta()).expect("valid");
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.numeric.row(1), &[0.1, -0.2]);
        assert_eq!(batch.sc, vec![1, 1]);
    }

    #[test]
    fn out_of_vocab_id_rejected() {
        let mut row = ok_row();
        row.brand = 99;
        let err = rows_to_batch(&[row], &meta()).unwrap_err();
        assert!(err.contains("brand"), "unexpected message: {err}");
    }

    #[test]
    fn wrong_numeric_width_rejected() {
        let mut row = ok_row();
        row.numeric = vec![0.0; 5];
        assert!(rows_to_batch(&[row], &meta()).is_err());
    }

    #[test]
    fn non_finite_numeric_rejected() {
        let mut row = ok_row();
        row.numeric[0] = f32::NAN;
        let err = rows_to_batch(&[row], &meta()).unwrap_err();
        assert!(err.contains("non-finite"), "unexpected message: {err}");
    }

    #[test]
    fn shard_of_is_stable_in_range_and_non_degenerate() {
        for shards in [1usize, 2, 3, 4, 8] {
            let mut hit = vec![0usize; shards];
            for id in 1..=1000u64 {
                let s = shard_of(id, shards);
                assert!(s < shards, "shard {s} out of range for {shards}");
                assert_eq!(s, shard_of(id, shards), "must be deterministic");
                hit[s] += 1;
            }
            // Sequential ids (what Client assigns) must spread over
            // every shard, not pile onto one.
            for (s, &n) in hit.iter().enumerate() {
                assert!(n > 0, "shard {s}/{shards} never hit by ids 1..=1000");
            }
        }
        assert_eq!(shard_of(7, 1), 0);
    }
}
