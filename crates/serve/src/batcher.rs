//! The dynamic micro-batcher: one flush loop per shard.
//!
//! Each batcher shard is the single consumer of its own bounded queue
//! (requests hash to a shard by request id — see
//! [`crate::server::shard_of`]). A shard blocks for the first queued
//! request, then keeps admitting more until either `max_batch_rows`
//! rows are collected or `max_wait` has elapsed since the batch
//! opened. The collected requests are coalesced with
//! [`amoe_dataset::Batch::concat`] into **one**
//! `ServingMoe::predict_many_with_stats` call, and the score vector is
//! scattered back to each request's reply lane (the per-connection
//! writer thread on pipelined connections, a per-request channel on
//! v≤2 ones).
//!
//! # Determinism contract
//!
//! Neither coalescing nor sharding ever changes scores: every
//! inference path computes each row independently (per-row top-K
//! gating, row-blocked matmuls, per-row scatter in fixed expert
//! order), so a row's score is bit-identical whether its request was
//! predicted alone or inside any coalesced batch, on any shard, at
//! any `AMOE_THREADS` setting. The `serve_loopback` integration test
//! asserts this end to end. Tracing observes the pipeline without
//! touching the data path, so the contract holds at any sample rate.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

use amoe_core::serving;
use amoe_dataset::Batch;
use amoe_obs::trace;

use crate::protocol::Response;
use crate::server::Shared;

/// One admitted score request waiting for its shard's batcher.
pub(crate) struct Pending {
    /// Decoded, validated feature rows.
    pub batch: Batch,
    /// The request's wire correlation id (echoed in the reply).
    pub request_id: u64,
    /// Request trace id (`0` = untraced).
    pub trace_id: u64,
    /// The reply lane this request's completion goes down. Holding a
    /// sender is also the drain guarantee on pipelined connections:
    /// the writer thread cannot exit before every admitted request has
    /// been answered or dropped.
    pub reply: mpsc::Sender<WriterMsg>,
    /// Admission time, for queue-wait accounting.
    pub enqueued: Instant,
}

/// A completed score travelling from a batcher shard to a reply lane.
pub(crate) struct ScoreDone {
    /// Echo of the request's correlation id.
    pub request_id: u64,
    /// Request trace id (`0` = untraced).
    pub trace_id: u64,
    /// Admission time, for end-to-end latency accounting.
    pub enqueued: Instant,
    /// Which batcher shard computed this request.
    pub shard: usize,
    /// The batch that computed the scores (trace correlation).
    pub batch_id: u64,
    /// One sigmoid score per submitted row, in row order.
    pub scores: Vec<f32>,
}

/// What flows down a connection's reply lane: completions from
/// whichever batcher shard finishes first, interleaved with in-order
/// admin responses from the reader.
pub(crate) enum WriterMsg {
    /// A score request completed.
    Done(ScoreDone),
    /// An in-order admin (or correlated score-error) response.
    Admin(Response),
}

/// Runs shard `shard`'s flush loop until its queue is closed and
/// drained.
pub(crate) fn run(shared: &Arc<Shared>, shard: usize) {
    let queue = &shared.queues[shard];
    loop {
        // Block for the request that opens the next batch. `None`
        // means the queue is closed and fully drained: shut down.
        let Some(first) = queue.pop_wait() else {
            break;
        };
        note_queue_exit(&first);
        let deadline = Instant::now() + shared.config.max_wait;
        let mut pending = vec![first];
        let mut rows = pending[0].batch.len();
        while rows < shared.config.max_batch_rows {
            match queue.pop_until(deadline) {
                Some(p) => {
                    note_queue_exit(&p);
                    rows += p.batch.len();
                    pending.push(p);
                }
                None => break,
            }
        }

        if let Some(delay) = shared.config.batcher_delay {
            std::thread::sleep(delay);
        }

        // Batch ids are allocated per assembled batch (≥ 1; 0 stays
        // "no batch" in trace events and the active-batch marker).
        let batch_id = shared.stats.next_batch_id();
        let assembled_at = Instant::now();
        let traced = pending.iter().any(|p| p.trace_id != 0);
        if traced {
            let t = trace::instant_ns(assembled_at);
            // Ties this batch id to its shard in the trace stream.
            trace::record(0, batch_id, "shard", t, t, shard as u64);
            for p in &pending {
                if p.trace_id != 0 {
                    trace::record(p.trace_id, batch_id, "batch_assembled", t, t, rows as u64);
                }
            }
        }

        // Clone the Arc under the lock, predict outside it: a RELOAD
        // can swap the serving bundle while this batch still runs on
        // the old weights (the Arc keeps them alive).
        let model = Arc::clone(&shared.model.lock().unwrap());
        let parts: Vec<&Batch> = pending.iter().map(|p| &p.batch).collect();
        // Tag the forward path (gate/expert/scatter, pool regions) with
        // this batch while it computes — but only when someone in the
        // batch is traced, so untraced batches add no events. The claim
        // is a CAS: with several shards computing at once only one can
        // hold the marker, and a losing shard's forward events go
        // untagged rather than mis-attributed.
        let claimed = traced && trace::try_claim_active_batch(batch_id);
        let (scores, compute) = model.serving().predict_many_with_stats(&parts);
        if claimed {
            trace::release_active_batch(batch_id);
        }

        let now = Instant::now();
        shared.stats.note_batch(shard);
        {
            // Always-on windowed stage accounting: per-request queue
            // waits (admission → batch assembly) and per-batch compute,
            // into this shard's windows. Traced requests double as
            // exemplar candidates; the batch-level compute sample
            // carries the first traced member's id.
            let mut w = shared.stats.windows.lock().unwrap();
            let sw = &mut w.shards[shard];
            for p in &pending {
                let wait_us = assembled_at.duration_since(p.enqueued).as_micros() as f64;
                sw.queue_wait_us.record_traced(wait_us, p.trace_id);
            }
            let compute_trace = pending.iter().map(|p| p.trace_id).find(|&t| t != 0);
            sw.compute_us.record_traced(
                now.duration_since(assembled_at).as_micros() as f64,
                compute_trace.unwrap_or(0),
            );
        }
        if amoe_obs::enabled() {
            record_batch_telemetry(shared, shard, &pending, rows, now, &compute);
        }
        for (p, s) in pending.into_iter().zip(scores) {
            // A reply lane that hung up (client disconnect) makes send
            // fail; that request's scores are simply dropped.
            let _ = p.reply.send(WriterMsg::Done(ScoreDone {
                request_id: p.request_id,
                trace_id: p.trace_id,
                enqueued: p.enqueued,
                shard,
                batch_id,
                scores: s,
            }));
        }
    }
}

/// Records the `queue_exit` stage for a traced request, at actual pop
/// time (before coalescing waits blur it).
fn note_queue_exit(p: &Pending) {
    if p.trace_id != 0 {
        trace::record_instant(p.trace_id, 0, "queue_exit", p.batch.len() as u64);
    }
}

fn record_batch_telemetry(
    shared: &Arc<Shared>,
    shard: usize,
    pending: &[Pending],
    rows: usize,
    now: Instant,
    compute: &serving::Stats,
) {
    let mut max_wait_us = 0u64;
    for p in pending {
        let wait_us = now.duration_since(p.enqueued).as_micros() as u64;
        max_wait_us = max_wait_us.max(wait_us);
        amoe_obs::histogram_record("serve.queue_wait_us", wait_us as f64);
    }
    amoe_obs::histogram_record("serve.batch_rows", rows as f64);
    amoe_obs::histogram_record("serve.batch_requests", pending.len() as f64);
    // Per-shard queue depths are published by each queue's depth
    // observer, under the queue lock — reading `len()` here could go
    // stale against concurrent pushes.
    amoe_obs::counter_add("serve.batches", 1);
    amoe_obs::emit(
        &amoe_obs::Event::new("serve_batch")
            .u64("shard", shard as u64)
            .u64("requests", pending.len() as u64)
            .u64("rows", rows as u64)
            .u64("queue_wait_us_max", max_wait_us)
            .u64("queue_depth", shared.queues[shard].len() as u64)
            .u64("gate_ns", compute.gate_time.as_nanos() as u64)
            .u64("expert_ns", compute.expert_time.as_nanos() as u64)
            .u64("scatter_ns", compute.scatter_time.as_nanos() as u64),
    );
}
