//! The HTTP observability listener: a zero-dependency HTTP/1.1 server
//! on a **separate port** ([`crate::ServeConfig::obs_addr`]) exposing
//! the service to off-the-shelf monitoring:
//!
//! | endpoint   | content                                              |
//! |------------|------------------------------------------------------|
//! | `/metrics` | Prometheus text exposition of everything the server  |
//! |            | knows: build info, uptime, native counters, per-shard|
//! |            | windowed stage histograms with OpenMetrics exemplars,|
//! |            | plus the `AMOE_OBS` registry (deduplicated by family)|
//! | `/healthz` | liveness — 200 until the process exits               |
//! | `/readyz`  | readiness — 200 while accepting work, 503 from the   |
//! |            | moment `SHUTDOWN` drain begins                       |
//! | `/vars`    | JSON snapshot of counters and window quantiles       |
//! | `/trace`   | the trace ring as Chrome trace-event JSON            |
//!
//! The listener is deliberately minimal: `GET` only, no body reads,
//! keep-alive with pipelining (requests already buffered are answered
//! in order), an 8 KiB header cap (431 beyond it), and 400 on anything
//! that does not parse as an HTTP/1.x request line. Handlers poll the
//! stop flag on a short read timeout, so [`ObsListener::stop`] wins
//! even against an idle keep-alive peer.
//!
//! Scrapes are designed to stay off the score path: rendering takes
//! the windows lock for one merge pass (the same lock a request holds
//! for two histogram increments) and never touches the model or the
//! admission queues' locks beyond a depth read. The `load_sweep`
//! scrape stage enforces the resulting contract: < 1 % throughput
//! delta under concurrent 20 Hz scraping.

use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use amoe_obs::expose::{prom_name, Renderer};
use amoe_obs::trace;

use crate::protocol;
use crate::server::Shared;

/// Request head cap (request line + headers). Anything longer is
/// answered `431` and the connection closed.
const MAX_HEAD: usize = 8 * 1024;

/// How long a handler blocks in `read` before re-checking the stop
/// flag; also bounds how long `stop()` waits for idle connections.
const READ_POLL: Duration = Duration::from_millis(200);

/// The running observability listener. Owned by
/// [`crate::Server`]; stopped **after** the main drain so `/healthz`
/// stays answerable until the process is really done.
pub(crate) struct ObsListener {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ObsListener {
    /// Binds `addr` (port 0 for ephemeral) and starts the accept loop.
    pub(crate) fn start(addr: impl ToSocketAddrs, shared: Arc<Shared>) -> io::Result<ObsListener> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Nonblocking accept + stop-flag polling: the listener has no
        // protocol peer to wake it, so it polls instead of parking.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            thread::Builder::new()
                .name("amoe-obs-http".into())
                .spawn(move || accept_loop(&listener, &shared, &stop))?
        };
        Ok(ObsListener {
            addr: local,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub(crate) fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the accept loop and every connection handler to exit,
    /// and joins them.
    pub(crate) fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, stop: &Arc<AtomicBool>) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let stop = Arc::clone(stop);
                let spawned =
                    thread::Builder::new()
                        .name("amoe-obs-conn".into())
                        .spawn(move || {
                            let _ = handle_connection(stream, &shared, &stop);
                        });
                if let Ok(h) = spawned {
                    handlers.push(h);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
        // Reap finished handlers so a long-lived server doesn't
        // accumulate one JoinHandle per scrape ever made.
        handlers.retain(|h| !h.is_finished());
    }
    for h in handlers {
        let _ = h.join();
    }
}

/// One parsed request head.
#[derive(Debug, PartialEq, Eq)]
struct ParsedRequest {
    method: String,
    path: String,
    /// HTTP/1.1 defaults to keep-alive; `Connection: close` (or
    /// HTTP/1.0 without `keep-alive`) turns it off.
    keep_alive: bool,
}

/// Parses a request head (everything before the `\r\n\r\n`
/// terminator, which the caller has already located).
fn parse_request(head: &[u8]) -> Result<ParsedRequest, String> {
    let text = std::str::from_utf8(head).map_err(|_| "head is not UTF-8".to_string())?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(format!("malformed request line {request_line:?}"));
    };
    if method.is_empty() || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(format!("malformed method {method:?}"));
    }
    if !path.starts_with('/') {
        return Err(format!("malformed path {path:?}"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => return Err(format!("unsupported version {other:?}")),
    };
    let mut keep_alive = http11;
    for line in lines {
        if line.is_empty() {
            continue; // trailing empty split before the terminator
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(format!("malformed header line {line:?}"));
        };
        if name.eq_ignore_ascii_case("connection") {
            let value = value.trim();
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        }
    }
    Ok(ParsedRequest {
        method: method.to_string(),
        path: path.to_string(),
        keep_alive,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Serves one connection: keep-alive loop with carry-over, so
/// pipelined requests already sitting in the buffer are answered
/// back-to-back without waiting for another read.
fn handle_connection(
    mut stream: TcpStream,
    shared: &Arc<Shared>,
    stop: &Arc<AtomicBool>,
) -> io::Result<()> {
    // The accepted socket may inherit the listener's nonblocking mode
    // on some platforms; force blocking + a short timeout so the
    // handler polls the stop flag instead of parking forever.
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(READ_POLL))?;
    let mut buf: Vec<u8> = Vec::new();
    loop {
        // Assemble the next request head (pipelined requests may
        // already be buffered from the previous read).
        let head_end = loop {
            if let Some(end) = find_head_end(&buf) {
                break end;
            }
            if buf.len() > MAX_HEAD {
                write_response(&mut stream, 431, "text/plain", b"header too large\n", false)?;
                return Ok(());
            }
            if stop.load(Ordering::SeqCst) {
                return Ok(());
            }
            let mut chunk = [0u8; 4096];
            match stream.read(&mut chunk) {
                Ok(0) => return Ok(()), // peer closed between requests
                Ok(n) => buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue; // read timeout: re-check the stop flag
                }
                Err(e) => return Err(e),
            }
        };
        let parsed = parse_request(&buf[..head_end]);
        buf.drain(..head_end + 4);
        let Ok(request) = parsed else {
            // Garbage on the wire: answer 400 and close — framing is
            // unrecoverable, later bytes cannot be trusted as requests.
            write_response(&mut stream, 400, "text/plain", b"bad request\n", false)?;
            return Ok(());
        };
        let (status, ctype, body) = route(&request, shared);
        write_response(
            &mut stream,
            status,
            ctype,
            body.as_bytes(),
            request.keep_alive,
        )?;
        if !request.keep_alive {
            return Ok(());
        }
    }
}

/// Dispatches one request to its endpoint.
fn route(request: &ParsedRequest, shared: &Shared) -> (u16, &'static str, String) {
    if request.method != "GET" {
        return (405, "text/plain", "only GET is supported\n".into());
    }
    // Ignore any query string: /metrics?foo=bar scrapes normally.
    let path = request.path.split('?').next().unwrap_or("");
    match path {
        "/metrics" => (
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            render_metrics(shared),
        ),
        "/healthz" => (200, "text/plain", "ok\n".into()),
        "/readyz" => {
            if shared.shutdown.load(Ordering::SeqCst) {
                (503, "text/plain", "draining\n".into())
            } else {
                (200, "text/plain", "ready\n".into())
            }
        }
        "/vars" => (200, "application/json", render_vars(shared)),
        "/trace" => (200, "application/json", trace::chrome_json()),
        _ => (404, "text/plain", "not found\n".into()),
    }
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    ctype: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    // One write per response: header + body coalesced so a scrape is
    // one segment on loopback.
    let mut out = head.into_bytes();
    out.extend_from_slice(body);
    stream.write_all(&out)
}

/// The five windowed stage families, as (dotted family name, selector)
/// pairs. The dotted names gain a `.shard<N>` suffix per shard, which
/// [`prom_name`] turns into the `{shard="N"}` label.
const STAGE_FAMILIES: [&str; 5] = [
    "serve.window.request_latency_us",
    "serve.window.queue_wait_us",
    "serve.window.compute_us",
    "serve.window.reply_write_us",
    "serve.window.queue_depth",
];

/// Renders the `/metrics` page: build info and uptime, the server's
/// native always-on counters and per-shard windowed stage histograms
/// (with exemplars), then the `AMOE_OBS` registry snapshot for every
/// family not already rendered natively (the native series are
/// authoritative; duplicate series would poison real scrapers).
pub(crate) fn render_metrics(shared: &Shared) -> String {
    let mut r = Renderer::new();
    let stats = &shared.stats;
    let n_shards = shared.queues.len();

    let version = env!("CARGO_PKG_VERSION");
    let protocol_version = protocol::VERSION.to_string();
    let shards_str = n_shards.to_string();
    let threads = amoe_tensor::pool::threads().to_string();
    let quantized = shared.config.quantized.to_string();
    r.gauge_with(
        "amoe_build_info",
        &[
            ("version", version),
            ("protocol", &protocol_version),
            ("shards", &shards_str),
            ("threads", &threads),
            ("quantized", &quantized),
        ],
        1.0,
    );
    r.gauge(
        "amoe_uptime_seconds",
        shared.started.elapsed().as_secs_f64(),
    );
    // Readiness as a gauge so dashboards can graph drain windows.
    let ready = !shared.shutdown.load(Ordering::SeqCst);
    r.gauge("amoe_ready", if ready { 1.0 } else { 0.0 });
    // Model freshness: the live checkpoint generation (0 = boot
    // model) and seconds since it was swapped in. Both move on every
    // successful RELOAD, so staleness alerts can fire on either.
    r.gauge(
        "amoe_model_generation",
        shared.model_generation.load(Ordering::Relaxed) as f64,
    );
    r.gauge(
        "amoe_model_age_seconds",
        shared.model_swapped.lock().unwrap().elapsed().as_secs_f64(),
    );

    // Native monotonic counters (always on, independent of AMOE_OBS).
    r.counter("serve.requests", stats.requests.load(Ordering::Relaxed));
    r.counter("serve.rows", stats.rows.load(Ordering::Relaxed));
    r.counter("serve.ok", stats.ok.load(Ordering::Relaxed));
    r.counter("serve.errors", stats.errors.load(Ordering::Relaxed));
    r.counter("serve.reloads", stats.reloads.load(Ordering::Relaxed));
    // Sharded families: one series per shard, `sum()` in PromQL for
    // the service total (no unlabelled duplicate of the same count).
    for (i, c) in stats.shard_batches.iter().enumerate() {
        r.counter(
            &format!("serve.batches.shard{i}"),
            c.load(Ordering::Relaxed),
        );
    }
    for (i, c) in stats.shard_overloaded.iter().enumerate() {
        r.counter(
            &format!("serve.overloaded.shard{i}"),
            c.load(Ordering::Relaxed),
        );
    }
    for (i, q) in shared.queues.iter().enumerate() {
        r.gauge(&format!("serve.queue_depth.shard{i}"), q.len() as f64);
    }

    // The five windowed stage quantile families, one labelled series
    // set per shard, each carrying its window's max-latency exemplar.
    {
        let mut w = stats.windows.lock().unwrap();
        for family in STAGE_FAMILIES {
            for (i, sw) in w.shards.iter_mut().enumerate() {
                let win = match family {
                    "serve.window.request_latency_us" => &mut sw.request_latency_us,
                    "serve.window.queue_wait_us" => &mut sw.queue_wait_us,
                    "serve.window.compute_us" => &mut sw.compute_us,
                    "serve.window.reply_write_us" => &mut sw.reply_write_us,
                    _ => &mut sw.queue_depth,
                };
                let merged = win.merged();
                let exemplar = win.exemplar();
                r.histogram(&format!("{family}.shard{i}"), &merged, exemplar);
            }
        }
    }

    // The AMOE_OBS registry (pool.*, span.*, serving.*, lifetime
    // serve.* histograms…), minus families rendered natively above.
    let native = r.families();
    let snap = amoe_obs::snapshot();
    for (name, v) in &snap.counters {
        if !native.contains(&prom_name(name, true).family) {
            r.counter(name, *v);
        }
    }
    for (name, v) in &snap.gauges {
        if !native.contains(&prom_name(name, false).family) {
            r.gauge(name, *v);
        }
    }
    for (name, h) in &snap.histograms {
        if !native.contains(&prom_name(name, false).family) {
            r.histogram(name, h, None);
        }
    }
    for (name, h) in &snap.windows {
        if !native.contains(&prom_name(name, false).family) {
            r.histogram(name, h, None);
        }
    }
    r.finish()
}

/// Renders the `/vars` JSON snapshot: identity, counters and window
/// quantiles in one self-describing object (numbers always finite, per
/// the workspace JSON contract).
fn render_vars(shared: &Shared) -> String {
    use amoe_obs::json::{write_f64, write_str};
    use std::fmt::Write as _;

    let stats = &shared.stats;
    let snapshot = stats.snapshot(shared.queue_depth_total());
    let window = stats.window_stats();
    let shard_stats = stats.shard_stats(&shared.queues);

    let mut s = String::with_capacity(1024);
    s.push('{');
    write_str(&mut s, "version");
    s.push(':');
    write_str(&mut s, env!("CARGO_PKG_VERSION"));
    let _ = write!(s, ",\"protocol\":{}", protocol::VERSION);
    let _ = write!(s, ",\"shards\":{}", shared.queues.len());
    let _ = write!(s, ",\"threads\":{}", amoe_tensor::pool::threads());
    let _ = write!(s, ",\"quantized\":{}", shared.config.quantized);
    let ready = !shared.shutdown.load(Ordering::SeqCst);
    let _ = write!(s, ",\"ready\":{ready}");
    s.push_str(",\"uptime_secs\":");
    write_f64(&mut s, shared.started.elapsed().as_secs_f64());
    let _ = write!(
        s,
        ",\"model_generation\":{}",
        shared.model_generation.load(Ordering::SeqCst)
    );
    s.push_str(",\"model_age_secs\":");
    write_f64(
        &mut s,
        shared.model_swapped.lock().unwrap().elapsed().as_secs_f64(),
    );
    for (key, v) in [
        ("requests", snapshot.requests),
        ("rows", snapshot.rows),
        ("ok", snapshot.ok),
        ("overloaded", snapshot.overloaded),
        ("errors", snapshot.errors),
        ("batches", snapshot.batches),
        ("reloads", snapshot.reloads),
        ("queue_depth", snapshot.queue_depth),
    ] {
        let _ = write!(s, ",\"{key}\":{v}");
    }
    s.push_str(",\"window_secs\":");
    write_f64(&mut s, window.window_secs);
    s.push_str(",\"window\":{");
    for (i, (key, q)) in [
        ("request_latency_us", &window.request_latency_us),
        ("queue_wait_us", &window.queue_wait_us),
        ("compute_us", &window.compute_us),
        ("reply_write_us", &window.reply_write_us),
        ("queue_depth", &window.queue_depth),
    ]
    .into_iter()
    .enumerate()
    {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{key}\":{{\"count\":{},\"p50\":", q.count);
        write_f64(&mut s, q.p50);
        s.push_str(",\"p95\":");
        write_f64(&mut s, q.p95);
        s.push_str(",\"p99\":");
        write_f64(&mut s, q.p99);
        s.push('}');
    }
    s.push_str("},\"shards_detail\":[");
    for (i, sh) in shard_stats.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"batches\":{},\"overloaded\":{},\"queue_depth\":{},\"queue_depth_p99\":",
            sh.batches, sh.overloaded, sh.queue_depth
        );
        write_f64(&mut s, sh.queue_depth_p99);
        s.push('}');
    }
    s.push_str("]}");
    s
}

/// Minimal HTTP/1.1 GET over a fresh connection: the in-repo scrape
/// client used by tests, CI and the `load_sweep` scrape stage (no
/// external HTTP library in the workspace). Returns the status code
/// and the body.
///
/// # Errors
/// Connection, timeout, and malformed-response errors.
pub fn http_get(
    addr: impl ToSocketAddrs,
    path: &str,
    timeout: Duration,
) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let _ = stream.set_nodelay(true);
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: amoe\r\nConnection: close\r\n\r\n"
    )?;
    // `Connection: close` makes EOF the body delimiter.
    let mut data = Vec::new();
    stream.read_to_end(&mut data)?;
    let text = String::from_utf8_lossy(&data).into_owned();
    let head_end = text
        .find("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?;
    let status_line = text.lines().next().unwrap_or_default();
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed status line {status_line:?}"),
            )
        })?;
    Ok((status, text[head_end + 4..].to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_request_accepts_plain_get() {
        let r = parse_request(b"GET /metrics HTTP/1.1\r\nHost: x").expect("parses");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/metrics");
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parse_request_honours_connection_header() {
        let r = parse_request(b"GET / HTTP/1.1\r\nConnection: close").unwrap();
        assert!(!r.keep_alive);
        let r = parse_request(b"GET / HTTP/1.0").unwrap();
        assert!(!r.keep_alive, "HTTP/1.0 defaults to close");
        let r = parse_request(b"GET / HTTP/1.0\r\nConnection: Keep-Alive").unwrap();
        assert!(r.keep_alive);
    }

    #[test]
    fn parse_request_rejects_garbage() {
        // Binary noise, bad request lines, non-HTTP versions, headers
        // without colons: everything a confused client might send.
        for head in [
            &b"\x00\x01\x02\xff\xfe"[..],
            b"GET",
            b"GET /x",
            b"GET /x HTTP/2.0",
            b"GET /x SMTP/1.1",
            b"get /x HTTP/1.1",
            b"GET x HTTP/1.1",
            b"GET /x HTTP/1.1 extra",
            b"GET /x HTTP/1.1\r\nno-colon-header",
            b"",
        ] {
            assert!(parse_request(head).is_err(), "{head:?} should be rejected");
        }
    }

    #[test]
    fn parse_request_keeps_non_get_methods_for_the_405_path() {
        let r = parse_request(b"POST /metrics HTTP/1.1").unwrap();
        assert_eq!(r.method, "POST");
    }

    #[test]
    fn find_head_end_locates_the_terminator() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(14));
        assert_eq!(find_head_end(b"partial"), None);
    }

    #[test]
    fn http_get_parses_a_canned_response() {
        // A one-shot mini server that answers a fixed page exercises
        // the client half without a full serving stack.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 1024];
            let _ = s.read(&mut buf);
            let body = b"hello\n";
            let head = format!(
                "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
                body.len()
            );
            s.write_all(head.as_bytes()).unwrap();
            s.write_all(body).unwrap();
        });
        let (status, body) = http_get(addr, "/x", Duration::from_secs(5)).expect("get");
        server.join().unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "hello\n");
    }

    #[test]
    fn http_get_rejects_non_http_noise() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 1024];
            let _ = s.read(&mut buf);
            s.write_all(b"not http at all").unwrap();
        });
        assert!(http_get(addr, "/x", Duration::from_secs(5)).is_err());
        server.join().unwrap();
    }
}
