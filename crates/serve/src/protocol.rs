//! Length-prefixed binary wire protocol.
//!
//! A connection opens with a fixed 8-byte hello from each side (magic
//! `AMSV` + `u32` protocol version): the client offers its version,
//! the server answers with the **negotiated** version
//! `min(client, server)`, and both sides speak that dialect for the
//! rest of the connection. A v1 peer therefore interoperates with a
//! v2 peer unchanged. After the handshake both sides exchange
//! *frames*: a little-endian `u32` payload length followed by the
//! payload. The first payload byte is a tag; the rest is the
//! tag-specific body. All integers are little-endian, all floats
//! IEEE-754 `f32`/`f64` LE — the same conventions as the `AMOE`
//! checkpoint format.
//!
//! Requests: `SCORE` (feature rows to rank; the v2 `SCORE_V2` variant
//! carries a client-chosen trace id), `RELOAD` (checkpoint hot-swap),
//! `SHUTDOWN` (drain and exit), `STATS` (counters probe),
//! `TRACE_DUMP` (v2: fetch the server's trace ring as Chrome trace
//! JSON). Responses: `SCORES`, `OVERLOADED` (admission control
//! rejected the request), `ERROR` (with message), `OK`, `STATS` (v2
//! appends sliding-window stage quantiles; v3 appends per-shard
//! batcher counters after that), `TRACE_DUMP_REPLY`, and
//! `SCORE_ERROR` (v3: a failed score carrying its request id).
//!
//! Through v2 the protocol is strictly request/response per
//! connection, so the `request_id` echoed in `SCORES` is a
//! client-side sanity check. From v3 a connection is **pipelined**: a
//! client may have any number of `SCORE`s in flight at once, the
//! server completes them in whatever order its batcher shards finish,
//! and the `request_id` in `SCORES`/`SCORE_ERROR` is the real
//! multiplexing key. Score failures on a v3 connection use
//! `SCORE_ERROR` (instead of the uncorrelatable `OVERLOADED`/`ERROR`)
//! so they can be matched to their request. Admin requests
//! (`RELOAD`/`STATS`/`SHUTDOWN`/`TRACE_DUMP`) are still answered in
//! submission order, though score completions may interleave ahead of
//! their replies.

use std::io::{self, Read, Write};

use amoe_obs::registry::Histogram;

/// Handshake magic: "AMSV" (AMoe SerVe).
pub const MAGIC: [u8; 4] = *b"AMSV";
/// Highest wire protocol version this build speaks.
pub const VERSION: u32 = 3;
/// Lowest version still accepted (v1 peers predate trace ids and
/// windowed stats).
pub const MIN_VERSION: u32 = 1;
/// Upper bound on a frame payload; larger lengths are treated as
/// protocol corruption rather than allocated.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Request tags.
pub const TAG_SCORE: u8 = 0x01;
/// See [`TAG_SCORE`].
pub const TAG_RELOAD: u8 = 0x02;
/// See [`TAG_SCORE`].
pub const TAG_SHUTDOWN: u8 = 0x03;
/// See [`TAG_SCORE`].
pub const TAG_STATS: u8 = 0x04;
/// v2: `SCORE` carrying a client-chosen trace id (see [`TAG_SCORE`]).
pub const TAG_SCORE_V2: u8 = 0x05;
/// v2: fetch the trace ring as Chrome trace JSON (see [`TAG_SCORE`]).
pub const TAG_TRACE_DUMP: u8 = 0x06;

/// Response tags.
pub const TAG_SCORES: u8 = 0x81;
/// See [`TAG_SCORES`].
pub const TAG_OVERLOADED: u8 = 0x82;
/// See [`TAG_SCORES`].
pub const TAG_ERROR: u8 = 0x83;
/// See [`TAG_SCORES`].
pub const TAG_OK: u8 = 0x84;
/// See [`TAG_SCORES`].
pub const TAG_STATS_REPLY: u8 = 0x85;
/// v2: `STATS_REPLY` plus sliding-window quantiles (see
/// [`TAG_SCORES`]).
pub const TAG_STATS_REPLY_V2: u8 = 0x86;
/// v2: Chrome trace JSON body (see [`TAG_SCORES`]).
pub const TAG_TRACE_DUMP_REPLY: u8 = 0x87;
/// v3: `STATS_REPLY_V2` plus per-shard batcher counters (see
/// [`TAG_SCORES`]).
pub const TAG_STATS_REPLY_V3: u8 = 0x88;
/// v3: a score request failed; body carries the request id so a
/// pipelined client can correlate the failure (see [`TAG_SCORES`]).
pub const TAG_SCORE_ERROR: u8 = 0x89;

/// One example to score: the seven sparse feature ids plus the dense
/// numeric features, mirroring `amoe_dataset::Example` minus the label.
#[derive(Clone, Debug, PartialEq)]
pub struct FeatureRow {
    /// Query-predicted sub-category id (gate input).
    pub sc: u32,
    /// Query-predicted top-category id.
    pub tc: u32,
    /// Brand id.
    pub brand: u32,
    /// Shop id.
    pub shop: u32,
    /// User-segment id.
    pub user_segment: u32,
    /// Price-bucket id.
    pub price_bucket: u32,
    /// Query id.
    pub query: u32,
    /// Dense numeric features (`meta.n_numeric` values).
    pub numeric: Vec<f32>,
}

/// A decoded request frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Score a batch of feature rows.
    Score {
        /// Client-chosen id echoed in the response.
        request_id: u64,
        /// Client-chosen trace id (`0` = none; the server then applies
        /// its own sampling). Non-zero ids ride the v2 `SCORE_V2` tag;
        /// a zero id encodes as the v1 `SCORE` tag, so v1 peers are
        /// unaffected.
        trace_id: u64,
        /// Rows to score (at least one; all the same numeric width).
        rows: Vec<FeatureRow>,
    },
    /// Hot-swap the serving weights from a checkpoint on the server's
    /// filesystem.
    Reload {
        /// Checkpoint path as seen by the server process.
        path: String,
    },
    /// Drain the queue, finish in-flight batches, and exit.
    Shutdown,
    /// Read the server counters.
    Stats,
    /// v2: fetch the server's trace ring as Chrome trace JSON.
    TraceDump,
}

/// A decoded response frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Per-row scores for a `Score` request.
    Scores {
        /// Echo of the request's id.
        request_id: u64,
        /// One sigmoid score per submitted row, in row order.
        scores: Vec<f32>,
    },
    /// The admission queue was full; the request was not scored.
    Overloaded,
    /// The request failed; human-readable reason.
    Error {
        /// What went wrong.
        message: String,
    },
    /// Acknowledgement for `Reload`/`Shutdown`.
    Ok,
    /// Counter snapshot for `Stats`. `window` is present on v2+
    /// connections (it encodes as `STATS_REPLY_V2`), `shards` on v3+
    /// (`STATS_REPLY_V3`, which always carries the window block too);
    /// both `None` keeps the bit-exact v1 `STATS_REPLY` wire shape for
    /// old clients.
    Stats {
        /// Lifetime counters.
        snapshot: StatsSnapshot,
        /// Sliding-window stage quantiles (v2 only). Boxed so the
        /// common small responses don't pay the block's enum size.
        window: Option<Box<WindowedStats>>,
        /// Per-shard batcher counters (v3 only), indexed by shard id.
        shards: Option<Vec<ShardStats>>,
    },
    /// v2: the server's trace ring as Chrome trace-event JSON.
    TraceDump {
        /// A complete Chrome trace JSON document.
        json: String,
    },
    /// v3: a score request failed (validation, overload, or shutdown).
    /// Carries the request id so a pipelined connection can correlate
    /// the failure with one of its in-flight submissions.
    ScoreError {
        /// Echo of the request's id.
        request_id: u64,
        /// True when admission control shed the request (the v3
        /// equivalent of `OVERLOADED`); the client should back off and
        /// may retry.
        overloaded: bool,
        /// Human-readable reason (empty for pure overload).
        message: String,
    },
}

/// Per-shard batcher counters inside a v3 `STATS` reply.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ShardStats {
    /// Model calls this shard's batcher has made.
    pub batches: u64,
    /// Score requests this shard's admission queue shed.
    pub overloaded: u64,
    /// This shard's queue depth at snapshot time.
    pub queue_depth: u64,
    /// p99 of this shard's queue depth over the sliding stats window.
    pub queue_depth_p99: f64,
}

/// Point-in-time server counters (also the body of the `STATS` reply).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Score requests received (before admission control).
    pub requests: u64,
    /// Feature rows received across all score requests.
    pub rows: u64,
    /// Score requests answered with scores.
    pub ok: u64,
    /// Score requests rejected by admission control.
    pub overloaded: u64,
    /// Requests answered with `ERROR` (validation or internal).
    pub errors: u64,
    /// Model calls made by the batcher.
    pub batches: u64,
    /// Successful checkpoint hot-swaps.
    pub reloads: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: u64,
}

/// Count + p50/p95/p99 readout of one sliding-window histogram.
/// Quantiles inherit the log-bucket relative error bound
/// (`2^(1/4) − 1 ≈ 19%`); all values are finite by construction.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QuantileSummary {
    /// Samples inside the window.
    pub count: u64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl QuantileSummary {
    /// Reads a summary off a (merged sliding-window) histogram.
    #[must_use]
    pub fn from_histogram(h: &Histogram) -> QuantileSummary {
        QuantileSummary {
            count: h.count(),
            p50: h.quantile(0.5),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
        }
    }
}

/// Stage-broken-down sliding-window quantiles: what the last
/// `window_secs` of traffic looked like, split into the pipeline
/// stages a request passes through (queue wait vs batch compute vs
/// reply write, plus end-to-end latency and queue depth).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WindowedStats {
    /// Window length the summaries cover, seconds.
    pub window_secs: f64,
    /// End-to-end request latency (admission → reply written), µs.
    pub request_latency_us: QuantileSummary,
    /// Time spent waiting in the admission queue, µs.
    pub queue_wait_us: QuantileSummary,
    /// Model compute per batch (gate + experts + scatter), µs.
    pub compute_us: QuantileSummary,
    /// Reply serialisation + socket write, µs.
    pub reply_write_us: QuantileSummary,
    /// Queue depth observed at every push/pop.
    pub queue_depth: QuantileSummary,
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Writes one side's handshake hello: magic + the version it offers
/// (client: its best; server: the negotiated answer).
pub fn write_hello(w: &mut impl Write, version: u32) -> io::Result<()> {
    let mut wire = [0u8; 8];
    wire[..4].copy_from_slice(&MAGIC);
    wire[4..].copy_from_slice(&version.to_le_bytes());
    w.write_all(&wire)?;
    w.flush()
}

/// Reads the peer's handshake hello, returning the version it offered.
pub fn read_hello(r: &mut impl Read) -> io::Result<u32> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(bad_data("bad handshake magic (not an amoe-serve peer)"));
    }
    read_u32(r)
}

/// Clamps a peer's offered version into this build's supported range.
///
/// # Errors
/// Rejects versions below [`MIN_VERSION`] (version 0 is reserved and
/// indicates a corrupt hello).
pub fn negotiate(peer_version: u32) -> io::Result<u32> {
    if peer_version < MIN_VERSION {
        return Err(bad_data(format!(
            "unsupported protocol version {peer_version} (want {MIN_VERSION}..={VERSION})"
        )));
    }
    Ok(peer_version.min(VERSION))
}

/// Writes one length-prefixed frame.
///
/// Prefix and payload go out as a single write: two small writes on an
/// unbuffered socket would interact with Nagle's algorithm and the
/// peer's delayed ACK, adding ~40 ms to every small frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| bad_data("frame too large"))?;
    if len > MAX_FRAME_LEN {
        return Err(bad_data("frame too large"));
    }
    let mut wire = Vec::with_capacity(4 + payload.len());
    wire.extend_from_slice(&len.to_le_bytes());
    wire.extend_from_slice(payload);
    w.write_all(&wire)?;
    w.flush()
}

/// Reads one length-prefixed frame payload.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let len = read_u32(r)?;
    if len > MAX_FRAME_LEN {
        return Err(bad_data(format!("frame length {len} exceeds limit")));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

// ---------------------------------------------------------------------
// Request / response codecs
// ---------------------------------------------------------------------

impl Request {
    /// Serialises the request into a frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Score {
                request_id,
                trace_id,
                rows,
            } => {
                // A zero trace id keeps the exact v1 wire shape; only
                // explicitly traced requests need the v2 tag.
                if *trace_id == 0 {
                    out.push(TAG_SCORE);
                    put_u64(&mut out, *request_id);
                } else {
                    out.push(TAG_SCORE_V2);
                    put_u64(&mut out, *request_id);
                    put_u64(&mut out, *trace_id);
                }
                let n_numeric = rows.first().map_or(0, |r| r.numeric.len());
                put_u32(&mut out, rows.len() as u32);
                put_u32(&mut out, n_numeric as u32);
                for row in rows {
                    for id in [
                        row.sc,
                        row.tc,
                        row.brand,
                        row.shop,
                        row.user_segment,
                        row.price_bucket,
                        row.query,
                    ] {
                        put_u32(&mut out, id);
                    }
                    debug_assert_eq!(row.numeric.len(), n_numeric);
                    for &v in &row.numeric {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
            Request::Reload { path } => {
                out.push(TAG_RELOAD);
                put_str(&mut out, path);
            }
            Request::Shutdown => out.push(TAG_SHUTDOWN),
            Request::Stats => out.push(TAG_STATS),
            Request::TraceDump => out.push(TAG_TRACE_DUMP),
        }
        out
    }

    /// Parses a frame payload into a request.
    pub fn decode(payload: &[u8]) -> io::Result<Request> {
        let mut c = Cursor::new(payload);
        let req = match c.u8()? {
            tag @ (TAG_SCORE | TAG_SCORE_V2) => {
                let request_id = c.u64()?;
                let trace_id = if tag == TAG_SCORE_V2 { c.u64()? } else { 0 };
                let n_rows = c.u32()? as usize;
                let n_numeric = c.u32()? as usize;
                if n_rows == 0 {
                    return Err(bad_data("score request with zero rows"));
                }
                // 7 ids + numeric values, 4 bytes each.
                let row_bytes = (7 + n_numeric) * 4;
                if c.remaining() != n_rows * row_bytes {
                    return Err(bad_data("score request body length mismatch"));
                }
                let mut rows = Vec::with_capacity(n_rows);
                for _ in 0..n_rows {
                    let mut ids = [0u32; 7];
                    for id in &mut ids {
                        *id = c.u32()?;
                    }
                    let mut numeric = Vec::with_capacity(n_numeric);
                    for _ in 0..n_numeric {
                        numeric.push(c.f32()?);
                    }
                    rows.push(FeatureRow {
                        sc: ids[0],
                        tc: ids[1],
                        brand: ids[2],
                        shop: ids[3],
                        user_segment: ids[4],
                        price_bucket: ids[5],
                        query: ids[6],
                        numeric,
                    });
                }
                Request::Score {
                    request_id,
                    trace_id,
                    rows,
                }
            }
            TAG_RELOAD => Request::Reload { path: c.str()? },
            TAG_SHUTDOWN => Request::Shutdown,
            TAG_STATS => Request::Stats,
            TAG_TRACE_DUMP => Request::TraceDump,
            tag => return Err(bad_data(format!("unknown request tag {tag:#04x}"))),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serialises the response into a frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Scores { request_id, scores } => {
                out.push(TAG_SCORES);
                put_u64(&mut out, *request_id);
                put_u32(&mut out, scores.len() as u32);
                for &s in scores {
                    out.extend_from_slice(&s.to_le_bytes());
                }
            }
            Response::Overloaded => out.push(TAG_OVERLOADED),
            Response::Error { message } => {
                out.push(TAG_ERROR);
                put_str(&mut out, message);
            }
            Response::Ok => out.push(TAG_OK),
            Response::Stats {
                snapshot,
                window,
                shards,
            } => {
                // v1 clients reject trailing bytes, so each added
                // block rides a distinct tag rather than extending
                // the v1 body. The v3 shard block requires the window
                // block (a v3 server always has both).
                out.push(if shards.is_some() {
                    TAG_STATS_REPLY_V3
                } else if window.is_some() {
                    TAG_STATS_REPLY_V2
                } else {
                    TAG_STATS_REPLY
                });
                for v in [
                    snapshot.requests,
                    snapshot.rows,
                    snapshot.ok,
                    snapshot.overloaded,
                    snapshot.errors,
                    snapshot.batches,
                    snapshot.reloads,
                    snapshot.queue_depth,
                ] {
                    put_u64(&mut out, v);
                }
                let defaulted;
                let window = match (window, shards) {
                    (Some(w), _) => Some(&**w),
                    (None, Some(_)) => {
                        debug_assert!(false, "v3 stats reply built without a window block");
                        defaulted = WindowedStats::default();
                        Some(&defaulted)
                    }
                    (None, None) => None,
                };
                if let Some(w) = window {
                    put_f64(&mut out, w.window_secs);
                    for s in [
                        &w.request_latency_us,
                        &w.queue_wait_us,
                        &w.compute_us,
                        &w.reply_write_us,
                        &w.queue_depth,
                    ] {
                        put_u64(&mut out, s.count);
                        put_f64(&mut out, s.p50);
                        put_f64(&mut out, s.p95);
                        put_f64(&mut out, s.p99);
                    }
                }
                if let Some(sh) = shards {
                    put_u32(&mut out, sh.len() as u32);
                    for s in sh {
                        put_u64(&mut out, s.batches);
                        put_u64(&mut out, s.overloaded);
                        put_u64(&mut out, s.queue_depth);
                        put_f64(&mut out, s.queue_depth_p99);
                    }
                }
            }
            Response::TraceDump { json } => {
                out.push(TAG_TRACE_DUMP_REPLY);
                put_str(&mut out, json);
            }
            Response::ScoreError {
                request_id,
                overloaded,
                message,
            } => {
                out.push(TAG_SCORE_ERROR);
                put_u64(&mut out, *request_id);
                out.push(u8::from(*overloaded));
                put_str(&mut out, message);
            }
        }
        out
    }

    /// Parses a frame payload into a response.
    pub fn decode(payload: &[u8]) -> io::Result<Response> {
        let mut c = Cursor::new(payload);
        let resp = match c.u8()? {
            TAG_SCORES => {
                let request_id = c.u64()?;
                let n = c.u32()? as usize;
                if c.remaining() != n * 4 {
                    return Err(bad_data("scores body length mismatch"));
                }
                let mut scores = Vec::with_capacity(n);
                for _ in 0..n {
                    scores.push(c.f32()?);
                }
                Response::Scores { request_id, scores }
            }
            TAG_OVERLOADED => Response::Overloaded,
            TAG_ERROR => Response::Error { message: c.str()? },
            TAG_OK => Response::Ok,
            tag @ (TAG_STATS_REPLY | TAG_STATS_REPLY_V2 | TAG_STATS_REPLY_V3) => {
                let snapshot = StatsSnapshot {
                    requests: c.u64()?,
                    rows: c.u64()?,
                    ok: c.u64()?,
                    overloaded: c.u64()?,
                    errors: c.u64()?,
                    batches: c.u64()?,
                    reloads: c.u64()?,
                    queue_depth: c.u64()?,
                };
                let window = if tag != TAG_STATS_REPLY {
                    let window_secs = c.f64()?;
                    let mut summaries = [QuantileSummary::default(); 5];
                    for s in &mut summaries {
                        *s = QuantileSummary {
                            count: c.u64()?,
                            p50: c.f64()?,
                            p95: c.f64()?,
                            p99: c.f64()?,
                        };
                    }
                    Some(Box::new(WindowedStats {
                        window_secs,
                        request_latency_us: summaries[0],
                        queue_wait_us: summaries[1],
                        compute_us: summaries[2],
                        reply_write_us: summaries[3],
                        queue_depth: summaries[4],
                    }))
                } else {
                    None
                };
                let shards = if tag == TAG_STATS_REPLY_V3 {
                    let n = c.u32()? as usize;
                    // Each entry is 3×u64 + f64; reject count/body
                    // mismatches before allocating.
                    if c.remaining() != n * 32 {
                        return Err(bad_data("shard stats body length mismatch"));
                    }
                    let mut sh = Vec::with_capacity(n);
                    for _ in 0..n {
                        sh.push(ShardStats {
                            batches: c.u64()?,
                            overloaded: c.u64()?,
                            queue_depth: c.u64()?,
                            queue_depth_p99: c.f64()?,
                        });
                    }
                    Some(sh)
                } else {
                    None
                };
                Response::Stats {
                    snapshot,
                    window,
                    shards,
                }
            }
            TAG_TRACE_DUMP_REPLY => Response::TraceDump { json: c.str()? },
            TAG_SCORE_ERROR => {
                let request_id = c.u64()?;
                let overloaded = match c.u8()? {
                    0 => false,
                    1 => true,
                    b => return Err(bad_data(format!("bad score-error flag {b:#04x}"))),
                };
                Response::ScoreError {
                    request_id,
                    overloaded,
                    message: c.str()?,
                }
            }
            tag => return Err(bad_data(format!("unknown response tag {tag:#04x}"))),
        };
        c.finish()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------
// Little-endian helpers
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Bounds-checked reader over a frame payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(bad_data("truncated frame payload"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> io::Result<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> io::Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad_data("invalid utf-8 in string field"))
    }

    /// Rejects trailing garbage after a fully decoded message.
    fn finish(self) -> io::Result<()> {
        if self.remaining() != 0 {
            return Err(bad_data("trailing bytes after message"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(seed: u32) -> FeatureRow {
        FeatureRow {
            sc: seed,
            tc: seed + 1,
            brand: seed + 2,
            shop: seed + 3,
            user_segment: seed + 4,
            price_bucket: seed + 5,
            query: seed + 6,
            numeric: vec![0.5 * seed as f32, -1.25, 3.0],
        }
    }

    fn sample_stats() -> StatsSnapshot {
        StatsSnapshot {
            requests: 1,
            rows: 2,
            ok: 3,
            overloaded: 4,
            errors: 5,
            batches: 6,
            reloads: 7,
            queue_depth: 8,
        }
    }

    fn sample_window() -> WindowedStats {
        let s = |k: u64| QuantileSummary {
            count: k,
            p50: 1.5 * k as f64,
            p95: 9.5 * k as f64,
            p99: 99.0 * k as f64,
        };
        WindowedStats {
            window_secs: 60.0,
            request_latency_us: s(10),
            queue_wait_us: s(11),
            compute_us: s(3),
            reply_write_us: s(10),
            queue_depth: s(21),
        }
    }

    #[test]
    fn requests_round_trip() {
        let cases = vec![
            Request::Score {
                request_id: 77,
                trace_id: 0,
                rows: vec![row(0), row(10)],
            },
            Request::Score {
                request_id: 78,
                trace_id: 0xABCD_EF01,
                rows: vec![row(4)],
            },
            Request::Reload {
                path: "/tmp/model.amoe".into(),
            },
            Request::Shutdown,
            Request::Stats,
            Request::TraceDump,
        ];
        for req in cases {
            let decoded = Request::decode(&req.encode()).expect("decode");
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn untraced_score_keeps_v1_wire_shape() {
        // A zero trace id must encode byte-for-byte as a v1 SCORE
        // frame so v1 servers accept it.
        let payload = Request::Score {
            request_id: 5,
            trace_id: 0,
            rows: vec![row(1)],
        }
        .encode();
        assert_eq!(payload[0], TAG_SCORE);
        let traced = Request::Score {
            request_id: 5,
            trace_id: 9,
            rows: vec![row(1)],
        }
        .encode();
        assert_eq!(traced[0], TAG_SCORE_V2);
        assert_eq!(traced.len(), payload.len() + 8);
    }

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            Response::Scores {
                request_id: 9,
                scores: vec![0.25, 0.75, 1.0],
            },
            Response::Overloaded,
            Response::Error {
                message: "bad id".into(),
            },
            Response::Ok,
            Response::Stats {
                snapshot: sample_stats(),
                window: None,
                shards: None,
            },
            Response::Stats {
                snapshot: sample_stats(),
                window: Some(Box::new(sample_window())),
                shards: None,
            },
            Response::Stats {
                snapshot: sample_stats(),
                window: Some(Box::new(sample_window())),
                shards: Some(vec![
                    ShardStats {
                        batches: 4,
                        overloaded: 1,
                        queue_depth: 2,
                        queue_depth_p99: 3.5,
                    },
                    ShardStats::default(),
                ]),
            },
            Response::TraceDump {
                json: "{\"traceEvents\":[]}".into(),
            },
            Response::ScoreError {
                request_id: 42,
                overloaded: true,
                message: String::new(),
            },
            Response::ScoreError {
                request_id: 43,
                overloaded: false,
                message: "unknown sc id".into(),
            },
        ];
        for resp in cases {
            let decoded = Response::decode(&resp.encode()).expect("decode");
            assert_eq!(decoded, resp);
        }
    }

    #[test]
    fn windowless_stats_reply_keeps_v1_wire_shape() {
        let payload = Response::Stats {
            snapshot: sample_stats(),
            window: None,
            shards: None,
        }
        .encode();
        // v1 layout: tag + 8 × u64, nothing else (v1 clients reject
        // trailing bytes).
        assert_eq!(payload.len(), 1 + 8 * 8);
        assert_eq!(payload[0], TAG_STATS_REPLY);
        let v2 = Response::Stats {
            snapshot: sample_stats(),
            window: Some(Box::new(sample_window())),
            shards: None,
        }
        .encode();
        assert_eq!(v2[0], TAG_STATS_REPLY_V2);
        // The shard block extends the v2 body: v3 = v2 + count + 32
        // bytes per shard, under yet another tag.
        let v3 = Response::Stats {
            snapshot: sample_stats(),
            window: Some(Box::new(sample_window())),
            shards: Some(vec![ShardStats::default(); 3]),
        }
        .encode();
        assert_eq!(v3[0], TAG_STATS_REPLY_V3);
        assert_eq!(v3.len(), v2.len() + 4 + 3 * 32);
    }

    #[test]
    fn score_error_flag_must_be_boolean() {
        let mut payload = Response::ScoreError {
            request_id: 7,
            overloaded: true,
            message: "x".into(),
        }
        .encode();
        assert!(Response::decode(&payload).is_ok());
        payload[9] = 2; // the flag byte follows tag + u64 request id
        assert!(Response::decode(&payload).is_err());
    }

    #[test]
    fn frames_round_trip_over_a_pipe() {
        let payload = Request::Score {
            request_id: 1,
            trace_id: 0,
            rows: vec![row(3)],
        }
        .encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap(), payload);
    }

    #[test]
    fn handshake_rejects_wrong_magic() {
        let mut wire = Vec::new();
        write_hello(&mut wire, VERSION).unwrap();
        wire[0] = b'X';
        assert!(read_hello(&mut &wire[..]).is_err());
    }

    #[test]
    fn handshake_negotiation_clamps_to_supported_range() {
        let mut wire = Vec::new();
        write_hello(&mut wire, VERSION).unwrap();
        assert_eq!(read_hello(&mut &wire[..]).unwrap(), VERSION);
        // A v1 peer negotiates down; a futuristic peer clamps to ours;
        // version 0 is a corrupt hello.
        assert_eq!(negotiate(1).unwrap(), 1);
        assert_eq!(negotiate(VERSION).unwrap(), VERSION);
        assert_eq!(negotiate(99).unwrap(), VERSION);
        assert!(negotiate(0).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut payload = Request::Shutdown.encode();
        payload.push(0xFF);
        assert!(Request::decode(&payload).is_err());
    }

    #[test]
    fn zero_row_score_rejected() {
        let mut payload = vec![TAG_SCORE];
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&3u32.to_le_bytes());
        assert!(Request::decode(&payload).is_err());
    }
}
