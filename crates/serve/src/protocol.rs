//! Length-prefixed binary wire protocol.
//!
//! A connection opens with a fixed 8-byte handshake (magic `AMSV` +
//! `u32` protocol version, echoed by the server), after which both
//! sides exchange *frames*: a little-endian `u32` payload length
//! followed by the payload. The first payload byte is a tag; the rest
//! is the tag-specific body. All integers are little-endian, all
//! floats IEEE-754 `f32`/`f64` LE — the same conventions as the
//! `AMOE` checkpoint format.
//!
//! Requests: `SCORE` (feature rows to rank), `RELOAD` (checkpoint
//! hot-swap), `SHUTDOWN` (drain and exit), `STATS` (counters probe).
//! Responses: `SCORES`, `OVERLOADED` (admission control rejected the
//! request), `ERROR` (with message), `OK`, `STATS`.
//!
//! The protocol is strictly request/response per connection, so the
//! `request_id` echoed in `SCORES` is a client-side sanity check, not
//! a multiplexing key.

use std::io::{self, Read, Write};

/// Handshake magic: "AMSV" (AMoe SerVe).
pub const MAGIC: [u8; 4] = *b"AMSV";
/// Wire protocol version.
pub const VERSION: u32 = 1;
/// Upper bound on a frame payload; larger lengths are treated as
/// protocol corruption rather than allocated.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Request tags.
pub const TAG_SCORE: u8 = 0x01;
/// See [`TAG_SCORE`].
pub const TAG_RELOAD: u8 = 0x02;
/// See [`TAG_SCORE`].
pub const TAG_SHUTDOWN: u8 = 0x03;
/// See [`TAG_SCORE`].
pub const TAG_STATS: u8 = 0x04;

/// Response tags.
pub const TAG_SCORES: u8 = 0x81;
/// See [`TAG_SCORES`].
pub const TAG_OVERLOADED: u8 = 0x82;
/// See [`TAG_SCORES`].
pub const TAG_ERROR: u8 = 0x83;
/// See [`TAG_SCORES`].
pub const TAG_OK: u8 = 0x84;
/// See [`TAG_SCORES`].
pub const TAG_STATS_REPLY: u8 = 0x85;

/// One example to score: the seven sparse feature ids plus the dense
/// numeric features, mirroring `amoe_dataset::Example` minus the label.
#[derive(Clone, Debug, PartialEq)]
pub struct FeatureRow {
    /// Query-predicted sub-category id (gate input).
    pub sc: u32,
    /// Query-predicted top-category id.
    pub tc: u32,
    /// Brand id.
    pub brand: u32,
    /// Shop id.
    pub shop: u32,
    /// User-segment id.
    pub user_segment: u32,
    /// Price-bucket id.
    pub price_bucket: u32,
    /// Query id.
    pub query: u32,
    /// Dense numeric features (`meta.n_numeric` values).
    pub numeric: Vec<f32>,
}

/// A decoded request frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Score a batch of feature rows.
    Score {
        /// Client-chosen id echoed in the response.
        request_id: u64,
        /// Rows to score (at least one; all the same numeric width).
        rows: Vec<FeatureRow>,
    },
    /// Hot-swap the serving weights from a checkpoint on the server's
    /// filesystem.
    Reload {
        /// Checkpoint path as seen by the server process.
        path: String,
    },
    /// Drain the queue, finish in-flight batches, and exit.
    Shutdown,
    /// Read the server counters.
    Stats,
}

/// A decoded response frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Per-row scores for a `Score` request.
    Scores {
        /// Echo of the request's id.
        request_id: u64,
        /// One sigmoid score per submitted row, in row order.
        scores: Vec<f32>,
    },
    /// The admission queue was full; the request was not scored.
    Overloaded,
    /// The request failed; human-readable reason.
    Error {
        /// What went wrong.
        message: String,
    },
    /// Acknowledgement for `Reload`/`Shutdown`.
    Ok,
    /// Counter snapshot for `Stats`.
    Stats(StatsSnapshot),
}

/// Point-in-time server counters (also the body of the `STATS` reply).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Score requests received (before admission control).
    pub requests: u64,
    /// Feature rows received across all score requests.
    pub rows: u64,
    /// Score requests answered with scores.
    pub ok: u64,
    /// Score requests rejected by admission control.
    pub overloaded: u64,
    /// Requests answered with `ERROR` (validation or internal).
    pub errors: u64,
    /// Model calls made by the batcher.
    pub batches: u64,
    /// Successful checkpoint hot-swaps.
    pub reloads: u64,
    /// Queue depth at snapshot time.
    pub queue_depth: u64,
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Writes the handshake preamble (both sides send the same bytes).
pub fn write_handshake(w: &mut impl Write) -> io::Result<()> {
    let mut wire = [0u8; 8];
    wire[..4].copy_from_slice(&MAGIC);
    wire[4..].copy_from_slice(&VERSION.to_le_bytes());
    w.write_all(&wire)?;
    w.flush()
}

/// Reads and validates the peer's handshake preamble.
pub fn read_handshake(r: &mut impl Read) -> io::Result<()> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(bad_data("bad handshake magic (not an amoe-serve peer)"));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(bad_data(format!(
            "unsupported protocol version {version} (want {VERSION})"
        )));
    }
    Ok(())
}

/// Writes one length-prefixed frame.
///
/// Prefix and payload go out as a single write: two small writes on an
/// unbuffered socket would interact with Nagle's algorithm and the
/// peer's delayed ACK, adding ~40 ms to every small frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| bad_data("frame too large"))?;
    if len > MAX_FRAME_LEN {
        return Err(bad_data("frame too large"));
    }
    let mut wire = Vec::with_capacity(4 + payload.len());
    wire.extend_from_slice(&len.to_le_bytes());
    wire.extend_from_slice(payload);
    w.write_all(&wire)?;
    w.flush()
}

/// Reads one length-prefixed frame payload.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let len = read_u32(r)?;
    if len > MAX_FRAME_LEN {
        return Err(bad_data(format!("frame length {len} exceeds limit")));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

// ---------------------------------------------------------------------
// Request / response codecs
// ---------------------------------------------------------------------

impl Request {
    /// Serialises the request into a frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Score { request_id, rows } => {
                out.push(TAG_SCORE);
                put_u64(&mut out, *request_id);
                let n_numeric = rows.first().map_or(0, |r| r.numeric.len());
                put_u32(&mut out, rows.len() as u32);
                put_u32(&mut out, n_numeric as u32);
                for row in rows {
                    for id in [
                        row.sc,
                        row.tc,
                        row.brand,
                        row.shop,
                        row.user_segment,
                        row.price_bucket,
                        row.query,
                    ] {
                        put_u32(&mut out, id);
                    }
                    debug_assert_eq!(row.numeric.len(), n_numeric);
                    for &v in &row.numeric {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }
            Request::Reload { path } => {
                out.push(TAG_RELOAD);
                put_str(&mut out, path);
            }
            Request::Shutdown => out.push(TAG_SHUTDOWN),
            Request::Stats => out.push(TAG_STATS),
        }
        out
    }

    /// Parses a frame payload into a request.
    pub fn decode(payload: &[u8]) -> io::Result<Request> {
        let mut c = Cursor::new(payload);
        let req = match c.u8()? {
            TAG_SCORE => {
                let request_id = c.u64()?;
                let n_rows = c.u32()? as usize;
                let n_numeric = c.u32()? as usize;
                if n_rows == 0 {
                    return Err(bad_data("score request with zero rows"));
                }
                // 7 ids + numeric values, 4 bytes each.
                let row_bytes = (7 + n_numeric) * 4;
                if c.remaining() != n_rows * row_bytes {
                    return Err(bad_data("score request body length mismatch"));
                }
                let mut rows = Vec::with_capacity(n_rows);
                for _ in 0..n_rows {
                    let mut ids = [0u32; 7];
                    for id in &mut ids {
                        *id = c.u32()?;
                    }
                    let mut numeric = Vec::with_capacity(n_numeric);
                    for _ in 0..n_numeric {
                        numeric.push(c.f32()?);
                    }
                    rows.push(FeatureRow {
                        sc: ids[0],
                        tc: ids[1],
                        brand: ids[2],
                        shop: ids[3],
                        user_segment: ids[4],
                        price_bucket: ids[5],
                        query: ids[6],
                        numeric,
                    });
                }
                Request::Score { request_id, rows }
            }
            TAG_RELOAD => Request::Reload { path: c.str()? },
            TAG_SHUTDOWN => Request::Shutdown,
            TAG_STATS => Request::Stats,
            tag => return Err(bad_data(format!("unknown request tag {tag:#04x}"))),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serialises the response into a frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Scores { request_id, scores } => {
                out.push(TAG_SCORES);
                put_u64(&mut out, *request_id);
                put_u32(&mut out, scores.len() as u32);
                for &s in scores {
                    out.extend_from_slice(&s.to_le_bytes());
                }
            }
            Response::Overloaded => out.push(TAG_OVERLOADED),
            Response::Error { message } => {
                out.push(TAG_ERROR);
                put_str(&mut out, message);
            }
            Response::Ok => out.push(TAG_OK),
            Response::Stats(s) => {
                out.push(TAG_STATS_REPLY);
                for v in [
                    s.requests,
                    s.rows,
                    s.ok,
                    s.overloaded,
                    s.errors,
                    s.batches,
                    s.reloads,
                    s.queue_depth,
                ] {
                    put_u64(&mut out, v);
                }
            }
        }
        out
    }

    /// Parses a frame payload into a response.
    pub fn decode(payload: &[u8]) -> io::Result<Response> {
        let mut c = Cursor::new(payload);
        let resp = match c.u8()? {
            TAG_SCORES => {
                let request_id = c.u64()?;
                let n = c.u32()? as usize;
                if c.remaining() != n * 4 {
                    return Err(bad_data("scores body length mismatch"));
                }
                let mut scores = Vec::with_capacity(n);
                for _ in 0..n {
                    scores.push(c.f32()?);
                }
                Response::Scores { request_id, scores }
            }
            TAG_OVERLOADED => Response::Overloaded,
            TAG_ERROR => Response::Error { message: c.str()? },
            TAG_OK => Response::Ok,
            TAG_STATS_REPLY => Response::Stats(StatsSnapshot {
                requests: c.u64()?,
                rows: c.u64()?,
                ok: c.u64()?,
                overloaded: c.u64()?,
                errors: c.u64()?,
                batches: c.u64()?,
                reloads: c.u64()?,
                queue_depth: c.u64()?,
            }),
            tag => return Err(bad_data(format!("unknown response tag {tag:#04x}"))),
        };
        c.finish()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------
// Little-endian helpers
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Bounds-checked reader over a frame payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(bad_data("truncated frame payload"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> io::Result<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn str(&mut self) -> io::Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad_data("invalid utf-8 in string field"))
    }

    /// Rejects trailing garbage after a fully decoded message.
    fn finish(self) -> io::Result<()> {
        if self.remaining() != 0 {
            return Err(bad_data("trailing bytes after message"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(seed: u32) -> FeatureRow {
        FeatureRow {
            sc: seed,
            tc: seed + 1,
            brand: seed + 2,
            shop: seed + 3,
            user_segment: seed + 4,
            price_bucket: seed + 5,
            query: seed + 6,
            numeric: vec![0.5 * seed as f32, -1.25, 3.0],
        }
    }

    #[test]
    fn requests_round_trip() {
        let cases = vec![
            Request::Score {
                request_id: 77,
                rows: vec![row(0), row(10)],
            },
            Request::Reload {
                path: "/tmp/model.amoe".into(),
            },
            Request::Shutdown,
            Request::Stats,
        ];
        for req in cases {
            let decoded = Request::decode(&req.encode()).expect("decode");
            assert_eq!(decoded, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let cases = vec![
            Response::Scores {
                request_id: 9,
                scores: vec![0.25, 0.75, 1.0],
            },
            Response::Overloaded,
            Response::Error {
                message: "bad id".into(),
            },
            Response::Ok,
            Response::Stats(StatsSnapshot {
                requests: 1,
                rows: 2,
                ok: 3,
                overloaded: 4,
                errors: 5,
                batches: 6,
                reloads: 7,
                queue_depth: 8,
            }),
        ];
        for resp in cases {
            let decoded = Response::decode(&resp.encode()).expect("decode");
            assert_eq!(decoded, resp);
        }
    }

    #[test]
    fn frames_round_trip_over_a_pipe() {
        let payload = Request::Score {
            request_id: 1,
            rows: vec![row(3)],
        }
        .encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap(), payload);
    }

    #[test]
    fn handshake_rejects_wrong_magic() {
        let mut wire = Vec::new();
        write_handshake(&mut wire).unwrap();
        wire[0] = b'X';
        assert!(read_handshake(&mut &wire[..]).is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut payload = Request::Shutdown.encode();
        payload.push(0xFF);
        assert!(Request::decode(&payload).is_err());
    }

    #[test]
    fn zero_row_score_rejected() {
        let mut payload = vec![TAG_SCORE];
        payload.extend_from_slice(&0u64.to_le_bytes());
        payload.extend_from_slice(&0u32.to_le_bytes());
        payload.extend_from_slice(&3u32.to_le_bytes());
        assert!(Request::decode(&payload).is_err());
    }
}
