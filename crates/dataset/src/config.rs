//! Generator configuration.

/// All knobs of the synthetic search-log generator.
///
/// The defaults produce roughly 120k training and 24k test examples —
/// the paper's 26.7M-example log scaled to a single-core host while
/// preserving the category skew, feature structure and session shape.
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// Master seed; all randomness forks from it.
    pub seed: u64,
    /// Sub-categories per top-category (paper: ~92 avg; ours: 8).
    pub subs_per_tc: usize,
    /// Number of distinct queries to synthesise.
    pub n_queries: usize,
    /// Training sessions to generate.
    pub train_sessions: usize,
    /// Test sessions to generate.
    pub test_sessions: usize,
    /// Minimum candidate items per session.
    pub min_items_per_session: usize,
    /// Maximum candidate items per session.
    pub max_items_per_session: usize,
    /// Target marginal purchase rate (positives fraction).
    pub target_purchase_rate: f64,
    /// Accuracy of the query→SC classifier channel (paper's GRU model
    /// is trained on 100k human-annotated queries; a production model
    /// of that kind sits around 90%).
    pub classifier_accuracy: f64,
    /// Of the classifier's errors, the fraction confused with a sibling
    /// SC (rather than a random SC anywhere in the tree).
    pub classifier_sibling_confusion: f64,
    /// Brands per top-category.
    pub brands_per_tc: usize,
    /// Number of shops (global).
    pub n_shops: usize,
    /// Number of user segments.
    pub n_user_segments: usize,
    /// Number of price buckets.
    pub n_price_buckets: usize,
    /// Std of the per-SC perturbation around the parent TC's ground-truth
    /// feature weights (small ⇒ siblings similar; Fig. 2b).
    pub sibling_weight_noise: f32,
    /// Std of observation noise added to the informative numeric features.
    pub feature_noise: f32,
    /// Std of the unexplained (irreducible) label noise on the logit.
    pub label_noise: f32,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 20_210_407, // ICDE 2021 week; any constant works
            subs_per_tc: 12,
            n_queries: 3_000,
            train_sessions: 8_000,
            test_sessions: 1_600,
            min_items_per_session: 8,
            max_items_per_session: 24,
            target_purchase_rate: 0.12,
            classifier_accuracy: 0.78,
            classifier_sibling_confusion: 0.9,
            brands_per_tc: 120,
            n_shops: 400,
            n_user_segments: 8,
            n_price_buckets: 10,
            sibling_weight_noise: 0.12,
            feature_noise: 0.45,
            label_noise: 0.55,
        }
    }
}

impl GeneratorConfig {
    /// Scales the data volume (sessions and queries) by `factor`,
    /// keeping everything else fixed. Used by experiment binaries'
    /// `--scale` flag and by fast test configs.
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "GeneratorConfig::scaled: factor must be > 0");
        self.train_sessions = ((self.train_sessions as f64 * factor).round() as usize).max(16);
        self.test_sessions = ((self.test_sessions as f64 * factor).round() as usize).max(8);
        self.n_queries = ((self.n_queries as f64 * factor).round() as usize).max(32);
        self
    }

    /// A small config for unit tests (hundreds of examples, fast).
    #[must_use]
    pub fn tiny(seed: u64) -> Self {
        GeneratorConfig {
            seed,
            n_queries: 120,
            train_sessions: 120,
            test_sessions: 40,
            brands_per_tc: 20,
            n_shops: 50,
            ..Default::default()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    /// Panics on contradictory settings (used by `generate`).
    pub fn validate(&self) {
        assert!(self.subs_per_tc > 0, "subs_per_tc must be > 0");
        assert!(self.n_queries > 0, "n_queries must be > 0");
        assert!(
            self.min_items_per_session >= 2,
            "sessions need >= 2 items for ranking metrics"
        );
        assert!(self.max_items_per_session >= self.min_items_per_session);
        assert!((0.0..1.0).contains(&self.target_purchase_rate));
        assert!((0.0..=1.0).contains(&self.classifier_accuracy));
        assert!((0.0..=1.0).contains(&self.classifier_sibling_confusion));
        assert!(self.brands_per_tc > 1);
        assert!(self.n_shops > 0 && self.n_user_segments > 0 && self.n_price_buckets > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        GeneratorConfig::default().validate();
        GeneratorConfig::tiny(1).validate();
    }

    #[test]
    fn scaled_scales_counts() {
        let c = GeneratorConfig::default().scaled(0.5);
        assert_eq!(c.train_sessions, 4_000);
        assert_eq!(c.test_sessions, 800);
        c.validate();
    }

    #[test]
    fn scaled_has_floor() {
        let c = GeneratorConfig::default().scaled(1e-9);
        assert!(c.train_sessions >= 16);
        assert!(c.test_sessions >= 8);
    }

    #[test]
    #[should_panic(expected = "sessions need")]
    fn invalid_session_size_panics() {
        let c = GeneratorConfig {
            min_items_per_session: 1,
            ..Default::default()
        };
        c.validate();
    }
}
