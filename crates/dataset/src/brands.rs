//! Per-category brand universes with category-specific concentration.
//!
//! Paper Sec. 3 / Fig. 3: in their log, the "Electronics" category
//! concentrates the top 80% of sales into ~2% of brands while "Sports"
//! spreads it over ~10%. We reproduce that by giving each top-category a
//! Zipf popularity exponent drawn from its semantic class: electronics
//! analogs are steep, fashion/sports analogs are flat.

use amoe_tensor::Rng;

use crate::hierarchy::{CategoryHierarchy, SemanticClass, TcId};

/// Brand popularity and quality per top-category.
///
/// Brand ids are global: brand `b` of TC `t` has id `t * brands_per_tc + b`.
#[derive(Clone, Debug)]
pub struct BrandUniverse {
    brands_per_tc: usize,
    /// Per-TC Zipf exponent for brand popularity.
    exponents: Vec<f64>,
    /// Per-TC sampling weights over local brand ranks (precomputed CDF
    /// numerators).
    weights: Vec<Vec<f64>>,
    /// Global-brand-id → latent quality (how much the brand lifts the
    /// purchase logit; correlated with popularity so that popular brands
    /// really do sell more).
    quality: Vec<f32>,
}

impl BrandUniverse {
    /// Builds the universe; deterministic in the RNG state.
    #[must_use]
    pub fn build(hierarchy: &CategoryHierarchy, brands_per_tc: usize, rng: &mut Rng) -> Self {
        let mut exponents = Vec::with_capacity(hierarchy.num_tc());
        let mut weights = Vec::with_capacity(hierarchy.num_tc());
        let mut quality = Vec::with_capacity(hierarchy.num_tc() * brands_per_tc);
        for tc in 0..hierarchy.num_tc() {
            // Concentrated electronics, dispersed fashion, middling daily
            // necessities; small per-TC jitter.
            let base = match hierarchy.tc_class(tc) {
                SemanticClass::Electronics => 1.45,
                SemanticClass::DailyNecessities => 1.05,
                SemanticClass::Fashion => 0.72,
            };
            let s = base + rng.uniform_in(-0.06, 0.06) as f64;
            exponents.push(s);
            let w: Vec<f64> = (1..=brands_per_tc).map(|r| (r as f64).powf(-s)).collect();
            // Quality correlates with popularity rank: top brands are
            // genuinely better on average, plus idiosyncratic noise.
            for (rank0, _) in w.iter().enumerate() {
                let rank_strength = 1.0 - (rank0 as f32 / brands_per_tc as f32); // 1 → 0
                quality.push(1.2 * rank_strength + rng.normal_with(0.0, 0.35));
            }
            weights.push(w);
        }
        BrandUniverse {
            brands_per_tc,
            exponents,
            weights,
            quality,
        }
    }

    /// Brands per top-category.
    #[must_use]
    pub fn brands_per_tc(&self) -> usize {
        self.brands_per_tc
    }

    /// Total (global) brand vocabulary size.
    #[must_use]
    pub fn vocab(&self) -> usize {
        self.quality.len()
    }

    /// Zipf exponent of a top-category.
    #[must_use]
    pub fn exponent(&self, tc: TcId) -> f64 {
        self.exponents[tc]
    }

    /// Samples a global brand id for a product in `tc`, following the
    /// TC's popularity law.
    pub fn sample_brand(&self, tc: TcId, rng: &mut Rng) -> usize {
        let local = rng.weighted_index(&self.weights[tc]);
        tc * self.brands_per_tc + local
    }

    /// Latent quality (logit contribution before the per-TC brand
    /// strength multiplier) of a global brand id.
    #[must_use]
    pub fn quality(&self, global_brand: usize) -> f32 {
        self.quality[global_brand]
    }

    /// Popularity weight (unnormalised) of a global brand id within its TC.
    #[must_use]
    pub fn popularity(&self, global_brand: usize) -> f64 {
        let tc = global_brand / self.brands_per_tc;
        let local = global_brand % self.brands_per_tc;
        self.weights[tc][local]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (CategoryHierarchy, BrandUniverse) {
        let h = CategoryHierarchy::default();
        let mut rng = Rng::seed_from(99);
        let b = BrandUniverse::build(&h, 50, &mut rng);
        (h, b)
    }

    #[test]
    fn vocab_size() {
        let (h, b) = setup();
        assert_eq!(b.vocab(), h.num_tc() * 50);
    }

    #[test]
    fn electronics_steeper_than_fashion() {
        let (h, b) = setup();
        let phone = h.tc_by_name("Mobile Phone").unwrap();
        let sports = h.tc_by_name("Sports").unwrap();
        assert!(b.exponent(phone) > b.exponent(sports) + 0.3);
    }

    #[test]
    fn sampled_brands_stay_in_tc_block() {
        let (_h, b) = setup();
        let mut rng = Rng::seed_from(5);
        for tc in [0usize, 3, 11] {
            for _ in 0..200 {
                let g = b.sample_brand(tc, &mut rng);
                assert_eq!(g / 50, tc);
            }
        }
    }

    #[test]
    fn top_rank_most_popular() {
        let (_h, b) = setup();
        let mut rng = Rng::seed_from(6);
        let mut counts = vec![0usize; 50];
        for _ in 0..5000 {
            counts[b.sample_brand(0, &mut rng) % 50] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > counts[49]);
    }

    #[test]
    fn quality_correlates_with_rank() {
        let (_h, b) = setup();
        // Average quality of the top 10 ranks beats the bottom 10, per TC 0.
        let top: f32 = (0..10).map(|i| b.quality(i)).sum::<f32>() / 10.0;
        let bottom: f32 = (40..50).map(|i| b.quality(i)).sum::<f32>() / 10.0;
        assert!(top > bottom);
    }
}
