//! The generating ground truth: per-category purchase propensity models.
//!
//! This encodes the paper's Sec. 3 observations as the data-generating
//! process:
//!
//! * **Inter-category variance** — each semantic class has its own base
//!   weight template over the numeric features (e.g. good-comment ratio
//!   matters most for fashion, sales volume for electronics and foods),
//!   and each top-category jitters that template substantially.
//! * **Intra-category similarity** — each sub-category perturbs its
//!   parent's weights only slightly (`sibling_weight_noise`), so sibling
//!   SCs have nearly identical optimal ranking strategies. This is the
//!   structure the Hierarchical Soft Constraint exploits.
//! * **Brand influence** — brand quality lifts the logit with a per-TC
//!   strength: strong for electronics analogs, weak for fashion.

use amoe_tensor::Rng;

use crate::data::N_NUMERIC;
use crate::hierarchy::{CategoryHierarchy, ScId, SemanticClass, TcId};

/// Base numeric-feature weight template per semantic class, aligned with
/// [`crate::data::NUMERIC_FEATURE_NAMES`]:
/// `[price_z, sales_volume, good_comment_ratio, historical_ctr, rating,
///   discount, shipping_speed, recency]`.
fn class_template(class: SemanticClass) -> [f32; N_NUMERIC] {
    match class {
        SemanticClass::DailyNecessities => [-0.5, 1.4, 0.5, 1.0, 0.2, 0.7, 0.9, 0.1],
        SemanticClass::Electronics => [-0.3, 1.7, 0.4, 1.0, 0.7, -0.5, 0.2, 0.6],
        SemanticClass::Fashion => [-0.9, 0.4, 1.7, 1.0, 0.8, 1.0, 0.1, 0.9],
    }
}

fn class_brand_strength(class: SemanticClass) -> f32 {
    match class {
        SemanticClass::Electronics => 1.4,
        SemanticClass::DailyNecessities => 0.8,
        SemanticClass::Fashion => 0.45,
    }
}

/// The (hidden) data-generating model. Ranking models never see this;
/// analyses and oracle baselines may.
#[derive(Clone, Debug)]
pub struct GroundTruth {
    tc_weights: Vec<[f32; N_NUMERIC]>,
    sc_weights: Vec<[f32; N_NUMERIC]>,
    /// Per-SC coefficients of the two nonlinear interaction terms
    /// (price x rating and sales x discount). These make each category's
    /// optimal ranking function genuinely nonlinear, so a single small
    /// shared tower cannot represent all categories at once — the
    /// capacity regime the MoE targets.
    sc_interactions: Vec<[f32; 2]>,
    brand_strength: Vec<f32>,
    /// Global bias on the purchase logit, calibrated by the generator to
    /// hit the target purchase rate.
    bias: f32,
}

impl GroundTruth {
    /// Samples the ground truth for a hierarchy.
    #[must_use]
    pub fn build(hierarchy: &CategoryHierarchy, sibling_noise: f32, rng: &mut Rng) -> Self {
        let mut tc_weights = Vec::with_capacity(hierarchy.num_tc());
        let mut brand_strength = Vec::with_capacity(hierarchy.num_tc());
        for tc in 0..hierarchy.num_tc() {
            let class = hierarchy.tc_class(tc);
            let template = class_template(class);
            let mut w = [0f32; N_NUMERIC];
            for (wi, &t) in w.iter_mut().zip(&template) {
                // Substantial inter-TC jitter: 35% multiplicative plus an
                // additive component large enough to flip the sign of the
                // weaker weights — inter-category strategies genuinely
                // conflict (Sec. 3).
                *wi = t * (1.0 + rng.uniform_in(-0.35, 0.35)) + rng.normal_with(0.0, 0.3);
            }
            tc_weights.push(w);
            brand_strength.push(class_brand_strength(class) * (1.0 + rng.uniform_in(-0.15, 0.15)));
        }
        // Per-TC interaction coefficients, inherited (with small noise)
        // by the sub-categories.
        let tc_interactions: Vec<[f32; 2]> = (0..hierarchy.num_tc())
            .map(|_| [rng.normal_with(0.0, 0.8), rng.normal_with(0.0, 0.8)])
            .collect();
        let mut sc_weights = Vec::with_capacity(hierarchy.num_sc());
        let mut sc_interactions = Vec::with_capacity(hierarchy.num_sc());
        for sc in 0..hierarchy.num_sc() {
            let parent = hierarchy.parent(sc);
            let mut w = tc_weights[parent];
            for wi in &mut w {
                *wi *= 1.0 + rng.normal_with(0.0, sibling_noise);
            }
            sc_weights.push(w);
            let mut iw = tc_interactions[parent];
            for v in &mut iw {
                *v *= 1.0 + rng.normal_with(0.0, sibling_noise);
            }
            sc_interactions.push(iw);
        }
        GroundTruth {
            tc_weights,
            sc_weights,
            sc_interactions,
            brand_strength,
            bias: 0.0,
        }
    }

    /// Purchase logit for a product in `sc` with the given latent numeric
    /// features and brand quality (before label noise).
    #[must_use]
    pub fn logit(&self, sc: ScId, latent: &[f32; N_NUMERIC], brand_quality: f32) -> f32 {
        let tc = self.tc_of(sc);
        let w = &self.sc_weights[sc];
        let dot: f32 = w.iter().zip(latent).map(|(a, b)| a * b).sum();
        // Category-specific nonlinear interactions: price x rating and
        // sales x discount (indices 0x4 and 1x5). Values are clamped so a
        // single heavy-tailed draw cannot dominate the logit.
        let iw = &self.sc_interactions[sc];
        let ix1 = (latent[0] * latent[4]).clamp(-3.0, 3.0);
        let ix2 = (latent[1] * latent[5]).clamp(-3.0, 3.0);
        dot + iw[0] * ix1 + iw[1] * ix2 + self.brand_strength[tc] * brand_quality + self.bias
    }

    /// Interaction coefficients of a sub-category.
    #[must_use]
    pub fn sc_interaction(&self, sc: ScId) -> &[f32; 2] {
        &self.sc_interactions[sc]
    }

    fn tc_of(&self, sc: ScId) -> TcId {
        // sc_weights is parallel to the hierarchy's SC order; derive the
        // parent by ratio (SC blocks are uniform). Stored implicitly to
        // keep the struct lean.
        sc * self.tc_weights.len() / self.sc_weights.len()
    }

    /// Ground-truth weight vector of a sub-category.
    #[must_use]
    pub fn sc_weight(&self, sc: ScId) -> &[f32; N_NUMERIC] {
        &self.sc_weights[sc]
    }

    /// Ground-truth weight vector of a top-category.
    #[must_use]
    pub fn tc_weight(&self, tc: TcId) -> &[f32; N_NUMERIC] {
        &self.tc_weights[tc]
    }

    /// Brand-quality multiplier of a top-category.
    #[must_use]
    pub fn brand_strength(&self, tc: TcId) -> f32 {
        self.brand_strength[tc]
    }

    /// Current global bias.
    #[must_use]
    pub fn bias(&self) -> f32 {
        self.bias
    }

    /// Sets the global logit bias (purchase-rate calibration).
    pub fn set_bias(&mut self, bias: f32) {
        self.bias = bias;
    }
}

/// Mean absolute pairwise distance between weight vectors, used by tests
/// and the Fig. 2 analysis to quantify inter- vs intra-category variance.
#[must_use]
pub fn mean_weight_distance(weights: &[&[f32; N_NUMERIC]]) -> f32 {
    let n = weights.len();
    if n < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in i + 1..n {
            let d: f32 = weights[i]
                .iter()
                .zip(weights[j])
                .map(|(a, b)| (a - b).abs())
                .sum::<f32>()
                / N_NUMERIC as f32;
            total += d;
            pairs += 1;
        }
    }
    total / pairs as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (CategoryHierarchy, GroundTruth) {
        let h = CategoryHierarchy::default();
        let mut rng = Rng::seed_from(7);
        let t = GroundTruth::build(&h, 0.12, &mut rng);
        (h, t)
    }

    #[test]
    fn intra_tc_variance_much_smaller_than_inter() {
        let (h, t) = setup();
        // Mean distance between sibling SC weights within each TC.
        let mut intra = Vec::new();
        for tc in 0..h.num_tc() {
            let ws: Vec<&[f32; N_NUMERIC]> = h.subs_of(tc).map(|sc| t.sc_weight(sc)).collect();
            intra.push(mean_weight_distance(&ws));
        }
        let intra_mean: f32 = intra.iter().sum::<f32>() / intra.len() as f32;
        // Mean distance between TC weights.
        let tws: Vec<&[f32; N_NUMERIC]> = (0..h.num_tc()).map(|tc| t.tc_weight(tc)).collect();
        let inter = mean_weight_distance(&tws);
        assert!(
            inter > 2.0 * intra_mean,
            "inter {inter} should dwarf intra {intra_mean}"
        );
    }

    #[test]
    fn fashion_values_comments_electronics_values_volume() {
        let (h, t) = setup();
        let clothing = h.tc_by_name("Clothing").unwrap();
        let computer = h.tc_by_name("Computer").unwrap();
        const GCR: usize = 2; // good_comment_ratio
        const SV: usize = 1; // sales_volume
        assert!(t.tc_weight(clothing)[GCR] > t.tc_weight(computer)[GCR]);
        assert!(t.tc_weight(computer)[SV] > t.tc_weight(clothing)[SV]);
    }

    #[test]
    fn brand_strength_ordering() {
        let (h, t) = setup();
        let phone = h.tc_by_name("Mobile Phone").unwrap();
        let clothing = h.tc_by_name("Clothing").unwrap();
        assert!(t.brand_strength(phone) > t.brand_strength(clothing));
    }

    #[test]
    fn tc_of_matches_hierarchy() {
        let (h, t) = setup();
        for sc in 0..h.num_sc() {
            assert_eq!(t.tc_of(sc), h.parent(sc), "sc {sc}");
        }
    }

    #[test]
    fn bias_shifts_logit() {
        let (_h, mut t) = setup();
        let latent = [0.0; N_NUMERIC];
        let l0 = t.logit(0, &latent, 0.0);
        t.set_bias(1.5);
        let l1 = t.logit(0, &latent, 0.0);
        assert!((l1 - l0 - 1.5).abs() < 1e-6);
    }
}
