//! The two-level category tree and its semantic grouping (paper Table 4).

/// Index of a top-category (parent node in the tree).
pub type TcId = usize;
/// Index of a sub-category (leaf node in the tree).
pub type ScId = usize;

/// Semantic grouping of top-categories used for the gate-vector
/// clustering analysis (paper Table 4 / Fig. 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SemanticClass {
    /// "blue" — Foods, Kitchenware, Furniture, ...
    DailyNecessities,
    /// "green" — Mobile Phone, Computer, ...
    Electronics,
    /// "red" — Clothing, Jewelry, Leather, ...
    Fashion,
}

impl SemanticClass {
    /// All classes, in a stable order.
    pub const ALL: [SemanticClass; 3] = [
        SemanticClass::DailyNecessities,
        SemanticClass::Electronics,
        SemanticClass::Fashion,
    ];

    /// The paper's colour label for the class (Table 4).
    #[must_use]
    pub fn color(self) -> &'static str {
        match self {
            SemanticClass::DailyNecessities => "blue",
            SemanticClass::Electronics => "green",
            SemanticClass::Fashion => "red",
        }
    }

    /// Human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SemanticClass::DailyNecessities => "Daily Necessities",
            SemanticClass::Electronics => "Electronics",
            SemanticClass::Fashion => "Fashion",
        }
    }
}

/// The default top-category catalogue: name, semantic class, and the
/// *relative* share of training examples (the paper's log is heavily
/// skewed — Mobile Phone and Books are large, Clothing comparatively
/// small, Table 1).
const CATALOG: &[(&str, SemanticClass, f64)] = &[
    ("Foods", SemanticClass::DailyNecessities, 0.15),
    ("Kitchenware", SemanticClass::DailyNecessities, 0.055),
    ("Furniture", SemanticClass::DailyNecessities, 0.045),
    ("Books", SemanticClass::DailyNecessities, 0.16),
    ("Mobile Phone", SemanticClass::Electronics, 0.15),
    ("Computer", SemanticClass::Electronics, 0.12),
    ("Electronics", SemanticClass::Electronics, 0.06),
    ("Camera & Audio", SemanticClass::Electronics, 0.03),
    ("Clothing", SemanticClass::Fashion, 0.03),
    ("Jewelry", SemanticClass::Fashion, 0.03),
    ("Leather", SemanticClass::Fashion, 0.02),
    ("Sports", SemanticClass::Fashion, 0.15),
];

/// A two-level category tree: top-categories (TC) each owning a
/// contiguous block of sub-categories (SC).
#[derive(Clone, Debug)]
pub struct CategoryHierarchy {
    names: Vec<String>,
    classes: Vec<SemanticClass>,
    shares: Vec<f64>,
    /// `sc_parent[sc] = tc`.
    sc_parent: Vec<TcId>,
    /// `sc_range[tc] = (first_sc, last_sc_exclusive)`.
    sc_range: Vec<(ScId, ScId)>,
    /// Relative size share of each SC within the whole dataset.
    sc_shares: Vec<f64>,
}

impl CategoryHierarchy {
    /// Builds the default catalogue with `subs_per_tc` sub-categories per
    /// top-category. Within a TC, SC shares follow a mild power law
    /// (rank^-0.8), so every TC has a couple of dominant SCs and a tail
    /// of small siblings — the data-scarcity regime HSC targets.
    ///
    /// # Panics
    /// Panics if `subs_per_tc == 0`.
    #[must_use]
    pub fn with_subs(subs_per_tc: usize) -> Self {
        assert!(
            subs_per_tc > 0,
            "CategoryHierarchy: subs_per_tc must be > 0"
        );
        let mut names = Vec::new();
        let mut classes = Vec::new();
        let mut shares = Vec::new();
        let mut sc_parent = Vec::new();
        let mut sc_range = Vec::new();
        let mut sc_shares = Vec::new();
        for (tc, &(name, class, share)) in CATALOG.iter().enumerate() {
            names.push(name.to_string());
            classes.push(class);
            shares.push(share);
            let first = sc_parent.len();
            // Power-law shares within the TC, normalised to the TC share.
            let weights: Vec<f64> = (1..=subs_per_tc).map(|r| (r as f64).powf(-0.8)).collect();
            let wsum: f64 = weights.iter().sum();
            for w in &weights {
                sc_parent.push(tc);
                sc_shares.push(share * w / wsum);
            }
            sc_range.push((first, sc_parent.len()));
        }
        CategoryHierarchy {
            names,
            classes,
            shares,
            sc_parent,
            sc_range,
            sc_shares,
        }
    }

    /// Number of top-categories.
    #[must_use]
    pub fn num_tc(&self) -> usize {
        self.names.len()
    }

    /// Number of sub-categories.
    #[must_use]
    pub fn num_sc(&self) -> usize {
        self.sc_parent.len()
    }

    /// Name of a top-category.
    #[must_use]
    pub fn tc_name(&self, tc: TcId) -> &str {
        &self.names[tc]
    }

    /// Semantic class of a top-category (Table 4 grouping).
    #[must_use]
    pub fn tc_class(&self, tc: TcId) -> SemanticClass {
        self.classes[tc]
    }

    /// Looks up a top-category by name.
    #[must_use]
    pub fn tc_by_name(&self, name: &str) -> Option<TcId> {
        self.names.iter().position(|n| n == name)
    }

    /// Parent top-category of a sub-category.
    #[must_use]
    pub fn parent(&self, sc: ScId) -> TcId {
        self.sc_parent[sc]
    }

    /// The contiguous SC id range `[first, last)` under a top-category.
    #[must_use]
    pub fn subs_of(&self, tc: TcId) -> std::ops::Range<ScId> {
        let (a, b) = self.sc_range[tc];
        a..b
    }

    /// Whether two sub-categories share a parent.
    #[must_use]
    pub fn are_siblings(&self, a: ScId, b: ScId) -> bool {
        self.sc_parent[a] == self.sc_parent[b]
    }

    /// Relative dataset share of each sub-category (sums to ~1).
    #[must_use]
    pub fn sc_shares(&self) -> &[f64] {
        &self.sc_shares
    }

    /// Relative dataset share of a top-category.
    #[must_use]
    pub fn tc_share(&self, tc: TcId) -> f64 {
        self.shares[tc]
    }
}

impl Default for CategoryHierarchy {
    /// 12 top-categories × 12 sub-categories (the workspace default).
    fn default() -> Self {
        Self::with_subs(12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shape() {
        let h = CategoryHierarchy::default();
        assert_eq!(h.num_tc(), 12);
        assert_eq!(h.num_sc(), 144);
    }

    #[test]
    fn shares_normalised() {
        let h = CategoryHierarchy::default();
        let total: f64 = h.sc_shares().iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn parent_and_range_consistent() {
        let h = CategoryHierarchy::with_subs(5);
        for tc in 0..h.num_tc() {
            for sc in h.subs_of(tc) {
                assert_eq!(h.parent(sc), tc);
            }
        }
        // Ranges tile the SC space.
        let covered: usize = (0..h.num_tc()).map(|tc| h.subs_of(tc).len()).sum();
        assert_eq!(covered, h.num_sc());
    }

    #[test]
    fn siblings() {
        let h = CategoryHierarchy::with_subs(4);
        let r = h.subs_of(0);
        assert!(h.are_siblings(r.start, r.start + 1));
        let r2 = h.subs_of(1);
        assert!(!h.are_siblings(r.start, r2.start));
    }

    #[test]
    fn named_categories_exist() {
        let h = CategoryHierarchy::default();
        for name in [
            "Mobile Phone",
            "Books",
            "Clothing",
            "Foods",
            "Sports",
            "Computer",
        ] {
            assert!(h.tc_by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn clothing_smaller_than_books_and_mobile() {
        // Table 1 / Table 3 rely on this skew.
        let h = CategoryHierarchy::default();
        let c = h.tc_share(h.tc_by_name("Clothing").unwrap());
        let b = h.tc_share(h.tc_by_name("Books").unwrap());
        let m = h.tc_share(h.tc_by_name("Mobile Phone").unwrap());
        assert!(c < b && c < m);
    }

    #[test]
    fn within_tc_shares_skewed() {
        let h = CategoryHierarchy::default();
        let r = h.subs_of(0);
        let shares = h.sc_shares();
        assert!(shares[r.start] > shares[r.end - 1] * 2.0);
    }

    #[test]
    fn semantic_classes_cover_all_three() {
        let h = CategoryHierarchy::default();
        for class in SemanticClass::ALL {
            assert!(
                (0..h.num_tc()).any(|tc| h.tc_class(tc) == class),
                "no TC in {class:?}"
            );
        }
    }
}
