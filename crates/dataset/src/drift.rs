//! Distribution drift over the synthetic log: a streaming session
//! source whose generating process changes over discrete ticks.
//!
//! The static [`crate::generate`] snapshot answers "train once,
//! evaluate once". The online-learning loop needs the opposite: an
//! unbounded stream whose distribution moves under the model's feet,
//! so staleness has a measurable cost. [`DriftWorld`] provides that
//! stream with three seeded, deterministic drift mechanisms:
//!
//! 1. **Emerging sub-categories** — a fixed set of tail SCs per TC has
//!    zero traffic share before a scheduled activation tick and a
//!    boosted share afterwards. The *vocabulary never changes* (new SCs
//!    exist in the schema from tick 0), so every checkpoint along the
//!    stream stays RELOAD-compatible with a server started on the seed
//!    snapshot; what changes is which ids actually carry traffic.
//! 2. **Brand-popularity shift** — each TC's Zipf popularity vector
//!    blends linearly from the seed ranking toward a permuted target
//!    ranking: yesterday's head brands decay, tail brands rise. Sales
//!    features and raw sales follow the *current* popularity, so the
//!    sales↔popularity correlation the models exploit drifts too.
//! 3. **Seasonal feature-weight rotation** — each TC rotates its
//!    ground-truth weight vector in a fixed two-feature plane by an
//!    angle that oscillates sinusoidally over ticks. Norms are
//!    preserved; *which* feature matters changes with the season.
//!
//! Every window is a pure function of `(GeneratorConfig, DriftConfig,
//! tick)`: [`DriftWorld::window`] takes `&self`, derives a fresh RNG
//! stream per tick, and never mutates world state — so streams are
//! bit-identical across runs, replay order, and `AMOE_THREADS`.

use std::ops::Range;

use amoe_tensor::{ops, Rng};

use crate::brands::BrandUniverse;
use crate::config::GeneratorConfig;
use crate::data::{DatasetMeta, Example, Split, N_NUMERIC};
use crate::generator::{calibrate_bias, normal_cdf, F_SALES};
use crate::hierarchy::{CategoryHierarchy, ScId, TcId};
use crate::query_model::QueryClassifier;
use crate::truth::GroundTruth;

/// Offset added to the per-tick RNG stream id so window streams never
/// collide with the static generator's streams 1–5.
const WINDOW_STREAM_BASE: u64 = 0x00D7_1F70;

/// Seeded drift schedule parameters. All drift is a deterministic
/// function of this config plus the tick index.
#[derive(Clone, Debug)]
pub struct DriftConfig {
    /// Seed for the drift schedule (activation ticks, target brand
    /// permutations, rotation planes/phases). Independent of the world
    /// seed so the same world can be replayed under different drifts.
    pub seed: u64,
    /// Number of tail sub-categories per top-category that start with
    /// zero traffic and activate mid-stream.
    pub emerging_per_tc: usize,
    /// Earliest tick at which an emerging SC may activate.
    pub activation_start: u64,
    /// Activation ticks are staggered uniformly over
    /// `[activation_start, activation_start + activation_span)`.
    pub activation_span: u64,
    /// Traffic-share multiplier an emerging SC receives once active
    /// (new categories arrive hot, which is what makes staleness hurt).
    pub emerging_boost: f64,
    /// Per-tick progress of the brand-popularity blend; the mix hits
    /// 100% target ranking at tick `1 / brand_shift_per_tick`.
    pub brand_shift_per_tick: f64,
    /// Ticks per full seasonal cycle of the weight rotation.
    pub season_period: f64,
    /// Peak rotation angle in radians.
    pub season_amplitude: f32,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            seed: 7,
            emerging_per_tc: 3,
            activation_start: 2,
            activation_span: 6,
            emerging_boost: 3.0,
            brand_shift_per_tick: 0.08,
            season_period: 16.0,
            season_amplitude: 1.1,
        }
    }
}

impl DriftConfig {
    /// Panics on nonsensical settings.
    pub fn validate(&self) {
        assert!(self.activation_span >= 1, "activation_span must be >= 1");
        assert!(self.emerging_boost > 0.0, "emerging_boost must be > 0");
        assert!(
            self.brand_shift_per_tick >= 0.0,
            "brand_shift_per_tick must be >= 0"
        );
        assert!(self.season_period > 0.0, "season_period must be > 0");
    }
}

/// One timestamped window of the drifting stream.
#[derive(Clone, Debug)]
pub struct SessionWindow {
    /// Logical timestamp: the stream tick this window was emitted at.
    pub tick: u64,
    /// The window's sessions, in the standard split layout.
    pub split: Split,
}

/// A query in the stream's fixed query universe (identical to the
/// static generator's: same RNG stream, same classifier channel).
#[derive(Clone, Debug)]
struct StreamQuery {
    true_sc: ScId,
    pred_sc: ScId,
    popularity: f64,
}

/// A drifting world: the static world model (hierarchy, brands, ground
/// truth, query universe — built exactly like [`crate::generate`]'s,
/// so the schema and seed distribution match the snapshot trained on)
/// plus a precomputed drift schedule.
pub struct DriftWorld {
    config: GeneratorConfig,
    drift: DriftConfig,
    hierarchy: CategoryHierarchy,
    brands: BrandUniverse,
    truth: GroundTruth,
    queries: Vec<StreamQuery>,
    meta: DatasetMeta,
    /// Per-SC activation tick; 0 = carried traffic from the start.
    activation: Vec<u64>,
    /// Per-TC target (fully-shifted) brand popularity vectors.
    brand_target: Vec<Vec<f64>>,
    /// Per-TC rotation plane (two distinct feature indices).
    season_plane: Vec<(usize, usize)>,
    /// Per-TC seasonal phase offset.
    season_phase: Vec<f32>,
}

impl DriftWorld {
    /// Builds the world and drift schedule. Deterministic in
    /// `(config, drift)`.
    ///
    /// # Panics
    /// Panics if either config is invalid, or if `emerging_per_tc`
    /// does not leave at least one always-active SC per TC.
    #[must_use]
    pub fn new(config: &GeneratorConfig, drift: &DriftConfig) -> Self {
        config.validate();
        drift.validate();
        assert!(
            drift.emerging_per_tc < config.subs_per_tc,
            "emerging_per_tc ({}) must leave at least one always-active SC per TC ({})",
            drift.emerging_per_tc,
            config.subs_per_tc
        );

        // Mirror `generate`'s stream forks so hierarchy/brands/truth —
        // and therefore the schema and calibrated bias — are identical
        // to the seed snapshot a frozen model was trained on.
        let mut root = Rng::seed_from(config.seed);
        let mut world_rng = root.fork(1);
        let mut query_rng = root.fork(2);
        let mut calib_rng = root.fork(3);

        let hierarchy = CategoryHierarchy::with_subs(config.subs_per_tc);
        let brands = BrandUniverse::build(&hierarchy, config.brands_per_tc, &mut world_rng);
        let mut truth = GroundTruth::build(&hierarchy, config.sibling_weight_noise, &mut world_rng);

        let classifier = QueryClassifier::new(
            config.classifier_accuracy,
            config.classifier_sibling_confusion,
        );
        let sc_shares = hierarchy.sc_shares().to_vec();
        let queries: Vec<StreamQuery> = (0..config.n_queries)
            .map(|_| {
                let true_sc = query_rng.weighted_index(&sc_shares);
                let pred_sc = classifier.predict(&hierarchy, true_sc, &mut query_rng);
                let popularity = (1.0 - query_rng.uniform()).powf(2.0) + 0.05;
                StreamQuery {
                    true_sc,
                    pred_sc,
                    popularity,
                }
            })
            .collect();

        let probe: Vec<f32> = (0..4000)
            .map(|_| {
                let sc = calib_rng.weighted_index(&sc_shares);
                let tc = hierarchy.parent(sc);
                let brand = brands.sample_brand(tc, &mut calib_rng);
                let latent = sample_latent_with(brands.popularity(brand), &mut calib_rng);
                truth.logit(sc, &latent, brands.quality(brand))
                    + calib_rng.normal_with(0.0, config.label_noise)
            })
            .collect();
        truth.set_bias(calibrate_bias(&probe, config.target_purchase_rate));

        // --- drift schedule (own seed, own streams) ---------------------
        let mut drift_root = Rng::seed_from(drift.seed);
        let mut sched_rng = drift_root.fork(1);

        let mut activation = vec![0u64; hierarchy.num_sc()];
        for tc in 0..hierarchy.num_tc() {
            let subs = hierarchy.subs_of(tc);
            for k in 0..drift.emerging_per_tc {
                let sc = subs.end - 1 - k;
                activation[sc] =
                    drift.activation_start + sched_rng.below(drift.activation_span as usize) as u64;
            }
        }

        let bpt = brands.brands_per_tc();
        let brand_target: Vec<Vec<f64>> = (0..hierarchy.num_tc())
            .map(|tc| {
                let mut w: Vec<f64> = (0..bpt).map(|r| brands.popularity(tc * bpt + r)).collect();
                sched_rng.shuffle(&mut w);
                w
            })
            .collect();

        let season_plane: Vec<(usize, usize)> = (0..hierarchy.num_tc())
            .map(|_| {
                let i = sched_rng.below(N_NUMERIC);
                let mut j = sched_rng.below(N_NUMERIC - 1);
                if j >= i {
                    j += 1;
                }
                (i, j)
            })
            .collect();
        let season_phase: Vec<f32> = (0..hierarchy.num_tc())
            .map(|_| sched_rng.uniform_in(0.0, std::f32::consts::TAU))
            .collect();

        let meta = DatasetMeta {
            sc_vocab: hierarchy.num_sc(),
            tc_vocab: hierarchy.num_tc(),
            brand_vocab: brands.vocab(),
            shop_vocab: config.n_shops,
            user_segment_vocab: config.n_user_segments,
            price_bucket_vocab: config.n_price_buckets,
            query_vocab: config.n_queries,
            n_numeric: N_NUMERIC,
        };

        DriftWorld {
            config: config.clone(),
            drift: drift.clone(),
            hierarchy,
            brands,
            truth,
            queries,
            meta,
            activation,
            brand_target,
            season_plane,
            season_phase,
        }
    }

    /// Schema of every window (fixed for the stream's whole lifetime).
    #[must_use]
    pub fn meta(&self) -> &DatasetMeta {
        &self.meta
    }

    /// The category tree behind the stream.
    #[must_use]
    pub fn hierarchy(&self) -> &CategoryHierarchy {
        &self.hierarchy
    }

    /// The base generator configuration.
    #[must_use]
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// The drift schedule parameters.
    #[must_use]
    pub fn drift(&self) -> &DriftConfig {
        &self.drift
    }

    /// Whether `sc` carries traffic at `tick`.
    #[must_use]
    pub fn sc_active(&self, sc: ScId, tick: u64) -> bool {
        tick >= self.activation[sc]
    }

    /// The tick at which `sc` starts carrying traffic (0 = always on).
    #[must_use]
    pub fn activation_tick(&self, sc: ScId) -> u64 {
        self.activation[sc]
    }

    /// Blend factor of the brand-popularity shift at `tick`: 0 = seed
    /// ranking, 1 = fully permuted target ranking.
    #[must_use]
    pub fn brand_mix(&self, tick: u64) -> f64 {
        (tick as f64 * self.drift.brand_shift_per_tick).min(1.0)
    }

    /// Effective (unnormalised) popularity of local brand rank `local`
    /// in `tc` at `tick`.
    #[must_use]
    pub fn brand_weight(&self, tc: TcId, local: usize, tick: u64) -> f64 {
        let alpha = self.brand_mix(tick);
        let base = self
            .brands
            .popularity(tc * self.brands.brands_per_tc() + local);
        (1.0 - alpha) * base + alpha * self.brand_target[tc][local]
    }

    /// Seasonal rotation angle of `tc`'s weight plane at `tick`.
    #[must_use]
    pub fn season_angle(&self, tc: TcId, tick: u64) -> f32 {
        let t = tick as f64 / self.drift.season_period;
        self.drift.season_amplitude
            * ((std::f64::consts::TAU * t) as f32 + self.season_phase[tc]).sin()
    }

    /// The effective ground-truth weight vector of `sc` at `tick`: the
    /// seed weights rotated by [`Self::season_angle`] in the TC's
    /// drift plane. Norm-preserving; equals the seed weights whenever
    /// the angle is zero.
    #[must_use]
    pub fn drift_weight(&self, sc: ScId, tick: u64) -> [f32; N_NUMERIC] {
        let tc = self.hierarchy.parent(sc);
        let mut w = *self.truth.sc_weight(sc);
        let (i, j) = self.season_plane[tc];
        let theta = self.season_angle(tc, tick);
        let (sin, cos) = theta.sin_cos();
        let (wi, wj) = (w[i], w[j]);
        w[i] = cos * wi - sin * wj;
        w[j] = sin * wi + cos * wj;
        w
    }

    /// Purchase logit at `tick`: the seed ground truth with the
    /// seasonally rotated weight vector.
    #[must_use]
    pub fn drift_logit(
        &self,
        sc: ScId,
        latent: &[f32; N_NUMERIC],
        brand_quality: f32,
        tick: u64,
    ) -> f32 {
        let tc = self.hierarchy.parent(sc);
        let w = self.drift_weight(sc, tick);
        let dot: f32 = w.iter().zip(latent).map(|(a, b)| a * b).sum();
        let iw = self.truth.sc_interaction(sc);
        let ix1 = (latent[0] * latent[4]).clamp(-3.0, 3.0);
        let ix2 = (latent[1] * latent[5]).clamp(-3.0, 3.0);
        dot + iw[0] * ix1
            + iw[1] * ix2
            + self.truth.brand_strength(tc) * brand_quality
            + self.truth.bias()
    }

    /// Emits the session window for `tick`. Pure: same `(world, tick,
    /// n_sessions)` → bit-identical window, independent of call order
    /// and thread count.
    ///
    /// # Panics
    /// Panics if `n_sessions` is zero.
    #[must_use]
    pub fn window(&self, tick: u64, n_sessions: usize) -> SessionWindow {
        assert!(n_sessions > 0, "DriftWorld::window: n_sessions must be > 0");
        let mut root = Rng::seed_from(self.config.seed);
        let mut rng = root.fork(WINDOW_STREAM_BASE ^ tick.wrapping_mul(0x9E37_79B9_7F4A_7C15));

        // Query traffic at this tick: base popularity, gated on the
        // target SC being active and boosted while it is "new".
        let query_weights: Vec<f64> = self
            .queries
            .iter()
            .map(|q| {
                let act = self.activation[q.true_sc];
                if tick < act {
                    0.0
                } else if act > 0 {
                    q.popularity * self.drift.emerging_boost
                } else {
                    q.popularity
                }
            })
            .collect();

        // Per-TC effective brand popularity and active sibling sets.
        let bpt = self.brands.brands_per_tc();
        let brand_weights: Vec<Vec<f64>> = (0..self.hierarchy.num_tc())
            .map(|tc| (0..bpt).map(|r| self.brand_weight(tc, r, tick)).collect())
            .collect();
        let active_subs: Vec<Vec<ScId>> = (0..self.hierarchy.num_tc())
            .map(|tc| {
                self.hierarchy
                    .subs_of(tc)
                    .filter(|&sc| self.sc_active(sc, tick))
                    .collect()
            })
            .collect();

        let span = self.config.max_items_per_session - self.config.min_items_per_session + 1;
        let mut examples = Vec::new();
        let mut sessions: Vec<Range<usize>> = Vec::with_capacity(n_sessions);
        for session_id in 0..n_sessions {
            let qid = rng.weighted_index(&query_weights);
            let query = &self.queries[qid];
            let n_items = self.config.min_items_per_session + rng.below(span);
            let user_segment = rng.below(self.config.n_user_segments);
            let start = examples.len();
            for _ in 0..n_items {
                let true_sc = if rng.bernoulli(0.85) {
                    query.true_sc
                } else {
                    let sibs = &active_subs[self.hierarchy.parent(query.true_sc)];
                    sibs[rng.below(sibs.len())]
                };
                let true_tc = self.hierarchy.parent(true_sc);
                let local = rng.weighted_index(&brand_weights[true_tc]);
                let brand = true_tc * bpt + local;
                let popularity = brand_weights[true_tc][local];
                let latent = sample_latent_with(popularity, &mut rng);

                let logit = self.drift_logit(true_sc, &latent, self.brands.quality(brand), tick)
                    + rng.normal_with(0.0, self.config.label_noise);
                let label = rng.bernoulli(ops::sigmoid_scalar(logit) as f64);

                let mut numeric = [0f32; N_NUMERIC];
                for (obs, &lat) in numeric.iter_mut().zip(&latent) {
                    *obs = lat + rng.normal_with(0.0, self.config.feature_noise);
                }
                let price_cdf = normal_cdf(numeric[crate::generator::F_PRICE]);
                let price_bucket = ((price_cdf * self.config.n_price_buckets as f32) as usize)
                    .min(self.config.n_price_buckets - 1);
                let raw_sales = (popularity as f32) * (rng.normal_with(0.0, 0.4)).exp() * 1000.0;

                examples.push(Example {
                    session: session_id as u32,
                    query: qid as u32,
                    true_sc,
                    true_tc,
                    pred_sc: query.pred_sc,
                    pred_tc: self.hierarchy.parent(query.pred_sc),
                    brand,
                    shop: rng.zipf(self.config.n_shops, 1.05) - 1,
                    user_segment,
                    price_bucket,
                    numeric,
                    label,
                    raw_sales,
                });
            }
            sessions.push(start..examples.len());
        }
        SessionWindow {
            tick,
            split: Split { examples, sessions },
        }
    }
}

/// Latent numeric features for a product with the given (effective)
/// popularity weight — the drift-aware analog of the static
/// generator's latent sampler: sales track the popularity *current at
/// the tick*, not the seed ranking.
fn sample_latent_with(popularity: f64, rng: &mut Rng) -> [f32; N_NUMERIC] {
    let mut latent = [0f32; N_NUMERIC];
    for v in &mut latent {
        *v = rng.normal() as f32;
    }
    let pop_z = (popularity.ln() as f32 + 2.5) * 0.6;
    latent[F_SALES] = 0.8 * pop_z + 0.6 * latent[F_SALES];
    latent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    fn world() -> DriftWorld {
        DriftWorld::new(&GeneratorConfig::tiny(42), &DriftConfig::default())
    }

    #[test]
    fn windows_are_deterministic() {
        let w1 = world();
        let w2 = world();
        for tick in [0u64, 3, 9] {
            let a = w1.window(tick, 20);
            let b = w2.window(tick, 20);
            assert_eq!(a.split.len(), b.split.len());
            for (x, y) in a.split.examples.iter().zip(&b.split.examples) {
                assert_eq!(x.numeric, y.numeric);
                assert_eq!(x.label, y.label);
                assert_eq!(x.brand, y.brand);
                assert_eq!(x.true_sc, y.true_sc);
            }
        }
    }

    #[test]
    fn window_independent_of_emission_order() {
        let w = world();
        let late_first = w.window(7, 15);
        let _ = w.window(0, 15);
        let late_again = w.window(7, 15);
        for (x, y) in late_first
            .split
            .examples
            .iter()
            .zip(&late_again.split.examples)
        {
            assert_eq!(x.numeric, y.numeric);
            assert_eq!(x.label, y.label);
        }
    }

    #[test]
    fn schema_matches_static_generator() {
        let cfg = GeneratorConfig::tiny(42);
        let d = generate(&cfg);
        let w = DriftWorld::new(&cfg, &DriftConfig::default());
        assert_eq!(*w.meta(), d.meta);
    }

    #[test]
    fn emerging_scs_silent_before_activation() {
        let w = world();
        let emerging: Vec<ScId> = (0..w.meta().sc_vocab)
            .filter(|&sc| w.activation_tick(sc) > 0)
            .collect();
        assert_eq!(
            emerging.len(),
            w.hierarchy().num_tc() * w.drift().emerging_per_tc
        );
        // Before any activation tick, no emerging SC appears.
        let early = w.window(0, 60);
        for e in &early.split.examples {
            assert!(
                w.sc_active(e.true_sc, 0),
                "inactive sc {} emitted at tick 0",
                e.true_sc
            );
        }
        // Well past the activation span, emerging SCs carry traffic.
        let horizon = w.drift().activation_start + w.drift().activation_span + 2;
        let late = w.window(horizon, 400);
        let seen = late
            .split
            .examples
            .iter()
            .filter(|e| w.activation_tick(e.true_sc) > 0)
            .count();
        assert!(seen > 0, "no emerging-SC traffic at tick {horizon}");
    }

    #[test]
    fn brand_mix_progresses_and_saturates() {
        let w = world();
        assert_eq!(w.brand_mix(0), 0.0);
        assert!(w.brand_mix(5) > 0.0 && w.brand_mix(5) < 1.0);
        assert_eq!(w.brand_mix(1_000), 1.0);
        // Blended weights stay positive (valid sampling weights).
        for tc in 0..w.hierarchy().num_tc() {
            for local in 0..w.config().brands_per_tc {
                assert!(w.brand_weight(tc, local, 6) > 0.0);
            }
        }
    }

    #[test]
    fn seasonal_rotation_preserves_norm_and_moves_weights() {
        let w = world();
        let sc = 0;
        let base = w
            .drift_weight(sc, 0)
            .iter()
            .map(|v| v * v)
            .sum::<f32>()
            .sqrt();
        let mut max_delta = 0f32;
        for tick in 0..20u64 {
            let rot = w.drift_weight(sc, tick);
            let norm = rot.iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((norm - base).abs() < 1e-4, "norm drift at tick {tick}");
            let delta: f32 = rot
                .iter()
                .zip(w.drift_weight(sc, 0).iter())
                .map(|(a, b)| (a - b).abs())
                .sum();
            max_delta = max_delta.max(delta);
        }
        assert!(max_delta > 0.1, "rotation never moved the weights");
    }

    #[test]
    fn windows_have_sessions_and_both_label_classes() {
        let w = world();
        let win = w.window(4, 120);
        assert_eq!(win.tick, 4);
        let mut covered = 0usize;
        for r in &win.split.sessions {
            assert_eq!(r.start, covered);
            covered = r.end;
        }
        assert_eq!(covered, win.split.len());
        let rate = win.split.positive_rate();
        assert!(rate > 0.01 && rate < 0.6, "positive rate {rate}");
        for e in &win.split.examples {
            assert!(e.true_sc < w.meta().sc_vocab);
            assert!(e.brand < w.meta().brand_vocab);
            assert!(e.price_bucket < w.meta().price_bucket_vocab);
        }
    }

    #[test]
    fn different_drift_seeds_change_the_schedule() {
        let cfg = GeneratorConfig::tiny(42);
        let a = DriftWorld::new(
            &cfg,
            &DriftConfig {
                seed: 1,
                ..DriftConfig::default()
            },
        );
        let b = DriftWorld::new(
            &cfg,
            &DriftConfig {
                seed: 2,
                ..DriftConfig::default()
            },
        );
        let differ =
            (0..a.meta().sc_vocab).any(|sc| a.activation_tick(sc) != b.activation_tick(sc));
        assert!(differ, "activation schedules identical across drift seeds");
    }
}
