//! Category bucketing utilities.
//!
//! Two bucketing schemes from the paper:
//!
//! * **MMoE task buckets** (Sec. 5.1.4): categories divided into
//!   `n_buckets` groups of roughly equal training-example counts, each
//!   treated as one task with its own gate.
//! * **Data-size buckets** (Fig. 5): categories grouped by ascending
//!   training-data size, used to show that the model's AUC gains are
//!   largest on small categories.

use crate::data::Split;
use crate::hierarchy::TcId;

/// Assigns each top-category to one of `n_buckets` task buckets with
/// roughly equal example counts (greedy longest-processing-time binning:
/// biggest categories first, each into the currently lightest bucket).
///
/// Returns `tc → bucket`. Categories absent from the split land in the
/// lightest bucket.
///
/// # Panics
/// Panics if `n_buckets == 0`.
#[must_use]
pub fn equal_count_task_buckets(split: &Split, num_tc: usize, n_buckets: usize) -> Vec<usize> {
    assert!(n_buckets > 0, "equal_count_task_buckets: n_buckets == 0");
    let counts = split.tc_counts(num_tc);
    let mut order: Vec<TcId> = (0..num_tc).collect();
    order.sort_by_key(|&tc| std::cmp::Reverse(counts[tc]));
    let mut load = vec![0usize; n_buckets];
    let mut assignment = vec![0usize; num_tc];
    for tc in order {
        let lightest = (0..n_buckets)
            .min_by_key(|&b| load[b])
            .expect("n_buckets > 0");
        assignment[tc] = lightest;
        load[lightest] += counts[tc];
    }
    assignment
}

/// Groups top-categories into `n_buckets` buckets by ascending training
/// size (Fig. 5's x-axis). Returns `(bucket → member TCs, bucket → total
/// examples)`; bucket 0 holds the smallest categories.
#[must_use]
pub fn size_buckets(
    split: &Split,
    num_tc: usize,
    n_buckets: usize,
) -> (Vec<Vec<TcId>>, Vec<usize>) {
    assert!(n_buckets > 0, "size_buckets: n_buckets == 0");
    let counts = split.tc_counts(num_tc);
    let mut order: Vec<TcId> = (0..num_tc).collect();
    order.sort_by_key(|&tc| counts[tc]);
    let mut members = vec![Vec::new(); n_buckets];
    let mut totals = vec![0usize; n_buckets];
    let per = num_tc.div_ceil(n_buckets);
    for (i, tc) in order.into_iter().enumerate() {
        let b = (i / per).min(n_buckets - 1);
        members[b].push(tc);
        totals[b] += counts[tc];
    }
    (members, totals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GeneratorConfig;
    use crate::generator::generate;

    #[test]
    fn task_buckets_roughly_balanced() {
        let d = generate(&GeneratorConfig {
            train_sessions: 2_000,
            ..GeneratorConfig::tiny(1)
        });
        let num_tc = d.hierarchy.num_tc();
        let assignment = equal_count_task_buckets(&d.train, num_tc, 10);
        assert_eq!(assignment.len(), num_tc);
        assert!(assignment.iter().all(|&b| b < 10));
        let counts = d.train.tc_counts(num_tc);
        let mut load = vec![0usize; 10];
        for (tc, &b) in assignment.iter().enumerate() {
            load[b] += counts[tc];
        }
        let max = *load.iter().max().unwrap();
        let nonzero_min = *load.iter().filter(|&&l| l > 0).min().unwrap();
        // Greedy LPT keeps the spread within the largest single category.
        let biggest = *counts.iter().max().unwrap();
        assert!(
            max - nonzero_min <= biggest,
            "load spread too wide: {load:?}"
        );
    }

    #[test]
    fn size_buckets_ascending() {
        let d = generate(&GeneratorConfig {
            train_sessions: 2_000,
            ..GeneratorConfig::tiny(2)
        });
        let num_tc = d.hierarchy.num_tc();
        let (members, totals) = size_buckets(&d.train, num_tc, 4);
        let covered: usize = members.iter().map(Vec::len).sum();
        assert_eq!(covered, num_tc);
        // Mean member size grows with the bucket index.
        let counts = d.train.tc_counts(num_tc);
        let mean = |tcs: &Vec<usize>| -> f64 {
            tcs.iter().map(|&t| counts[t]).sum::<usize>() as f64 / tcs.len().max(1) as f64
        };
        for b in 1..4 {
            assert!(
                mean(&members[b]) >= mean(&members[b - 1]),
                "bucket {b} not ascending"
            );
        }
        assert_eq!(totals.iter().sum::<usize>(), d.train.len());
    }

    #[test]
    fn single_bucket_takes_all() {
        let d = generate(&GeneratorConfig::tiny(3));
        let num_tc = d.hierarchy.num_tc();
        let a = equal_count_task_buckets(&d.train, num_tc, 1);
        assert!(a.iter().all(|&b| b == 0));
    }
}
