//! The query→category classifier channel.
//!
//! The paper (Sec. 4.1) trains a bidirectional GRU on ~100k human-labelled
//! queries to predict each query's sub-category; top-categories follow
//! from the hierarchy. The downstream ranking models consume only the
//! predicted ids, so we model the classifier as a noisy channel with the
//! confusion structure such a model exhibits: correct with probability
//! `accuracy`, confused with a *sibling* SC for most of the error mass
//! (queries in the same top-category share vocabulary), and with a random
//! SC otherwise.

use amoe_tensor::Rng;

use crate::hierarchy::{CategoryHierarchy, ScId};

/// Noisy query→SC classification channel.
#[derive(Clone, Debug)]
pub struct QueryClassifier {
    accuracy: f64,
    sibling_confusion: f64,
}

impl QueryClassifier {
    /// Creates a channel with the given accuracy and sibling-confusion
    /// fraction (of the error mass).
    ///
    /// # Panics
    /// Panics if either probability is outside `[0, 1]`.
    #[must_use]
    pub fn new(accuracy: f64, sibling_confusion: f64) -> Self {
        assert!((0.0..=1.0).contains(&accuracy));
        assert!((0.0..=1.0).contains(&sibling_confusion));
        QueryClassifier {
            accuracy,
            sibling_confusion,
        }
    }

    /// Predicts the SC for a query whose true SC is `true_sc`.
    pub fn predict(&self, hierarchy: &CategoryHierarchy, true_sc: ScId, rng: &mut Rng) -> ScId {
        if rng.bernoulli(self.accuracy) {
            return true_sc;
        }
        if rng.bernoulli(self.sibling_confusion) {
            // A sibling other than the true SC, when one exists.
            let sibs = hierarchy.subs_of(hierarchy.parent(true_sc));
            if sibs.len() > 1 {
                loop {
                    let pick = sibs.start + rng.below(sibs.len());
                    if pick != true_sc {
                        return pick;
                    }
                }
            }
        }
        // Uniform over all other SCs.
        loop {
            let pick = rng.below(hierarchy.num_sc());
            if pick != true_sc {
                return pick;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_channel_is_identity() {
        let h = CategoryHierarchy::default();
        let c = QueryClassifier::new(1.0, 0.5);
        let mut rng = Rng::seed_from(1);
        for sc in [0usize, 17, 95] {
            for _ in 0..50 {
                assert_eq!(c.predict(&h, sc, &mut rng), sc);
            }
        }
    }

    #[test]
    fn accuracy_is_respected() {
        let h = CategoryHierarchy::default();
        let c = QueryClassifier::new(0.8, 0.5);
        let mut rng = Rng::seed_from(2);
        let n = 20_000;
        let correct = (0..n).filter(|_| c.predict(&h, 10, &mut rng) == 10).count();
        let rate = correct as f64 / n as f64;
        assert!((rate - 0.8).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn errors_prefer_siblings() {
        let h = CategoryHierarchy::default();
        let c = QueryClassifier::new(0.0, 0.8); // always wrong
        let mut rng = Rng::seed_from(3);
        let true_sc = 20;
        let n = 10_000;
        let sibling_hits = (0..n)
            .filter(|_| {
                let p = c.predict(&h, true_sc, &mut rng);
                p != true_sc && h.are_siblings(p, true_sc)
            })
            .count();
        let rate = sibling_hits as f64 / n as f64;
        // 0.8 sibling confusion plus the random branch occasionally
        // landing on a sibling.
        assert!(rate > 0.75, "sibling rate {rate}");
    }

    #[test]
    fn never_returns_true_sc_when_wrong() {
        let h = CategoryHierarchy::default();
        let c = QueryClassifier::new(0.0, 0.5);
        let mut rng = Rng::seed_from(4);
        for _ in 0..2000 {
            assert_ne!(c.predict(&h, 33, &mut rng), 33);
        }
    }
}
