//! CSV export of generated datasets, for inspection or use outside this
//! workspace (plotting Fig. 2/3 analogs, cross-checking with other ML
//! stacks).

use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::data::{Split, NUMERIC_FEATURE_NAMES};

/// Writes a split as CSV: one row per example with session/query ids,
/// category ids (true and predicted), sparse ids, numeric features and
/// the label. Returns the number of rows written.
///
/// # Errors
/// Propagates I/O failures.
pub fn write_split_csv(split: &Split, path: impl AsRef<Path>) -> io::Result<usize> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    write!(
        w,
        "session,query,true_tc,true_sc,pred_tc,pred_sc,brand,shop,user_segment,price_bucket"
    )?;
    for name in NUMERIC_FEATURE_NAMES {
        write!(w, ",{name}")?;
    }
    writeln!(w, ",raw_sales,label")?;
    for e in &split.examples {
        write!(
            w,
            "{},{},{},{},{},{},{},{},{},{}",
            e.session,
            e.query,
            e.true_tc,
            e.true_sc,
            e.pred_tc,
            e.pred_sc,
            e.brand,
            e.shop,
            e.user_segment,
            e.price_bucket
        )?;
        for v in &e.numeric {
            write!(w, ",{v}")?;
        }
        writeln!(w, ",{},{}", e.raw_sales, u8::from(e.label))?;
    }
    w.flush()?;
    Ok(split.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GeneratorConfig;
    use crate::generator::generate;

    #[test]
    fn csv_roundtrip_structure() {
        let d = generate(&GeneratorConfig::tiny(91));
        let path = std::env::temp_dir().join(format!("amoe_export_{}.csv", std::process::id()));
        let rows = write_split_csv(&d.train, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), rows + 1, "header + one line per example");
        assert!(lines[0].starts_with("session,query,true_tc"));
        assert!(lines[0].contains("good_comment_ratio"));
        // Every data line has the same field count as the header.
        let fields = lines[0].split(',').count();
        for (i, line) in lines[1..].iter().enumerate().take(50) {
            assert_eq!(line.split(',').count(), fields, "line {i}");
        }
        // Labels are 0/1.
        let label_idx = fields - 1;
        for line in &lines[1..] {
            let label = line.split(',').nth(label_idx).unwrap();
            assert!(label == "0" || label == "1");
        }
    }
}
