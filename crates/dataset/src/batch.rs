//! Mini-batch assembly and shuffled epoch iteration.

use amoe_tensor::{Matrix, Rng};

use crate::data::{Example, Split, N_NUMERIC};

/// A dense mini-batch ready for model consumption.
///
/// Sparse ids stay as index vectors (embedding lookups happen inside the
/// model); numeric features and labels are matrices.
#[derive(Clone, Debug)]
pub struct Batch {
    /// `B x N_NUMERIC` observed numeric features.
    pub numeric: Matrix,
    /// `B x 1` purchase labels in {0, 1}.
    pub labels: Matrix,
    /// Query-predicted sub-category ids (gating input).
    pub sc: Vec<usize>,
    /// Query-predicted top-category ids (HSC gate input).
    pub tc: Vec<usize>,
    /// Brand ids.
    pub brand: Vec<usize>,
    /// Shop ids.
    pub shop: Vec<usize>,
    /// User segment ids.
    pub user_segment: Vec<usize>,
    /// Price bucket ids.
    pub price_bucket: Vec<usize>,
    /// Query ids (used by the Table 5 ablation that feeds query features
    /// to the gate).
    pub query: Vec<usize>,
}

impl Batch {
    /// Assembles a batch from a slice of examples.
    ///
    /// # Panics
    /// Panics if `examples` is empty.
    #[must_use]
    pub fn from_examples(examples: &[&Example]) -> Batch {
        assert!(!examples.is_empty(), "Batch::from_examples: empty batch");
        let b = examples.len();
        let mut numeric = Matrix::zeros(b, N_NUMERIC);
        let mut labels = Matrix::zeros(b, 1);
        let mut sc = Vec::with_capacity(b);
        let mut tc = Vec::with_capacity(b);
        let mut brand = Vec::with_capacity(b);
        let mut shop = Vec::with_capacity(b);
        let mut user_segment = Vec::with_capacity(b);
        let mut price_bucket = Vec::with_capacity(b);
        let mut query = Vec::with_capacity(b);
        for (i, e) in examples.iter().enumerate() {
            numeric.row_mut(i).copy_from_slice(&e.numeric);
            labels[(i, 0)] = f32::from(u8::from(e.label));
            sc.push(e.pred_sc);
            tc.push(e.pred_tc);
            brand.push(e.brand);
            shop.push(e.shop);
            user_segment.push(e.user_segment);
            price_bucket.push(e.price_bucket);
            query.push(e.query as usize);
        }
        Batch {
            numeric,
            labels,
            sc,
            tc,
            brand,
            shop,
            user_segment,
            price_bucket,
            query,
        }
    }

    /// Assembles a batch from example indices into a split.
    #[must_use]
    pub fn from_split(split: &Split, indices: &[usize]) -> Batch {
        let refs: Vec<&Example> = indices.iter().map(|&i| &split.examples[i]).collect();
        Self::from_examples(&refs)
    }

    /// Stacks several batches into one, preserving row order
    /// (`parts[0]`'s rows first, then `parts[1]`'s, …).
    ///
    /// This is the micro-batching primitive of the serving stack: the
    /// `amoe-serve` batcher coalesces concurrently queued requests into
    /// one model call with `concat`, then scatters the score vector
    /// back per request. Every model path computes each row
    /// independently (per-row gating, row-blocked matmuls, per-row
    /// scatter), so scores for a row are bit-identical whether it is
    /// predicted alone or inside a coalesced batch.
    ///
    /// # Panics
    /// Panics if `parts` is empty or the parts disagree on numeric
    /// width (batches from one schema always agree).
    #[must_use]
    pub fn concat(parts: &[&Batch]) -> Batch {
        assert!(!parts.is_empty(), "Batch::concat: no parts");
        let b: usize = parts.iter().map(|p| p.len()).sum();
        let numeric: Vec<&Matrix> = parts.iter().map(|p| &p.numeric).collect();
        let labels: Vec<&Matrix> = parts.iter().map(|p| &p.labels).collect();
        let mut out = Batch {
            numeric: Matrix::vcat(&numeric),
            labels: Matrix::vcat(&labels),
            sc: Vec::with_capacity(b),
            tc: Vec::with_capacity(b),
            brand: Vec::with_capacity(b),
            shop: Vec::with_capacity(b),
            user_segment: Vec::with_capacity(b),
            price_bucket: Vec::with_capacity(b),
            query: Vec::with_capacity(b),
        };
        for p in parts {
            out.sc.extend_from_slice(&p.sc);
            out.tc.extend_from_slice(&p.tc);
            out.brand.extend_from_slice(&p.brand);
            out.shop.extend_from_slice(&p.shop);
            out.user_segment.extend_from_slice(&p.user_segment);
            out.price_bucket.extend_from_slice(&p.price_bucket);
            out.query.extend_from_slice(&p.query);
        }
        out
    }

    /// Batch size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sc.len()
    }

    /// True when the batch has no rows (cannot happen via constructors).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sc.is_empty()
    }
}

/// Iterates a split in shuffled mini-batches, reshuffling every epoch.
pub struct Batcher {
    indices: Vec<usize>,
    batch_size: usize,
    cursor: usize,
    rng: Rng,
}

impl Batcher {
    /// Creates an epoch iterator over `split` with the given batch size.
    ///
    /// # Panics
    /// Panics if the split is empty or `batch_size == 0`.
    #[must_use]
    pub fn new(split: &Split, batch_size: usize, seed: u64) -> Self {
        assert!(!split.is_empty(), "Batcher: empty split");
        assert!(batch_size > 0, "Batcher: batch_size must be > 0");
        let mut rng = Rng::seed_from(seed);
        let mut indices: Vec<usize> = (0..split.len()).collect();
        rng.shuffle(&mut indices);
        Batcher {
            indices,
            batch_size,
            cursor: 0,
            rng,
        }
    }

    /// Next mini-batch of indices; reshuffles and restarts when the epoch
    /// ends (returning `None` exactly once at each epoch boundary).
    pub fn next_batch(&mut self) -> Option<&[usize]> {
        if self.cursor >= self.indices.len() {
            self.rng.shuffle(&mut self.indices);
            self.cursor = 0;
            return None;
        }
        let end = (self.cursor + self.batch_size).min(self.indices.len());
        let out = &self.indices[self.cursor..end];
        self.cursor = end;
        Some(out)
    }

    /// Number of batches per epoch.
    #[must_use]
    pub fn batches_per_epoch(&self) -> usize {
        self.indices.len().div_ceil(self.batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GeneratorConfig;
    use crate::generator::generate;

    #[test]
    fn batch_from_split_shapes() {
        let d = generate(&GeneratorConfig::tiny(1));
        let b = Batch::from_split(&d.train, &[0, 1, 2, 5]);
        assert_eq!(b.len(), 4);
        assert_eq!(b.numeric.shape(), (4, N_NUMERIC));
        assert_eq!(b.labels.shape(), (4, 1));
        assert!(b.labels.as_slice().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn concat_preserves_rows_in_order() {
        let d = generate(&GeneratorConfig::tiny(5));
        let a = Batch::from_split(&d.train, &[0, 1, 2]);
        let b = Batch::from_split(&d.train, &[7]);
        let c = Batch::from_split(&d.train, &[3, 4]);
        let merged = Batch::concat(&[&a, &b, &c]);
        assert_eq!(merged.len(), 6);
        let whole = Batch::from_split(&d.train, &[0, 1, 2, 7, 3, 4]);
        assert_eq!(merged.numeric, whole.numeric);
        assert_eq!(merged.labels, whole.labels);
        assert_eq!(merged.sc, whole.sc);
        assert_eq!(merged.tc, whole.tc);
        assert_eq!(merged.brand, whole.brand);
        assert_eq!(merged.shop, whole.shop);
        assert_eq!(merged.user_segment, whole.user_segment);
        assert_eq!(merged.price_bucket, whole.price_bucket);
        assert_eq!(merged.query, whole.query);
    }

    #[test]
    fn batcher_covers_epoch_exactly_once() {
        let d = generate(&GeneratorConfig::tiny(2));
        let n = d.train.len();
        let mut batcher = Batcher::new(&d.train, 64, 9);
        let mut seen = vec![false; n];
        while let Some(idx) = batcher.next_batch() {
            for &i in idx {
                assert!(!seen[i], "index {i} repeated within epoch");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "epoch did not cover all examples");
    }

    #[test]
    fn batcher_reshuffles_between_epochs() {
        let d = generate(&GeneratorConfig::tiny(3));
        let mut batcher = Batcher::new(&d.train, 16, 10);
        let first: Vec<usize> = batcher.next_batch().unwrap().to_vec();
        while batcher.next_batch().is_some() {}
        let second: Vec<usize> = batcher.next_batch().unwrap().to_vec();
        assert_ne!(first, second);
    }

    #[test]
    fn batches_per_epoch_rounds_up() {
        let d = generate(&GeneratorConfig::tiny(4));
        let n = d.train.len();
        let batcher = Batcher::new(&d.train, 1000, 11);
        assert_eq!(batcher.batches_per_epoch(), n.div_ceil(1000));
    }
}
