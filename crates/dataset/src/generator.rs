//! The search-log generator: queries, sessions, items and labels.

use amoe_tensor::{ops, Rng};

use crate::brands::BrandUniverse;
use crate::config::GeneratorConfig;
use crate::data::{Dataset, DatasetMeta, Example, Split, N_NUMERIC};
use crate::hierarchy::CategoryHierarchy;
use crate::query_model::QueryClassifier;
use crate::truth::GroundTruth;

/// A synthesised query: its true category, the classifier's prediction
/// (fixed per query, as a deployed classifier would be) and a popularity
/// weight for session sampling.
struct Query {
    true_sc: usize,
    pred_sc: usize,
    popularity: f64,
}

/// Index of `sales_volume` in the numeric features.
pub(crate) const F_SALES: usize = 1;
/// Index of `price_z` in the numeric features.
pub(crate) const F_PRICE: usize = 0;

/// Generates a complete dataset from the configuration.
///
/// Determinism: two calls with equal configs produce identical datasets.
///
/// # Panics
/// Panics if the configuration is invalid (see
/// [`GeneratorConfig::validate`]).
#[must_use]
pub fn generate(config: &GeneratorConfig) -> Dataset {
    config.validate();
    let mut root = Rng::seed_from(config.seed);
    let mut world_rng = root.fork(1);
    let mut query_rng = root.fork(2);
    let mut calib_rng = root.fork(3);
    let mut train_rng = root.fork(4);
    let mut test_rng = root.fork(5);

    let hierarchy = CategoryHierarchy::with_subs(config.subs_per_tc);
    let brands = BrandUniverse::build(&hierarchy, config.brands_per_tc, &mut world_rng);
    let mut truth = GroundTruth::build(&hierarchy, config.sibling_weight_noise, &mut world_rng);

    // --- queries -------------------------------------------------------
    let classifier = QueryClassifier::new(
        config.classifier_accuracy,
        config.classifier_sibling_confusion,
    );
    let sc_shares = hierarchy.sc_shares().to_vec();
    let queries: Vec<Query> = (0..config.n_queries)
        .map(|_| {
            let true_sc = query_rng.weighted_index(&sc_shares);
            let pred_sc = classifier.predict(&hierarchy, true_sc, &mut query_rng);
            // Head-heavy query popularity, as in real logs.
            let popularity = (1.0 - query_rng.uniform()).powf(2.0) + 0.05;
            Query {
                true_sc,
                pred_sc,
                popularity,
            }
        })
        .collect();
    let query_weights: Vec<f64> = queries.iter().map(|q| q.popularity).collect();

    // --- purchase-rate calibration --------------------------------------
    // Probe the logit distribution and bisect on the global bias so the
    // marginal sigmoid hits the target rate.
    let probe: Vec<f32> = (0..4000)
        .map(|_| {
            let sc = calib_rng.weighted_index(&sc_shares);
            let tc = hierarchy.parent(sc);
            let brand = brands.sample_brand(tc, &mut calib_rng);
            let latent = sample_latent(&brands, brand, &mut calib_rng);
            truth.logit(sc, &latent, brands.quality(brand))
                + calib_rng.normal_with(0.0, config.label_noise)
        })
        .collect();
    let bias = calibrate_bias(&probe, config.target_purchase_rate);
    truth.set_bias(bias);

    // --- splits ----------------------------------------------------------
    let (train, train_queries) = generate_split(
        config,
        config.train_sessions,
        &hierarchy,
        &brands,
        &truth,
        &queries,
        &query_weights,
        &mut train_rng,
    );
    let (test, test_queries) = generate_split(
        config,
        config.test_sessions,
        &hierarchy,
        &brands,
        &truth,
        &queries,
        &query_weights,
        &mut test_rng,
    );

    let meta = DatasetMeta {
        sc_vocab: hierarchy.num_sc(),
        tc_vocab: hierarchy.num_tc(),
        brand_vocab: brands.vocab(),
        shop_vocab: config.n_shops,
        user_segment_vocab: config.n_user_segments,
        price_bucket_vocab: config.n_price_buckets,
        query_vocab: config.n_queries,
        n_numeric: N_NUMERIC,
    };

    Dataset {
        train,
        test,
        hierarchy,
        brands,
        truth,
        meta,
        train_queries,
        test_queries,
    }
}

/// Latent (pre-observation-noise) numeric features for a product of the
/// given brand. Sales volume is tied to brand popularity so that the
/// brand-concentration analysis (Fig. 3) sees realistic sales skew.
fn sample_latent(brands: &BrandUniverse, brand: usize, rng: &mut Rng) -> [f32; N_NUMERIC] {
    let mut latent = [0f32; N_NUMERIC];
    for v in &mut latent {
        *v = rng.normal() as f32;
    }
    // Popularity weight is rank^-s in (0, 1]; map to a roughly standard
    // z-score so it composes with the unit-variance features.
    let pop_z = (brands.popularity(brand).ln() as f32 + 2.5) * 0.6;
    latent[F_SALES] = 0.8 * pop_z + 0.6 * latent[F_SALES];
    latent
}

#[allow(clippy::too_many_arguments)]
fn generate_split(
    config: &GeneratorConfig,
    n_sessions: usize,
    hierarchy: &CategoryHierarchy,
    brands: &BrandUniverse,
    truth: &GroundTruth,
    queries: &[Query],
    query_weights: &[f64],
    rng: &mut Rng,
) -> (Split, usize) {
    let mut examples = Vec::new();
    let mut sessions = Vec::new();
    let mut seen_queries = vec![false; queries.len()];
    let span = config.max_items_per_session - config.min_items_per_session + 1;

    for session_id in 0..n_sessions {
        let qid = rng.weighted_index(query_weights);
        seen_queries[qid] = true;
        let query = &queries[qid];
        let n_items = config.min_items_per_session + rng.below(span);
        let user_segment = rng.below(config.n_user_segments);
        let start = examples.len();
        for _ in 0..n_items {
            // Retrieval returns items from the query's category, with a
            // minority from sibling sub-categories.
            let true_sc = if rng.bernoulli(0.85) {
                query.true_sc
            } else {
                let sibs = hierarchy.subs_of(hierarchy.parent(query.true_sc));
                sibs.start + rng.below(sibs.len())
            };
            let true_tc = hierarchy.parent(true_sc);
            let brand = brands.sample_brand(true_tc, rng);
            let latent = sample_latent(brands, brand, rng);

            let logit = truth.logit(true_sc, &latent, brands.quality(brand))
                + rng.normal_with(0.0, config.label_noise);
            let label = rng.bernoulli(ops::sigmoid_scalar(logit) as f64);

            // Observed features: latent plus observation noise.
            let mut numeric = [0f32; N_NUMERIC];
            for (obs, &lat) in numeric.iter_mut().zip(&latent) {
                *obs = lat + rng.normal_with(0.0, config.feature_noise);
            }

            // Price bucket from the observed price's normal CDF.
            let price_cdf = normal_cdf(numeric[F_PRICE]);
            let price_bucket = ((price_cdf * config.n_price_buckets as f32) as usize)
                .min(config.n_price_buckets - 1);

            // Sales volume itself (for Fig. 3): popularity times log-normal
            // demand noise.
            let raw_sales =
                (brands.popularity(brand) as f32) * (rng.normal_with(0.0, 0.4)).exp() * 1000.0;

            examples.push(Example {
                session: session_id as u32,
                query: qid as u32,
                true_sc,
                true_tc,
                pred_sc: query.pred_sc,
                pred_tc: hierarchy.parent(query.pred_sc),
                brand,
                shop: rng.zipf(config.n_shops, 1.05) - 1,
                user_segment,
                price_bucket,
                numeric,
                label,
                raw_sales,
            });
        }
        sessions.push(start..examples.len());
    }
    let n_queries_seen = seen_queries.iter().filter(|&&s| s).count();
    (Split { examples, sessions }, n_queries_seen)
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation.
pub(crate) fn normal_cdf(x: f32) -> f32 {
    let t = 1.0 / (1.0 + 0.2316419 * x.abs());
    let d = 0.3989423 * (-x * x / 2.0).exp();
    let p =
        d * t * (0.3193815 + t * (-0.3565638 + t * (1.781478 + t * (-1.821256 + t * 1.330274))));
    if x >= 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Bisects on a constant logit shift so that the mean sigmoid over the
/// probe logits equals `target`.
pub(crate) fn calibrate_bias(probe_logits: &[f32], target: f64) -> f32 {
    let rate = |b: f64| -> f64 {
        probe_logits
            .iter()
            .map(|&l| 1.0 / (1.0 + (-(f64::from(l) + b)).exp()))
            .sum::<f64>()
            / probe_logits.len() as f64
    };
    let (mut lo, mut hi) = (-20.0f64, 20.0f64);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if rate(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = GeneratorConfig::tiny(42);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.train.len(), b.train.len());
        for (x, y) in a.train.examples.iter().zip(&b.train.examples) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.brand, y.brand);
            assert_eq!(x.numeric, y.numeric);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GeneratorConfig::tiny(1));
        let b = generate(&GeneratorConfig::tiny(2));
        let same = a
            .train
            .examples
            .iter()
            .zip(&b.train.examples)
            .filter(|(x, y)| x.numeric == y.numeric)
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn purchase_rate_near_target() {
        let cfg = GeneratorConfig {
            train_sessions: 2_000,
            ..GeneratorConfig::tiny(7)
        };
        let d = generate(&cfg);
        let rate = d.train.positive_rate();
        assert!(
            (rate - cfg.target_purchase_rate).abs() < 0.03,
            "rate {rate} vs target {}",
            cfg.target_purchase_rate
        );
    }

    #[test]
    fn sessions_tile_examples() {
        let d = generate(&GeneratorConfig::tiny(3));
        let mut covered = 0usize;
        for (i, r) in d.train.sessions.iter().enumerate() {
            assert_eq!(r.start, covered, "session {i} not contiguous");
            covered = r.end;
        }
        assert_eq!(covered, d.train.len());
    }

    #[test]
    fn session_sizes_in_bounds() {
        let cfg = GeneratorConfig::tiny(4);
        let d = generate(&cfg);
        for r in &d.train.sessions {
            let n = r.len();
            assert!(n >= cfg.min_items_per_session && n <= cfg.max_items_per_session);
        }
    }

    #[test]
    fn sessions_are_tc_pure() {
        // All items of a session come from the query's top-category
        // (its SC or a sibling), which Table 3 / Fig. 5 rely on.
        let d = generate(&GeneratorConfig::tiny(5));
        for r in &d.train.sessions {
            let tc = d.train.examples[r.start].true_tc;
            assert!(d.train.examples[r.clone()].iter().all(|e| e.true_tc == tc));
        }
    }

    #[test]
    fn pred_tc_consistent_with_pred_sc() {
        let d = generate(&GeneratorConfig::tiny(6));
        for e in d.train.examples.iter().chain(&d.test.examples) {
            assert_eq!(e.pred_tc, d.hierarchy.parent(e.pred_sc));
        }
    }

    #[test]
    fn ids_within_vocab() {
        let d = generate(&GeneratorConfig::tiny(8));
        let m = &d.meta;
        for e in d.train.examples.iter().chain(&d.test.examples) {
            assert!(e.pred_sc < m.sc_vocab);
            assert!(e.pred_tc < m.tc_vocab);
            assert!(e.brand < m.brand_vocab);
            assert!(e.shop < m.shop_vocab);
            assert!(e.user_segment < m.user_segment_vocab);
            assert!(e.price_bucket < m.price_bucket_vocab);
        }
    }

    #[test]
    fn category_sizes_skewed() {
        let cfg = GeneratorConfig {
            train_sessions: 3_000,
            ..GeneratorConfig::tiny(9)
        };
        let d = generate(&cfg);
        let counts = d.train.tc_counts(d.hierarchy.num_tc());
        let clothing = counts[d.hierarchy.tc_by_name("Clothing").unwrap()];
        let books = counts[d.hierarchy.tc_by_name("Books").unwrap()];
        assert!(books > clothing, "books {books} clothing {clothing}");
    }

    #[test]
    fn normal_cdf_sane() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-3);
        assert!(normal_cdf(3.0) > 0.99);
        assert!(normal_cdf(-3.0) < 0.01);
        let diffs = normal_cdf(1.0) + normal_cdf(-1.0);
        assert!((diffs - 1.0).abs() < 1e-3);
    }

    #[test]
    fn calibration_hits_target() {
        let mut rng = Rng::seed_from(11);
        let probe: Vec<f32> = (0..5000).map(|_| rng.normal_with(1.0, 2.0)).collect();
        let b = calibrate_bias(&probe, 0.25);
        let rate: f64 = probe
            .iter()
            .map(|&l| 1.0 / (1.0 + (-(f64::from(l) + f64::from(b))).exp()))
            .sum::<f64>()
            / probe.len() as f64;
        assert!((rate - 0.25).abs() < 1e-3);
    }
}
