#![warn(missing_docs)]

//! Synthetic e-commerce search-log generation.
//!
//! The paper evaluates on a proprietary JD.com purchase log (26.7M
//! examples, 38 top-categories, 3,479 sub-categories) that cannot be
//! redistributed. This crate generates a scaled-down synthetic log that
//! reproduces the *mechanisms* the paper's techniques exploit:
//!
//! 1. **Category hierarchy** — a two-level tree of top-categories (TC)
//!    and sub-categories (SC) with power-law size skew ([`hierarchy`]).
//! 2. **Inter- vs intra-category feature inhomogeneity** (paper Sec. 3,
//!    Fig. 2) — each TC has its own ground-truth weight vector over the
//!    numeric features; sibling SCs perturb their parent's weights only
//!    slightly ([`truth`]).
//! 3. **Brand concentration** (Fig. 3) — per-TC Zipf brand popularity
//!    with category-specific exponents, so e.g. the "Electronics" analog
//!    concentrates 80% of sales in a few brands while "Sports" is
//!    dispersed ([`brands`]).
//! 4. **Session structure** — examples come in query sessions of ranked
//!    candidates, which is what session-level AUC/NDCG evaluate.
//! 5. **A noisy query→category classifier** standing in for the paper's
//!    GRU annotator (Sec. 4.1): predicted SC equals the true SC with
//!    configurable accuracy, confusing siblings more often than strangers
//!    ([`query_model`]).
//!
//! Every artefact is deterministic in the generator seed.

pub mod batch;
pub mod brands;
pub mod buckets;
pub mod config;
pub mod data;
pub mod drift;
pub mod export;
pub mod generator;
pub mod hierarchy;
pub mod query_model;
pub mod stats;
pub mod truth;

pub use batch::{Batch, Batcher};
pub use config::GeneratorConfig;
pub use data::{Dataset, DatasetMeta, Example, Split, NUMERIC_FEATURE_NAMES, N_NUMERIC};
pub use drift::{DriftConfig, DriftWorld, SessionWindow};
pub use generator::generate;
pub use hierarchy::{CategoryHierarchy, ScId, SemanticClass, TcId};
pub use stats::DatasetStats;
