//! Dataset statistics in the shape of the paper's Table 1.

use std::collections::HashSet;
use std::fmt;

use crate::data::{Dataset, Split};

/// Table-1-style statistics for a generated dataset.
#[derive(Clone, Debug)]
pub struct DatasetStats {
    /// Total train / test example counts.
    pub data_size: (usize, usize),
    /// Per named category: (name, train, test).
    pub named_categories: Vec<(String, usize, usize)>,
    /// Top-category counts (train, test).
    pub num_top_categories: (usize, usize),
    /// Sub-category counts (train, test).
    pub num_sub_categories: (usize, usize),
    /// Distinct query counts (train, test).
    pub num_queries: (usize, usize),
    /// Query/item pair counts (train, test) — distinct (query, brand,
    /// price-bucket) product surrogates per query session stream.
    pub num_query_item_pairs: (usize, usize),
}

fn distinct_tcs(split: &Split) -> usize {
    split
        .examples
        .iter()
        .map(|e| e.true_tc)
        .collect::<HashSet<_>>()
        .len()
}

fn distinct_scs(split: &Split) -> usize {
    split
        .examples
        .iter()
        .map(|e| e.true_sc)
        .collect::<HashSet<_>>()
        .len()
}

fn distinct_queries(split: &Split) -> usize {
    split
        .examples
        .iter()
        .map(|e| e.query)
        .collect::<HashSet<_>>()
        .len()
}

fn query_item_pairs(split: &Split) -> usize {
    split
        .examples
        .iter()
        .map(|e| (e.query, e.brand, e.price_bucket, e.shop))
        .collect::<HashSet<_>>()
        .len()
}

impl DatasetStats {
    /// Computes statistics for the paper's three named categories plus the
    /// aggregate counts.
    #[must_use]
    pub fn compute(dataset: &Dataset) -> Self {
        let named = ["Clothing", "Books", "Mobile Phone"];
        let mut named_categories = Vec::new();
        for name in named {
            if let Some(tc) = dataset.hierarchy.tc_by_name(name) {
                let train = dataset
                    .train
                    .examples
                    .iter()
                    .filter(|e| e.true_tc == tc)
                    .count();
                let test = dataset
                    .test
                    .examples
                    .iter()
                    .filter(|e| e.true_tc == tc)
                    .count();
                named_categories.push((name.to_string(), train, test));
            }
        }
        DatasetStats {
            data_size: (dataset.train.len(), dataset.test.len()),
            named_categories,
            num_top_categories: (distinct_tcs(&dataset.train), distinct_tcs(&dataset.test)),
            num_sub_categories: (distinct_scs(&dataset.train), distinct_scs(&dataset.test)),
            num_queries: (
                distinct_queries(&dataset.train),
                distinct_queries(&dataset.test),
            ),
            num_query_item_pairs: (
                query_item_pairs(&dataset.train),
                query_item_pairs(&dataset.test),
            ),
        }
    }
}

impl fmt::Display for DatasetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<34}{:>14}{:>14}",
            "Statistics", "Training Set", "Test Set"
        )?;
        writeln!(
            f,
            "{:<34}{:>14}{:>14}",
            "Data Size / Complete", self.data_size.0, self.data_size.1
        )?;
        for (name, train, test) in &self.named_categories {
            writeln!(
                f,
                "{:<34}{:>14}{:>14}",
                format!("Data Size / {name}"),
                train,
                test
            )?;
        }
        writeln!(
            f,
            "{:<34}{:>14}{:>14}",
            "# of Top Categories", self.num_top_categories.0, self.num_top_categories.1
        )?;
        writeln!(
            f,
            "{:<34}{:>14}{:>14}",
            "# of Sub Categories", self.num_sub_categories.0, self.num_sub_categories.1
        )?;
        writeln!(
            f,
            "{:<34}{:>14}{:>14}",
            "# of queries", self.num_queries.0, self.num_queries.1
        )?;
        write!(
            f,
            "{:<34}{:>14}{:>14}",
            "# of query/item pairs", self.num_query_item_pairs.0, self.num_query_item_pairs.1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GeneratorConfig;
    use crate::generator::generate;

    #[test]
    fn stats_consistent_with_dataset() {
        let d = generate(&GeneratorConfig::tiny(1));
        let s = DatasetStats::compute(&d);
        assert_eq!(s.data_size.0, d.train.len());
        assert_eq!(s.data_size.1, d.test.len());
        assert_eq!(s.named_categories.len(), 3);
        assert!(s.num_top_categories.0 <= d.hierarchy.num_tc());
        assert!(s.num_sub_categories.0 <= d.hierarchy.num_sc());
        assert!(s.num_queries.0 <= 120);
    }

    #[test]
    fn named_sizes_sum_below_total() {
        let d = generate(&GeneratorConfig::tiny(2));
        let s = DatasetStats::compute(&d);
        let named_total: usize = s.named_categories.iter().map(|(_, t, _)| t).sum();
        assert!(named_total < s.data_size.0);
    }

    #[test]
    fn display_renders_all_rows() {
        let d = generate(&GeneratorConfig::tiny(3));
        let text = DatasetStats::compute(&d).to_string();
        for needle in [
            "Data Size / Complete",
            "Clothing",
            "Books",
            "Mobile Phone",
            "# of Top Categories",
            "# of Sub Categories",
            "# of queries",
            "# of query/item pairs",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
