//! Core data types: examples, sessions and dataset containers.

use std::ops::Range;

use crate::brands::BrandUniverse;
use crate::hierarchy::{CategoryHierarchy, ScId, TcId};
use crate::truth::GroundTruth;

/// Number of numeric (dense) features per example.
pub const N_NUMERIC: usize = 8;

/// Names of the numeric features, indexed like [`Example::numeric`].
pub const NUMERIC_FEATURE_NAMES: [&str; N_NUMERIC] = [
    "price_z",
    "sales_volume",
    "good_comment_ratio",
    "historical_ctr",
    "rating",
    "discount",
    "shipping_speed",
    "recency",
];

/// One (query, product) candidate with its purchase label.
///
/// Sparse ids are global (brand ids already include the per-TC offset).
#[derive(Clone, Debug)]
pub struct Example {
    /// Session this candidate was shown in.
    pub session: u32,
    /// Query id.
    pub query: u32,
    /// The product's true sub-category.
    pub true_sc: ScId,
    /// The product's true top-category.
    pub true_tc: TcId,
    /// Sub-category predicted for the *query* by the classifier channel
    /// (the gating input, paper Sec. 4.1).
    pub pred_sc: ScId,
    /// Top-category implied by `pred_sc` via the hierarchy.
    pub pred_tc: TcId,
    /// Brand id (global).
    pub brand: usize,
    /// Shop id.
    pub shop: usize,
    /// User segment id (a stand-in for user profile features).
    pub user_segment: usize,
    /// Price bucket id.
    pub price_bucket: usize,
    /// Normalised numeric features (see [`NUMERIC_FEATURE_NAMES`]).
    pub numeric: [f32; N_NUMERIC],
    /// Whether the user purchased this product.
    pub label: bool,
    /// Un-normalised sales volume, kept for the brand-concentration
    /// analysis (Fig. 3).
    pub raw_sales: f32,
}

/// Vocabulary sizes and schema information models need to build their
/// embedding tables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatasetMeta {
    /// Sub-category vocabulary (= number of SCs).
    pub sc_vocab: usize,
    /// Top-category vocabulary (= number of TCs).
    pub tc_vocab: usize,
    /// Brand vocabulary.
    pub brand_vocab: usize,
    /// Shop vocabulary.
    pub shop_vocab: usize,
    /// User-segment vocabulary.
    pub user_segment_vocab: usize,
    /// Price-bucket vocabulary.
    pub price_bucket_vocab: usize,
    /// Query-id vocabulary (used only by the Table 5 gate-input ablation).
    pub query_vocab: usize,
    /// Number of numeric features.
    pub n_numeric: usize,
}

/// A split (train or test) of the generated log: a flat example array
/// plus the session index ranges over it.
#[derive(Clone, Debug)]
pub struct Split {
    /// All examples, session-contiguous.
    pub examples: Vec<Example>,
    /// `examples[range]` is one session's candidates.
    pub sessions: Vec<Range<usize>>,
}

impl Split {
    /// Number of examples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// True when the split has no examples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Fraction of positive labels.
    #[must_use]
    pub fn positive_rate(&self) -> f64 {
        if self.examples.is_empty() {
            return 0.0;
        }
        self.examples.iter().filter(|e| e.label).count() as f64 / self.examples.len() as f64
    }

    /// Restricts the split to examples whose *true* TC is in `tcs`,
    /// keeping session structure (sessions that become empty disappear;
    /// sessions are category-pure by construction so this never splits
    /// a session).
    #[must_use]
    pub fn filter_tcs(&self, tcs: &[TcId]) -> Split {
        let mut examples = Vec::new();
        let mut sessions = Vec::new();
        for r in &self.sessions {
            let sess: Vec<Example> = self.examples[r.clone()]
                .iter()
                .filter(|e| tcs.contains(&e.true_tc))
                .cloned()
                .collect();
            if sess.len() >= 2 {
                let start = examples.len();
                examples.extend(sess);
                sessions.push(start..examples.len());
            }
        }
        Split { examples, sessions }
    }

    /// Per-TC example counts.
    #[must_use]
    pub fn tc_counts(&self, num_tc: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_tc];
        for e in &self.examples {
            counts[e.true_tc] += 1;
        }
        counts
    }
}

/// The full generated dataset: both splits plus the world model that
/// produced them (hierarchy, brand universe, ground truth) so analyses
/// and oracles can refer back to it.
pub struct Dataset {
    /// Training split.
    pub train: Split,
    /// Test split.
    pub test: Split,
    /// The category tree.
    pub hierarchy: CategoryHierarchy,
    /// Brand popularity/quality universe.
    pub brands: BrandUniverse,
    /// The generating ground truth (for oracle experiments and tests;
    /// models never see it).
    pub truth: GroundTruth,
    /// Vocabulary metadata for model construction.
    pub meta: DatasetMeta,
    /// Number of distinct queries in the train split.
    pub train_queries: usize,
    /// Number of distinct queries in the test split.
    pub test_queries: usize,
}

impl Dataset {
    /// Vocabulary metadata.
    #[must_use]
    pub fn meta(&self) -> &DatasetMeta {
        &self.meta
    }
}
