//! Flat parameter storage decoupled from the autograd tape.

use amoe_autograd::{Grads, Tape, Var};
use amoe_tensor::{ops, Matrix};

/// Opaque handle to one parameter tensor inside a [`ParamSet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Reconstructs a handle from a raw index (`0..len`). Intended for
    /// callers iterating a whole set; out-of-range ids panic on use.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        ParamId(index)
    }

    /// The raw index of this handle within its set.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

pub(crate) struct ParamEntry {
    pub(crate) name: String,
    pub(crate) value: Matrix,
    pub(crate) grad: Matrix,
}

/// All trainable tensors of a model, with their accumulated gradients.
///
/// Names must be unique; they key serialisation and debugging output.
#[derive(Default)]
pub struct ParamSet {
    pub(crate) entries: Vec<ParamEntry>,
}

impl ParamSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter with an initial value.
    ///
    /// # Panics
    /// Panics if `name` is already registered.
    pub fn add(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        let name = name.into();
        assert!(
            !self.entries.iter().any(|e| e.name == name),
            "ParamSet::add: duplicate parameter name {name:?}"
        );
        let grad = Matrix::zeros(value.rows(), value.cols());
        let id = ParamId(self.entries.len());
        self.entries.push(ParamEntry { name, value, grad });
        id
    }

    /// Number of registered tensors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no parameters are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total scalar parameter count (for model-capacity reporting).
    #[must_use]
    pub fn num_scalars(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// Immutable view of a parameter's current value.
    #[must_use]
    pub fn value(&self, id: ParamId) -> &Matrix {
        &self.entries[id.0].value
    }

    /// Mutable view of a parameter's current value (tests, custom init).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.entries[id.0].value
    }

    /// Immutable view of a parameter's accumulated gradient.
    #[must_use]
    pub fn grad(&self, id: ParamId) -> &Matrix {
        &self.entries[id.0].grad
    }

    /// Mutable view of a parameter's accumulated gradient (used by
    /// fine-tuning to freeze parameters by zeroing their gradients).
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.entries[id.0].grad
    }

    /// Name of a parameter.
    #[must_use]
    pub fn name(&self, id: ParamId) -> &str {
        &self.entries[id.0].name
    }

    /// Looks a parameter up by name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<ParamId> {
        self.entries
            .iter()
            .position(|e| e.name == name)
            .map(ParamId)
    }

    /// Iterator over `(name, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Matrix)> {
        self.entries.iter().map(|e| (e.name.as_str(), &e.value))
    }

    /// Inserts every parameter as a leaf on `tape`, returning the binding
    /// used to reference them while building the loss and to collect
    /// gradients afterwards.
    #[must_use]
    pub fn bind<'t>(&self, tape: &'t Tape) -> Bound<'t> {
        Bound {
            vars: self
                .entries
                .iter()
                .map(|e| Some(tape.leaf(e.value.clone())))
                .collect(),
        }
    }

    /// Like [`ParamSet::bind`] but inserts only the parameters named by
    /// `ids` as leaves. The split-graph training path uses this to give
    /// each per-expert tape exactly that expert's weights instead of
    /// cloning the whole model onto every tape.
    ///
    /// Reading an unbound parameter through [`Bound::var`] panics;
    /// [`ParamSet::collect_grads`] skips unbound entries.
    ///
    /// # Panics
    /// Panics if `ids` contains a duplicate (it would silently drop the
    /// first leaf's gradient).
    #[must_use]
    pub fn bind_subset<'t>(&self, tape: &'t Tape, ids: &[ParamId]) -> Bound<'t> {
        let mut vars: Vec<Option<Var<'t>>> = vec![None; self.entries.len()];
        for &id in ids {
            assert!(
                vars[id.0].is_none(),
                "ParamSet::bind_subset: duplicate id for {:?}",
                self.entries[id.0].name
            );
            vars[id.0] = Some(tape.leaf(self.entries[id.0].value.clone()));
        }
        Bound { vars }
    }

    /// Accumulates (`+=`) the gradients computed by a backward pass into
    /// this set. Parameters the loss does not touch are left unchanged,
    /// supporting gradient accumulation across micro-batches.
    pub fn collect_grads(&mut self, bound: &Bound<'_>, grads: &Grads) {
        for (entry, var) in self.entries.iter_mut().zip(&bound.vars) {
            if let Some(g) = var.and_then(|v| grads.get(v)) {
                ops::add_assign(&mut entry.grad, g);
            }
        }
    }

    /// Resets all accumulated gradients to zero.
    pub fn zero_grads(&mut self) {
        for e in &mut self.entries {
            e.grad.fill(0.0);
        }
    }

    /// Global L2 norm over all gradients.
    #[must_use]
    pub fn grad_global_norm(&self) -> f32 {
        self.entries
            .iter()
            .map(|e| {
                let n = e.grad.frob_norm();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Scales all gradients so their global norm does not exceed
    /// `max_norm`. Returns the pre-clip norm.
    pub fn clip_grad_global_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_global_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for e in &mut self.entries {
                e.grad.as_mut_slice().iter_mut().for_each(|v| *v *= s);
            }
        }
        norm
    }

    /// True if every parameter and gradient is finite.
    #[must_use]
    pub fn all_finite(&self) -> bool {
        self.entries
            .iter()
            .all(|e| e.value.all_finite() && e.grad.all_finite())
    }
}

impl std::fmt::Debug for ParamSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_map();
        for e in &self.entries {
            d.entry(
                &e.name,
                &format_args!("{}x{}", e.value.rows(), e.value.cols()),
            );
        }
        d.finish()
    }
}

/// Tape-bound views of parameters for one forward/backward pass.
///
/// Produced by [`ParamSet::bind`] (every parameter) or
/// [`ParamSet::bind_subset`] (a selection; the rest stay `None`).
pub struct Bound<'t> {
    pub(crate) vars: Vec<Option<Var<'t>>>,
}

impl<'t> Bound<'t> {
    /// The tape variable bound to `id`.
    ///
    /// # Panics
    /// Panics if `id` was not part of the binding (subset bindings only
    /// carry the parameters they were built with).
    #[must_use]
    pub fn var(&self, id: ParamId) -> Var<'t> {
        self.vars[id.0].expect("Bound::var: parameter not part of this binding")
    }

    /// The leaf node id bound to `id`, for code that must carry the
    /// binding across threads (node ids are `Send`; `Var`s are not).
    ///
    /// # Panics
    /// Panics if `id` was not part of the binding.
    #[must_use]
    pub fn leaf_id(&self, id: ParamId) -> usize {
        self.var(id).id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Matrix::ones(2, 3));
        assert_eq!(ps.len(), 1);
        assert_eq!(ps.num_scalars(), 6);
        assert_eq!(ps.name(w), "w");
        assert_eq!(ps.find("w"), Some(w));
        assert_eq!(ps.find("nope"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_name_panics() {
        let mut ps = ParamSet::new();
        ps.add("w", Matrix::ones(1, 1));
        ps.add("w", Matrix::ones(1, 1));
    }

    #[test]
    fn bind_collect_roundtrip() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Matrix::from_rows(&[&[2.0, -1.0]]));
        let tape = Tape::new();
        let bound = ps.bind(&tape);
        let loss = bound.var(w).square().sum_all();
        let grads = tape.backward(loss);
        ps.collect_grads(&bound, &grads);
        // d/dw sum(w^2) = 2w
        assert_eq!(ps.grad(w).row(0), &[4.0, -2.0]);
        // Accumulation: second pass doubles the gradient.
        let tape2 = Tape::new();
        let b2 = ps.bind(&tape2);
        let loss2 = b2.var(w).square().sum_all();
        let g2 = tape2.backward(loss2);
        ps.collect_grads(&b2, &g2);
        assert_eq!(ps.grad(w).row(0), &[8.0, -4.0]);
        ps.zero_grads();
        assert_eq!(ps.grad(w).row(0), &[0.0, 0.0]);
    }

    #[test]
    fn bind_subset_binds_only_requested() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Matrix::from_rows(&[&[2.0, -1.0]]));
        let u = ps.add("u", Matrix::from_rows(&[&[5.0]]));
        let tape = Tape::new();
        let bound = ps.bind_subset(&tape, &[w]);
        // Only one leaf on the tape, and grads flow only into `w`.
        assert_eq!(tape.len(), 1);
        let loss = bound.var(w).square().sum_all();
        let grads = tape.backward(loss);
        ps.collect_grads(&bound, &grads);
        assert_eq!(ps.grad(w).row(0), &[4.0, -2.0]);
        assert_eq!(ps.grad(u).row(0), &[0.0]);
    }

    #[test]
    #[should_panic(expected = "not part of this binding")]
    fn bind_subset_rejects_unbound_read() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Matrix::ones(1, 1));
        let u = ps.add("u", Matrix::ones(1, 1));
        let tape = Tape::new();
        let bound = ps.bind_subset(&tape, &[w]);
        let _ = bound.var(u);
    }

    #[test]
    #[should_panic(expected = "duplicate id")]
    fn bind_subset_rejects_duplicates() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Matrix::ones(1, 1));
        let tape = Tape::new();
        let _ = ps.bind_subset(&tape, &[w, w]);
    }

    #[test]
    fn clip_global_norm() {
        let mut ps = ParamSet::new();
        let w = ps.add("w", Matrix::ones(1, 2));
        ps.entries[0].grad = Matrix::from_rows(&[&[3.0, 4.0]]); // norm 5
        let pre = ps.clip_grad_global_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((ps.grad(w).frob_norm() - 1.0).abs() < 1e-6);
        // Under the cap: untouched.
        let pre2 = ps.clip_grad_global_norm(10.0);
        assert!((pre2 - 1.0).abs() < 1e-6);
        assert!((ps.grad(w).frob_norm() - 1.0).abs() < 1e-6);
    }
}
