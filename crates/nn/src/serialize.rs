//! Binary checkpoint format for [`ParamSet`].
//!
//! Layout (little-endian):
//!
//! ```text
//! magic   b"AMOE"            4 bytes
//! version u32                currently 1
//! count   u32                number of tensors
//! per tensor:
//!   name_len u32, name bytes (UTF-8)
//!   rows u32, cols u32
//!   rows*cols f32 values, row-major
//! ```
//!
//! Gradients and optimizer state are not checkpointed; a loaded model is
//! ready for inference or fresh fine-tuning.
//!
//! # Hostile-input hardening
//!
//! [`ParamSet::load`] is the trust boundary the serving stack's hot-swap
//! path crosses (`amoe-serve` reloads whatever file a `RELOAD` control
//! message names), so every corrupt-file shape maps to a typed
//! [`LoadError`] instead of a panic or an OOM:
//!
//! * wrong magic / unknown version → [`LoadError::BadMagic`] /
//!   [`LoadError::BadVersion`];
//! * a tensor header that declares more bytes than the file holds →
//!   [`LoadError::Truncated`] **before** any allocation, so an
//!   allocation-bomb header (absurd `rows*cols` in a small file) cannot
//!   reserve memory beyond the file's own size;
//! * mid-stream EOF → [`LoadError::Truncated`];
//! * NaN/Inf weight values → [`LoadError::NonFinite`] naming the tensor
//!   (a non-finite weight would silently poison every downstream score).

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use amoe_tensor::Matrix;

use crate::ParamSet;

const MAGIC: &[u8; 4] = b"AMOE";
const VERSION: u32 = 1;

/// Errors raised while reading or writing a checkpoint.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Bad magic bytes — not a checkpoint file.
    BadMagic,
    /// File written by an unknown format version.
    BadVersion(u32),
    /// The file ends before the data its headers declare.
    Truncated,
    /// A tensor header or name failed validation.
    Corrupt(String),
    /// A tensor contains NaN or infinite values (names the tensor).
    NonFinite(String),
    /// Loaded tensors don't match the receiving parameter set.
    Mismatch(String),
}

/// Former name of [`LoadError`], kept for existing callers.
pub type SerializeError = LoadError;

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error: {e}"),
            LoadError::BadMagic => write!(f, "not an AMOE checkpoint (bad magic)"),
            LoadError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            LoadError::Truncated => write!(
                f,
                "truncated checkpoint (file shorter than headers declare)"
            ),
            LoadError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            LoadError::NonFinite(name) => {
                write!(f, "checkpoint tensor {name:?} contains non-finite values")
            }
            LoadError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        // A short read is a structural property of the file, not a
        // transient I/O condition — surface it as the typed variant.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            LoadError::Truncated
        } else {
            LoadError::Io(e)
        }
    }
}

impl ParamSet {
    /// Writes all parameter values to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), LoadError> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(self.entries.len() as u32).to_le_bytes())?;
        for e in &self.entries {
            let name = e.name.as_bytes();
            w.write_all(&(name.len() as u32).to_le_bytes())?;
            w.write_all(name)?;
            w.write_all(&(e.value.rows() as u32).to_le_bytes())?;
            w.write_all(&(e.value.cols() as u32).to_le_bytes())?;
            for &v in e.value.as_slice() {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        w.flush()?;
        Ok(())
    }

    /// Writes the checkpoint to a sibling temp file and renames it
    /// into place, so a concurrent reader (the serving hot-swap path
    /// polls checkpoint paths it is told to `RELOAD`) observes either
    /// the complete old file or the complete new file — never a torn
    /// prefix. The temp file lives in the target's directory because
    /// `rename` is only atomic within one filesystem.
    pub fn save_atomic(&self, path: impl AsRef<Path>) -> Result<(), LoadError> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        self.save(&tmp)?;
        std::fs::rename(&tmp, path).map_err(|e| {
            // Leave no orphan on a failed rename.
            let _ = std::fs::remove_file(&tmp);
            LoadError::Io(e)
        })
    }

    /// Reads a checkpoint into a fresh set (names and shapes come from
    /// the file). See the module docs for the corrupt-file contract.
    pub fn load(path: impl AsRef<Path>) -> Result<ParamSet, LoadError> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut r = BufReader::new(file);
        // Bytes of payload the file can still supply; every header read
        // debits it so a tensor's declared size can be checked against
        // what is actually left *before* allocating for it.
        let mut remaining = file_len;
        let mut debit = |n: u64| -> Result<(), LoadError> {
            if n > remaining {
                return Err(LoadError::Truncated);
            }
            remaining -= n;
            Ok(())
        };

        let mut magic = [0u8; 4];
        debit(4)?;
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(LoadError::BadMagic);
        }
        debit(4)?;
        let version = read_u32(&mut r)?;
        if version != VERSION {
            return Err(LoadError::BadVersion(version));
        }
        debit(4)?;
        let count = read_u32(&mut r)? as usize;
        if count > 1_000_000 {
            return Err(LoadError::Corrupt(format!(
                "implausible tensor count {count}"
            )));
        }
        let mut ps = ParamSet::new();
        for _ in 0..count {
            debit(4)?;
            let name_len = read_u32(&mut r)? as usize;
            if name_len > 4096 {
                return Err(LoadError::Corrupt(format!(
                    "implausible name length {name_len}"
                )));
            }
            debit(name_len as u64)?;
            let mut name = vec![0u8; name_len];
            r.read_exact(&mut name)?;
            let name = String::from_utf8(name)
                .map_err(|_| LoadError::Corrupt("non-UTF8 tensor name".into()))?;
            debit(8)?;
            let rows = read_u32(&mut r)? as usize;
            let cols = read_u32(&mut r)? as usize;
            if rows == 0 || cols == 0 || rows.saturating_mul(cols) > 500_000_000 {
                return Err(LoadError::Corrupt(format!(
                    "implausible shape {rows}x{cols} for {name:?}"
                )));
            }
            let total = rows * cols;
            // Allocation-bomb guard: refuse before reserving anything if
            // the file cannot possibly hold this tensor's data.
            debit(total as u64 * 4)?;
            let mut data = Vec::with_capacity(total);
            let mut buf = [0u8; 4096 * 4];
            let mut left = total;
            while left > 0 {
                let take = left.min(4096);
                let bytes = &mut buf[..take * 4];
                r.read_exact(bytes)?;
                for chunk in bytes.chunks_exact(4) {
                    let v = f32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
                    if !v.is_finite() {
                        return Err(LoadError::NonFinite(name));
                    }
                    data.push(v);
                }
                left -= take;
            }
            ps.add(name, Matrix::from_vec(rows, cols, data));
        }
        Ok(ps)
    }

    /// Copies values from another set into `self`, matching by name.
    /// Every parameter of `self` must be present in `other` with the same
    /// shape (extra tensors in `other` are ignored).
    pub fn load_values_from(&mut self, other: &ParamSet) -> Result<(), LoadError> {
        for e in &mut self.entries {
            let src = other
                .entries
                .iter()
                .find(|o| o.name == e.name)
                .ok_or_else(|| LoadError::Mismatch(format!("missing tensor {:?}", e.name)))?;
            if src.value.shape() != e.value.shape() {
                return Err(LoadError::Mismatch(format!(
                    "tensor {:?} has shape {:?}, expected {:?}",
                    e.name,
                    src.value.shape(),
                    e.value.shape()
                )));
            }
            e.value = src.value.clone();
        }
        Ok(())
    }
}

fn read_u32(r: &mut impl Read) -> Result<u32, LoadError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoe_tensor::Rng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("amoe_ckpt_test_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn save_load_roundtrip() {
        let mut rng = Rng::seed_from(1);
        let mut ps = ParamSet::new();
        ps.add("a.w", rng.normal_matrix(3, 4, 0.0, 1.0));
        ps.add("a.b", rng.normal_matrix(1, 4, 0.0, 1.0));
        let path = tmp("roundtrip");
        ps.save(&path).unwrap();
        let loaded = ParamSet::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.name(crate::ParamId(0)), "a.w");
        assert_eq!(
            loaded.value(loaded.find("a.w").unwrap()),
            ps.value(ps.find("a.w").unwrap())
        );
        assert_eq!(
            loaded.value(loaded.find("a.b").unwrap()),
            ps.value(ps.find("a.b").unwrap())
        );
    }

    #[test]
    fn save_atomic_roundtrip_and_no_temp_left_behind() {
        let mut rng = Rng::seed_from(21);
        let mut ps = ParamSet::new();
        ps.add("w", rng.normal_matrix(5, 3, 0.0, 1.0));
        let path = tmp("atomic_roundtrip");
        ps.save_atomic(&path).unwrap();
        let loaded = ParamSet::load(&path).unwrap();
        assert_eq!(
            loaded.value(loaded.find("w").unwrap()),
            ps.value(ps.find("w").unwrap())
        );
        let mut tmp_name = path.as_os_str().to_owned();
        tmp_name.push(".tmp");
        assert!(
            !std::path::Path::new(&tmp_name).exists(),
            "temp file left behind"
        );
        std::fs::remove_file(&path).ok();
    }

    /// The regression the rename dance exists for: a reader
    /// interleaved with repeated re-exports of the same path must
    /// never observe a torn file. With a plain `save` (truncate then
    /// stream) the reader races the writer and sees
    /// `Truncated`/`BadMagic`; with `save_atomic` every load succeeds
    /// with a complete, internally consistent checkpoint.
    #[test]
    fn interleaved_reader_never_sees_torn_checkpoint() {
        let path = tmp("atomic_interleaved");
        // Two distinguishable generations of plausible size, so a torn
        // read has plenty of partial states to land on.
        let mk = |seed: u64| {
            let mut rng = Rng::seed_from(seed);
            let mut ps = ParamSet::new();
            ps.add("emb.w", rng.normal_matrix(64, 16, 0.0, 1.0));
            ps.add("tower.w", rng.normal_matrix(32, 32, 0.0, 1.0));
            ps
        };
        let gens = [mk(1), mk(2)];
        gens[0].save_atomic(&path).unwrap();

        let reader_path = path.clone();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let reader_stop = std::sync::Arc::clone(&stop);
        let reader = std::thread::spawn(move || {
            let mut loads = 0usize;
            while !reader_stop.load(std::sync::atomic::Ordering::Relaxed) {
                let ps = ParamSet::load(&reader_path)
                    .unwrap_or_else(|e| panic!("reader saw torn checkpoint: {e}"));
                assert_eq!(ps.len(), 2, "partial tensor set");
                loads += 1;
            }
            loads
        });

        for i in 0..200 {
            gens[i % 2].save_atomic(&path).unwrap();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let loads = reader.join().expect("reader panicked");
        assert!(loads > 0, "reader never overlapped the writer");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"NOPE....").unwrap();
        let err = ParamSet::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, LoadError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let path = tmp("badversion");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = ParamSet::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, LoadError::BadVersion(99)));
    }

    #[test]
    fn truncated_file_rejected() {
        let mut rng = Rng::seed_from(2);
        let mut ps = ParamSet::new();
        ps.add("w", rng.normal_matrix(4, 4, 0.0, 1.0));
        let path = tmp("trunc");
        ps.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let err = ParamSet::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, LoadError::Truncated), "got {err:?}");
    }

    #[test]
    fn truncated_header_rejected() {
        // Cut inside the per-tensor header (after the name, before cols).
        let path = tmp("trunc_header");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one tensor
        bytes.extend_from_slice(&1u32.to_le_bytes()); // name_len
        bytes.push(b'w');
        bytes.extend_from_slice(&2u32.to_le_bytes()); // rows, then EOF
        std::fs::write(&path, &bytes).unwrap();
        let err = ParamSet::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, LoadError::Truncated), "got {err:?}");
    }

    #[test]
    fn allocation_bomb_header_rejected_before_allocating() {
        // A tiny file whose tensor header declares ~1.6 GB of weight
        // data. The loader must refuse from the file-size check alone —
        // if it tried to allocate first, this test would OOM the runner.
        let path = tmp("allocbomb");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one tensor
        bytes.extend_from_slice(&1u32.to_le_bytes()); // name_len
        bytes.push(b'w');
        bytes.extend_from_slice(&20_000u32.to_le_bytes()); // rows
        bytes.extend_from_slice(&20_000u32.to_le_bytes()); // cols
        std::fs::write(&path, &bytes).unwrap();
        let err = ParamSet::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, LoadError::Truncated), "got {err:?}");
    }

    #[test]
    fn implausible_shape_rejected() {
        // rows*cols over the hard cap is Corrupt even if a (hypothetical)
        // file were large enough.
        let path = tmp("absurdshape");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(b'w');
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // rows
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // cols
        std::fs::write(&path, &bytes).unwrap();
        let err = ParamSet::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, LoadError::Corrupt(_)), "got {err:?}");
    }

    #[test]
    fn zero_dim_shape_rejected() {
        let path = tmp("zerodim");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(b'w');
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&4u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = ParamSet::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, LoadError::Corrupt(_)), "got {err:?}");
    }

    #[test]
    fn non_finite_values_rejected_with_tensor_name() {
        let mut ps = ParamSet::new();
        ps.add("fine", Matrix::ones(2, 2));
        ps.add("bad.w", Matrix::ones(1, 3));
        let path = tmp("nonfinite");
        ps.save(&path).unwrap();
        // Corrupt one value of the second tensor in place with NaN.
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&f32::NAN.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        let err = ParamSet::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        match err {
            LoadError::NonFinite(name) => assert_eq!(name, "bad.w"),
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn load_values_from_matches_by_name() {
        let mut rng = Rng::seed_from(3);
        let mut src = ParamSet::new();
        src.add("x", rng.normal_matrix(2, 2, 0.0, 1.0));
        src.add("y", rng.normal_matrix(1, 3, 0.0, 1.0));
        let mut dst = ParamSet::new();
        dst.add("y", Matrix::zeros(1, 3));
        dst.load_values_from(&src).unwrap();
        assert_eq!(
            dst.value(dst.find("y").unwrap()),
            src.value(src.find("y").unwrap())
        );
    }

    #[test]
    fn load_values_shape_mismatch_errors() {
        let mut src = ParamSet::new();
        src.add("y", Matrix::zeros(2, 3));
        let mut dst = ParamSet::new();
        dst.add("y", Matrix::zeros(1, 3));
        assert!(matches!(
            dst.load_values_from(&src),
            Err(LoadError::Mismatch(_))
        ));
    }
}
