//! Binary checkpoint format for [`ParamSet`].
//!
//! Layout (little-endian):
//!
//! ```text
//! magic   b"AMOE"            4 bytes
//! version u32                currently 1
//! count   u32                number of tensors
//! per tensor:
//!   name_len u32, name bytes (UTF-8)
//!   rows u32, cols u32
//!   rows*cols f32 values, row-major
//! ```
//!
//! Gradients and optimizer state are not checkpointed; a loaded model is
//! ready for inference or fresh fine-tuning.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use amoe_tensor::Matrix;

use crate::ParamSet;

const MAGIC: &[u8; 4] = b"AMOE";
const VERSION: u32 = 1;

/// Errors raised while reading a checkpoint.
#[derive(Debug)]
pub enum SerializeError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Bad magic bytes — not a checkpoint file.
    BadMagic,
    /// File written by an unknown format version.
    BadVersion(u32),
    /// A tensor header or name failed validation.
    Corrupt(String),
    /// Loaded tensors don't match the receiving parameter set.
    Mismatch(String),
}

impl std::fmt::Display for SerializeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SerializeError::Io(e) => write!(f, "i/o error: {e}"),
            SerializeError::BadMagic => write!(f, "not an AMOE checkpoint (bad magic)"),
            SerializeError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            SerializeError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            SerializeError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for SerializeError {}

impl From<io::Error> for SerializeError {
    fn from(e: io::Error) -> Self {
        SerializeError::Io(e)
    }
}

impl ParamSet {
    /// Writes all parameter values to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SerializeError> {
        let mut w = BufWriter::new(File::create(path)?);
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(self.entries.len() as u32).to_le_bytes())?;
        for e in &self.entries {
            let name = e.name.as_bytes();
            w.write_all(&(name.len() as u32).to_le_bytes())?;
            w.write_all(name)?;
            w.write_all(&(e.value.rows() as u32).to_le_bytes())?;
            w.write_all(&(e.value.cols() as u32).to_le_bytes())?;
            for &v in e.value.as_slice() {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        w.flush()?;
        Ok(())
    }

    /// Reads a checkpoint into a fresh set (names and shapes come from
    /// the file).
    pub fn load(path: impl AsRef<Path>) -> Result<ParamSet, SerializeError> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(SerializeError::BadMagic);
        }
        let version = read_u32(&mut r)?;
        if version != VERSION {
            return Err(SerializeError::BadVersion(version));
        }
        let count = read_u32(&mut r)? as usize;
        if count > 1_000_000 {
            return Err(SerializeError::Corrupt(format!(
                "implausible tensor count {count}"
            )));
        }
        let mut ps = ParamSet::new();
        for _ in 0..count {
            let name_len = read_u32(&mut r)? as usize;
            if name_len > 4096 {
                return Err(SerializeError::Corrupt(format!(
                    "implausible name length {name_len}"
                )));
            }
            let mut name = vec![0u8; name_len];
            r.read_exact(&mut name)?;
            let name = String::from_utf8(name)
                .map_err(|_| SerializeError::Corrupt("non-UTF8 tensor name".into()))?;
            let rows = read_u32(&mut r)? as usize;
            let cols = read_u32(&mut r)? as usize;
            if rows == 0 || cols == 0 || rows.saturating_mul(cols) > 500_000_000 {
                return Err(SerializeError::Corrupt(format!(
                    "implausible shape {rows}x{cols} for {name:?}"
                )));
            }
            let mut data = vec![0f32; rows * cols];
            let mut buf = [0u8; 4];
            for v in &mut data {
                r.read_exact(&mut buf)?;
                *v = f32::from_le_bytes(buf);
            }
            ps.add(name, Matrix::from_vec(rows, cols, data));
        }
        Ok(ps)
    }

    /// Copies values from another set into `self`, matching by name.
    /// Every parameter of `self` must be present in `other` with the same
    /// shape (extra tensors in `other` are ignored).
    pub fn load_values_from(&mut self, other: &ParamSet) -> Result<(), SerializeError> {
        for e in &mut self.entries {
            let src = other
                .entries
                .iter()
                .find(|o| o.name == e.name)
                .ok_or_else(|| SerializeError::Mismatch(format!("missing tensor {:?}", e.name)))?;
            if src.value.shape() != e.value.shape() {
                return Err(SerializeError::Mismatch(format!(
                    "tensor {:?} has shape {:?}, expected {:?}",
                    e.name,
                    src.value.shape(),
                    e.value.shape()
                )));
            }
            e.value = src.value.clone();
        }
        Ok(())
    }
}

fn read_u32(r: &mut impl Read) -> Result<u32, SerializeError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoe_tensor::Rng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("amoe_ckpt_test_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn save_load_roundtrip() {
        let mut rng = Rng::seed_from(1);
        let mut ps = ParamSet::new();
        ps.add("a.w", rng.normal_matrix(3, 4, 0.0, 1.0));
        ps.add("a.b", rng.normal_matrix(1, 4, 0.0, 1.0));
        let path = tmp("roundtrip");
        ps.save(&path).unwrap();
        let loaded = ParamSet::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.name(crate::ParamId(0)), "a.w");
        assert_eq!(
            loaded.value(loaded.find("a.w").unwrap()),
            ps.value(ps.find("a.w").unwrap())
        );
        assert_eq!(
            loaded.value(loaded.find("a.b").unwrap()),
            ps.value(ps.find("a.b").unwrap())
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"NOPE....").unwrap();
        let err = ParamSet::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, SerializeError::BadMagic));
    }

    #[test]
    fn truncated_file_rejected() {
        let mut rng = Rng::seed_from(2);
        let mut ps = ParamSet::new();
        ps.add("w", rng.normal_matrix(4, 4, 0.0, 1.0));
        let path = tmp("trunc");
        ps.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let err = ParamSet::load(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, SerializeError::Io(_)));
    }

    #[test]
    fn load_values_from_matches_by_name() {
        let mut rng = Rng::seed_from(3);
        let mut src = ParamSet::new();
        src.add("x", rng.normal_matrix(2, 2, 0.0, 1.0));
        src.add("y", rng.normal_matrix(1, 3, 0.0, 1.0));
        let mut dst = ParamSet::new();
        dst.add("y", Matrix::zeros(1, 3));
        dst.load_values_from(&src).unwrap();
        assert_eq!(
            dst.value(dst.find("y").unwrap()),
            src.value(src.find("y").unwrap())
        );
    }

    #[test]
    fn load_values_shape_mismatch_errors() {
        let mut src = ParamSet::new();
        src.add("y", Matrix::zeros(2, 3));
        let mut dst = ParamSet::new();
        dst.add("y", Matrix::zeros(1, 3));
        assert!(matches!(
            dst.load_values_from(&src),
            Err(SerializeError::Mismatch(_))
        ));
    }
}
