//! Layers: linear, embedding and MLP towers.

use amoe_autograd::Var;
use amoe_tensor::{matmul, ops, Matrix, Rng};

use crate::{Bound, Init, ParamId, ParamSet};

/// Hidden-layer activation functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Activation {
    /// max(x, 0) — used by the paper's expert towers.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// No nonlinearity.
    Identity,
}

impl Activation {
    fn apply<'t>(self, x: Var<'t>) -> Var<'t> {
        match self {
            Activation::Relu => x.relu(),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => x.sigmoid(),
            Activation::Identity => x,
        }
    }

    /// Tape-free application for serving paths (the quantized expert
    /// forward in `amoe_core` re-applies activations outside `Mlp`).
    #[must_use]
    pub fn apply_matrix(self, x: &Matrix) -> Matrix {
        match self {
            Activation::Relu => ops::relu(x),
            Activation::Tanh => ops::map(x, f32::tanh),
            Activation::Sigmoid => ops::sigmoid(x),
            Activation::Identity => x.clone(),
        }
    }
}

/// A fully-connected layer `y = x·W + b`.
#[derive(Clone, Debug)]
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers the layer's parameters under `name.w` / `name.b`.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        init: Init,
        bias: bool,
        rng: &mut Rng,
    ) -> Self {
        let w = ps.add(format!("{name}.w"), init.sample(in_dim, out_dim, rng));
        let b = bias.then(|| ps.add(format!("{name}.b"), Matrix::zeros(1, out_dim)));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input width.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Weight parameter handle.
    #[must_use]
    pub fn weight(&self) -> ParamId {
        self.w
    }

    /// Bias parameter handle, if the layer has one.
    #[must_use]
    pub fn bias(&self) -> Option<ParamId> {
        self.b
    }

    /// Tape forward pass.
    #[must_use]
    pub fn forward<'t>(&self, bound: &Bound<'t>, x: Var<'t>) -> Var<'t> {
        let y = x.matmul(bound.var(self.w));
        match self.b {
            Some(b) => y.add_row(bound.var(b)),
            None => y,
        }
    }

    /// Tape-free forward pass for serving.
    #[must_use]
    pub fn infer(&self, ps: &ParamSet, x: &Matrix) -> Matrix {
        let y = matmul::matmul(x, ps.value(self.w));
        match self.b {
            Some(b) => ops::add_row_broadcast(&y, ps.value(b)),
            None => y,
        }
    }
}

/// A lookup table mapping ids to dense rows.
#[derive(Clone, Debug)]
pub struct Embedding {
    table: ParamId,
    vocab: usize,
    dim: usize,
}

impl Embedding {
    /// Registers the table under `name.table`; rows are N(0, 0.05) as is
    /// conventional for sparse-feature embeddings.
    pub fn new(ps: &mut ParamSet, name: &str, vocab: usize, dim: usize, rng: &mut Rng) -> Self {
        let table = ps.add(
            format!("{name}.table"),
            Init::Normal(0.05).sample(vocab, dim, rng),
        );
        Embedding { table, vocab, dim }
    }

    /// Vocabulary size.
    #[must_use]
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// Embedding dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Table parameter handle.
    #[must_use]
    pub fn table(&self) -> ParamId {
        self.table
    }

    /// Tape forward: one output row per index.
    ///
    /// # Panics
    /// Panics if an index is out of vocabulary.
    #[must_use]
    pub fn forward<'t>(&self, bound: &Bound<'t>, indices: &[usize]) -> Var<'t> {
        self.check(indices);
        bound.var(self.table).embed(indices)
    }

    /// Tape-free forward pass for serving.
    #[must_use]
    pub fn infer(&self, ps: &ParamSet, indices: &[usize]) -> Matrix {
        self.check(indices);
        ps.value(self.table).gather_rows(indices)
    }

    fn check(&self, indices: &[usize]) {
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.vocab) {
            panic!(
                "Embedding: index {bad} out of vocabulary (size {})",
                self.vocab
            );
        }
    }
}

/// A multi-layer perceptron: hidden layers with a shared activation and a
/// linear output layer — the structure of the paper's expert towers and
/// DNN baseline (`512 x 256 x 1`, ReLU).
#[derive(Clone, Debug)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

impl Mlp {
    /// Builds an MLP with the given layer widths. `dims` must contain the
    /// input width followed by each layer's output width, e.g.
    /// `[n, 512, 256, 1]`. Hidden layers use He init (ReLU default);
    /// the output layer uses Xavier.
    ///
    /// # Panics
    /// Panics if fewer than two dims are given.
    pub fn new(
        ps: &mut ParamSet,
        name: &str,
        dims: &[usize],
        activation: Activation,
        rng: &mut Rng,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp::new: need at least [in, out] dims");
        let mut layers = Vec::with_capacity(dims.len() - 1);
        for i in 0..dims.len() - 1 {
            let is_last = i == dims.len() - 2;
            let init = if is_last || activation != Activation::Relu {
                Init::XavierUniform
            } else {
                Init::HeNormal
            };
            layers.push(Linear::new(
                ps,
                &format!("{name}.l{i}"),
                dims[i],
                dims[i + 1],
                init,
                true,
                rng,
            ));
        }
        Mlp { layers, activation }
    }

    /// Input width.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output width.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// The constituent linear layers.
    #[must_use]
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// The hidden-layer activation (applied after every layer but the
    /// last).
    #[must_use]
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// Every parameter handle of this MLP (weights and biases, layer
    /// order). The split-graph training path uses this to bind one
    /// expert tower onto its own tape via [`ParamSet::bind_subset`].
    #[must_use]
    pub fn param_ids(&self) -> Vec<ParamId> {
        self.layers
            .iter()
            .flat_map(|l| std::iter::once(l.weight()).chain(l.bias()))
            .collect()
    }

    /// Tape forward: activation after every layer except the last.
    #[must_use]
    pub fn forward<'t>(&self, bound: &Bound<'t>, x: Var<'t>) -> Var<'t> {
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(bound, h);
            if i + 1 < self.layers.len() {
                h = self.activation.apply(h);
            }
        }
        h
    }

    /// Tape-free forward pass for serving.
    #[must_use]
    pub fn infer(&self, ps: &ParamSet, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.infer(ps, &h);
            if i + 1 < self.layers.len() {
                h = self.activation.apply_matrix(&h);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoe_autograd::Tape;
    use amoe_tensor::assert_close;

    #[test]
    fn linear_forward_matches_infer() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed_from(1);
        let lin = Linear::new(&mut ps, "l", 3, 2, Init::XavierUniform, true, &mut rng);
        let x = rng.normal_matrix(4, 3, 0.0, 1.0);
        let tape = Tape::new();
        let bound = ps.bind(&tape);
        let y_tape = lin.forward(&bound, tape.leaf(x.clone())).value();
        let y_infer = lin.infer(&ps, &x);
        assert_close(&y_tape, &y_infer, 1e-6, 1e-7);
        assert_eq!(y_tape.shape(), (4, 2));
    }

    #[test]
    fn linear_without_bias() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed_from(2);
        let lin = Linear::new(&mut ps, "l", 2, 2, Init::XavierUniform, false, &mut rng);
        assert!(lin.bias().is_none());
        assert_eq!(ps.len(), 1);
    }

    #[test]
    fn embedding_lookup_and_oov_panic() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed_from(3);
        let emb = Embedding::new(&mut ps, "e", 5, 4, &mut rng);
        let out = emb.infer(&ps, &[0, 4, 0]);
        assert_eq!(out.shape(), (3, 4));
        assert_eq!(out.row(0), out.row(2));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = emb.infer(&ps, &[5]);
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn mlp_shapes_and_consistency() {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed_from(4);
        let mlp = Mlp::new(&mut ps, "m", &[6, 8, 4, 1], Activation::Relu, &mut rng);
        assert_eq!(mlp.in_dim(), 6);
        assert_eq!(mlp.out_dim(), 1);
        assert_eq!(mlp.layers().len(), 3);
        let x = rng.normal_matrix(5, 6, 0.0, 1.0);
        let tape = Tape::new();
        let bound = ps.bind(&tape);
        let y_tape = mlp.forward(&bound, tape.leaf(x.clone())).value();
        assert_close(&y_tape, &mlp.infer(&ps, &x), 1e-5, 1e-6);
    }

    #[test]
    fn mlp_trains_toward_target() {
        // One gradient step on MSE should reduce the loss.
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed_from(5);
        let mlp = Mlp::new(&mut ps, "m", &[2, 8, 1], Activation::Tanh, &mut rng);
        let x = rng.normal_matrix(16, 2, 0.0, 1.0);
        let y = Matrix::filled(16, 1, 0.7);
        let before;
        {
            let tape = Tape::new();
            let bound = ps.bind(&tape);
            let pred = mlp.forward(&bound, tape.leaf(x.clone()));
            let diff = pred.add_const(&amoe_tensor::ops::scale(&y, -1.0));
            let loss = diff.square().mean_all();
            before = loss.value()[(0, 0)];
            let grads = tape.backward(loss);
            ps.collect_grads(&bound, &grads);
        }
        // Manual SGD step.
        for i in 0..ps.len() {
            let g = ps.entries[i].grad.clone();
            amoe_tensor::ops::axpy(&mut ps.entries[i].value, -0.1, &g);
        }
        let tape = Tape::new();
        let bound = ps.bind(&tape);
        let pred = mlp.forward(&bound, tape.leaf(x.clone()));
        let diff = pred.add_const(&amoe_tensor::ops::scale(&y, -1.0));
        let after = diff.square().mean_all().value()[(0, 0)];
        assert!(after < before);
    }
}
