//! First-order optimizers.
//!
//! The paper trains every model with AdamW (Loshchilov & Hutter 2017,
//! their ref \[17\]); SGD, momentum-SGD and plain Adam are provided for the
//! ablation benches comparing optimizer choice.

use amoe_tensor::Matrix;

use crate::ParamSet;

/// A first-order optimizer updating a [`ParamSet`] in place from its
/// accumulated gradients. Callers `zero_grads()` between steps.
pub trait Optimizer {
    /// Applies one update step.
    fn step(&mut self, params: &mut ParamSet);

    /// Current learning rate.
    fn lr(&self) -> f32;

    /// Overrides the learning rate (used by schedules).
    fn set_lr(&mut self, lr: f32);
}

/// Stochastic gradient descent, optionally with classical momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Plain SGD.
    #[must_use]
    pub fn new(lr: f32) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// SGD with momentum `mu` (velocity `v ← mu·v + g`, `w ← w − lr·v`).
    #[must_use]
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "Sgd: lr must be positive");
        assert!((0.0..1.0).contains(&momentum), "Sgd: momentum in [0,1)");
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut ParamSet) {
        if self.momentum == 0.0 {
            for e in &mut params.entries {
                e.value
                    .as_mut_slice()
                    .iter_mut()
                    .zip(e.grad.as_slice())
                    .for_each(|(w, &g)| *w -= self.lr * g);
            }
            return;
        }
        if self.velocity.is_empty() {
            self.velocity = params
                .entries
                .iter()
                .map(|e| Matrix::zeros(e.value.rows(), e.value.cols()))
                .collect();
        }
        for (e, v) in params.entries.iter_mut().zip(&mut self.velocity) {
            for ((w, &g), vel) in e
                .value
                .as_mut_slice()
                .iter_mut()
                .zip(e.grad.as_slice())
                .zip(v.as_mut_slice())
            {
                *vel = self.momentum * *vel + g;
                *w -= self.lr * *vel;
            }
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam / AdamW. With `weight_decay > 0` the decay is *decoupled*
/// (applied directly to the weights, not through the moments), which is
/// the AdamW variant the paper uses.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Plain Adam with the canonical betas (0.9, 0.999).
    #[must_use]
    pub fn new(lr: f32) -> Self {
        Self::adamw(lr, 0.0)
    }

    /// AdamW with decoupled weight decay.
    #[must_use]
    pub fn adamw(lr: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0, "Adam: lr must be positive");
        assert!(weight_decay >= 0.0, "Adam: weight_decay must be >= 0");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Overrides the exponential-decay rates.
    #[must_use]
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Number of steps taken so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut ParamSet) {
        if self.m.is_empty() {
            self.m = params
                .entries
                .iter()
                .map(|e| Matrix::zeros(e.value.rows(), e.value.cols()))
                .collect();
            self.v = self.m.clone();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((e, m), v) in params.entries.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            for (((w, &g), mi), vi) in e
                .value
                .as_mut_slice()
                .iter_mut()
                .zip(e.grad.as_slice())
                .zip(m.as_mut_slice())
                .zip(v.as_mut_slice())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
                let mhat = *mi / bc1;
                let vhat = *vi / bc2;
                // Decoupled decay (AdamW): shrink the weight directly.
                *w -= self.lr * (mhat / (vhat.sqrt() + self.eps) + self.weight_decay * *w);
            }
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_setup() -> ParamSet {
        let mut ps = ParamSet::new();
        ps.add("w", Matrix::from_rows(&[&[5.0, -3.0]]));
        ps
    }

    /// Loss = 0.5 * ||w||^2 so grad = w; all optimizers must drive w to 0.
    fn fill_grad(ps: &mut ParamSet) {
        let g = ps.entries[0].value.clone();
        ps.entries[0].grad = g;
    }

    fn run<O: Optimizer>(mut opt: O, steps: usize) -> f32 {
        let mut ps = quadratic_setup();
        for _ in 0..steps {
            ps.zero_grads();
            fill_grad(&mut ps);
            opt.step(&mut ps);
        }
        ps.value(ps.find("w").unwrap()).frob_norm()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!(run(Sgd::new(0.1), 200) < 1e-3);
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        assert!(run(Sgd::with_momentum(0.05, 0.9), 300) < 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        assert!(run(Adam::new(0.1), 400) < 1e-2);
    }

    #[test]
    fn adamw_decay_shrinks_weights_without_gradient() {
        let mut ps = quadratic_setup();
        let before = ps.value(ps.find("w").unwrap()).frob_norm();
        let mut opt = Adam::adamw(0.01, 0.1);
        // Zero gradients: only the decoupled decay acts.
        for _ in 0..50 {
            ps.zero_grads();
            opt.step(&mut ps);
        }
        let after = ps.value(ps.find("w").unwrap()).frob_norm();
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn set_lr_roundtrip() {
        let mut opt = Adam::new(0.1);
        assert_eq!(opt.lr(), 0.1);
        opt.set_lr(0.01);
        assert_eq!(opt.lr(), 0.01);
    }
}
