#![warn(missing_docs)]

//! Neural-network building blocks over the autograd tape.
//!
//! Parameters live in a [`ParamSet`] *outside* any tape; each training
//! step binds them onto a fresh [`amoe_autograd::Tape`] as leaves
//! ([`ParamSet::bind`]), builds the loss, runs backward, collects the
//! leaf gradients back into the set ([`ParamSet::collect_grads`]) and
//! lets an [`optim::Optimizer`] update the values. This keeps tapes
//! short-lived and parameters in one flat, serialisable store.
//!
//! The layer set is exactly what the paper's models need: [`Linear`],
//! [`Embedding`] and [`Mlp`] towers with ReLU hidden activations
//! (Sec. 5.1.4: towers are `512 x 256 x 1` MLPs; we keep the structure
//! and scale the widths).

mod init;
mod layers;
pub mod optim;
mod params;
pub mod schedule;
mod serialize;

pub use init::Init;
pub use layers::{Activation, Embedding, Linear, Mlp};
pub use params::{Bound, ParamId, ParamSet};
pub use serialize::{LoadError, SerializeError};
