//! Learning-rate schedules.

/// Maps a 0-based global step to a learning rate.
#[derive(Clone, Debug, PartialEq)]
pub enum LrSchedule {
    /// Fixed learning rate (the paper's setting).
    Constant(f32),
    /// `base` multiplied by `gamma` every `every` steps.
    StepDecay {
        /// Initial rate.
        base: f32,
        /// Multiplier applied at each boundary.
        gamma: f32,
        /// Steps between boundaries.
        every: usize,
    },
    /// Linear warmup from 0 to `base` over `warmup` steps, then constant.
    Warmup {
        /// Target rate.
        base: f32,
        /// Warmup length in steps.
        warmup: usize,
    },
}

impl LrSchedule {
    /// Learning rate at `step`.
    #[must_use]
    pub fn at(&self, step: usize) -> f32 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::StepDecay { base, gamma, every } => {
                base * gamma.powi((step / every.max(1)) as i32)
            }
            LrSchedule::Warmup { base, warmup } => {
                if warmup == 0 || step >= warmup {
                    base
                } else {
                    base * (step + 1) as f32 / warmup as f32
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant(0.1);
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(1_000_000), 0.1);
    }

    #[test]
    fn step_decay_boundaries() {
        let s = LrSchedule::StepDecay {
            base: 1.0,
            gamma: 0.5,
            every: 10,
        };
        assert_eq!(s.at(0), 1.0);
        assert_eq!(s.at(9), 1.0);
        assert_eq!(s.at(10), 0.5);
        assert_eq!(s.at(25), 0.25);
    }

    #[test]
    fn warmup_ramps_then_holds() {
        let s = LrSchedule::Warmup {
            base: 1.0,
            warmup: 4,
        };
        assert_eq!(s.at(0), 0.25);
        assert_eq!(s.at(1), 0.5);
        assert_eq!(s.at(3), 1.0);
        assert_eq!(s.at(100), 1.0);
    }

    #[test]
    fn warmup_zero_is_safe() {
        let s = LrSchedule::Warmup {
            base: 0.3,
            warmup: 0,
        };
        assert_eq!(s.at(0), 0.3);
    }
}
