//! Weight initialisation schemes.

use amoe_tensor::{Matrix, Rng};

/// Initialisation scheme for a `fan_in x fan_out` weight matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Init {
    /// All zeros (biases).
    Zeros,
    /// Uniform in `[-limit, limit]` with `limit = sqrt(6 / (fan_in + fan_out))`
    /// (Glorot & Bengio 2010) — the default for linear layers feeding
    /// saturating nonlinearities and gates.
    XavierUniform,
    /// Normal with std `sqrt(2 / fan_in)` (He et al. 2015) — for ReLU
    /// towers, which the paper's experts use.
    HeNormal,
    /// i.i.d. normal with the given standard deviation (embeddings).
    Normal(f32),
    /// i.i.d. uniform in `[lo, hi)`.
    Uniform(f32, f32),
}

impl Init {
    /// Samples a `rows x cols` matrix. `rows` is treated as fan-in and
    /// `cols` as fan-out.
    #[must_use]
    pub fn sample(self, rows: usize, cols: usize, rng: &mut Rng) -> Matrix {
        match self {
            Init::Zeros => Matrix::zeros(rows, cols),
            Init::XavierUniform => {
                let limit = (6.0 / (rows + cols) as f32).sqrt();
                rng.uniform_matrix(rows, cols, -limit, limit)
            }
            Init::HeNormal => {
                let std = (2.0 / rows as f32).sqrt();
                rng.normal_matrix(rows, cols, 0.0, std)
            }
            Init::Normal(std) => rng.normal_matrix(rows, cols, 0.0, std),
            Init::Uniform(lo, hi) => rng.uniform_matrix(rows, cols, lo, hi),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_is_zero() {
        let mut rng = Rng::seed_from(1);
        let m = Init::Zeros.sample(3, 4, &mut rng);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn xavier_within_limit() {
        let mut rng = Rng::seed_from(2);
        let (rows, cols) = (64, 32);
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        let m = Init::XavierUniform.sample(rows, cols, &mut rng);
        assert!(m.as_slice().iter().all(|&v| v.abs() <= limit));
        // Not degenerate.
        assert!(m.frob_norm() > 0.0);
    }

    #[test]
    fn he_normal_std() {
        let mut rng = Rng::seed_from(3);
        let m = Init::HeNormal.sample(256, 128, &mut rng);
        let n = m.len() as f32;
        let mean: f32 = m.as_slice().iter().sum::<f32>() / n;
        let var: f32 = m
            .as_slice()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / n;
        let expected = 2.0 / 256.0;
        assert!(
            (var - expected).abs() < 0.2 * expected,
            "var {var} vs {expected}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Init::HeNormal.sample(4, 4, &mut Rng::seed_from(7));
        let b = Init::HeNormal.sample(4, 4, &mut Rng::seed_from(7));
        assert_eq!(a, b);
    }
}
