#![warn(missing_docs)]

//! Exact t-SNE (van der Maaten & Hinton 2008, the paper's ref \[19\]).
//!
//! Used by the Fig. 6 experiment to embed inference-gate probability
//! vectors into 2-D, where the paper inspects how semantically similar
//! categories cluster under MoE vs Adv-MoE vs Adv & HSC-MoE. The point
//! counts there are small (≤ a few thousand), so the exact O(n²)
//! algorithm is both the reference method and fast enough.
//!
//! Implementation notes:
//! * conditional distributions `p_{j|i}` calibrated per point by binary
//!   search on the Gaussian bandwidth to match the target perplexity;
//! * symmetrised `P`, early exaggeration for the first quarter of the
//!   iterations, gradient descent with momentum and per-dimension gains
//!   — the reference recipe.

use amoe_tensor::{Matrix, Rng};

/// t-SNE hyper-parameters.
#[derive(Clone, Debug)]
pub struct TsneConfig {
    /// Target perplexity (effective neighbour count). Typical 5–50.
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate (η).
    pub learning_rate: f64,
    /// Early-exaggeration factor applied for the first quarter of the
    /// iterations.
    pub exaggeration: f64,
    /// Seed for the initial layout.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            perplexity: 30.0,
            iterations: 400,
            learning_rate: 100.0,
            exaggeration: 4.0,
            seed: 1,
        }
    }
}

/// Embeds the rows of `data` into 2-D.
///
/// # Panics
/// Panics if there are fewer than 3 rows or the perplexity is not
/// achievable (`3 * perplexity >= n` is rejected with a clear message).
#[must_use]
pub fn tsne(data: &Matrix, config: &TsneConfig) -> Matrix {
    let n = data.rows();
    assert!(n >= 3, "tsne: need at least 3 points, got {n}");
    let perplexity = config.perplexity.min((n as f64 - 1.0) / 3.0).max(2.0);

    let p = joint_probabilities(data, perplexity);

    let mut rng = Rng::seed_from(config.seed);
    let mut y = rng.normal_matrix(n, 2, 0.0, 1e-4);
    let mut dy = Matrix::zeros(n, 2);
    let mut gains = Matrix::ones(n, 2);

    let exag_until = config.iterations / 4;
    for iter in 0..config.iterations {
        let exag = if iter < exag_until {
            config.exaggeration
        } else {
            1.0
        };
        let momentum = if iter < exag_until { 0.5 } else { 0.8 };

        // Student-t affinities in the embedding.
        let mut num = vec![0f64; n * n];
        let mut q_sum = 0f64;
        for i in 0..n {
            for j in i + 1..n {
                let dx = f64::from(y[(i, 0)] - y[(j, 0)]);
                let dz = f64::from(y[(i, 1)] - y[(j, 1)]);
                let v = 1.0 / (1.0 + dx * dx + dz * dz);
                num[i * n + j] = v;
                num[j * n + i] = v;
                q_sum += 2.0 * v;
            }
        }
        let q_sum = q_sum.max(1e-12);

        // Gradient: 4 Σ_j (p_ij·exag − q_ij) num_ij (y_i − y_j).
        let mut grad = Matrix::zeros(n, 2);
        for i in 0..n {
            let mut gx = 0f64;
            let mut gz = 0f64;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let q = num[i * n + j] / q_sum;
                let mult = (exag * p[i * n + j] - q) * num[i * n + j];
                gx += mult * f64::from(y[(i, 0)] - y[(j, 0)]);
                gz += mult * f64::from(y[(i, 1)] - y[(j, 1)]);
            }
            grad[(i, 0)] = (4.0 * gx) as f32;
            grad[(i, 1)] = (4.0 * gz) as f32;
        }

        // Momentum + adaptive per-dimension gains.
        for i in 0..n {
            for d in 0..2 {
                let g = grad[(i, d)];
                let same_sign = (g > 0.0) == (dy[(i, d)] > 0.0);
                let gain = if same_sign {
                    (gains[(i, d)] * 0.8).max(0.01)
                } else {
                    gains[(i, d)] + 0.2
                };
                gains[(i, d)] = gain;
                dy[(i, d)] =
                    momentum as f32 * dy[(i, d)] - (config.learning_rate as f32) * gain * g;
                y[(i, d)] += dy[(i, d)];
            }
        }

        // Re-centre.
        let (mx, mz) = {
            let mut sx = 0f32;
            let mut sz = 0f32;
            for i in 0..n {
                sx += y[(i, 0)];
                sz += y[(i, 1)];
            }
            (sx / n as f32, sz / n as f32)
        };
        for i in 0..n {
            y[(i, 0)] -= mx;
            y[(i, 1)] -= mz;
        }
    }
    y
}

/// Symmetrised joint probabilities `p_ij` with per-point bandwidth
/// calibrated to the target perplexity.
fn joint_probabilities(data: &Matrix, perplexity: f64) -> Vec<f64> {
    let n = data.rows();
    // Squared Euclidean distances.
    let mut d2 = vec![0f64; n * n];
    for i in 0..n {
        for j in i + 1..n {
            let dist: f64 = data
                .row(i)
                .iter()
                .zip(data.row(j))
                .map(|(a, b)| f64::from(a - b) * f64::from(a - b))
                .sum();
            d2[i * n + j] = dist;
            d2[j * n + i] = dist;
        }
    }

    let target_entropy = perplexity.ln();
    let mut p = vec![0f64; n * n];
    let mut row = vec![0f64; n];
    for i in 0..n {
        // Binary search on beta = 1 / (2σ²).
        let mut beta = 1.0f64;
        let (mut lo, mut hi) = (f64::MIN_POSITIVE, f64::MAX);
        for _ in 0..64 {
            let mut sum = 0f64;
            for j in 0..n {
                row[j] = if i == j {
                    0.0
                } else {
                    (-beta * d2[i * n + j]).exp()
                };
                sum += row[j];
            }
            let sum = sum.max(1e-300);
            // Shannon entropy of the conditional distribution.
            let mut entropy = 0f64;
            for (j, &rj) in row.iter().enumerate() {
                if j != i && rj > 0.0 {
                    let pj = rj / sum;
                    entropy -= pj * pj.ln();
                }
            }
            let diff = entropy - target_entropy;
            if diff.abs() < 1e-5 {
                break;
            }
            if diff > 0.0 {
                lo = beta;
                beta = if hi == f64::MAX {
                    beta * 2.0
                } else {
                    0.5 * (beta + hi)
                };
            } else {
                hi = beta;
                beta = if lo == f64::MIN_POSITIVE {
                    beta / 2.0
                } else {
                    0.5 * (beta + lo)
                };
            }
        }
        let sum: f64 = row
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, &v)| v)
            .sum();
        let sum = sum.max(1e-300);
        for j in 0..n {
            if j != i {
                p[i * n + j] = row[j] / sum;
            }
        }
    }

    // Symmetrise and normalise: p_ij = (p_{j|i} + p_{i|j}) / 2n.
    let mut joint = vec![0f64; n * n];
    for i in 0..n {
        for j in i + 1..n {
            let v = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f64)).max(1e-12);
            joint[i * n + j] = v;
            joint[j * n + i] = v;
        }
    }
    joint
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs(n_per: usize, sep: f32, seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = Rng::seed_from(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2 {
            for _ in 0..n_per {
                let cx = c as f32 * sep;
                rows.push(vec![
                    cx + rng.normal_with(0.0, 0.3),
                    rng.normal_with(0.0, 0.3),
                    rng.normal_with(0.0, 0.3),
                ]);
                labels.push(c);
            }
        }
        let flat: Vec<f32> = rows.into_iter().flatten().collect();
        (Matrix::from_vec(2 * n_per, 3, flat), labels)
    }

    #[test]
    fn separable_blobs_stay_separated() {
        let (data, labels) = two_blobs(30, 10.0, 5);
        let cfg = TsneConfig {
            perplexity: 10.0,
            iterations: 250,
            ..Default::default()
        };
        let y = tsne(&data, &cfg);
        assert_eq!(y.shape(), (60, 2));
        assert!(y.all_finite());
        // Class centroids in the embedding must be far apart relative to
        // the intra-class spread.
        let centroid = |c: usize| -> (f32, f32) {
            let pts: Vec<usize> = (0..60).filter(|&i| labels[i] == c).collect();
            let sx: f32 = pts.iter().map(|&i| y[(i, 0)]).sum();
            let sy: f32 = pts.iter().map(|&i| y[(i, 1)]).sum();
            (sx / pts.len() as f32, sy / pts.len() as f32)
        };
        let (c0, c1) = (centroid(0), centroid(1));
        let between = ((c0.0 - c1.0).powi(2) + (c0.1 - c1.1).powi(2)).sqrt();
        let spread: f32 = (0..60)
            .map(|i| {
                let c = if labels[i] == 0 { c0 } else { c1 };
                ((y[(i, 0)] - c.0).powi(2) + (y[(i, 1)] - c.1).powi(2)).sqrt()
            })
            .sum::<f32>()
            / 60.0;
        assert!(
            between > 2.0 * spread,
            "clusters not separated: between {between}, spread {spread}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let (data, _) = two_blobs(10, 5.0, 6);
        let cfg = TsneConfig {
            iterations: 50,
            ..Default::default()
        };
        let a = tsne(&data, &cfg);
        let b = tsne(&data, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn output_is_centred() {
        let (data, _) = two_blobs(10, 5.0, 7);
        let cfg = TsneConfig {
            iterations: 60,
            ..Default::default()
        };
        let y = tsne(&data, &cfg);
        let mx: f32 = (0..y.rows()).map(|i| y[(i, 0)]).sum::<f32>() / y.rows() as f32;
        assert!(mx.abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "at least 3 points")]
    fn too_few_points_panics() {
        let data = Matrix::ones(2, 2);
        let _ = tsne(&data, &TsneConfig::default());
    }

    #[test]
    fn perplexity_clamped_for_small_n() {
        // Should not panic even with a perplexity larger than n.
        let (data, _) = two_blobs(5, 3.0, 8);
        let cfg = TsneConfig {
            perplexity: 100.0,
            iterations: 30,
            ..Default::default()
        };
        let y = tsne(&data, &cfg);
        assert!(y.all_finite());
    }

    #[test]
    fn joint_probabilities_symmetric_and_normalised() {
        let (data, _) = two_blobs(8, 4.0, 9);
        let p = joint_probabilities(&data, 5.0);
        let n = data.rows();
        let total: f64 = p.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
        for i in 0..n {
            for j in 0..n {
                assert!((p[i * n + j] - p[j * n + i]).abs() < 1e-12);
            }
            assert_eq!(p[i * n + i], 0.0);
        }
    }
}
