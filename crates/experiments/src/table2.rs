//! Table 2: the seven-model full evaluation (AUC, NDCG@10, NDCG).

use std::fmt;

use amoe_core::{EvalReport, Trainer};

use crate::suite::{SuiteConfig, TrainedZoo};
use crate::tablefmt::{m4, TextTable};

/// One evaluated model row (seed-averaged when `run` is used).
pub struct ModelRow {
    /// Model name.
    pub name: String,
    /// Session-level evaluation on the test split (mean over seeds).
    pub report: EvalReport,
    /// Standard deviation of the AUC across seeds (0 for single-seed).
    pub auc_std: f64,
    /// Scalar parameter count.
    pub parameters: usize,
}

/// The Table 2 report.
pub struct Table2 {
    /// Rows in the paper's order.
    pub rows: Vec<ModelRow>,
}

/// Evaluates an already-trained zoo (lets `table2`, `fig5`, `fig6` and
/// the case study share one training pass).
#[must_use]
pub fn evaluate(config: &SuiteConfig, zoo: &TrainedZoo) -> Table2 {
    let trainer = Trainer::new(config.train_config());
    let rows = zoo
        .rankers()
        .into_iter()
        .map(|(name, model)| ModelRow {
            name: name.to_string(),
            report: trainer.evaluate(model, &zoo.dataset.test),
            auc_std: 0.0,
            parameters: model.num_parameters(),
        })
        .collect();
    Table2 { rows }
}

/// Trains `config.n_seeds` zoos and reports seed-averaged metrics —
/// the paper's effect sizes are fractions of an AUC point, comparable
/// to single-run initialisation noise, so the headline table averages.
/// Also returns the last zoo for reuse by the figure experiments.
#[must_use]
pub fn run_with_zoo(config: &SuiteConfig) -> (Table2, TrainedZoo) {
    crate::manifest::emit("table2", config);
    let seeds = config.seeds();
    let mut tables: Vec<Table2> = Vec::new();
    let mut last_zoo = None;
    for (i, &seed) in seeds.iter().enumerate() {
        if config.verbose {
            eprintln!("== table2: zoo {}/{} (seed {seed}) ==", i + 1, seeds.len());
        }
        let zoo = TrainedZoo::train_with_seed(config, seed);
        tables.push(evaluate(config, &zoo));
        last_zoo = Some(zoo);
    }
    let n = tables.len() as f64;
    let rows = (0..tables[0].rows.len())
        .map(|r| {
            let aucs: Vec<f64> = tables.iter().map(|t| t.rows[r].report.auc).collect();
            let mean = |f: &dyn Fn(&EvalReport) -> f64| {
                tables.iter().map(|t| f(&t.rows[r].report)).sum::<f64>() / n
            };
            let auc = mean(&|e| e.auc);
            let auc_std = (aucs.iter().map(|a| (a - auc) * (a - auc)).sum::<f64>() / n).sqrt();
            ModelRow {
                name: tables[0].rows[r].name.clone(),
                report: EvalReport {
                    auc,
                    ndcg: mean(&|e| e.ndcg),
                    ndcg_at_10: mean(&|e| e.ndcg_at_10),
                    global_auc: mean(&|e| e.global_auc),
                    log_loss: mean(&|e| e.log_loss),
                    sessions: tables[0].rows[r].report.sessions,
                },
                auc_std,
                parameters: tables[0].rows[r].parameters,
            }
        })
        .collect();
    (Table2 { rows }, last_zoo.expect("at least one seed"))
}

/// Trains the zoo(s) from scratch and evaluates (seed-averaged).
#[must_use]
pub fn run(config: &SuiteConfig) -> Table2 {
    run_with_zoo(config).0
}

impl Table2 {
    /// Looks a row up by model name.
    #[must_use]
    pub fn row(&self, name: &str) -> Option<&ModelRow> {
        self.rows.iter().find(|r| r.name == name)
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 2: Performance on Different Models")?;
        let mut t = TextTable::new(&["Model", "AUC", "±std", "NDCG@10", "NDCG", "params"]);
        for r in &self.rows {
            t.row(&[
                r.name.clone(),
                m4(r.report.auc),
                format!("{:.4}", r.auc_std),
                m4(r.report.ndcg_at_10),
                m4(r.report.ndcg),
                r.parameters.to_string(),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_produces_seven_ordered_rows() {
        let t = run(&SuiteConfig::fast());
        assert_eq!(t.rows.len(), 7);
        assert_eq!(t.rows[0].name, "DNN");
        assert_eq!(t.rows[6].name, "Adv & HSC-MoE");
        for r in &t.rows {
            assert!(
                r.report.auc > 0.5,
                "{} AUC {:.4} at or below chance",
                r.name,
                r.report.auc
            );
            assert!(r.parameters > 0);
        }
        let s = t.to_string();
        assert!(s.contains("NDCG@10"));
    }
}
