//! Minimal aligned-text table formatting for experiment reports.

use std::fmt::Write as _;

/// Builds an aligned text table: first column left-aligned, the rest
/// right-aligned, with a rule under the header.
#[derive(Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "TextTable: row has {} cells, header has {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells.to_vec());
    }

    /// Convenience: a row of displayable items.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(ToString::to_string).collect();
        self.row(&cells);
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        for (c, h) in self.header.iter().enumerate() {
            if c == 0 {
                let _ = write!(out, "{h:<width$}", width = widths[0]);
            } else {
                let _ = write!(out, "  {h:>width$}", width = widths[c]);
            }
        }
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                if c == 0 {
                    let _ = write!(out, "{cell:<width$}", width = widths[0]);
                } else {
                    let _ = write!(out, "  {cell:>width$}", width = widths[c]);
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Formats a metric to 4 decimals, the paper's precision.
#[must_use]
pub fn m4(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a percentage-point delta with sign, 2 decimals.
#[must_use]
pub fn delta_pp(v: f64) -> String {
    format!("{:+.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["Model", "AUC"]);
        t.row(&["DNN".into(), "0.8131".into()]);
        t.row(&["Adv & HSC-MoE".into(), "0.8227".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Model"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].starts_with("Adv & HSC-MoE"));
        // AUC column right-aligned: both data rows end with the value.
        assert!(lines[2].ends_with("0.8131"));
        assert!(lines[3].ends_with("0.8227"));
    }

    #[test]
    #[should_panic(expected = "row has")]
    fn wrong_cell_count_panics() {
        let mut t = TextTable::new(&["A", "B"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(m4(0.81273), "0.8127");
        assert_eq!(delta_pp(0.0123), "+1.23%");
        assert_eq!(delta_pp(-0.005), "-0.50%");
    }
}
