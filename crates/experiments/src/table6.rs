//! Table 6: the λ₁ × λ₂ grid search over {1e-1, 1e-2, 1e-3}² for the
//! Adv & HSC-MoE objective (N = 10, K = 4, D = 1).

use std::fmt;

use amoe_core::{MoeConfig, MoeModel, Trainer};

use crate::suite::SuiteConfig;
use crate::tablefmt::{m4, TextTable};

/// One grid cell.
pub struct Table6Row {
    /// HSC weight.
    pub lambda1: f32,
    /// AdvLoss weight.
    pub lambda2: f32,
    /// Test AUC.
    pub auc: f64,
}

/// The Table 6 report.
pub struct Table6 {
    /// All nine cells, λ₁-major as in the paper.
    pub rows: Vec<Table6Row>,
}

/// The grid the paper sweeps.
pub const LAMBDAS: [f32; 3] = [1e-1, 1e-2, 1e-3];

/// Runs the nine-run grid.
#[must_use]
pub fn run(config: &SuiteConfig) -> Table6 {
    crate::manifest::emit("table6", config);
    let dataset = config.dataset();
    let trainer = Trainer::new(config.train_config());
    let seeds = config.seeds();
    let mut rows = Vec::with_capacity(9);
    for &l1 in &LAMBDAS {
        for &l2 in &LAMBDAS {
            if config.verbose {
                eprintln!("== table6: λ1={l1:.0e} λ2={l2:.0e} ==");
            }
            let mut auc = 0.0;
            for &seed in &seeds {
                let mut model = MoeModel::new(
                    &dataset.meta,
                    MoeConfig {
                        adversarial: true,
                        hsc: true,
                        lambda1: l1,
                        lambda2: l2,
                        ..config.moe_config().with_seed(seed)
                    },
                    config.optim,
                );
                trainer.fit(&mut model, &dataset.train);
                auc += trainer.evaluate(&model, &dataset.test).auc;
            }
            rows.push(Table6Row {
                lambda1: l1,
                lambda2: l2,
                auc: auc / seeds.len() as f64,
            });
        }
    }
    Table6 { rows }
}

impl Table6 {
    /// The best cell by AUC.
    #[must_use]
    pub fn best(&self) -> &Table6Row {
        self.rows
            .iter()
            .max_by(|a, b| a.auc.partial_cmp(&b.auc).expect("finite AUC"))
            .expect("nine rows")
    }
}

impl fmt::Display for Table6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 6: Experiments with different combinations of λ1 and λ2"
        )?;
        let mut t = TextTable::new(&["λ1", "λ2", "AUC"]);
        for r in &self.rows {
            t.row(&[
                format!("{:.0e}", r.lambda1),
                format!("{:.0e}", r.lambda2),
                m4(r.auc),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_nine_cells() {
        // Tiny but complete grid run.
        let cfg = SuiteConfig {
            scale: 0.03,
            epochs: 1,
            ..SuiteConfig::default()
        };
        let t = run(&cfg);
        assert_eq!(t.rows.len(), 9);
        let b = t.best();
        assert!(b.auc >= t.rows[0].auc);
        assert!(t.to_string().contains("1e-3") || t.to_string().contains("1e-3"));
    }
}
