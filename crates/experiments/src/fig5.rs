//! Fig. 5: AUC improvement over the DNN baseline per category-size
//! bucket — the paper's evidence that the MoE variants (and especially
//! HSC) help small categories most.

use std::fmt;

use amoe_core::{Ranker, Trainer};
use amoe_dataset::buckets::size_buckets;

use crate::suite::{SuiteConfig, TrainedZoo};
use crate::tablefmt::{delta_pp, TextTable};

/// Number of size buckets on the x-axis.
pub const N_BUCKETS: usize = 4;

/// One model's per-bucket AUC improvements over DNN.
pub struct Fig5Line {
    /// Model name.
    pub name: String,
    /// AUC delta vs DNN per bucket (ascending category size).
    pub delta_auc: Vec<f64>,
}

/// The Fig. 5 report.
pub struct Fig5 {
    /// Train-example counts per bucket (the bar series).
    pub bucket_sizes: Vec<usize>,
    /// Which top-categories each bucket holds.
    pub bucket_members: Vec<Vec<String>>,
    /// One line per MoE-family model.
    pub lines: Vec<Fig5Line>,
}

/// Evaluates a trained zoo per size bucket.
#[must_use]
pub fn evaluate(config: &SuiteConfig, zoo: &TrainedZoo) -> Fig5 {
    let trainer = Trainer::new(config.train_config());
    let num_tc = zoo.dataset.hierarchy.num_tc();
    let (members, totals) = size_buckets(&zoo.dataset.train, num_tc, N_BUCKETS);

    // Per-bucket test splits.
    let bucket_tests: Vec<_> = members
        .iter()
        .map(|tcs| zoo.dataset.test.filter_tcs(tcs))
        .collect();

    let auc_per_bucket = |model: &dyn Ranker| -> Vec<f64> {
        bucket_tests
            .iter()
            .map(|split| {
                if split.is_empty() {
                    0.5
                } else {
                    trainer.evaluate(model, split).auc
                }
            })
            .collect()
    };

    let dnn_auc = auc_per_bucket(&zoo.dnn);
    let mut lines = Vec::new();
    let entries: Vec<(&str, &dyn Ranker)> = vec![
        ("MoE", &zoo.moe),
        ("Adv-MoE", &zoo.adv),
        ("HSC-MoE", &zoo.hsc),
        ("Adv & HSC-MoE", &zoo.adv_hsc),
    ];
    for (name, model) in entries {
        let auc = auc_per_bucket(model);
        lines.push(Fig5Line {
            name: name.to_string(),
            delta_auc: auc.iter().zip(&dnn_auc).map(|(a, d)| a - d).collect(),
        });
    }

    let bucket_members = members
        .iter()
        .map(|tcs| {
            tcs.iter()
                .map(|&tc| zoo.dataset.hierarchy.tc_name(tc).to_string())
                .collect()
        })
        .collect();

    Fig5 {
        bucket_sizes: totals,
        bucket_members,
        lines,
    }
}

/// Trains the zoo and evaluates per bucket.
#[must_use]
pub fn run(config: &SuiteConfig) -> Fig5 {
    crate::manifest::emit("fig5", config);
    let zoo = TrainedZoo::train(config);
    evaluate(config, &zoo)
}

impl fmt::Display for Fig5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 5: AUC improvement over DNN per category-size bucket"
        )?;
        for (b, (size, names)) in self
            .bucket_sizes
            .iter()
            .zip(&self.bucket_members)
            .enumerate()
        {
            writeln!(f, "bucket {b}: {size} examples — {}", names.join(", "))?;
        }
        let mut header = vec!["Model".to_string()];
        header.extend((0..self.bucket_sizes.len()).map(|b| format!("ΔAUC b{b}")));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = TextTable::new(&header_refs);
        for line in &self.lines {
            let mut row = vec![line.name.clone()];
            row.extend(line.delta_auc.iter().map(|&d| delta_pp(d)));
            t.row(&row);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_shape() {
        let fig = run(&SuiteConfig::fast());
        assert_eq!(fig.bucket_sizes.len(), N_BUCKETS);
        assert_eq!(fig.lines.len(), 4);
        for line in &fig.lines {
            assert_eq!(line.delta_auc.len(), N_BUCKETS);
        }
        // Buckets ascend in size.
        for b in 1..N_BUCKETS {
            assert!(fig.bucket_sizes[b] >= fig.bucket_sizes[b - 1]);
        }
        assert!(fig.to_string().contains("bucket 0"));
    }
}
