#![warn(missing_docs)]

//! Experiment harness: one module per table/figure of the paper.
//!
//! Every experiment is a pure function from a [`SuiteConfig`] to a typed
//! report that implements `Display` in the shape of the corresponding
//! paper table. The `amoe-bench` crate provides one binary per
//! experiment; `EXPERIMENTS.md` at the workspace root records
//! paper-vs-measured values.
//!
//! | paper artefact | module |
//! |---|---|
//! | Table 1 (dataset statistics)            | [`table1`] |
//! | Table 2 (7-model comparison)            | [`table2`] |
//! | Table 3 (cross-category transfer)       | [`table3`] |
//! | Table 4 (semantic grouping)             | printed by [`fig6`] |
//! | Table 5 (gate-input ablation)           | [`table5`] |
//! | Table 6 (λ₁ × λ₂ grid)                  | [`table6`] |
//! | Table 7 / Fig. 8 (case study)           | [`case_study`] |
//! | Fig. 2 (feature importance)             | [`fig2`] |
//! | Fig. 3 (brand concentration)            | [`fig3`] |
//! | Fig. 5 (gains by category size)         | [`fig5`] |
//! | Fig. 6 (gate-vector clustering)         | [`fig6`] |
//! | Fig. 7 ((N, K, D) sweep)                | [`fig7`] |

pub mod ablations;
pub mod case_study;
pub mod fig2;
pub mod fig3;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod manifest;
pub mod suite;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table5;
pub mod table6;
pub mod tablefmt;

pub use suite::{SuiteConfig, TrainedZoo};
