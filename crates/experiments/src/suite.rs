//! Shared experiment configuration and the trained model zoo.

use amoe_core::ranker::OptimConfig;
use amoe_core::{DnnModel, MmoeModel, MoeConfig, MoeModel, Ranker, TrainConfig, Trainer};
use amoe_dataset::buckets::equal_count_task_buckets;
use amoe_dataset::{generate, Dataset, GeneratorConfig};

/// Configuration shared by all experiments.
#[derive(Clone, Debug)]
pub struct SuiteConfig {
    /// Dataset seed.
    pub data_seed: u64,
    /// Model-initialisation seed.
    pub model_seed: u64,
    /// Dataset volume multiplier (1.0 ≈ 120k train examples).
    pub scale: f64,
    /// Training epochs for every model.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Optimiser settings shared across models (the paper trains every
    /// model identically).
    pub optim: OptimConfig,
    /// Experts `N` for the MoE family (paper's full-evaluation setting).
    pub n_experts: usize,
    /// Active experts `K`.
    pub top_k: usize,
    /// Disagreeing experts `D`.
    pub n_adversarial: usize,
    /// λ₁ (HSC weight).
    pub lambda1: f32,
    /// λ₂ (AdvLoss weight).
    pub lambda2: f32,
    /// Number of model-initialisation seeds to average table metrics
    /// over. The paper's effect sizes (fractions of an AUC point) sit at
    /// the level of single-run initialisation noise, so the table
    /// experiments report seed-averaged metrics.
    pub n_seeds: usize,
    /// Print progress to stderr.
    pub verbose: bool,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            data_seed: 20_210_407,
            model_seed: 17,
            scale: 1.0,
            epochs: 4,
            batch_size: 256,
            optim: OptimConfig::default(),
            n_experts: 10,
            top_k: 4,
            n_adversarial: 1,
            // Re-tuned for the synthetic scale (the paper's 1e-3 values
            // are specific to its loss magnitudes); Table 6 sweeps the
            // same grid the paper does.
            lambda1: 1e-1,
            lambda2: 1e-2,
            n_seeds: 3,
            verbose: false,
        }
    }
}

impl SuiteConfig {
    /// A fast configuration for tests and smoke runs.
    #[must_use]
    pub fn fast() -> Self {
        SuiteConfig {
            scale: 0.06,
            epochs: 1,
            n_seeds: 1,
            ..Default::default()
        }
    }

    /// The model seeds averaged over by the table experiments, derived
    /// deterministically from `model_seed`.
    #[must_use]
    pub fn seeds(&self) -> Vec<u64> {
        let mut state = self.model_seed;
        (0..self.n_seeds.max(1))
            .map(|i| {
                if i == 0 {
                    self.model_seed
                } else {
                    amoe_tensor::rng::splitmix64(&mut state)
                }
            })
            .collect()
    }

    /// The generator configuration implied by this suite config.
    #[must_use]
    pub fn generator(&self) -> GeneratorConfig {
        GeneratorConfig {
            seed: self.data_seed,
            ..GeneratorConfig::default()
        }
        .scaled(self.scale)
    }

    /// Generates the dataset.
    #[must_use]
    pub fn dataset(&self) -> Dataset {
        generate(&self.generator())
    }

    /// The MoE-family base configuration (shared by all variants).
    #[must_use]
    pub fn moe_config(&self) -> MoeConfig {
        MoeConfig {
            n_experts: self.n_experts,
            top_k: self.top_k,
            n_adversarial: self.n_adversarial,
            lambda1: self.lambda1,
            lambda2: self.lambda2,
            seed: self.model_seed,
            ..MoeConfig::default()
        }
    }

    /// The training-loop configuration.
    #[must_use]
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            batch_size: self.batch_size,
            verbose: self.verbose,
            ..TrainConfig::default()
        }
    }
}

/// The seven models of the paper's full evaluation (Sec. 5.1.3), trained
/// on one dataset. Concrete types are kept so analyses can reach inside
/// (gate vectors for Fig. 6, expert scores for Fig. 8).
pub struct TrainedZoo {
    /// The dataset all models were trained on.
    pub dataset: Dataset,
    /// DNN baseline.
    pub dnn: DnnModel,
    /// Vanilla noisy-top-K MoE.
    pub moe: MoeModel,
    /// MMoE with 4 experts.
    pub mmoe4: MmoeModel,
    /// MMoE with 10 experts.
    pub mmoe10: MmoeModel,
    /// Adversarial MoE.
    pub adv: MoeModel,
    /// Hierarchical-Soft-Constraint MoE.
    pub hsc: MoeModel,
    /// The paper's best candidate.
    pub adv_hsc: MoeModel,
}

impl TrainedZoo {
    /// Generates the dataset and trains all seven models with the
    /// primary model seed.
    #[must_use]
    pub fn train(config: &SuiteConfig) -> TrainedZoo {
        Self::train_with_seed(config, config.model_seed)
    }

    /// Trains the zoo with an explicit model-initialisation seed (the
    /// table experiments average over several).
    #[must_use]
    pub fn train_with_seed(config: &SuiteConfig, seed: u64) -> TrainedZoo {
        let dataset = config.dataset();
        let trainer = Trainer::new(config.train_config());
        let base = config.moe_config().with_seed(seed);
        let optim = config.optim;

        let log = |name: &str| {
            if config.verbose {
                eprintln!("== training {name} ==");
            }
        };

        log("DNN");
        let mut dnn = DnnModel::new(&dataset.meta, &base, optim);
        trainer.fit(&mut dnn, &dataset.train);

        log("MoE");
        let mut moe = MoeModel::new(&dataset.meta, base.clone(), optim);
        trainer.fit(&mut moe, &dataset.train);

        let task_of_tc = equal_count_task_buckets(&dataset.train, dataset.hierarchy.num_tc(), 10);
        log("4-MMoE");
        let mut mmoe4 = MmoeModel::new(&dataset.meta, &base, 4, task_of_tc.clone(), optim);
        trainer.fit(&mut mmoe4, &dataset.train);

        log("10-MMoE");
        let mut mmoe10 = MmoeModel::new(&dataset.meta, &base, 10, task_of_tc, optim);
        trainer.fit(&mut mmoe10, &dataset.train);

        log("Adv-MoE");
        let mut adv = MoeModel::new(
            &dataset.meta,
            MoeConfig {
                adversarial: true,
                ..base.clone()
            },
            optim,
        );
        trainer.fit(&mut adv, &dataset.train);

        log("HSC-MoE");
        let mut hsc = MoeModel::new(
            &dataset.meta,
            MoeConfig {
                hsc: true,
                ..base.clone()
            },
            optim,
        );
        trainer.fit(&mut hsc, &dataset.train);

        log("Adv & HSC-MoE");
        let mut adv_hsc = MoeModel::new(
            &dataset.meta,
            MoeConfig {
                adversarial: true,
                hsc: true,
                ..base
            },
            optim,
        );
        trainer.fit(&mut adv_hsc, &dataset.train);

        TrainedZoo {
            dataset,
            dnn,
            moe,
            mmoe4,
            mmoe10,
            adv,
            hsc,
            adv_hsc,
        }
    }

    /// The models in the paper's Table 2 row order, as trait objects.
    #[must_use]
    pub fn rankers(&self) -> Vec<(&str, &dyn Ranker)> {
        vec![
            ("DNN", &self.dnn),
            ("MoE", &self.moe),
            ("4-MMoE", &self.mmoe4),
            ("10-MMoE", &self.mmoe10),
            ("Adv-MoE", &self.adv),
            ("HSC-MoE", &self.hsc),
            ("Adv & HSC-MoE", &self.adv_hsc),
        ]
    }
}
