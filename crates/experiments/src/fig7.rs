//! Fig. 7: the (N, K, D) hyper-parameter sweep of Adv & HSC-MoE.

use std::fmt;

use amoe_core::{MoeConfig, MoeModel, Trainer};

use crate::suite::SuiteConfig;
use crate::tablefmt::{m4, TextTable};

/// One sweep point.
pub struct Fig7Row {
    /// Total experts.
    pub n: usize,
    /// Active experts.
    pub k: usize,
    /// Disagreeing experts.
    pub d: usize,
    /// Test AUC.
    pub auc: f64,
}

/// The Fig. 7 report.
pub struct Fig7 {
    /// All sweep points.
    pub rows: Vec<Fig7Row>,
}

/// The paper's sweep grid.
pub const NS: [usize; 3] = [10, 16, 32];
/// `K` values swept.
pub const KS: [usize; 2] = [2, 4];
/// `D` values swept.
pub const DS: [usize; 2] = [1, 2];

/// Runs the 12-configuration sweep.
#[must_use]
pub fn run(config: &SuiteConfig) -> Fig7 {
    crate::manifest::emit("fig7", config);
    let dataset = config.dataset();
    let trainer = Trainer::new(config.train_config());
    let seeds = config.seeds();
    let mut rows = Vec::new();
    for &n in &NS {
        for &k in &KS {
            for &d in &DS {
                if config.verbose {
                    eprintln!("== fig7: N={n} K={k} D={d} ==");
                }
                let mut auc = 0.0;
                for &seed in &seeds {
                    let mut model = MoeModel::new(
                        &dataset.meta,
                        MoeConfig {
                            n_experts: n,
                            top_k: k,
                            n_adversarial: d,
                            adversarial: true,
                            hsc: true,
                            ..config.moe_config().with_seed(seed)
                        },
                        config.optim,
                    );
                    trainer.fit(&mut model, &dataset.train);
                    auc += trainer.evaluate(&model, &dataset.test).auc;
                }
                rows.push(Fig7Row {
                    n,
                    k,
                    d,
                    auc: auc / seeds.len() as f64,
                });
            }
        }
    }
    Fig7 { rows }
}

impl Fig7 {
    /// The best configuration by AUC.
    #[must_use]
    pub fn best(&self) -> &Fig7Row {
        self.rows
            .iter()
            .max_by(|a, b| a.auc.partial_cmp(&b.auc).expect("finite"))
            .expect("non-empty sweep")
    }

    /// AUC of a specific triple, if swept.
    #[must_use]
    pub fn auc_of(&self, n: usize, k: usize, d: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.n == n && r.k == k && r.d == d)
            .map(|r| r.auc)
    }
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 7: Adv & HSC-MoE under different (N, K, D) settings"
        )?;
        let mut t = TextTable::new(&["N", "K", "D", "AUC"]);
        for r in &self.rows {
            t.row(&[r.n.to_string(), r.k.to_string(), r.d.to_string(), m4(r.auc)]);
        }
        write!(f, "{}", t.render())?;
        let b = self.best();
        writeln!(f, "best: N={} K={} D={} (AUC {})", b.n, b.k, b.d, m4(b.auc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_covers_grid() {
        // Use a reduced scale but the full grid shape.
        let cfg = SuiteConfig {
            scale: 0.02,
            epochs: 1,
            ..SuiteConfig::default()
        };
        let fig = run(&cfg);
        assert_eq!(fig.rows.len(), NS.len() * KS.len() * DS.len());
        assert!(fig.auc_of(10, 4, 1).is_some());
        assert!(fig.auc_of(32, 2, 2).is_some());
        assert!(fig.auc_of(99, 1, 1).is_none());
        let b = fig.best();
        assert!(fig.rows.iter().all(|r| r.auc <= b.auc));
    }
}
