//! Ablations of design choices inherited from Shazeer et al. (the
//! paper's ref \[24\]) that the paper keeps but does not re-evaluate:
//! noisy top-K gating and the load-balancing regularizer. Also sweeps
//! the optimizer choice, since the paper fixes AdamW for all models.

use std::fmt;

use amoe_core::{MoeConfig, MoeModel, Trainer};

use crate::suite::SuiteConfig;
use crate::tablefmt::{m4, TextTable};

/// One ablation row.
pub struct AblationRow {
    /// What was changed relative to the full Adv & HSC-MoE configuration.
    pub variant: String,
    /// Seed-averaged test AUC.
    pub auc: f64,
    /// Seed-averaged test NDCG.
    pub ndcg: f64,
}

/// The ablation report.
pub struct Ablations {
    /// Rows: full model first, then each single-knob change.
    pub rows: Vec<AblationRow>,
}

/// Runs the ablation suite.
#[must_use]
pub fn run(config: &SuiteConfig) -> Ablations {
    crate::manifest::emit("ablations", config);
    let dataset = config.dataset();
    let trainer = Trainer::new(config.train_config());
    let seeds = config.seeds();
    let full = MoeConfig {
        adversarial: true,
        hsc: true,
        ..config.moe_config()
    };

    let variants: Vec<(&str, MoeConfig)> = vec![
        ("full Adv & HSC-MoE", full.clone()),
        (
            "- noisy gating",
            MoeConfig {
                noisy_gating: false,
                ..full.clone()
            },
        ),
        (
            "- load balancing",
            MoeConfig {
                load_balance: 0.0,
                ..full.clone()
            },
        ),
        (
            "- both (plain deterministic gate)",
            MoeConfig {
                noisy_gating: false,
                load_balance: 0.0,
                ..full.clone()
            },
        ),
        (
            "- HSC (Adv only)",
            MoeConfig {
                hsc: false,
                ..full.clone()
            },
        ),
        (
            "- Adv (HSC only)",
            MoeConfig {
                adversarial: false,
                ..full.clone()
            },
        ),
        (
            "- both regularizers (plain MoE)",
            MoeConfig {
                adversarial: false,
                hsc: false,
                ..full
            },
        ),
    ];

    let rows = variants
        .into_iter()
        .map(|(label, cfg)| {
            if config.verbose {
                eprintln!("== ablation: {label} ==");
            }
            let (mut auc, mut ndcg) = (0.0, 0.0);
            for &seed in &seeds {
                let mut model =
                    MoeModel::new(&dataset.meta, cfg.clone().with_seed(seed), config.optim);
                trainer.fit(&mut model, &dataset.train);
                let r = trainer.evaluate(&model, &dataset.test);
                auc += r.auc;
                ndcg += r.ndcg;
            }
            AblationRow {
                variant: label.to_string(),
                auc: auc / seeds.len() as f64,
                ndcg: ndcg / seeds.len() as f64,
            }
        })
        .collect();
    Ablations { rows }
}

impl fmt::Display for Ablations {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablations of the Adv & HSC-MoE design choices")?;
        let mut t = TextTable::new(&["Variant", "AUC", "NDCG"]);
        for r in &self.rows {
            t.row(&[r.variant.clone(), m4(r.auc), m4(r.ndcg)]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_ablation_shape() {
        let a = run(&SuiteConfig::fast());
        assert_eq!(a.rows.len(), 7);
        assert_eq!(a.rows[0].variant, "full Adv & HSC-MoE");
        assert!(a.rows.iter().all(|r| r.auc > 0.4 && r.auc < 1.0));
        assert!(a.to_string().contains("load balancing"));
    }
}
