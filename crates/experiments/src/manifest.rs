//! Run manifests: one `run_manifest` JSONL record at the start of each
//! table/figure experiment.
//!
//! A manifest pins down everything needed to reproduce (or diff) a
//! run: the experiment name, the dataset/model seeds, the scale and
//! the MoE hyper-parameters. With `AMOE_OBS=run.jsonl` set, a full
//! `repro_all` pass yields a self-describing log where every
//! `train_epoch` / `serving_predict` record appears between the
//! manifest of the experiment that produced it and the next manifest.

use crate::suite::SuiteConfig;

/// Emits the `run_manifest` record for `experiment` (no-op unless
/// `AMOE_OBS` telemetry is enabled) and the experiment's wall-clock
/// span start. Call first thing inside each experiment's `run`.
pub fn emit(experiment: &'static str, config: &SuiteConfig) {
    if !amoe_obs::enabled() {
        return;
    }
    amoe_obs::counter_add("experiments.runs", 1);
    amoe_obs::emit(
        &amoe_obs::Event::new("run_manifest")
            .str("experiment", experiment)
            .u64("data_seed", config.data_seed)
            .u64("model_seed", config.model_seed)
            .f64("scale", config.scale)
            .u64("epochs", config.epochs as u64)
            .u64("batch_size", config.batch_size as u64)
            .u64("n_experts", config.n_experts as u64)
            .u64("top_k", config.top_k as u64)
            .u64("n_adversarial", config.n_adversarial as u64)
            .f64("lambda1", f64::from(config.lambda1))
            .f64("lambda2", f64::from(config.lambda2))
            .u64("n_seeds", config.n_seeds as u64)
            .u64("threads", amoe_tensor::pool::threads() as u64),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_is_safe_when_disabled() {
        amoe_obs::set_enabled(false);
        emit("test_experiment", &SuiteConfig::fast());
    }
}
