//! Table 1: dataset statistics.

use std::fmt;

use amoe_dataset::DatasetStats;

use crate::suite::SuiteConfig;

/// The Table 1 report: statistics of the generated dataset.
pub struct Table1 {
    /// Computed statistics.
    pub stats: DatasetStats,
}

/// Generates the dataset and computes its statistics.
#[must_use]
pub fn run(config: &SuiteConfig) -> Table1 {
    crate::manifest::emit("table1", config);
    let dataset = config.dataset();
    Table1 {
        stats: DatasetStats::compute(&dataset),
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 1: Datasets statistics (synthetic analog)")?;
        write!(f, "{}", self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_renders() {
        let t = run(&SuiteConfig::fast());
        let s = t.to_string();
        assert!(s.contains("Table 1"));
        assert!(s.contains("Mobile Phone"));
        assert!(t.stats.data_size.0 > t.stats.data_size.1);
    }
}
