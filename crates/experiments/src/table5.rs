//! Table 5: gate-input feature ablation — SC only vs progressively
//! richer gate inputs. The paper's setting: N = 10, K = 4, D = 1,
//! λ₁ = λ₂ = 1e-2.

use std::fmt;

use amoe_core::{GateInput, MoeConfig, MoeModel, Trainer};

use crate::suite::SuiteConfig;
use crate::tablefmt::{m4, TextTable};

/// One ablation row.
pub struct Table5Row {
    /// Gate-input description, matching the paper's wording.
    pub gate_input: String,
    /// Which ablation it is.
    pub which: GateInput,
    /// Test AUC.
    pub auc: f64,
}

/// The Table 5 report.
pub struct Table5 {
    /// Rows in the paper's order.
    pub rows: Vec<Table5Row>,
}

const VARIANTS: [(GateInput, &str); 5] = [
    (GateInput::Sc, "SC"),
    (GateInput::TcSc, "(TC, SC)"),
    (GateInput::QueryTcSc, "(query, TC, SC)"),
    (GateInput::UserTcSc, "(user feature, TC, SC)"),
    (GateInput::All, "all features"),
];

/// Runs the ablation: one Adv & HSC-MoE training per gate-input variant.
#[must_use]
pub fn run(config: &SuiteConfig) -> Table5 {
    crate::manifest::emit("table5", config);
    let dataset = config.dataset();
    let trainer = Trainer::new(config.train_config());
    // Paper Table 5 uses λ = 1e-2 for both multipliers.
    let base = MoeConfig {
        adversarial: true,
        hsc: true,
        lambda1: 1e-2,
        lambda2: 1e-2,
        ..config.moe_config()
    };
    let seeds = config.seeds();
    let rows = VARIANTS
        .iter()
        .map(|&(which, label)| {
            if config.verbose {
                eprintln!("== table5: gate input {label} ==");
            }
            let mut auc = 0.0;
            for &seed in &seeds {
                let mut model = MoeModel::new(
                    &dataset.meta,
                    MoeConfig {
                        gate_input: which,
                        ..base.clone().with_seed(seed)
                    },
                    config.optim,
                );
                trainer.fit(&mut model, &dataset.train);
                auc += trainer.evaluate(&model, &dataset.test).auc;
            }
            Table5Row {
                gate_input: label.to_string(),
                which,
                auc: auc / seeds.len() as f64,
            }
        })
        .collect();
    Table5 { rows }
}

impl fmt::Display for Table5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 5: Model performance with different gate input features"
        )?;
        let mut t = TextTable::new(&["gate input feature", "AUC"]);
        for r in &self.rows {
            t.row(&[r.gate_input.clone(), m4(r.auc)]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_covers_all_variants() {
        let t = run(&SuiteConfig::fast());
        assert_eq!(t.rows.len(), 5);
        assert_eq!(t.rows[0].gate_input, "SC");
        assert!(t.rows.iter().all(|r| r.auc > 0.4));
        assert!(t.to_string().contains("all features"));
    }
}
