//! Fig. 6 (and Table 4): t-SNE of inference-gate value vectors, coloured
//! by semantic class.
//!
//! The paper inspects the 2-D embeddings visually; since a text harness
//! cannot, we quantify the claim with silhouette scores over the Table 4
//! semantic classes — computed both on the raw gate vectors and on the
//! t-SNE embedding — and optionally dump the 2-D points as CSV for
//! plotting. The expected ordering is
//! `MoE < Adv-MoE < Adv & HSC-MoE`.

use std::fmt;
use std::path::Path;

use amoe_core::MoeModel;
use amoe_dataset::{Batch, SemanticClass};
use amoe_metrics::silhouette_score;
use amoe_tensor::{Matrix, Rng};
use amoe_tsne::{tsne, TsneConfig};

use crate::suite::{SuiteConfig, TrainedZoo};
use crate::tablefmt::TextTable;

/// Gate-vector clustering quality for one model.
pub struct Fig6Row {
    /// Model name.
    pub name: String,
    /// Silhouette of the raw gate probability vectors.
    pub silhouette_gate: f64,
    /// Silhouette of the 2-D t-SNE embedding.
    pub silhouette_tsne: f64,
    /// The embedded points (`n x 2`).
    pub points: Matrix,
    /// Semantic-class label per point (index into
    /// [`SemanticClass::ALL`]).
    pub labels: Vec<usize>,
}

/// The Fig. 6 report.
pub struct Fig6 {
    /// Rows for MoE, Adv-MoE, Adv & HSC-MoE (the paper's three panels).
    pub rows: Vec<Fig6Row>,
    /// The Table 4 grouping used for colouring: (class name, colour,
    /// member top-categories).
    pub grouping: Vec<(String, String, Vec<String>)>,
}

/// Number of test examples sampled for the embedding.
pub const SAMPLE: usize = 420;

fn sample_examples(zoo: &TrainedZoo, rng: &mut Rng) -> (Vec<usize>, Vec<usize>) {
    // Stratify the sample across top-categories so small classes appear.
    let test = &zoo.dataset.test;
    let mut by_tc: Vec<Vec<usize>> = vec![Vec::new(); zoo.dataset.hierarchy.num_tc()];
    for (i, e) in test.examples.iter().enumerate() {
        by_tc[e.true_tc].push(i);
    }
    let per_tc = (SAMPLE / by_tc.iter().filter(|v| !v.is_empty()).count().max(1)).max(4);
    let mut idx = Vec::new();
    for pool in &by_tc {
        if pool.is_empty() {
            continue;
        }
        let take = per_tc.min(pool.len());
        for &pick in rng.sample_distinct(pool.len(), take).iter() {
            idx.push(pool[pick]);
        }
    }
    let labels: Vec<usize> = idx
        .iter()
        .map(|&i| {
            let class = zoo.dataset.hierarchy.tc_class(test.examples[i].true_tc);
            SemanticClass::ALL
                .iter()
                .position(|&c| c == class)
                .expect("known class")
        })
        .collect();
    (idx, labels)
}

fn embed_model(
    name: &str,
    model: &MoeModel,
    zoo: &TrainedZoo,
    idx: &[usize],
    labels: &[usize],
    seed: u64,
) -> Fig6Row {
    let batch = Batch::from_split(&zoo.dataset.test, idx);
    let gate = model.gate_probs_full(&batch);
    let silhouette_gate = silhouette_score(&gate, labels).unwrap_or(0.0);
    let points = tsne(
        &gate,
        &TsneConfig {
            perplexity: 25.0,
            iterations: 300,
            seed,
            ..TsneConfig::default()
        },
    );
    let silhouette_tsne = silhouette_score(&points, labels).unwrap_or(0.0);
    Fig6Row {
        name: name.to_string(),
        silhouette_gate,
        silhouette_tsne,
        points,
        labels: labels.to_vec(),
    }
}

/// Computes the figure from a trained zoo.
#[must_use]
pub fn evaluate(config: &SuiteConfig, zoo: &TrainedZoo) -> Fig6 {
    let mut rng = Rng::seed_from(config.data_seed ^ 0xF16);
    let (idx, labels) = sample_examples(zoo, &mut rng);
    let rows = vec![
        embed_model("MoE", &zoo.moe, zoo, &idx, &labels, 61),
        embed_model("Adv-MoE", &zoo.adv, zoo, &idx, &labels, 62),
        embed_model("Adv & HSC-MoE", &zoo.adv_hsc, zoo, &idx, &labels, 63),
    ];
    let grouping = SemanticClass::ALL
        .iter()
        .map(|&class| {
            let members: Vec<String> = (0..zoo.dataset.hierarchy.num_tc())
                .filter(|&tc| zoo.dataset.hierarchy.tc_class(tc) == class)
                .map(|tc| zoo.dataset.hierarchy.tc_name(tc).to_string())
                .collect();
            (class.name().to_string(), class.color().to_string(), members)
        })
        .collect();
    Fig6 { rows, grouping }
}

/// Trains the zoo and computes the figure.
#[must_use]
pub fn run(config: &SuiteConfig) -> Fig6 {
    crate::manifest::emit("fig6", config);
    let zoo = TrainedZoo::train(config);
    evaluate(config, &zoo)
}

impl Fig6 {
    /// Writes each panel's 2-D points as `fig6_<model>.csv`
    /// (`x,y,class`) under `dir`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for row in &self.rows {
            let file = dir.join(format!(
                "fig6_{}.csv",
                row.name.to_lowercase().replace([' ', '&'], "_")
            ));
            let mut out = String::from("x,y,class\n");
            for i in 0..row.points.rows() {
                out.push_str(&format!(
                    "{},{},{}\n",
                    row.points[(i, 0)],
                    row.points[(i, 1)],
                    SemanticClass::ALL[row.labels[i]].name()
                ));
            }
            std::fs::write(file, out)?;
        }
        Ok(())
    }
}

impl fmt::Display for Fig6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 4: Coloring scheme of similar category grouping")?;
        let mut t4 = TextTable::new(&["Semantic Class", "Color", "Representative Categories"]);
        for (name, color, members) in &self.grouping {
            t4.row(&[name.clone(), color.clone(), members.join(", ")]);
        }
        write!(f, "{}", t4.render())?;
        writeln!(f)?;
        writeln!(
            f,
            "Figure 6: clustering of inference-gate vectors by semantic class"
        )?;
        writeln!(
            f,
            "(silhouette score; higher = similar categories share experts more cleanly)"
        )?;
        let mut t = TextTable::new(&["Model", "silhouette(gate)", "silhouette(t-SNE 2D)"]);
        for r in &self.rows {
            t.row(&[
                r.name.clone(),
                format!("{:.4}", r.silhouette_gate),
                format!("{:.4}", r.silhouette_tsne),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_produces_three_panels() {
        let fig = run(&SuiteConfig::fast());
        assert_eq!(fig.rows.len(), 3);
        assert_eq!(fig.rows[0].name, "MoE");
        assert_eq!(fig.rows[2].name, "Adv & HSC-MoE");
        for r in &fig.rows {
            assert_eq!(r.points.rows(), r.labels.len());
            assert!(r.points.all_finite());
            assert!(r.silhouette_gate.is_finite());
        }
        assert_eq!(fig.grouping.len(), 3);
        let s = fig.to_string();
        assert!(s.contains("Table 4"));
        assert!(s.contains("silhouette"));
    }

    #[test]
    fn csv_dump_writes_files() {
        let fig = run(&SuiteConfig::fast());
        let dir = std::env::temp_dir().join(format!("amoe_fig6_{}", std::process::id()));
        fig.write_csv(&dir).unwrap();
        let moe_csv = dir.join("fig6_moe.csv");
        let text = std::fs::read_to_string(&moe_csv).unwrap();
        assert!(text.starts_with("x,y,class"));
        assert!(text.lines().count() > 10);
        std::fs::remove_dir_all(&dir).ok();
    }
}
