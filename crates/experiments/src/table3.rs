//! Table 3: cross-category training transfer — per-category DNNs vs a
//! jointly trained DNN vs the jointly trained Adv & HSC-MoE, each tested
//! on Mobile Phone (M), Books (B) and Clothing (C).

use std::fmt;

use amoe_core::{DnnModel, MoeConfig, MoeModel, Ranker, Trainer};
use amoe_dataset::Split;

use crate::suite::SuiteConfig;
use crate::tablefmt::{m4, TextTable};

/// Per test-category AUC of one model (None where the paper leaves a
/// dash: single-category models are only tested on their own category).
pub struct Table3Row {
    /// Model label, e.g. `"M-DNN"`.
    pub name: String,
    /// Training set label, e.g. `"M"` or `"M + B + C"`.
    pub train_set: String,
    /// AUC on (Mobile Phone, Books, Clothing) test splits.
    pub auc: [Option<f64>; 3],
}

/// The Table 3 report.
pub struct Table3 {
    /// Rows: M-DNN, B-DNN, C-DNN, Joint-DNN, Joint-Ours.
    pub rows: Vec<Table3Row>,
    /// Training-example counts of the M, B, C splits (for context).
    pub train_sizes: [usize; 3],
}

const CATS: [(&str, &str); 3] = [("Mobile Phone", "M"), ("Books", "B"), ("Clothing", "C")];

/// Runs the experiment.
#[must_use]
pub fn run(config: &SuiteConfig) -> Table3 {
    crate::manifest::emit("table3", config);
    let dataset = config.dataset();
    let trainer = Trainer::new(config.train_config());
    let optim = config.optim;
    let base = config.moe_config();

    let tcs: Vec<usize> = CATS
        .iter()
        .map(|(name, _)| {
            dataset
                .hierarchy
                .tc_by_name(name)
                .unwrap_or_else(|| panic!("category {name} missing from hierarchy"))
        })
        .collect();
    let train_splits: Vec<Split> = tcs
        .iter()
        .map(|&tc| dataset.train.filter_tcs(&[tc]))
        .collect();
    let test_splits: Vec<Split> = tcs
        .iter()
        .map(|&tc| dataset.test.filter_tcs(&[tc]))
        .collect();
    let joint_train = dataset.train.filter_tcs(&tcs);

    let eval_on = |model: &dyn Ranker, which: usize| -> f64 {
        trainer.evaluate(model, &test_splits[which]).auc
    };

    let seeds = config.seeds();
    let ns = seeds.len() as f64;
    let mut rows = Vec::new();

    // Single-category DNNs (tested only on their own category, as in the
    // paper).
    for (i, (_, short)) in CATS.iter().enumerate() {
        let mut mean = 0.0;
        for &seed in &seeds {
            let mut dnn = DnnModel::new(&dataset.meta, &base.clone().with_seed(seed), optim);
            trainer.fit(&mut dnn, &train_splits[i]);
            mean += eval_on(&dnn, i);
        }
        let mut auc = [None, None, None];
        auc[i] = Some(mean / ns);
        rows.push(Table3Row {
            name: format!("{short}-DNN"),
            train_set: (*short).to_string(),
            auc,
        });
    }

    // Joint DNN.
    let mut joint_auc = [0.0f64; 3];
    for &seed in &seeds {
        let mut joint_dnn = DnnModel::new(&dataset.meta, &base.clone().with_seed(seed), optim);
        trainer.fit(&mut joint_dnn, &joint_train);
        for (i, acc) in joint_auc.iter_mut().enumerate() {
            *acc += eval_on(&joint_dnn, i);
        }
    }
    rows.push(Table3Row {
        name: "Joint-DNN".to_string(),
        train_set: "M + B + C".to_string(),
        auc: joint_auc.map(|a| Some(a / ns)),
    });

    // Joint Adv & HSC-MoE.
    let mut ours_auc = [0.0f64; 3];
    for &seed in &seeds {
        let mut ours = MoeModel::new(
            &dataset.meta,
            MoeConfig {
                adversarial: true,
                hsc: true,
                ..base.clone().with_seed(seed)
            },
            optim,
        );
        trainer.fit(&mut ours, &joint_train);
        for (i, acc) in ours_auc.iter_mut().enumerate() {
            *acc += eval_on(&ours, i);
        }
    }
    rows.push(Table3Row {
        name: "Joint-Ours".to_string(),
        train_set: "M + B + C".to_string(),
        auc: ours_auc.map(|a| Some(a / ns)),
    });

    Table3 {
        rows,
        train_sizes: [
            train_splits[0].len(),
            train_splits[1].len(),
            train_splits[2].len(),
        ],
    }
}

impl Table3 {
    /// Looks a row up by name.
    #[must_use]
    pub fn row(&self, name: &str) -> Option<&Table3Row> {
        self.rows.iter().find(|r| r.name == name)
    }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 3: Evaluations on different training and testing datasets"
        )?;
        writeln!(
            f,
            "(train sizes: M={}, B={}, C={})",
            self.train_sizes[0], self.train_sizes[1], self.train_sizes[2]
        )?;
        let mut t = TextTable::new(&["Model", "Train set", "M", "B", "C"]);
        for r in &self.rows {
            let cell = |v: Option<f64>| v.map_or_else(|| "-".to_string(), m4);
            t.row(&[
                r.name.clone(),
                r.train_set.clone(),
                cell(r.auc[0]),
                cell(r.auc[1]),
                cell(r.auc[2]),
            ]);
        }
        write!(f, "{}", t.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_run_shape() {
        let t = run(&SuiteConfig::fast());
        assert_eq!(t.rows.len(), 5);
        // Single-category rows only fill their own cell.
        assert!(t.row("M-DNN").unwrap().auc[0].is_some());
        assert!(t.row("M-DNN").unwrap().auc[1].is_none());
        assert!(t.row("C-DNN").unwrap().auc[2].is_some());
        // Joint rows fill everything.
        assert!(t.row("Joint-Ours").unwrap().auc.iter().all(Option::is_some));
        // Clothing's train split is the smallest of the three.
        assert!(t.train_sizes[2] < t.train_sizes[0]);
        assert!(t.train_sizes[2] < t.train_sizes[1]);
        let s = t.to_string();
        assert!(s.contains("Joint-DNN"));
    }
}
