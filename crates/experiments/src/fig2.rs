//! Fig. 2: feature importance (Eq. 1) across vs within top-categories.
//!
//! The paper's claim: FI varies wildly *between* top-categories (e.g.
//! good-comment ratio matters in Clothing/Sports, sales volume in
//! Foods/Computer/Electronics) but is similar *within* a top-category's
//! sub-categories.

use std::fmt;

use amoe_dataset::NUMERIC_FEATURE_NAMES;
use amoe_metrics::feature_importance;

use crate::suite::SuiteConfig;
use crate::tablefmt::{m4, TextTable};

/// The five categories the paper analyses.
pub const CATEGORIES: [&str; 5] = ["Clothing", "Sports", "Foods", "Computer", "Electronics"];

/// Features shown in the figure (indices into the numeric schema).
pub const FEATURES: [usize; 4] = [1, 2, 3, 4]; // sales_volume, good_comment_ratio, historical_ctr, rating

/// The Fig. 2 report.
pub struct Fig2 {
    /// `inter[f][c]` = FI of feature `f` in category `c` (Fig. 2a).
    pub inter: Vec<Vec<f64>>,
    /// `intra[f][s]` = FI of feature `f` in sub-category `s` of Foods
    /// (Fig. 2b).
    pub intra: Vec<Vec<f64>>,
    /// Names of the Foods sub-categories analysed.
    pub intra_labels: Vec<String>,
    /// Variance of FI across top-categories, averaged over features.
    pub inter_variance: f64,
    /// Variance of FI across Foods sub-categories, averaged over features.
    pub intra_variance: f64,
}

fn variance(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mu = xs.iter().sum::<f64>() / n;
    xs.iter().map(|x| (x - mu) * (x - mu)).sum::<f64>() / n
}

/// Computes the figure's data.
#[must_use]
pub fn run(config: &SuiteConfig) -> Fig2 {
    crate::manifest::emit("fig2", config);
    let dataset = config.dataset();
    let tcs: Vec<usize> = CATEGORIES
        .iter()
        .map(|n| {
            dataset
                .hierarchy
                .tc_by_name(n)
                .unwrap_or_else(|| panic!("category {n} missing"))
        })
        .collect();

    let inter: Vec<Vec<f64>> = FEATURES
        .iter()
        .map(|&f| {
            tcs.iter()
                .map(|&tc| feature_importance(&dataset.train, f, Some(tc), None).unwrap_or(0.5))
                .collect()
        })
        .collect();

    // Intra: the sub-categories of Foods with enough sessions.
    let foods = dataset.hierarchy.tc_by_name("Foods").expect("Foods");
    let subs: Vec<usize> = dataset.hierarchy.subs_of(foods).collect();
    let mut intra_labels = Vec::new();
    let mut kept_subs = Vec::new();
    for &sc in &subs {
        let sessions_with_sc = dataset
            .train
            .sessions
            .iter()
            .filter(|r| dataset.train.examples[r.start].true_sc == sc)
            .count();
        if sessions_with_sc >= 40 {
            kept_subs.push(sc);
            intra_labels.push(format!("Foods/SC{}", sc - subs[0]));
        }
    }
    let intra: Vec<Vec<f64>> = FEATURES
        .iter()
        .map(|&f| {
            kept_subs
                .iter()
                .map(|&sc| feature_importance(&dataset.train, f, None, Some(sc)).unwrap_or(0.5))
                .collect()
        })
        .collect();

    let inter_variance = inter.iter().map(|row| variance(row)).sum::<f64>() / inter.len() as f64;
    let intra_variance = if kept_subs.len() >= 2 {
        intra.iter().map(|row| variance(row)).sum::<f64>() / intra.len() as f64
    } else {
        0.0
    };

    Fig2 {
        inter,
        intra,
        intra_labels,
        inter_variance,
        intra_variance,
    }
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 2(a): Feature-importance across top-categories")?;
        let mut header = vec!["Feature"];
        header.extend(CATEGORIES);
        let mut t = TextTable::new(&header);
        for (fi, &feat) in FEATURES.iter().enumerate() {
            let mut row = vec![NUMERIC_FEATURE_NAMES[feat].to_string()];
            row.extend(self.inter[fi].iter().map(|&v| m4(v)));
            t.row(&row);
        }
        write!(f, "{}", t.render())?;
        writeln!(f)?;
        writeln!(
            f,
            "Figure 2(b): Feature-importance across Foods sub-categories"
        )?;
        let labels: Vec<&str> = self.intra_labels.iter().map(String::as_str).collect();
        let mut header2 = vec!["Feature"];
        header2.extend(labels);
        let mut t2 = TextTable::new(&header2);
        for (fi, &feat) in FEATURES.iter().enumerate() {
            let mut row = vec![NUMERIC_FEATURE_NAMES[feat].to_string()];
            row.extend(self.intra[fi].iter().map(|&v| m4(v)));
            t2.row(&row);
        }
        write!(f, "{}", t2.render())?;
        writeln!(f)?;
        writeln!(
            f,
            "FI variance: inter-category {:.6} vs intra-category {:.6} (ratio {:.1}x)",
            self.inter_variance,
            self.intra_variance,
            self.inter_variance / self.intra_variance.max(1e-12)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inter_variance_dominates_intra() {
        // The paper's core Sec. 3 observation must hold in the synthetic
        // log: feature importances differ across top-categories far more
        // than across sibling sub-categories.
        let f = run(&SuiteConfig {
            scale: 0.4,
            ..SuiteConfig::default()
        });
        assert!(
            f.inter_variance > 1.5 * f.intra_variance,
            "inter {:.6} vs intra {:.6}",
            f.inter_variance,
            f.intra_variance
        );
    }

    #[test]
    fn fashion_values_comments_more_than_electronics() {
        let f = run(&SuiteConfig {
            scale: 0.4,
            ..SuiteConfig::default()
        });
        // FEATURES[1] = good_comment_ratio; categories: Clothing(0),
        // Sports(1), Foods(2), Computer(3), Electronics(4).
        let gcr = &f.inter[1];
        assert!(
            gcr[0] > gcr[3],
            "Clothing {:.4} !> Computer {:.4}",
            gcr[0],
            gcr[3]
        );
        // FEATURES[0] = sales_volume: stronger in Computer than Clothing.
        let sv = &f.inter[0];
        assert!(
            sv[3] > sv[0],
            "Computer {:.4} !> Clothing {:.4}",
            sv[3],
            sv[0]
        );
    }
}
