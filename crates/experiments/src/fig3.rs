//! Fig. 3: brand concentration — the proportion and number of brands
//! covering the top 80% of sales, across vs within top-categories.

use std::fmt;

use amoe_metrics::{brand_concentration, BrandConcentration};

use crate::fig2::CATEGORIES;
use crate::suite::SuiteConfig;
use crate::tablefmt::TextTable;

/// The Fig. 3 report.
pub struct Fig3 {
    /// Per top-category concentration (Fig. 3a), in [`CATEGORIES`] order.
    pub inter: Vec<(String, BrandConcentration)>,
    /// Per Foods-sub-category concentration (Fig. 3b).
    pub intra: Vec<(String, BrandConcentration)>,
    /// Variance of the covering proportion across top-categories.
    pub inter_variance: f64,
    /// Variance of the covering proportion across Foods sub-categories.
    pub intra_variance: f64,
}

fn variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mu = xs.iter().sum::<f64>() / n;
    xs.iter().map(|x| (x - mu) * (x - mu)).sum::<f64>() / n
}

/// Computes the figure's data (80% sales-coverage threshold).
#[must_use]
pub fn run(config: &SuiteConfig) -> Fig3 {
    crate::manifest::emit("fig3", config);
    let dataset = config.dataset();
    let share = 0.8;

    let conc_for_tc = |tc: usize| -> Option<BrandConcentration> {
        let obs: Vec<(usize, f32)> = dataset
            .train
            .examples
            .iter()
            .filter(|e| e.true_tc == tc)
            .map(|e| (e.brand, e.raw_sales))
            .collect();
        brand_concentration(&obs, share)
    };

    let inter: Vec<(String, BrandConcentration)> = CATEGORIES
        .iter()
        .filter_map(|name| {
            let tc = dataset.hierarchy.tc_by_name(name)?;
            conc_for_tc(tc).map(|c| ((*name).to_string(), c))
        })
        .collect();

    let foods = dataset.hierarchy.tc_by_name("Foods").expect("Foods");
    let first = dataset.hierarchy.subs_of(foods).start;
    let intra: Vec<(String, BrandConcentration)> = dataset
        .hierarchy
        .subs_of(foods)
        .filter_map(|sc| {
            let obs: Vec<(usize, f32)> = dataset
                .train
                .examples
                .iter()
                .filter(|e| e.true_sc == sc)
                .map(|e| (e.brand, e.raw_sales))
                .collect();
            if obs.len() < 50 {
                return None;
            }
            brand_concentration(&obs, share).map(|c| (format!("Foods/SC{}", sc - first), c))
        })
        .collect();

    let inter_variance = variance(&inter.iter().map(|(_, c)| c.proportion).collect::<Vec<_>>());
    let intra_variance = variance(&intra.iter().map(|(_, c)| c.proportion).collect::<Vec<_>>());

    Fig3 {
        inter,
        intra,
        inter_variance,
        intra_variance,
    }
}

fn render(rows: &[(String, BrandConcentration)]) -> String {
    let mut t = TextTable::new(&["Category", "Brands", "Top-80% brands", "Proportion"]);
    for (name, c) in rows {
        t.row(&[
            name.clone(),
            c.total_brands.to_string(),
            c.covering_brands.to_string(),
            format!("{:.1}%", c.proportion * 100.0),
        ]);
    }
    t.render()
}

impl fmt::Display for Fig3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 3(a): Brands covering the top 80% of sales, by top-category"
        )?;
        write!(f, "{}", render(&self.inter))?;
        writeln!(f)?;
        writeln!(f, "Figure 3(b): same, across Foods sub-categories")?;
        write!(f, "{}", render(&self.intra))?;
        writeln!(f)?;
        writeln!(
            f,
            "Coverage-proportion variance: inter {:.5} vs intra {:.5}",
            self.inter_variance, self.intra_variance
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Fig3 {
        run(&SuiteConfig {
            scale: 0.4,
            ..SuiteConfig::default()
        })
    }

    #[test]
    fn electronics_more_concentrated_than_sports() {
        let f = fig();
        let get = |name: &str| {
            f.inter
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, c)| c.proportion)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        let electronics = get("Electronics");
        let sports = get("Sports");
        assert!(
            electronics < sports,
            "Electronics {electronics:.3} should need a smaller brand share than Sports {sports:.3}"
        );
    }

    #[test]
    fn inter_variance_exceeds_intra() {
        let f = fig();
        assert!(
            f.inter_variance > f.intra_variance,
            "inter {:.5} !> intra {:.5}",
            f.inter_variance,
            f.intra_variance
        );
    }

    #[test]
    fn all_five_categories_present() {
        let f = fig();
        assert_eq!(f.inter.len(), 5);
        assert!(!f.intra.is_empty());
        assert!(f.to_string().contains("Top-80%"));
    }
}
