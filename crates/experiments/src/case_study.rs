//! Table 7 / Fig. 8: the qualitative case study — per-item predicted
//! scores of MoE vs Adv & HSC-MoE on one query session, with each
//! model's ten per-expert scores and which experts the gates selected.

use std::fmt;

use amoe_core::MoeModel;
use amoe_dataset::{Batch, Split};
use amoe_tensor::Matrix;

use crate::suite::{SuiteConfig, TrainedZoo};
use crate::tablefmt::TextTable;

/// One candidate item of the chosen session.
pub struct CaseItem {
    /// Purchase label.
    pub label: bool,
    /// Predicted score under plain MoE.
    pub moe_score: f32,
    /// Predicted score under Adv & HSC-MoE.
    pub ours_score: f32,
    /// Per-expert logits under MoE.
    pub moe_experts: Vec<f32>,
    /// MoE's selected expert indices.
    pub moe_selected: Vec<usize>,
    /// Per-expert logits under Adv & HSC-MoE.
    pub ours_experts: Vec<f32>,
    /// Adv & HSC-MoE's selected expert indices.
    pub ours_selected: Vec<usize>,
}

/// The case-study report.
pub struct CaseStudy {
    /// Query id of the chosen session.
    pub query: u32,
    /// Top-category name of the session.
    pub category: String,
    /// The session's items (first is the purchased one when the search
    /// found the paper's pattern).
    pub items: Vec<CaseItem>,
    /// Whether the paper's pattern was found: our model ranks the
    /// positive above every negative while MoE misranks at least one.
    pub ours_fixes_moe_error: bool,
}

fn scores_for(model: &MoeModel, split: &Split, idx: &[usize]) -> (Vec<f32>, Matrix, Matrix) {
    use amoe_core::Ranker as _;
    let batch = Batch::from_split(split, idx);
    let probs = model.predict(&batch);
    let (experts, mask) = model.expert_logits(&batch);
    (probs, experts, mask)
}

/// Picks a session and extracts both models' per-expert anatomy.
#[must_use]
pub fn evaluate(zoo: &TrainedZoo) -> CaseStudy {
    let test = &zoo.dataset.test;

    // Prefer a session where Adv & HSC-MoE ranks the (single) positive
    // on top while MoE misranks it — the paper's illustrative pattern.
    // Rank candidates by how many places our model improves the
    // positive's position over MoE, so we pick the starkest contrast.
    let mut best: Option<(usize, isize, bool)> = None; // (session, gain, pattern)
    for (si, r) in test.sessions.iter().enumerate() {
        let idx: Vec<usize> = r.clone().collect();
        let labels: Vec<bool> = idx.iter().map(|&i| test.examples[i].label).collect();
        let pos = labels.iter().filter(|&&l| l).count();
        if pos != 1 || labels.len() < 3 || labels.len() > 12 {
            continue;
        }
        let batch = Batch::from_split(test, &idx);
        use amoe_core::Ranker as _;
        let ours = zoo.adv_hsc.predict(&batch);
        let moe = zoo.moe.predict(&batch);
        let pos_i = labels.iter().position(|&l| l).expect("one positive");
        let rank_of = |scores: &[f32]| -> isize {
            scores
                .iter()
                .enumerate()
                .filter(|&(i, &s)| i != pos_i && s >= scores[pos_i])
                .count() as isize
        };
        let (r_moe, r_ours) = (rank_of(&moe), rank_of(&ours));
        let pattern = r_ours == 0 && r_moe > 0;
        let gain = r_moe - r_ours;
        let better = match best {
            None => true,
            Some((_, g, p)) => (pattern, gain) > (p, g),
        };
        if better {
            best = Some((si, gain, pattern));
        }
    }
    let (si, _gain, found) = best.expect("test set has a usable session");
    let r = &test.sessions[si];
    let idx: Vec<usize> = r.clone().collect();

    let (moe_scores, moe_experts, moe_mask) = scores_for(&zoo.moe, test, &idx);
    let (ours_scores, ours_experts, ours_mask) = scores_for(&zoo.adv_hsc, test, &idx);

    let items = idx
        .iter()
        .enumerate()
        .map(|(row, &i)| {
            let selected = |mask: &Matrix| -> Vec<usize> {
                (0..mask.cols()).filter(|&c| mask[(row, c)] > 0.0).collect()
            };
            CaseItem {
                label: test.examples[i].label,
                moe_score: moe_scores[row],
                ours_score: ours_scores[row],
                moe_experts: moe_experts.row(row).to_vec(),
                moe_selected: selected(&moe_mask),
                ours_experts: ours_experts.row(row).to_vec(),
                ours_selected: selected(&ours_mask),
            }
        })
        .collect();

    let first = &test.examples[idx[0]];
    CaseStudy {
        query: first.query,
        category: zoo.dataset.hierarchy.tc_name(first.true_tc).to_string(),
        items,
        ours_fixes_moe_error: found,
    }
}

/// Trains the zoo and runs the case study.
#[must_use]
pub fn run(config: &SuiteConfig) -> CaseStudy {
    crate::manifest::emit("case_study", config);
    let zoo = TrainedZoo::train(config);
    evaluate(&zoo)
}

fn fmt_experts(scores: &[f32], selected: &[usize]) -> String {
    scores
        .iter()
        .enumerate()
        .map(|(i, s)| {
            if selected.contains(&i) {
                format!("[{s:+.2}]")
            } else {
                format!(" {s:+.2} ")
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

impl fmt::Display for CaseStudy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 7 / Figure 8: case study — query {} ({}), {} items",
            self.query,
            self.category,
            self.items.len()
        )?;
        writeln!(
            f,
            "(pattern \"ours fixes an MoE misranking\" found: {})",
            self.ours_fixes_moe_error
        )?;
        let mut t = TextTable::new(&["item", "label", "MoE score", "Ours score"]);
        for (i, item) in self.items.iter().enumerate() {
            t.row(&[
                format!("#{i}"),
                u8::from(item.label).to_string(),
                format!("{:.6}", item.moe_score),
                format!("{:.6}", item.ours_score),
            ]);
        }
        write!(f, "{}", t.render())?;
        writeln!(f)?;
        writeln!(f, "Per-expert logits ([x] = selected by the gate):")?;
        for (i, item) in self.items.iter().enumerate() {
            writeln!(f, "item #{i} (label {}):", u8::from(item.label))?;
            writeln!(
                f,
                "  MoE : {}",
                fmt_experts(&item.moe_experts, &item.moe_selected)
            )?;
            writeln!(
                f,
                "  Ours: {}",
                fmt_experts(&item.ours_experts, &item.ours_selected)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_case_study_has_anatomy() {
        let cs = run(&SuiteConfig::fast());
        assert!(cs.items.len() >= 3);
        assert_eq!(cs.items.iter().filter(|i| i.label).count(), 1);
        for item in &cs.items {
            assert_eq!(item.moe_experts.len(), 10);
            assert_eq!(item.moe_selected.len(), 4);
            assert_eq!(item.ours_selected.len(), 4);
            assert!((0.0..=1.0).contains(&item.moe_score));
            assert!((0.0..=1.0).contains(&item.ours_score));
        }
        let text = cs.to_string();
        assert!(text.contains("Table 7"));
        assert!(text.contains("Per-expert"));
    }
}
