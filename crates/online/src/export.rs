//! Versioned, atomic checkpoint export.
//!
//! Each refit produces a new *generation*: a weights checkpoint
//! (`gen-NNNNNN.amoe`) plus a [`ModelSpec`] sidecar (`gen-NNNNNN.spec`)
//! in one export directory. Both files are written with the temp-file +
//! `rename` discipline (`ParamSet::save_atomic`, `ModelSpec::save_atomic`),
//! so a server asked to `RELOAD` a generation mid-export either sees
//! the previous complete file or the new complete file — never a torn
//! prefix. Generations are never overwritten in place and never
//! deleted here; retention is the operator's concern.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use amoe_nn::ParamSet;
use amoe_serve::ModelSpec;

/// A directory of `gen-NNNNNN.amoe` / `.spec` pairs sharing one spec.
pub struct CheckpointStore {
    dir: PathBuf,
    spec: ModelSpec,
}

impl CheckpointStore {
    /// Opens (creating if needed) the export directory.
    pub fn new(dir: impl Into<PathBuf>, spec: ModelSpec) -> io::Result<CheckpointStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir, spec })
    }

    /// The export directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The spec written beside every generation.
    #[must_use]
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// Checkpoint path for a generation (`gen-000042.amoe`).
    #[must_use]
    pub fn checkpoint_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("gen-{generation:06}.amoe"))
    }

    /// Spec sidecar path for a generation (`gen-000042.spec`).
    #[must_use]
    pub fn spec_path(&self, generation: u64) -> PathBuf {
        self.dir.join(format!("gen-{generation:06}.spec"))
    }

    /// Atomically writes `generation`'s checkpoint and spec sidecar.
    ///
    /// Returns the absolute checkpoint path — absolute because the
    /// path travels over the wire in a `RELOAD` and the server resolves
    /// it against *its* working directory, not ours.
    pub fn export(&self, generation: u64, params: &ParamSet) -> io::Result<PathBuf> {
        let ckpt = self.checkpoint_path(generation);
        params
            .save_atomic(&ckpt)
            .map_err(|e| io::Error::other(format!("checkpoint export failed: {e}")))?;
        self.spec.save_atomic(self.spec_path(generation))?;
        fs::canonicalize(&ckpt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoe_dataset::{generate, GeneratorConfig};
    use amoe_serve::ModelSpec;

    fn spec() -> ModelSpec {
        let d = generate(&GeneratorConfig::tiny(9));
        ModelSpec {
            meta: d.meta,
            config: Default::default(),
            serve_quantized: false,
        }
    }

    fn params() -> ParamSet {
        let mut p = ParamSet::new();
        p.add("w", amoe_tensor::Matrix::zeros(3, 2));
        p
    }

    #[test]
    fn export_writes_loadable_pair_and_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("amoe-online-store-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(&dir, spec()).unwrap();
        let path = store.export(1, &params()).unwrap();
        assert!(path.is_absolute());
        assert!(path.ends_with("gen-000001.amoe"));
        let loaded = ParamSet::load(&path).unwrap();
        assert_eq!(loaded.len(), 1);
        let side = ModelSpec::load(store.spec_path(1)).unwrap();
        assert_eq!(side.meta.n_numeric, store.spec().meta.n_numeric);
        for entry in fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name();
            let name = name.to_string_lossy().into_owned();
            assert!(!name.ends_with(".tmp"), "temp file left behind: {name}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn generations_are_distinct_files() {
        let dir = std::env::temp_dir().join(format!("amoe-online-gens-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = CheckpointStore::new(&dir, spec()).unwrap();
        let a = store.export(1, &params()).unwrap();
        let b = store.export(2, &params()).unwrap();
        assert_ne!(a, b);
        assert!(store.checkpoint_path(1).exists());
        assert!(store.checkpoint_path(2).exists());
        assert!(store.spec_path(2).exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
