#![warn(missing_docs)]

//! The continuous train→reload loop: everything between "a model was
//! trained once" and "a live server keeps getting fresher models".
//!
//! The serving stack already has the ingredients — a trainer, a
//! weights-only checkpoint format, a `RELOAD` hot-swap that never
//! drops in-flight requests — but nothing that closes the loop. This
//! crate does, in three parts:
//!
//! * [`stream`] — a drifting session source: timestamped windows from
//!   [`amoe_dataset::DriftWorld`], emitted tick by tick.
//! * [`export`] — versioned, atomic checkpoint + spec export
//!   (`gen-NNNNNN.amoe` / `.spec`, temp-file + `rename`), so a
//!   concurrent `RELOAD` can never read a torn file.
//! * [`daemon`] — the [`daemon::OnlineLoop`]: maintain a sliding
//!   window of recent sessions, periodically refit warm-started from
//!   the previous generation, export, and push `RELOAD` to a live
//!   `amoe-serve`, with probe traffic verifying the server stays
//!   continuously available through every swap.
//!
//! The `amoe-online` binary wraps the loop for the CLI; the
//! `online_sweep` bench (in `amoe-bench`) replays the same stream
//! against a frozen model to price staleness.

pub mod daemon;
pub mod export;
pub mod stream;

pub use daemon::{LoopStats, OnlineConfig, OnlineLoop, RefitReport, TickReport};
pub use export::CheckpointStore;
pub use stream::SessionStream;
