//! The online trainer daemon: sliding window → warm-started refit →
//! atomic export → `RELOAD` push.
//!
//! [`OnlineLoop`] consumes one [`SessionWindow`] per tick. Each tick it
//! optionally *probes* a live server with rows from the fresh window
//! (measuring that the server answers every admitted request through
//! model swaps), appends the window to a bounded sliding buffer, and —
//! every `refit_every` ticks once the buffer holds data — refits:
//!
//! 1. warm-start from the previous generation's exported checkpoint
//!    (the very first refit warm-starts from the seed checkpoint when
//!    one is configured, otherwise from fresh initialisation);
//! 2. run [`Trainer::fit_window`] over the concatenated window;
//! 3. export `gen-NNNNNN.amoe` + `.spec` atomically via
//!    [`CheckpointStore`]; and
//! 4. push `RELOAD` to the server, timing the swap.
//!
//! The loop can also run without a server (`serve_addr: None`) — the
//! staleness bench drives it that way, scoring the in-process model
//! directly while a separate harness owns the serving side.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::time::Instant;

use amoe_core::ranker::OptimConfig;
use amoe_core::{MoeConfig, MoeModel, TrainConfig, Trainer};
use amoe_dataset::drift::{DriftConfig, SessionWindow};
use amoe_dataset::{GeneratorConfig, Split};
use amoe_serve::{Client, FeatureRow, ModelSpec, ServeError};

use crate::export::CheckpointStore;
use crate::stream::SessionStream;

/// Everything the loop needs to run.
#[derive(Clone, Debug)]
pub struct OnlineConfig {
    /// Static world the drifting stream is derived from. Must describe
    /// the same world the serving model was trained on, or the schemas
    /// will not match.
    pub base: GeneratorConfig,
    /// Drift schedule layered on top of `base`.
    pub drift: DriftConfig,
    /// Sessions emitted per stream tick.
    pub sessions_per_tick: usize,
    /// Sliding-window length in ticks; older windows fall off.
    pub window_ticks: usize,
    /// Refit cadence: train + export + reload every this many ticks.
    pub refit_every: u64,
    /// Epochs per refit (small: the window is small and fresh).
    pub refit_epochs: usize,
    /// Trainer configuration (batching, shuffling seed).
    pub train: TrainConfig,
    /// Architecture of the model being kept fresh.
    pub model: MoeConfig,
    /// Optimiser for refits (optimizer state is not checkpointed; each
    /// refit starts it fresh).
    pub optim: OptimConfig,
    /// Directory receiving `gen-NNNNNN.amoe` / `.spec` exports.
    pub export_dir: PathBuf,
    /// Checkpoint to warm-start generation 1 from (usually the
    /// serving model's own boot checkpoint). `None` → random init.
    pub seed_checkpoint: Option<PathBuf>,
    /// Live server to probe and push `RELOAD` to. `None` → offline
    /// mode (no probes, no pushes; exports still happen).
    pub serve_addr: Option<String>,
    /// Rows per probe request sent each tick (0 disables probing).
    pub probe_rows: usize,
    /// Serve the exported checkpoints quantized (spec hint).
    pub quantized: bool,
}

impl OnlineConfig {
    /// Defaults sized for the loopback demo: small windows, refit
    /// every 3 ticks, probes on.
    #[must_use]
    pub fn demo(base: GeneratorConfig, export_dir: impl Into<PathBuf>) -> Self {
        OnlineConfig {
            base,
            drift: DriftConfig::default(),
            sessions_per_tick: 24,
            window_ticks: 4,
            refit_every: 3,
            refit_epochs: 2,
            train: TrainConfig {
                batch_size: 64,
                verbose: false,
                ..TrainConfig::default()
            },
            model: MoeConfig::default(),
            optim: OptimConfig::default(),
            export_dir: export_dir.into(),
            seed_checkpoint: None,
            serve_addr: None,
            probe_rows: 32,
            quantized: false,
        }
    }
}

/// What one refit did.
#[derive(Clone, Debug)]
pub struct RefitReport {
    /// Generation number of the exported checkpoint (1-based).
    pub generation: u64,
    /// Stream tick the refit ran at.
    pub tick: u64,
    /// Sessions in the training window.
    pub window_sessions: usize,
    /// Examples in the training window.
    pub window_examples: usize,
    /// Final-epoch mean training loss.
    pub loss: f32,
    /// Wall time of the fit, milliseconds.
    pub fit_ms: f64,
    /// Absolute path of the exported checkpoint.
    pub export_path: PathBuf,
    /// `RELOAD` round-trip in microseconds, when a server is attached.
    pub reload_us: Option<u64>,
}

/// What one tick did.
#[derive(Clone, Debug)]
pub struct TickReport {
    /// The tick processed.
    pub tick: u64,
    /// Probe rows scored against the server this tick.
    pub probe_rows: usize,
    /// Probe round-trip in microseconds (0 when no probe ran).
    pub probe_us: u64,
    /// Probes the server shed with `OVERLOADED` this tick.
    pub overloaded: u64,
    /// The refit, on refit-boundary ticks.
    pub refit: Option<RefitReport>,
}

/// Loop-lifetime counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoopStats {
    /// Ticks processed.
    pub ticks: u64,
    /// Refits completed.
    pub refits: u64,
    /// Successful `RELOAD` pushes.
    pub reloads: u64,
    /// Probe requests answered with scores.
    pub probes_ok: u64,
    /// Probe requests shed with `OVERLOADED` (admission control, not
    /// a failure: the client is told to back off and nothing is lost).
    pub probes_overloaded: u64,
    /// Probe or reload requests that *failed* — an accepted request
    /// with no answer, a server error, a protocol violation. The
    /// continuous-availability check is `failed == 0`.
    pub failed: u64,
    /// Sum of reload round-trips, microseconds.
    pub reload_us_total: u64,
    /// Worst reload round-trip, microseconds.
    pub reload_us_max: u64,
}

/// The online trainer daemon. See the module docs for the lifecycle.
pub struct OnlineLoop {
    config: OnlineConfig,
    stream: SessionStream,
    trainer: Trainer,
    model: MoeModel,
    store: CheckpointStore,
    window: VecDeque<SessionWindow>,
    client: Option<Client>,
    generation: u64,
    last_export: Option<PathBuf>,
    stats: LoopStats,
}

impl OnlineLoop {
    /// Builds the loop: derives the drifting stream, initialises the
    /// model (from `seed_checkpoint` when set), and opens the export
    /// store. Does not touch the network — call [`Self::connect`] to
    /// attach the server.
    pub fn new(config: OnlineConfig) -> Result<OnlineLoop, String> {
        assert!(config.window_ticks > 0, "window_ticks must be > 0");
        assert!(config.refit_every > 0, "refit_every must be > 0");
        let stream = SessionStream::new(&config.base, &config.drift, config.sessions_per_tick);
        let meta = stream.meta().clone();
        let model = match &config.seed_checkpoint {
            Some(path) => {
                MoeModel::from_checkpoint(&meta, config.model.clone(), config.optim, path)
                    .map_err(|e| format!("seed checkpoint {}: {e}", path.display()))?
            }
            None => MoeModel::new(&meta, config.model.clone(), config.optim),
        };
        let spec = ModelSpec {
            meta,
            config: config.model.clone(),
            serve_quantized: config.quantized,
        };
        let store = CheckpointStore::new(&config.export_dir, spec)
            .map_err(|e| format!("export dir {}: {e}", config.export_dir.display()))?;
        let trainer = Trainer::new(config.train.clone());
        Ok(OnlineLoop {
            config,
            stream,
            trainer,
            model,
            store,
            window: VecDeque::new(),
            client: None,
            generation: 0,
            last_export: None,
            stats: LoopStats::default(),
        })
    }

    /// Connects to `serve_addr` (no-op when the loop is offline).
    pub fn connect(&mut self) -> Result<(), String> {
        if let Some(addr) = &self.config.serve_addr {
            let client =
                Client::connect(addr.as_str()).map_err(|e| format!("connect {addr}: {e}"))?;
            self.client = Some(client);
        }
        Ok(())
    }

    /// The loop's stream (replay, schema access).
    #[must_use]
    pub fn stream(&self) -> &SessionStream {
        &self.stream
    }

    /// The current in-process model (generation [`Self::generation`]).
    #[must_use]
    pub fn model(&self) -> &MoeModel {
        &self.model
    }

    /// Generation of the latest export (0 before the first refit).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Lifetime counters so far.
    #[must_use]
    pub fn stats(&self) -> LoopStats {
        self.stats
    }

    /// The export store (paths, spec).
    #[must_use]
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    /// Pulls the next window off the internal stream and processes it.
    pub fn step(&mut self) -> Result<TickReport, String> {
        let window = self.stream.next_window();
        self.step_window(&window)
    }

    /// Processes one externally supplied window — the entry point the
    /// staleness bench uses, so the bench and the daemon share the
    /// exact same refit path while the bench owns the stream.
    pub fn step_window(&mut self, window: &SessionWindow) -> Result<TickReport, String> {
        let tick = window.tick;
        let (probe_rows, probe_us, overloaded) = self.probe(window)?;
        self.window.push_back(window.clone());
        while self.window.len() > self.config.window_ticks {
            self.window.pop_front();
        }
        self.stats.ticks += 1;
        let refit = if (tick + 1).is_multiple_of(self.config.refit_every) {
            Some(self.refit(tick)?)
        } else {
            None
        };
        Ok(TickReport {
            tick,
            probe_rows,
            probe_us,
            overloaded,
            refit,
        })
    }

    /// Runs `ticks` steps against the internal stream.
    pub fn run(&mut self, ticks: u64) -> Result<Vec<TickReport>, String> {
        let mut reports = Vec::with_capacity(ticks as usize);
        for _ in 0..ticks {
            reports.push(self.step()?);
        }
        Ok(reports)
    }

    /// Scores a slice of the fresh window against the live server.
    /// `OVERLOADED` is counted but tolerated; any other failure is
    /// fatal to the loop (the availability contract is broken).
    fn probe(&mut self, window: &SessionWindow) -> Result<(usize, u64, u64), String> {
        let Some(client) = self.client.as_mut() else {
            return Ok((0, 0, 0));
        };
        if self.config.probe_rows == 0 || window.split.is_empty() {
            return Ok((0, 0, 0));
        }
        let n = self.config.probe_rows.min(window.split.len());
        let rows: Vec<FeatureRow> = window.split.examples[..n].iter().map(feature_row).collect();
        let start = Instant::now();
        match client.score(&rows) {
            Ok(scores) => {
                let probe_us = start.elapsed().as_micros() as u64;
                if scores.len() != rows.len() {
                    self.stats.failed += 1;
                    return Err(format!(
                        "probe returned {} scores for {} rows",
                        scores.len(),
                        rows.len()
                    ));
                }
                self.stats.probes_ok += 1;
                if amoe_obs::enabled() {
                    amoe_obs::counter_add("online.probes", 1);
                    amoe_obs::histogram_record("online.probe_us", probe_us as f64);
                }
                Ok((n, probe_us, 0))
            }
            Err(ServeError::Overloaded) => {
                self.stats.probes_overloaded += 1;
                if amoe_obs::enabled() {
                    amoe_obs::counter_add("online.probes_overloaded", 1);
                }
                Ok((n, 0, 1))
            }
            Err(e) => {
                self.stats.failed += 1;
                Err(format!("probe failed at tick {}: {e}", window.tick))
            }
        }
    }

    /// Warm-start → fit → export → reload.
    fn refit(&mut self, tick: u64) -> Result<RefitReport, String> {
        let split = concat_windows(&self.window);
        if split.is_empty() {
            return Err(format!("refit at tick {tick} with an empty window"));
        }
        // Warm-start from the last exported generation: the refit
        // resumes the *deployed* weights, not whatever the in-process
        // model drifted to, so daemon restarts are equivalent to
        // continuous runs.
        if let Some(path) = &self.last_export {
            self.model = MoeModel::from_checkpoint(
                self.stream.meta(),
                self.config.model.clone(),
                self.config.optim,
                path,
            )
            .map_err(|e| format!("warm-start {}: {e}", path.display()))?;
        }
        let fit_start = Instant::now();
        let stats = self
            .trainer
            .fit_window(&mut self.model, &split, self.config.refit_epochs);
        let fit_ms = fit_start.elapsed().as_secs_f64() * 1e3;

        let generation = self.generation + 1;
        let export_path = self
            .store
            .export(generation, self.model.params())
            .map_err(|e| format!("export generation {generation}: {e}"))?;
        self.generation = generation;
        self.last_export = Some(export_path.clone());
        self.stats.refits += 1;

        let reload_us = match self.client.as_mut() {
            Some(client) => {
                let path = export_path
                    .to_str()
                    .ok_or_else(|| format!("non-utf8 export path {}", export_path.display()))?;
                let start = Instant::now();
                client.reload(path).map_err(|e| {
                    self.stats.failed += 1;
                    format!("reload generation {generation}: {e}")
                })?;
                let us = start.elapsed().as_micros() as u64;
                self.stats.reloads += 1;
                self.stats.reload_us_total += us;
                self.stats.reload_us_max = self.stats.reload_us_max.max(us);
                Some(us)
            }
            None => None,
        };

        if amoe_obs::enabled() {
            amoe_obs::counter_add("online.refits", 1);
            amoe_obs::gauge_set("online.generation", generation as f64);
            if let Some(us) = reload_us {
                amoe_obs::histogram_record("online.reload_us", us as f64);
            }
            amoe_obs::emit(
                &amoe_obs::Event::new("online_refit")
                    .u64("tick", tick)
                    .u64("generation", generation)
                    .u64("window_sessions", split.sessions.len() as u64)
                    .u64("window_examples", split.len() as u64)
                    .f64("loss", f64::from(stats.loss))
                    .f64("fit_ms", fit_ms)
                    .u64("reload_us", reload_us.unwrap_or(0))
                    .str("export", export_path.display().to_string()),
            );
        }

        Ok(RefitReport {
            generation,
            tick,
            window_sessions: split.sessions.len(),
            window_examples: split.len(),
            loss: stats.loss,
            fit_ms,
            export_path,
            reload_us,
        })
    }
}

/// Wire-format row for an example, with the query-predicted categories
/// as the gate inputs (same mapping the serving loader uses).
#[must_use]
pub fn feature_row(e: &amoe_dataset::Example) -> FeatureRow {
    FeatureRow {
        sc: e.pred_sc as u32,
        tc: e.pred_tc as u32,
        brand: e.brand as u32,
        shop: e.shop as u32,
        user_segment: e.user_segment as u32,
        price_bucket: e.price_bucket as u32,
        query: e.query,
        numeric: e.numeric.to_vec(),
    }
}

/// Concatenates the sliding window into one training [`Split`],
/// re-basing session ids and example ranges so the result is
/// session-contiguous like any generated split.
#[must_use]
pub fn concat_windows(windows: &VecDeque<SessionWindow>) -> Split {
    let total: usize = windows.iter().map(|w| w.split.len()).sum();
    let mut examples = Vec::with_capacity(total);
    let mut sessions = Vec::new();
    let mut next_session = 0u32;
    for w in windows {
        for range in &w.split.sessions {
            let start = examples.len();
            for e in &w.split.examples[range.clone()] {
                let mut e = e.clone();
                e.session = next_session;
                examples.push(e);
            }
            sessions.push(start..examples.len());
            next_session += 1;
        }
    }
    Split { examples, sessions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoe_dataset::drift::DriftWorld;

    fn config(dir: &str) -> OnlineConfig {
        let mut cfg = OnlineConfig::demo(
            GeneratorConfig::tiny(31),
            std::env::temp_dir().join(format!("{dir}-{}", std::process::id())),
        );
        cfg.sessions_per_tick = 8;
        cfg.refit_epochs = 1;
        cfg.model = MoeConfig {
            n_experts: 4,
            top_k: 2,
            tower: amoe_core::TowerConfig { hidden: vec![8, 4] },
            ..MoeConfig::default()
        };
        cfg
    }

    #[test]
    fn concat_rebases_sessions_contiguously() {
        let cfg = GeneratorConfig::tiny(31);
        let world = DriftWorld::new(&cfg, &DriftConfig::default());
        let mut windows = VecDeque::new();
        windows.push_back(world.window(0, 5));
        windows.push_back(world.window(1, 5));
        let split = concat_windows(&windows);
        assert_eq!(split.sessions.len(), 10);
        let mut expect = 0usize;
        for (sid, range) in split.sessions.iter().enumerate() {
            assert_eq!(range.start, expect, "session ranges must be contiguous");
            expect = range.end;
            for e in &split.examples[range.clone()] {
                assert_eq!(e.session as usize, sid);
            }
        }
        assert_eq!(expect, split.examples.len());
    }

    #[test]
    fn offline_loop_refits_and_exports_generations() {
        let mut cfg = config("amoe-online-loop");
        cfg.refit_every = 2;
        let _ = std::fs::remove_dir_all(&cfg.export_dir);
        let export_dir = cfg.export_dir.clone();
        let mut lp = OnlineLoop::new(cfg).unwrap();
        let reports = lp.run(6).unwrap();
        assert_eq!(reports.len(), 6);
        let refits: Vec<&RefitReport> = reports.iter().filter_map(|r| r.refit.as_ref()).collect();
        assert_eq!(refits.len(), 3, "refit every 2 ticks over 6 ticks");
        assert_eq!(lp.generation(), 3);
        assert_eq!(lp.stats().refits, 3);
        assert_eq!(lp.stats().reloads, 0, "no server attached");
        assert_eq!(lp.stats().failed, 0);
        for (i, r) in refits.iter().enumerate() {
            assert_eq!(r.generation, i as u64 + 1);
            assert!(r.export_path.exists());
            assert!(r.window_examples > 0);
            assert!(r.loss.is_finite());
        }
        // Each export is loadable back into a model.
        let last = refits.last().unwrap();
        let spec = ModelSpec::load(lp.store().spec_path(last.generation)).unwrap();
        let restored = MoeModel::from_checkpoint(
            &spec.meta,
            spec.config,
            OptimConfig::default(),
            &last.export_path,
        );
        assert!(restored.is_ok());
        let _ = std::fs::remove_dir_all(&export_dir);
    }

    #[test]
    fn sliding_window_is_bounded() {
        let mut cfg = config("amoe-online-window");
        cfg.window_ticks = 2;
        cfg.refit_every = 100; // never refit; watch the buffer only
        let _ = std::fs::remove_dir_all(&cfg.export_dir);
        let export_dir = cfg.export_dir.clone();
        let mut lp = OnlineLoop::new(cfg).unwrap();
        lp.run(5).unwrap();
        assert_eq!(lp.window.len(), 2);
        let ticks: Vec<u64> = lp.window.iter().map(|w| w.tick).collect();
        assert_eq!(ticks, vec![3, 4], "oldest windows fall off");
        let _ = std::fs::remove_dir_all(&export_dir);
    }
}
