//! The drifting session stream the online loop consumes.
//!
//! A thin stateful cursor over [`DriftWorld`]: `next_window()` emits
//! the window for the current tick and advances. Windows are pure
//! functions of `(world, tick)`, so a stream can be replayed — or
//! random-accessed via [`SessionStream::window_at`] — and two streams
//! with equal configs produce bit-identical session sequences
//! regardless of thread count or interleaving.

use amoe_dataset::drift::{DriftConfig, DriftWorld, SessionWindow};
use amoe_dataset::{DatasetMeta, GeneratorConfig};

/// A tick-by-tick cursor over a [`DriftWorld`].
pub struct SessionStream {
    world: DriftWorld,
    sessions_per_tick: usize,
    next_tick: u64,
}

impl SessionStream {
    /// Builds the stream. Deterministic in `(base, drift)`.
    ///
    /// # Panics
    /// Panics if either config is invalid or `sessions_per_tick` is 0.
    #[must_use]
    pub fn new(base: &GeneratorConfig, drift: &DriftConfig, sessions_per_tick: usize) -> Self {
        assert!(sessions_per_tick > 0, "sessions_per_tick must be > 0");
        SessionStream {
            world: DriftWorld::new(base, drift),
            sessions_per_tick,
            next_tick: 0,
        }
    }

    /// The world behind the stream.
    #[must_use]
    pub fn world(&self) -> &DriftWorld {
        &self.world
    }

    /// Schema of every window (fixed for the stream's lifetime).
    #[must_use]
    pub fn meta(&self) -> &DatasetMeta {
        self.world.meta()
    }

    /// Sessions emitted per tick.
    #[must_use]
    pub fn sessions_per_tick(&self) -> usize {
        self.sessions_per_tick
    }

    /// The tick the next [`Self::next_window`] call will emit.
    #[must_use]
    pub fn next_tick(&self) -> u64 {
        self.next_tick
    }

    /// Emits the current tick's window and advances the cursor.
    pub fn next_window(&mut self) -> SessionWindow {
        let w = self.world.window(self.next_tick, self.sessions_per_tick);
        self.next_tick += 1;
        w
    }

    /// Random access: the window any `tick` would emit, without
    /// moving the cursor (replay and frozen-model evaluation).
    #[must_use]
    pub fn window_at(&self, tick: u64) -> SessionWindow {
        self.world.window(tick, self.sessions_per_tick)
    }
}

impl Iterator for SessionStream {
    type Item = SessionWindow;

    /// The stream is unbounded; callers bound it (`take(n)`).
    fn next(&mut self) -> Option<SessionWindow> {
        Some(self.next_window())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> SessionStream {
        SessionStream::new(&GeneratorConfig::tiny(42), &DriftConfig::default(), 10)
    }

    #[test]
    fn sequential_equals_random_access() {
        let mut s = stream();
        let a0 = s.next_window();
        let a1 = s.next_window();
        let r0 = s.window_at(0);
        let r1 = s.window_at(1);
        assert_eq!(a0.tick, 0);
        assert_eq!(a1.tick, 1);
        for (x, y) in a0.split.examples.iter().zip(&r0.split.examples) {
            assert_eq!(x.numeric, y.numeric);
            assert_eq!(x.label, y.label);
        }
        for (x, y) in a1.split.examples.iter().zip(&r1.split.examples) {
            assert_eq!(x.numeric, y.numeric);
        }
    }

    #[test]
    fn two_streams_bit_identical() {
        let mut a = stream();
        let mut b = stream();
        for _ in 0..4 {
            let wa = a.next_window();
            let wb = b.next_window();
            assert_eq!(wa.tick, wb.tick);
            assert_eq!(wa.split.len(), wb.split.len());
            for (x, y) in wa.split.examples.iter().zip(&wb.split.examples) {
                assert_eq!(x.numeric, y.numeric);
                assert_eq!(x.label, y.label);
                assert_eq!(x.brand, y.brand);
            }
        }
    }

    #[test]
    fn iterator_is_unbounded_and_ticks_advance() {
        let s = stream();
        let ticks: Vec<u64> = s.take(5).map(|w| w.tick).collect();
        assert_eq!(ticks, vec![0, 1, 2, 3, 4]);
    }
}
