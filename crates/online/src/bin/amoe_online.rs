//! Online trainer daemon CLI.
//!
//! ```text
//! amoe-online run --addr HOST:PORT --spec FILE [--seed-ckpt FILE]
//!                 [--export-dir DIR] [--seed N] [--drift-seed N]
//!                 [--ticks N] [--refit-every N] [--epochs N]
//!                 [--sessions-per-tick N] [--window-ticks N]
//!                 [--probe-rows N] [--min-reloads N] [--offline]
//!     Run the continuous train→reload loop against a live amoe-serve.
//!     Reads FILE (the server's ModelSpec) for the architecture and
//!     schema, derives the drifting session stream from `--seed`
//!     (which must be the seed the server's model was exported with,
//!     so the schemas match), and every `--refit-every` ticks refits
//!     on the sliding window, exports `gen-NNNNNN.amoe` + `.spec`
//!     into `--export-dir`, and pushes RELOAD. Each tick also probes
//!     the server with `--probe-rows` rows from the fresh window.
//!
//!     Exits non-zero if any probe or reload *failed* (OVERLOADED
//!     shedding is tolerated and counted separately), or if fewer
//!     than `--min-reloads` reloads succeeded. `--offline` runs the
//!     loop without a server (exports only; `--addr` unused).
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use amoe_dataset::{DriftConfig, DriftWorld, GeneratorConfig};
use amoe_online::{OnlineConfig, OnlineLoop};
use amoe_serve::ModelSpec;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        _ => {
            eprintln!("usage: amoe-online run [options]");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("amoe-online: {message}");
            ExitCode::FAILURE
        }
    }
}

/// `--key value` option lookup; repeated keys take the last value.
fn opt(args: &[String], key: &str) -> Result<Option<String>, String> {
    let mut found = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == key {
            match it.next() {
                Some(v) => found = Some(v.clone()),
                None => return Err(format!("{key} needs a value")),
            }
        }
    }
    Ok(found)
}

fn opt_parse<T: std::str::FromStr>(args: &[String], key: &str) -> Result<Option<T>, String> {
    match opt(args, key)? {
        Some(v) => v
            .parse::<T>()
            .map(Some)
            .map_err(|_| format!("{key}: cannot parse {v:?}")),
        None => Ok(None),
    }
}

fn flag(args: &[String], key: &str) -> bool {
    args.iter().any(|a| a == key)
}

fn run(args: &[String]) -> Result<(), String> {
    let spec_path = opt(args, "--spec")?.ok_or("run: --spec FILE is required")?;
    let offline = flag(args, "--offline");
    let addr = opt(args, "--addr")?;
    if !offline && addr.is_none() {
        return Err("run: --addr HOST:PORT is required (or pass --offline)".into());
    }
    let seed: u64 = opt_parse(args, "--seed")?.unwrap_or(41);
    let drift_seed: u64 = opt_parse(args, "--drift-seed")?.unwrap_or(7);
    let ticks: u64 = opt_parse(args, "--ticks")?.unwrap_or(12);
    let refit_every: u64 = opt_parse(args, "--refit-every")?.unwrap_or(3);
    let epochs: usize = opt_parse(args, "--epochs")?.unwrap_or(2);
    let sessions_per_tick: usize = opt_parse(args, "--sessions-per-tick")?.unwrap_or(24);
    let window_ticks: usize = opt_parse(args, "--window-ticks")?.unwrap_or(4);
    let probe_rows: usize = opt_parse(args, "--probe-rows")?.unwrap_or(32);
    let min_reloads: u64 = opt_parse(args, "--min-reloads")?.unwrap_or(0);
    let export_dir: PathBuf = opt(args, "--export-dir")?
        .unwrap_or_else(|| "target/online".into())
        .into();
    let seed_ckpt: Option<PathBuf> = opt(args, "--seed-ckpt")?.map(PathBuf::from);

    let spec = ModelSpec::load(&spec_path).map_err(|e| format!("load {spec_path}: {e}"))?;
    let base = GeneratorConfig::tiny(seed);
    let drift = DriftConfig {
        seed: drift_seed,
        ..DriftConfig::default()
    };

    // Fail fast on schema mismatch: the drifting world derived from
    // --seed must describe the exact vocabulary the serving model was
    // built for, or every RELOADed checkpoint would be rejected.
    let world_meta = DriftWorld::new(&base, &drift).meta().clone();
    if world_meta != spec.meta {
        return Err(format!(
            "schema mismatch: stream from --seed {seed} does not match {spec_path} \
             (was the server's model exported with a different seed?)"
        ));
    }

    let mut config = OnlineConfig::demo(base, export_dir);
    config.drift = drift;
    config.sessions_per_tick = sessions_per_tick;
    config.window_ticks = window_ticks;
    config.refit_every = refit_every;
    config.refit_epochs = epochs;
    config.model = spec.config.clone();
    config.quantized = spec.serve_quantized;
    config.seed_checkpoint = seed_ckpt;
    config.serve_addr = if offline { None } else { addr };
    config.probe_rows = probe_rows;

    let mut lp = OnlineLoop::new(config)?;
    lp.connect()?;

    for _ in 0..ticks {
        let report = lp.step()?;
        if let Some(r) = &report.refit {
            println!(
                "refit tick={} gen={} sessions={} examples={} loss={:.4} fit_ms={:.1} reload_us={}",
                r.tick,
                r.generation,
                r.window_sessions,
                r.window_examples,
                r.loss,
                r.fit_ms,
                r.reload_us.map_or_else(|| "-".into(), |us| us.to_string()),
            );
        }
    }

    let stats = lp.stats();
    println!(
        "online done: ticks={} refits={} reloads={} probes_ok={} overloaded={} failed={} \
         reload_us_max={}",
        stats.ticks,
        stats.refits,
        stats.reloads,
        stats.probes_ok,
        stats.probes_overloaded,
        stats.failed,
        stats.reload_us_max,
    );

    if stats.failed > 0 {
        return Err(format!(
            "{} request(s) failed — server availability contract broken",
            stats.failed
        ));
    }
    if stats.reloads < min_reloads {
        return Err(format!(
            "only {} reload(s) succeeded, --min-reloads {min_reloads}",
            stats.reloads
        ));
    }
    Ok(())
}
