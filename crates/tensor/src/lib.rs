#![warn(missing_docs)]

//! Dense 2-D `f32` tensor kernels for the Adv & HSC-MoE reproduction.
//!
//! This crate is the lowest layer of the training stack: a row-major,
//! heap-allocated matrix type ([`Matrix`]) together with the handful of
//! numerical kernels a from-scratch deep-learning framework needs
//! (element-wise arithmetic, blocked mat-mul in all transpose flavours,
//! row/column reductions, softmax, top-k selection) and a fully
//! deterministic random number generator ([`rng::Rng`]) so that every
//! experiment in the paper reproduction is bit-for-bit repeatable.
//!
//! # Design notes
//!
//! * Everything is `f32`: the paper's models are small MLPs where single
//!   precision is standard, and it doubles effective memory bandwidth on
//!   the single-core benchmark host.
//! * Shapes are validated eagerly; mismatches are programming errors and
//!   panic with a message naming the operation and both shapes. Fallible
//!   construction from user data goes through [`Matrix::try_from_vec`].
//! * The mat-mul kernels use the `ikj` loop order so the inner loop is a
//!   contiguous FMA sweep the compiler can auto-vectorise; that is within
//!   a small factor of hand-tuned kernels at the matrix sizes used here
//!   (hidden dims ≤ 512).
//! * Products large enough to amortise region dispatch are row-blocked
//!   across the [`pool`] runtime; each worker owns a disjoint block of
//!   output rows, so results are bit-identical for every thread count
//!   (see `AMOE_THREADS`).

pub mod check;
pub mod matmul;
pub mod matrix;
pub mod ops;
pub mod pool;
pub mod quant;
pub mod reduce;
pub mod rng;
pub mod topk;

pub use matrix::Matrix;
pub use rng::Rng;

/// Absolute-or-relative closeness test used across the workspace's tests.
///
/// Returns `true` when `|a - b| <= atol + rtol * |b|`, the same contract as
/// `numpy.isclose`. NaNs are never close to anything.
#[must_use]
pub fn is_close(a: f32, b: f32, rtol: f32, atol: f32) -> bool {
    if a.is_nan() || b.is_nan() {
        return false;
    }
    (a - b).abs() <= atol + rtol * b.abs()
}

/// Asserts that two matrices have identical shape and element-wise close
/// values; panics with the first offending coordinate otherwise.
///
/// Intended for tests; not used on hot paths.
pub fn assert_close(a: &Matrix, b: &Matrix, rtol: f32, atol: f32) {
    assert_eq!(
        (a.rows(), a.cols()),
        (b.rows(), b.cols()),
        "assert_close: shape mismatch {}x{} vs {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            let (x, y) = (a[(r, c)], b[(r, c)]);
            assert!(
                is_close(x, y, rtol, atol),
                "assert_close: mismatch at ({r},{c}): {x} vs {y}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_close_basic() {
        assert!(is_close(1.0, 1.0, 0.0, 0.0));
        assert!(is_close(1.0, 1.0001, 1e-3, 0.0));
        assert!(!is_close(1.0, 1.1, 1e-3, 0.0));
        assert!(is_close(0.0, 1e-9, 0.0, 1e-8));
        assert!(!is_close(f32::NAN, f32::NAN, 1.0, 1.0));
    }
}
