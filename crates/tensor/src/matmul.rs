//! Matrix multiplication kernels in all transpose flavours.
//!
//! Backpropagation through `C = A·B` needs `∂A = ∂C·Bᵀ` and `∂B = Aᵀ·∂C`;
//! rather than materialising transposes we provide dedicated kernels that
//! read the operands in their natural layout. All kernels accumulate in the
//! `ikj` order so the innermost loop is a contiguous stride-1 sweep.

use crate::Matrix;

/// `C = A (m x k) · B (k x n)`.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
#[must_use]
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dims differ: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let c_row = c.row_mut(i);
        for (p, &aip) in a_row.iter().enumerate().take(k) {
            if aip == 0.0 {
                continue;
            }
            let b_row = b.row(p);
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += aip * bv;
            }
        }
    }
    c
}

/// `C = Aᵀ (k x m)ᵀ · B (k x n)`, i.e. `A` is stored as `k x m` and used
/// transposed. Equivalent to `matmul(&a.transpose(), b)` without the copy.
#[must_use]
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_tn: inner dims differ: {:?}ᵀ x {:?}",
        a.shape(),
        b.shape()
    );
    let (k, m, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    for p in 0..k {
        let a_row = a.row(p);
        let b_row = b.row(p);
        for (i, &aip) in a_row.iter().enumerate().take(m) {
            if aip == 0.0 {
                continue;
            }
            let c_row = c.row_mut(i);
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += aip * bv;
            }
        }
    }
    c
}

/// `C = A (m x k) · Bᵀ (n x k)ᵀ`, i.e. `B` is stored as `n x k` and used
/// transposed. Equivalent to `matmul(a, &b.transpose())` without the copy.
#[must_use]
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_nt: inner dims differ: {:?} x {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let mut c = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let c_row = c.row_mut(i);
        for (j, cv) in c_row.iter_mut().enumerate().take(n) {
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a_row[p] * b_row[p];
            }
            *cv += acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use crate::rng::Rng;

    #[test]
    fn small_known_product() {
        let a = Matrix::from_rows(&[&[1., 2.], &[3., 4.]]);
        let b = Matrix::from_rows(&[&[5., 6.], &[7., 8.]]);
        let c = matmul(&a, &b);
        assert_eq!(c, Matrix::from_rows(&[&[19., 22.], &[43., 50.]]));
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng::seed_from(7);
        let a = rng.normal_matrix(4, 4, 0.0, 1.0);
        let c = matmul(&a, &Matrix::eye(4));
        assert_close(&c, &a, 1e-6, 1e-7);
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let mut rng = Rng::seed_from(11);
        let a = rng.normal_matrix(5, 3, 0.0, 1.0); // used as Aᵀ: 3x5 effective
        let b = rng.normal_matrix(5, 4, 0.0, 1.0);
        assert_close(&matmul_tn(&a, &b), &matmul(&a.transpose(), &b), 1e-5, 1e-6);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let mut rng = Rng::seed_from(13);
        let a = rng.normal_matrix(4, 6, 0.0, 1.0);
        let b = rng.normal_matrix(3, 6, 0.0, 1.0); // used as Bᵀ: 6x3 effective
        assert_close(&matmul_nt(&a, &b), &matmul(&a, &b.transpose()), 1e-5, 1e-6);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn dim_mismatch_panics() {
        let _ = matmul(&Matrix::ones(2, 3), &Matrix::ones(2, 3));
    }

    #[test]
    fn rectangular_shapes() {
        let mut rng = Rng::seed_from(17);
        let a = rng.normal_matrix(1, 7, 0.0, 1.0);
        let b = rng.normal_matrix(7, 1, 0.0, 1.0);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (1, 1));
        let expect: f32 = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| x * y)
            .sum();
        assert!((c[(0, 0)] - expect).abs() < 1e-5);
    }
}
