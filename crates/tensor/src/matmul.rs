//! Matrix multiplication kernels in all transpose flavours.
//!
//! Backpropagation through `C = A·B` needs `∂A = ∂C·Bᵀ` and `∂B = Aᵀ·∂C`;
//! rather than materialising transposes we provide dedicated kernels that
//! read the operands in their natural layout. All kernels accumulate in the
//! `ikj` order so the innermost loop is a contiguous stride-1 sweep.
//!
//! Products above [`PAR_FLOP_THRESHOLD`] multiply-adds are row-blocked
//! across the [`pool`](crate::pool) runtime. Every flavour partitions the
//! *output* rows into disjoint contiguous blocks, and each block is
//! computed with exactly the serial loop order, so the result is
//! bit-identical for every thread count.

use crate::pool;
use crate::Matrix;

/// Minimum `m * k * n` multiply-add count before a product is worth
/// fanning out to the pool. Below this the region dispatch (a condvar
/// wake of the persistent workers, plus the barrier at region end)
/// exceeds the kernel time. The threshold predates the persistent
/// pool's much cheaper dispatch and is deliberately kept: tiny
/// products gain nothing from extra lanes either way, and the serial
/// path is branch-predictable.
pub const PAR_FLOP_THRESHOLD: usize = 1 << 17;

/// True when a product of this shape should use the parallel path.
#[inline]
fn parallel_worthwhile(m: usize, k: usize, n: usize) -> bool {
    m > 1 && m.saturating_mul(k).saturating_mul(n) >= PAR_FLOP_THRESHOLD && pool::threads() > 1
}

/// Serial `ikj` kernel over output rows `[first_row, first_row + block_rows)`
/// of `C = A·B`, writing into the block's own slice.
fn matmul_block(a: &Matrix, b: &Matrix, first_row: usize, block: &mut [f32]) {
    let (k, n) = (a.cols(), b.cols());
    for (local, c_row) in block.chunks_mut(n).enumerate() {
        let a_row = a.row(first_row + local);
        for (p, &aip) in a_row.iter().enumerate().take(k) {
            if aip == 0.0 {
                continue;
            }
            let b_row = b.row(p);
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += aip * bv;
            }
        }
    }
}

/// `C = A (m x k) · B (k x n)`.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
#[must_use]
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dims differ: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    if parallel_worthwhile(m, k, n) {
        pool::par_row_blocks(c.as_mut_slice(), m, n, |first_row, block| {
            matmul_block(a, b, first_row, block);
        });
    } else {
        matmul_block(a, b, 0, c.as_mut_slice());
    }
    c
}

/// Serial kernel over output rows `[first_row, first_row + block_rows)` of
/// `C = Aᵀ·B` where `A` is stored `k x m`. The loop stays `p`-major so each
/// output row accumulates in the same order as the serial kernel.
fn matmul_tn_block(a: &Matrix, b: &Matrix, first_row: usize, block: &mut [f32]) {
    let (k, n) = (a.rows(), b.cols());
    let block_rows = block.len() / n;
    for p in 0..k {
        let a_row = a.row(p);
        let b_row = b.row(p);
        for local in 0..block_rows {
            let aip = a_row[first_row + local];
            if aip == 0.0 {
                continue;
            }
            let c_row = &mut block[local * n..(local + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += aip * bv;
            }
        }
    }
}

/// `C = Aᵀ (k x m)ᵀ · B (k x n)`, i.e. `A` is stored as `k x m` and used
/// transposed. Equivalent to `matmul(&a.transpose(), b)` without the copy.
#[must_use]
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_tn: inner dims differ: {:?}ᵀ x {:?}",
        a.shape(),
        b.shape()
    );
    let (k, m, n) = (a.rows(), a.cols(), b.cols());
    let mut c = Matrix::zeros(m, n);
    if parallel_worthwhile(m, k, n) {
        pool::par_row_blocks(c.as_mut_slice(), m, n, |first_row, block| {
            matmul_tn_block(a, b, first_row, block);
        });
    } else {
        matmul_tn_block(a, b, 0, c.as_mut_slice());
    }
    c
}

/// Serial dot-product kernel over output rows `[first_row, ...)` of
/// `C = A·Bᵀ` where `B` is stored `n x k`.
fn matmul_nt_block(a: &Matrix, b: &Matrix, first_row: usize, block: &mut [f32]) {
    let (k, n) = (a.cols(), b.rows());
    for (local, c_row) in block.chunks_mut(n).enumerate() {
        let a_row = a.row(first_row + local);
        for (j, cv) in c_row.iter_mut().enumerate() {
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a_row[p] * b_row[p];
            }
            *cv += acc;
        }
    }
}

/// `C = A (m x k) · Bᵀ (n x k)ᵀ`, i.e. `B` is stored as `n x k` and used
/// transposed. Equivalent to `matmul(a, &b.transpose())` without the copy.
#[must_use]
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_nt: inner dims differ: {:?} x {:?}ᵀ",
        a.shape(),
        b.shape()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let mut c = Matrix::zeros(m, n);
    if parallel_worthwhile(m, k, n) {
        pool::par_row_blocks(c.as_mut_slice(), m, n, |first_row, block| {
            matmul_nt_block(a, b, first_row, block);
        });
    } else {
        matmul_nt_block(a, b, 0, c.as_mut_slice());
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use crate::rng::Rng;

    #[test]
    fn small_known_product() {
        let a = Matrix::from_rows(&[&[1., 2.], &[3., 4.]]);
        let b = Matrix::from_rows(&[&[5., 6.], &[7., 8.]]);
        let c = matmul(&a, &b);
        assert_eq!(c, Matrix::from_rows(&[&[19., 22.], &[43., 50.]]));
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng::seed_from(7);
        let a = rng.normal_matrix(4, 4, 0.0, 1.0);
        let c = matmul(&a, &Matrix::eye(4));
        assert_close(&c, &a, 1e-6, 1e-7);
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let mut rng = Rng::seed_from(11);
        let a = rng.normal_matrix(5, 3, 0.0, 1.0); // used as Aᵀ: 3x5 effective
        let b = rng.normal_matrix(5, 4, 0.0, 1.0);
        assert_close(&matmul_tn(&a, &b), &matmul(&a.transpose(), &b), 1e-5, 1e-6);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let mut rng = Rng::seed_from(13);
        let a = rng.normal_matrix(4, 6, 0.0, 1.0);
        let b = rng.normal_matrix(3, 6, 0.0, 1.0); // used as Bᵀ: 6x3 effective
        assert_close(&matmul_nt(&a, &b), &matmul(&a, &b.transpose()), 1e-5, 1e-6);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn dim_mismatch_panics() {
        let _ = matmul(&Matrix::ones(2, 3), &Matrix::ones(2, 3));
    }

    #[test]
    fn rectangular_shapes() {
        let mut rng = Rng::seed_from(17);
        let a = rng.normal_matrix(1, 7, 0.0, 1.0);
        let b = rng.normal_matrix(7, 1, 0.0, 1.0);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (1, 1));
        let expect: f32 = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| x * y)
            .sum();
        assert!((c[(0, 0)] - expect).abs() < 1e-5);
    }

    /// Shapes chosen to clear [`PAR_FLOP_THRESHOLD`] so the parallel
    /// path actually runs; results must be bit-identical to serial.
    #[test]
    fn parallel_matches_serial_bitwise() {
        let mut rng = Rng::seed_from(19);
        let (m, k, n) = (96, 64, 64); // 96*64*64 = 393216 > threshold
        let a = rng.normal_matrix(m, k, 0.0, 1.0);
        let b = rng.normal_matrix(k, n, 0.0, 1.0);
        let g = rng.normal_matrix(m, n, 0.0, 1.0);
        let bt = rng.normal_matrix(n, k, 0.0, 1.0);

        crate::pool::set_threads(1);
        let (c1, t1, n1) = (matmul(&a, &b), matmul_tn(&a, &g), matmul_nt(&g, &bt));
        for threads in [2usize, 3, 8] {
            crate::pool::set_threads(threads);
            assert_eq!(matmul(&a, &b), c1, "matmul at {threads} threads");
            assert_eq!(matmul_tn(&a, &g), t1, "matmul_tn at {threads} threads");
            assert_eq!(matmul_nt(&g, &bt), n1, "matmul_nt at {threads} threads");
        }
        crate::pool::clear_threads_override();
    }
}
