//! Matrix multiplication kernels in all transpose flavours.
//!
//! Backpropagation through `C = A·B` needs `∂A = ∂C·Bᵀ` and `∂B = Aᵀ·∂C`;
//! rather than materialising transposes we provide dedicated kernels that
//! read the operands in their natural layout.
//!
//! # Kernel architecture
//!
//! Products large enough to amortise the copies run a cache-blocked,
//! transpose-packed micro-kernel:
//!
//! * `B` (in its effective `k x n` orientation) is packed **once per
//!   product** into column strips of [`NR`] values, zero-padded on the
//!   right edge, so the inner loop reads one contiguous `NR`-wide line
//!   per `p` step regardless of the original layout (this is where the
//!   `nt` flavour's transpose disappears).
//! * `A` (effective `m x k`) is packed per row block into strips of
//!   [`MR`] rows laid out `p`-major, so the micro-kernel broadcasts
//!   `MR` scalars from one contiguous line.
//! * The `p` dimension is processed in [`KC`]-sized blocks, ascending,
//!   so one packed `A` strip plus one packed `B` strip stay L1/L2
//!   resident while an `MR x NR` accumulator tile lives in registers.
//! * The micro-kernel itself ([`microkernel`]) iterates `chunks_exact`
//!   over both panels and a fixed `[[f32; NR]; MR]` accumulator tile:
//!   no bounds checks, fixed trip widths, autovectorisable.
//!
//! # Exact-result contract
//!
//! Every kernel — packed, naive fallback, parallel or serial — computes
//! each output element as the **same floating-point chain**: starting
//! from `0.0`, add `a[i][p] * b[p][j]` for `p` ascending, one rounding
//! for the multiply and one for the add. Register tiles are loaded from
//! `C` before each `KC` block and stored back after it, so splitting
//! `p` into blocks does not re-associate the chain; padded tile lanes
//! are computed but never stored. The naive reference in [`reference`]
//! is the canonical spelling of that chain, and `tests/kernel_oracle.rs`
//! asserts exact equality between it and every fast path over
//! randomized and adversarial shapes.
//!
//! Products above [`PAR_FLOP_THRESHOLD`] multiply-adds are additionally
//! row-blocked across the [`pool`](crate::pool) runtime. Every flavour
//! partitions the *output* rows into disjoint contiguous blocks, and
//! the per-element chain is independent of the block partitioning, so
//! the result is bit-identical for every thread count.

use crate::pool;
use crate::Matrix;

/// Minimum `m * k * n` multiply-add count before a product is worth
/// fanning out to the pool. Below this the region dispatch (a condvar
/// wake of the persistent workers, plus the barrier at region end)
/// exceeds the kernel time. The threshold predates the persistent
/// pool's much cheaper dispatch and is deliberately kept: tiny
/// products gain nothing from extra lanes either way, and the serial
/// path is branch-predictable.
pub const PAR_FLOP_THRESHOLD: usize = 1 << 17;

/// Minimum `m * k * n` multiply-add count before the packed blocked
/// kernel pays for its copies. Below this the naive reference loop is
/// both faster (no packing traffic) and identical in result.
pub const PACK_FLOP_THRESHOLD: usize = 1 << 13;

/// Micro-tile height: output rows accumulated per register tile.
pub const MR: usize = 4;

/// Micro-tile width: output columns accumulated per register tile.
/// `MR * NR` f32 accumulators fit the 16 SSE2 registers of the x86-64
/// baseline with room for the broadcast and the `B` line.
pub const NR: usize = 8;

/// `p`-dimension block size: one packed `A` strip (`KC * MR` floats)
/// and one packed `B` strip (`KC * NR` floats) together stay well
/// under L1 on any host this runs on.
pub const KC: usize = 256;

/// Naive three-loop oracle kernels.
///
/// These are the seed (pre-blocking) kernels, kept as the ground truth
/// the fast paths are tested against: the `ikj` loop order makes the
/// innermost loop a contiguous stride-1 sweep, and each output element
/// accumulates its products in ascending `p` order — the canonical
/// floating-point chain every optimised kernel must reproduce
/// **exactly** (see the module docs). They are also the small-product
/// fast path: below [`PACK_FLOP_THRESHOLD`](super::PACK_FLOP_THRESHOLD)
/// packing costs more than it saves.
pub mod reference {
    use crate::Matrix;

    /// Serial `ikj` oracle for `C = A·B`.
    ///
    /// # Panics
    /// Panics if `a.cols() != b.rows()`.
    #[must_use]
    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        super::check_nn(a, b);
        let mut c = Matrix::zeros(a.rows(), b.cols());
        matmul_block(a, b, 0, c.as_mut_slice());
        c
    }

    /// Serial oracle for `C = Aᵀ·B` with `A` stored `k x m`.
    ///
    /// # Panics
    /// Panics if `a.rows() != b.rows()`.
    #[must_use]
    pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
        super::check_tn(a, b);
        let mut c = Matrix::zeros(a.cols(), b.cols());
        matmul_tn_block(a, b, 0, c.as_mut_slice());
        c
    }

    /// Serial oracle for `C = A·Bᵀ` with `B` stored `n x k`.
    ///
    /// # Panics
    /// Panics if `a.cols() != b.cols()`.
    #[must_use]
    pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
        super::check_nt(a, b);
        let mut c = Matrix::zeros(a.rows(), b.rows());
        matmul_nt_block(a, b, 0, c.as_mut_slice());
        c
    }

    /// `ikj` kernel over output rows `[first_row, first_row + rows)` of
    /// `C = A·B`, writing into the block's own slice.
    pub(super) fn matmul_block(a: &Matrix, b: &Matrix, first_row: usize, block: &mut [f32]) {
        let (k, n) = (a.cols(), b.cols());
        for (local, c_row) in block.chunks_mut(n).enumerate() {
            let a_row = a.row(first_row + local);
            for (p, &aip) in a_row.iter().enumerate().take(k) {
                let b_row = b.row(p);
                for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aip * bv;
                }
            }
        }
    }

    /// `p`-major kernel over output rows of `C = Aᵀ·B` (`A` stored
    /// `k x m`). Each output row still accumulates in ascending `p`.
    pub(super) fn matmul_tn_block(a: &Matrix, b: &Matrix, first_row: usize, block: &mut [f32]) {
        let (k, n) = (a.rows(), b.cols());
        let block_rows = block.len() / n;
        for p in 0..k {
            let a_row = a.row(p);
            let b_row = b.row(p);
            for local in 0..block_rows {
                let aip = a_row[first_row + local];
                let c_row = &mut block[local * n..(local + 1) * n];
                for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aip * bv;
                }
            }
        }
    }

    /// Dot-product kernel over output rows of `C = A·Bᵀ` (`B` stored
    /// `n x k`). The running dot accumulates in ascending `p`, and
    /// adding it onto the zeroed output is exact, so the chain matches
    /// the other flavours.
    pub(super) fn matmul_nt_block(a: &Matrix, b: &Matrix, first_row: usize, block: &mut [f32]) {
        let (k, n) = (a.cols(), b.rows());
        for (local, c_row) in block.chunks_mut(n).enumerate() {
            let a_row = a.row(first_row + local);
            for (j, cv) in c_row.iter_mut().enumerate() {
                let b_row = b.row(j);
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a_row[p] * b_row[p];
                }
                *cv += acc;
            }
        }
    }
}

/// True when a product of this shape should use the parallel path.
#[inline]
pub(crate) fn parallel_worthwhile(m: usize, k: usize, n: usize) -> bool {
    m > 1 && m.saturating_mul(k).saturating_mul(n) >= PAR_FLOP_THRESHOLD && pool::threads() > 1
}

/// True when a product of this shape should pack and run the blocked
/// micro-kernel. Very flat products (`m < MR`) never fill a tile and
/// would pay the full `B` pack for one or two output rows.
#[inline]
pub(crate) fn pack_worthwhile(m: usize, k: usize, n: usize) -> bool {
    m >= MR && m.saturating_mul(k).saturating_mul(n) >= PACK_FLOP_THRESHOLD
}

fn check_nn(a: &Matrix, b: &Matrix) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dims differ: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
}

fn check_tn(a: &Matrix, b: &Matrix) {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_tn: inner dims differ: {:?}ᵀ x {:?}",
        a.shape(),
        b.shape()
    );
}

fn check_nt(a: &Matrix, b: &Matrix) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_nt: inner dims differ: {:?} x {:?}ᵀ",
        a.shape(),
        b.shape()
    );
}

/// How the `A` operand's effective `m x k` view maps onto its storage.
#[derive(Clone, Copy)]
pub(crate) enum AOrient<'a> {
    /// Stored `m x k` row-major: `a_eff[i][p] = a[i][p]`.
    RowMajor(&'a Matrix),
    /// Stored `k x m` (used transposed): `a_eff[i][p] = a[p][i]`.
    ColMajor(&'a Matrix),
}

/// `B` packed into `KC`-block, `NR`-strip panels (see module docs).
///
/// Layout: blocks of `kc` consecutive `p` values in ascending order;
/// within a block, `n_strips` strips of `kc * NR` floats; within a
/// strip, `NR` contiguous column values per `p` step, zero-padded past
/// column `n`. Block `p0` starts at `p0 * n_strips * NR` because the
/// heights of all preceding blocks sum to `p0`.
pub(crate) struct PackedB {
    pub(crate) data: Vec<f32>,
    pub(crate) n_strips: usize,
}

/// Packs `B` stored `k x n` row-major (the `nn` / `tn` flavours).
fn pack_b_nn(b: &Matrix) -> PackedB {
    let (k, n) = (b.rows(), b.cols());
    let n_strips = n.div_ceil(NR);
    let mut data = vec![0.0f32; k * n_strips * NR];
    let mut p0 = 0;
    while p0 < k {
        let kc = KC.min(k - p0);
        let base = p0 * n_strips * NR;
        for (s, strip) in data[base..base + kc * n_strips * NR]
            .chunks_mut(kc * NR)
            .enumerate()
        {
            let j0 = s * NR;
            let w = NR.min(n - j0);
            for (p, line) in strip.chunks_mut(NR).enumerate() {
                line[..w].copy_from_slice(&b.row(p0 + p)[j0..j0 + w]);
            }
        }
        p0 += kc;
    }
    PackedB { data, n_strips }
}

/// Packs `B` stored `n x k` row-major and used transposed (the `nt`
/// flavour): the transpose happens during the pack, so the micro-kernel
/// sees the same strip layout as the `nn` flavour.
fn pack_b_nt(b: &Matrix) -> PackedB {
    let (n, k) = (b.rows(), b.cols());
    let n_strips = n.div_ceil(NR);
    let mut data = vec![0.0f32; k * n_strips * NR];
    let mut p0 = 0;
    while p0 < k {
        let kc = KC.min(k - p0);
        let base = p0 * n_strips * NR;
        for (s, strip) in data[base..base + kc * n_strips * NR]
            .chunks_mut(kc * NR)
            .enumerate()
        {
            let j0 = s * NR;
            let w = NR.min(n - j0);
            for jj in 0..w {
                let b_row = b.row(j0 + jj);
                for (p, line) in strip.chunks_mut(NR).enumerate() {
                    line[jj] = b_row[p0 + p];
                }
            }
        }
        p0 += kc;
    }
    PackedB { data, n_strips }
}

/// Packs rows `[first_row, first_row + rows)` of the effective `A` for
/// one `KC` block into `MR`-row, `p`-major strips (`buf` is reused
/// across blocks). Rows past the edge are zero-padded; their tile
/// lanes are computed but never stored.
fn pack_a(a: AOrient<'_>, first_row: usize, rows: usize, p0: usize, kc: usize, buf: &mut Vec<f32>) {
    let strips = rows.div_ceil(MR);
    buf.clear();
    buf.resize(strips * kc * MR, 0.0);
    match a {
        AOrient::RowMajor(a) => {
            for (s, strip) in buf.chunks_mut(kc * MR).enumerate() {
                let i0 = first_row + s * MR;
                let h = MR.min(first_row + rows - i0);
                for r in 0..h {
                    for (p, &v) in a.row(i0 + r)[p0..p0 + kc].iter().enumerate() {
                        strip[p * MR + r] = v;
                    }
                }
            }
        }
        AOrient::ColMajor(a) => {
            for p in 0..kc {
                let a_row = a.row(p0 + p);
                for (s, strip) in buf.chunks_mut(kc * MR).enumerate() {
                    let i0 = first_row + s * MR;
                    let h = MR.min(first_row + rows - i0);
                    strip[p * MR..p * MR + h].copy_from_slice(&a_row[i0..i0 + h]);
                }
            }
        }
    }
}

/// The register-tile inner loop: `acc[r][c] += apanel[p][r] *
/// bstrip[p][c]` for `p` ascending over one `KC` block. `chunks_exact`
/// over both panels eliminates bounds checks; the fixed `MR x NR`
/// accumulator tile unrolls into vector registers.
#[inline]
fn microkernel(apanel: &[f32], bstrip: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (ap, bp) in apanel.chunks_exact(MR).zip(bstrip.chunks_exact(NR)) {
        for (r, &ar) in ap.iter().enumerate() {
            for (av, &bv) in acc[r].iter_mut().zip(bp) {
                *av += ar * bv;
            }
        }
    }
}

/// Blocked kernel over output rows `[first_row, first_row + rows)`:
/// for each `KC` block (ascending `p`), pack the block's `A` strips,
/// then sweep `MR x NR` tiles. Tiles are loaded from `C` and stored
/// back, so the per-element chain is exactly the reference chain.
pub(crate) fn gemm_block(
    a: AOrient<'_>,
    bp: &PackedB,
    k: usize,
    n: usize,
    first_row: usize,
    block: &mut [f32],
) {
    let rows = block.len() / n;
    let mut abuf: Vec<f32> = Vec::new();
    let mut p0 = 0;
    while p0 < k {
        let kc = KC.min(k - p0);
        pack_a(a, first_row, rows, p0, kc, &mut abuf);
        let bbase = p0 * bp.n_strips * NR;
        for (sa, apanel) in abuf.chunks_exact(kc * MR).enumerate() {
            let r0 = sa * MR;
            let h = MR.min(rows - r0);
            for sb in 0..bp.n_strips {
                let j0 = sb * NR;
                let w = NR.min(n - j0);
                let bstrip = &bp.data[bbase + sb * kc * NR..bbase + (sb + 1) * kc * NR];
                let mut acc = [[0.0f32; NR]; MR];
                for r in 0..h {
                    let c_line = &block[(r0 + r) * n + j0..(r0 + r) * n + j0 + w];
                    acc[r][..w].copy_from_slice(c_line);
                }
                microkernel(apanel, bstrip, &mut acc);
                for r in 0..h {
                    block[(r0 + r) * n + j0..(r0 + r) * n + j0 + w].copy_from_slice(&acc[r][..w]);
                }
            }
        }
        p0 += kc;
    }
}

/// Shared driver: picks packed/naive and serial/parallel per shape.
/// All four paths produce identical bits (see module docs), so the
/// dispatch is invisible in the numbers.
fn run_gemm(
    a: AOrient<'_>,
    packed: impl Fn() -> PackedB,
    naive: impl Fn(usize, &mut [f32]) + Sync,
    m: usize,
    k: usize,
    n: usize,
) -> Matrix {
    let mut c = Matrix::zeros(m, n);
    if pack_worthwhile(m, k, n) {
        let bp = packed();
        if parallel_worthwhile(m, k, n) {
            pool::par_row_blocks(c.as_mut_slice(), m, n, |first_row, block| {
                gemm_block(a, &bp, k, n, first_row, block);
            });
        } else {
            gemm_block(a, &bp, k, n, 0, c.as_mut_slice());
        }
    } else if parallel_worthwhile(m, k, n) {
        pool::par_row_blocks(c.as_mut_slice(), m, n, &naive);
    } else {
        naive(0, c.as_mut_slice());
    }
    c
}

/// `C = A (m x k) · B (k x n)`.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
#[must_use]
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    check_nn(a, b);
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    run_gemm(
        AOrient::RowMajor(a),
        || pack_b_nn(b),
        |first_row, block| reference::matmul_block(a, b, first_row, block),
        m,
        k,
        n,
    )
}

/// `C = Aᵀ (k x m)ᵀ · B (k x n)`, i.e. `A` is stored as `k x m` and used
/// transposed. Equivalent to `matmul(&a.transpose(), b)` without the copy.
#[must_use]
pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
    check_tn(a, b);
    let (k, m, n) = (a.rows(), a.cols(), b.cols());
    run_gemm(
        AOrient::ColMajor(a),
        || pack_b_nn(b),
        |first_row, block| reference::matmul_tn_block(a, b, first_row, block),
        m,
        k,
        n,
    )
}

/// `C = A (m x k) · Bᵀ (n x k)ᵀ`, i.e. `B` is stored as `n x k` and used
/// transposed. Equivalent to `matmul(a, &b.transpose())` without the copy.
#[must_use]
pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
    check_nt(a, b);
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    run_gemm(
        AOrient::RowMajor(a),
        || pack_b_nt(b),
        |first_row, block| reference::matmul_nt_block(a, b, first_row, block),
        m,
        k,
        n,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;
    use crate::check::assert_close_rel;
    use crate::rng::Rng;

    #[test]
    fn small_known_product() {
        let a = Matrix::from_rows(&[&[1., 2.], &[3., 4.]]);
        let b = Matrix::from_rows(&[&[5., 6.], &[7., 8.]]);
        let c = matmul(&a, &b);
        assert_eq!(c, Matrix::from_rows(&[&[19., 22.], &[43., 50.]]));
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng::seed_from(7);
        let a = rng.normal_matrix(4, 4, 0.0, 1.0);
        let c = matmul(&a, &Matrix::eye(4));
        assert_close(&c, &a, 1e-6, 1e-7);
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let mut rng = Rng::seed_from(11);
        let a = rng.normal_matrix(5, 3, 0.0, 1.0); // used as Aᵀ: 3x5 effective
        let b = rng.normal_matrix(5, 4, 0.0, 1.0);
        assert_close(&matmul_tn(&a, &b), &matmul(&a.transpose(), &b), 1e-5, 1e-6);
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let mut rng = Rng::seed_from(13);
        let a = rng.normal_matrix(4, 6, 0.0, 1.0);
        let b = rng.normal_matrix(3, 6, 0.0, 1.0); // used as Bᵀ: 6x3 effective
        assert_close(&matmul_nt(&a, &b), &matmul(&a, &b.transpose()), 1e-5, 1e-6);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn dim_mismatch_panics() {
        let _ = matmul(&Matrix::ones(2, 3), &Matrix::ones(2, 3));
    }

    #[test]
    fn rectangular_shapes() {
        let mut rng = Rng::seed_from(17);
        let a = rng.normal_matrix(1, 7, 0.0, 1.0);
        let b = rng.normal_matrix(7, 1, 0.0, 1.0);
        let c = matmul(&a, &b);
        assert_eq!(c.shape(), (1, 1));
        let expect: f32 = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| x * y)
            .sum();
        assert_close_rel(c[(0, 0)], expect, 1e-5, 1e-6, "1x1 product");
    }

    /// Shapes straddling the packed-kernel edges: rows not a multiple
    /// of `MR`, cols not a multiple of `NR`, `k` straddling `KC`.
    #[test]
    fn blocked_kernels_match_reference_on_edge_shapes() {
        let mut rng = Rng::seed_from(23);
        for &(m, k, n) in &[
            (MR, KC, NR),
            (MR + 1, KC + 1, NR + 1),
            (MR * 3 - 1, KC * 2 - 1, NR * 2 + 3),
            (17, 19, 23),
        ] {
            let a = rng.normal_matrix(m, k, 0.0, 1.0);
            let b = rng.normal_matrix(k, n, 0.0, 1.0);
            assert_eq!(
                matmul(&a, &b),
                reference::matmul(&a, &b),
                "matmul {m}x{k}x{n}"
            );
            let at = rng.normal_matrix(k, m, 0.0, 1.0);
            assert_eq!(
                matmul_tn(&at, &b),
                reference::matmul_tn(&at, &b),
                "matmul_tn {m}x{k}x{n}"
            );
            let bt = rng.normal_matrix(n, k, 0.0, 1.0);
            assert_eq!(
                matmul_nt(&a, &bt),
                reference::matmul_nt(&a, &bt),
                "matmul_nt {m}x{k}x{n}"
            );
        }
    }

    /// Shapes chosen to clear [`PAR_FLOP_THRESHOLD`] so the parallel
    /// path actually runs; results must be bit-identical to serial.
    #[test]
    fn parallel_matches_serial_bitwise() {
        let mut rng = Rng::seed_from(19);
        let (m, k, n) = (96, 64, 64); // 96*64*64 = 393216 > threshold
        let a = rng.normal_matrix(m, k, 0.0, 1.0);
        let b = rng.normal_matrix(k, n, 0.0, 1.0);
        let g = rng.normal_matrix(m, n, 0.0, 1.0);
        let bt = rng.normal_matrix(n, k, 0.0, 1.0);

        crate::pool::set_threads(1);
        let (c1, t1, n1) = (matmul(&a, &b), matmul_tn(&a, &g), matmul_nt(&g, &bt));
        assert_eq!(c1, reference::matmul(&a, &b), "blocked vs oracle");
        assert_eq!(t1, reference::matmul_tn(&a, &g), "blocked tn vs oracle");
        assert_eq!(n1, reference::matmul_nt(&g, &bt), "blocked nt vs oracle");
        for threads in [2usize, 3, 8] {
            crate::pool::set_threads(threads);
            assert_eq!(matmul(&a, &b), c1, "matmul at {threads} threads");
            assert_eq!(matmul_tn(&a, &g), t1, "matmul_tn at {threads} threads");
            assert_eq!(matmul_nt(&g, &bt), n1, "matmul_nt at {threads} threads");
        }
        crate::pool::clear_threads_override();
    }
}
