//! Int8 per-row-scale weight quantization for the serving path.
//!
//! Serving-time expert forwards are weight-stationary: the same tower
//! weights multiply every request batch, so shrinking the weights 4x
//! (f32 → i8) cuts the memory traffic that dominates the single-core
//! GEMM. Quantization is **symmetric per row** of the stored matrix:
//! row `j` keeps one f32 scale `s_j = max|w_j| / 127` and i8 codes
//! `q = round(w / s_j)`, so dequantization is `w ≈ s_j * q` and the
//! per-element round-trip error is bounded by `s_j / 2`.
//!
//! The kernel ([`matmul_nt_q`]) dequantizes on the fly at the **pack**
//! stage: codes are widened to `s_j * f32::from(q)` while `B` is packed
//! into the cache-blocked strips of [`crate::matmul`], so each code is
//! converted once per product (amortised over every `A` row) and the
//! inner loop is the same register-tiled f32 micro-kernel as the
//! full-precision path. Consequently `matmul_nt_q(a, q)` is
//! **bit-identical** to `matmul_nt(a, &q.dequantize())` — a pure
//! function of its inputs, deterministic across `AMOE_THREADS` — and
//! the only approximation in the whole path is the quantization
//! round-trip itself.
//!
//! For `C[i][j]` the absolute error versus the f32 product is bounded
//! by `0.5 * s_j * ‖a_i‖₁` (each weight is off by at most `s_j/2`,
//! scaled by the matching activation), plus ordinary f32 accumulation
//! noise. Tests in `tests/kernel_oracle.rs` assert this bound case by
//! case.
//!
//! Scope: **serving only**. Training, gradients, and the f32 serving
//! oracle never touch this module; `amoe_core::serving` wires it in
//! behind an opt-in flag.

use crate::matmul::{self, AOrient, PackedB, KC, NR};
use crate::pool;
use crate::Matrix;

/// An i8 matrix with one f32 scale per stored row.
///
/// Rows are quantized independently so a single outlier row cannot
/// inflate everyone's step size — expert tower weight rows (one per
/// output unit after transposition) have per-row dynamic ranges that
/// differ by orders of magnitude after training.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantMatrix {
    rows: usize,
    cols: usize,
    q: Vec<i8>,
    scales: Vec<f32>,
}

impl QuantMatrix {
    /// Quantizes `m` row by row: `scales[r] = max|m[r]| / 127` (1.0 for
    /// an all-zero row, where any scale reproduces it exactly) and
    /// `q = round(v / scale)` clamped to `[-127, 127]`.
    #[must_use]
    pub fn quantize_rows(m: &Matrix) -> QuantMatrix {
        let (rows, cols) = (m.rows(), m.cols());
        let mut q = Vec::with_capacity(rows * cols);
        let mut scales = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = m.row(r);
            let max_abs = row.iter().fold(0.0f32, |acc, v| acc.max(v.abs()));
            let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
            scales.push(scale);
            for &v in row {
                let code = (v / scale).round().clamp(-127.0, 127.0);
                #[allow(clippy::cast_possible_truncation)]
                q.push(code as i8);
            }
        }
        QuantMatrix {
            rows,
            cols,
            q,
            scales,
        }
    }

    /// Quantizes a weight matrix stored `in x out` (the [`amoe_nn`]
    /// `Linear` layout) after transposing it to `out x in`, so each
    /// *output unit* gets its own scale and [`matmul_nt_q`] can walk
    /// its codes contiguously.
    #[must_use]
    pub fn from_transposed(w: &Matrix) -> QuantMatrix {
        QuantMatrix::quantize_rows(&w.transpose())
    }

    /// Reconstructs the f32 matrix `scales[r] * q[r]` (same shape as
    /// the quantized input).
    #[must_use]
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let scale = self.scales[r];
            for (o, &code) in out.row_mut(r).iter_mut().zip(self.row(r)) {
                *o = scale * f32::from(code);
            }
        }
        out
    }

    /// Number of stored rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of stored columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The i8 codes of row `r`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[i8] {
        &self.q[r * self.cols..(r + 1) * self.cols]
    }

    /// The per-row scales, one per stored row.
    #[must_use]
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Heap bytes held by codes plus scales — the number the serving
    /// benches report against `rows * cols * 4` for f32.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.q.len() + self.scales.len() * 4
    }
}

/// Packs a quantized `B` (stored `n x k`, used transposed) into the
/// blocked-GEMM strip layout, widening `s_j * f32::from(code)` during
/// the copy. Mirrors `matmul::pack_b_nt`; each code is converted
/// exactly once per product. The widened value is the same f32 as
/// [`QuantMatrix::dequantize`] produces, so downstream arithmetic is
/// bit-identical to running the f32 kernel on the dequantized matrix.
fn pack_b_nt_q(b: &QuantMatrix) -> PackedB {
    let (n, k) = (b.rows(), b.cols());
    let n_strips = n.div_ceil(NR);
    let mut data = vec![0.0f32; k * n_strips * NR];
    let mut p0 = 0;
    while p0 < k {
        let kc = KC.min(k - p0);
        let base = p0 * n_strips * NR;
        for (s, strip) in data[base..base + kc * n_strips * NR]
            .chunks_mut(kc * NR)
            .enumerate()
        {
            let j0 = s * NR;
            let w = NR.min(n - j0);
            for jj in 0..w {
                let scale = b.scales[j0 + jj];
                let b_row = b.row(j0 + jj);
                for (p, line) in strip.chunks_mut(NR).enumerate() {
                    line[jj] = scale * f32::from(b_row[p0 + p]);
                }
            }
        }
        p0 += kc;
    }
    PackedB { data, n_strips }
}

/// Fallback kernel for products too small to pack: the reference `nt`
/// chain (ascending `p`, single accumulator) over dequantized values,
/// so it matches the packed path bit for bit.
fn naive_q_block(a: &Matrix, b: &QuantMatrix, first_row: usize, block: &mut [f32]) {
    let (k, n) = (a.cols(), b.rows());
    for (local, c_row) in block.chunks_mut(n).enumerate() {
        let a_row = a.row(first_row + local);
        for (j, cv) in c_row.iter_mut().enumerate() {
            let scale = b.scales[j];
            let b_row = b.row(j);
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a_row[p] * (scale * f32::from(b_row[p]));
            }
            *cv += acc;
        }
    }
}

/// `C = A (m x k) · Bᵀ` where `B` is quantized and stored `n x k`
/// (matching [`crate::matmul::matmul_nt`]'s layout).
///
/// Bit-identical to `matmul_nt(a, &b.dequantize())` on every dispatch
/// path (see module docs), and row-blocked across the [`pool`] runtime
/// with the same disjoint-output-rows split as the f32 kernels, so
/// results are identical for every `AMOE_THREADS`.
///
/// # Panics
/// Panics if `a.cols() != b.cols()`.
#[must_use]
pub fn matmul_nt_q(a: &Matrix, b: &QuantMatrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_nt_q: inner dims differ: {:?} x ({}, {})ᵀ",
        a.shape(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let mut c = Matrix::zeros(m, n);
    if matmul::pack_worthwhile(m, k, n) {
        let bp = pack_b_nt_q(b);
        if matmul::parallel_worthwhile(m, k, n) {
            pool::par_row_blocks(c.as_mut_slice(), m, n, |first_row, block| {
                matmul::gemm_block(AOrient::RowMajor(a), &bp, k, n, first_row, block);
            });
        } else {
            matmul::gemm_block(AOrient::RowMajor(a), &bp, k, n, 0, c.as_mut_slice());
        }
    } else if matmul::parallel_worthwhile(m, k, n) {
        pool::par_row_blocks(c.as_mut_slice(), m, n, |first_row, block| {
            naive_q_block(a, b, first_row, block);
        });
    } else {
        naive_q_block(a, b, 0, c.as_mut_slice());
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn roundtrip_error_bounded_by_half_scale() {
        let mut rng = Rng::seed_from(31);
        let m = rng.normal_matrix(9, 33, 0.0, 2.0);
        let qm = QuantMatrix::quantize_rows(&m);
        let back = qm.dequantize();
        for r in 0..m.rows() {
            let bound = qm.scales()[r] * 0.5 + 1e-6;
            for (a, b) in m.row(r).iter().zip(back.row(r)) {
                assert!(
                    (a - b).abs() <= bound,
                    "row {r}: {a} vs {b} exceeds half-scale bound {bound}"
                );
            }
        }
    }

    #[test]
    fn zero_row_roundtrips_exactly() {
        let m = Matrix::zeros(2, 5);
        let qm = QuantMatrix::quantize_rows(&m);
        assert_eq!(qm.scales(), &[1.0, 1.0]);
        assert_eq!(qm.dequantize(), m);
    }

    #[test]
    fn extrema_hit_full_code_range() {
        let m = Matrix::from_rows(&[&[-1.0, 0.5, 1.0]]);
        let qm = QuantMatrix::quantize_rows(&m);
        assert_eq!(qm.row(0), &[-127, 64, 127]);
    }

    #[test]
    fn from_transposed_matches_manual_transpose() {
        let mut rng = Rng::seed_from(37);
        let w = rng.normal_matrix(6, 4, 0.0, 1.0);
        assert_eq!(
            QuantMatrix::from_transposed(&w),
            QuantMatrix::quantize_rows(&w.transpose())
        );
    }

    #[test]
    fn bytes_reports_compressed_footprint() {
        let m = Matrix::ones(8, 16);
        let qm = QuantMatrix::quantize_rows(&m);
        assert_eq!(qm.bytes(), 8 * 16 + 8 * 4);
    }

    #[test]
    fn quant_matmul_bit_identical_to_dequantized_f32_product() {
        let mut rng = Rng::seed_from(41);
        // Small (naive fallback) and packed shapes.
        for &(m, k, n) in &[(5usize, 19usize, 7usize), (40, 300, 24)] {
            let a = rng.normal_matrix(m, k, 0.0, 1.0);
            let w = rng.normal_matrix(n, k, 0.0, 1.0);
            let qm = QuantMatrix::quantize_rows(&w);
            assert_eq!(
                matmul_nt_q(&a, &qm),
                crate::matmul::reference::matmul_nt(&a, &qm.dequantize()),
                "quant kernel diverged from dequantized oracle at {m}x{k}x{n}"
            );
        }
    }
}
