//! Deterministic pseudo-random number generation.
//!
//! Every experiment in the reproduction must be bit-for-bit repeatable
//! from a single `u64` seed, independent of external crate version churn,
//! so the workspace carries its own generator: a Xoshiro256++ core seeded
//! through SplitMix64 (the initialisation recommended by the Xoshiro
//! authors). Both algorithms are public domain reference algorithms.

use crate::Matrix;

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
#[inline]
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A Xoshiro256++ generator.
///
/// Period 2^256 − 1; passes BigCrush. Not cryptographically secure (and
/// does not need to be: it drives synthetic data and weight init).
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second Box–Muller variate.
    gauss_spare: Option<f64>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            s,
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator; children with distinct
    /// `stream` values produce decorrelated sequences. Used so that e.g.
    /// weight init and data generation never share a stream.
    #[must_use]
    pub fn fork(&mut self, stream: u64) -> Self {
        let base = self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407);
        Rng::seed_from(base)
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[lo, hi)`.
    #[inline]
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.uniform() as f32
    }

    /// Uniform integer in `[0, n)` via Lemire's rejection method
    /// (unbiased).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng::below: n must be positive");
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let l = m as u64;
            if l >= n {
                return (m >> 64) as usize;
            }
            // l < n: possibly biased region, re-check threshold.
            let t = n.wrapping_neg() % n;
            if l >= t {
                return (m >> 64) as usize;
            }
        }
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal variate via Box–Muller (cached pair).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Avoid ln(0).
        let u1 = loop {
            let u = self.uniform();
            if u > 1e-300 {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal variate with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal() as f32
    }

    /// Matrix of i.i.d. normal variates.
    #[must_use]
    pub fn normal_matrix(&mut self, rows: usize, cols: usize, mean: f32, std: f32) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        m.as_mut_slice()
            .iter_mut()
            .for_each(|v| *v = self.normal_with(mean, std));
        m
    }

    /// Matrix of i.i.d. uniform variates in `[lo, hi)`.
    #[must_use]
    pub fn uniform_matrix(&mut self, rows: usize, cols: usize, lo: f32, hi: f32) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        m.as_mut_slice()
            .iter_mut()
            .for_each(|v| *v = self.uniform_in(lo, hi));
        m
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (partial Fisher–Yates).
    ///
    /// # Panics
    /// Panics if `k > n`.
    #[must_use]
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "Rng::sample_distinct: k={k} > n={n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Samples an index according to unnormalised non-negative weights.
    ///
    /// # Panics
    /// Panics if weights are empty or sum to zero/NaN.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "Rng::weighted_index: bad weight sum {total}"
        );
        let mut target = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1 // fp rounding fallback
    }

    /// Samples from a Zipf distribution over ranks `1..=n` with exponent
    /// `s` (inverse-CDF over precomputed weights is the caller's job for
    /// hot loops; this is the simple direct method).
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0);
        // Direct inverse-CDF on the harmonic partial sums.
        let h: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        let mut target = self.uniform() * h;
        for k in 1..=n {
            target -= (k as f64).powf(-s);
            if target < 0.0 {
                return k;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::seed_from(42);
        let mut b = Rng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_streams_decorrelated() {
        let mut root = Rng::seed_from(7);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Rng::seed_from(3);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = Rng::seed_from(4);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let i = rng.below(7);
            assert!(i < 7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from(5);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from(6);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn sample_distinct_unique() {
        let mut rng = Rng::seed_from(8);
        for _ in 0..100 {
            let s = rng.sample_distinct(10, 4);
            let mut t = s.clone();
            t.sort_unstable();
            t.dedup();
            assert_eq!(t.len(), 4);
            assert!(s.iter().all(|&i| i < 10));
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Rng::seed_from(9);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.weighted_index(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let p2 = counts[2] as f64 / 30_000.0;
        assert!((p2 - 0.7).abs() < 0.02, "p2 {p2}");
    }

    #[test]
    fn zipf_rank_one_most_frequent() {
        let mut rng = Rng::seed_from(10);
        let mut counts = [0usize; 11];
        for _ in 0..10_000 {
            counts[rng.zipf(10, 1.2)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[5]);
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = Rng::seed_from(11);
        let hits = (0..20_000).filter(|_| rng.bernoulli(0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }
}
