//! Scoped parallel runtime over `std::thread`.
//!
//! The workspace must build offline with no external crates, so it
//! carries its own fork/join primitives instead of rayon. The design
//! constraints, in priority order:
//!
//! 1. **Determinism.** Results must be bit-identical for every thread
//!    count. Workers therefore only ever write to *disjoint* output
//!    regions (contiguous row blocks, or per-task slots merged in task
//!    order); there is no atomic float accumulation and no
//!    reduction whose association depends on scheduling.
//! 2. **No unsafe.** Borrowed closures run under [`std::thread::scope`],
//!    which guarantees quiescence before the call returns; disjoint
//!    mutable access goes through `chunks_mut`.
//! 3. **Graceful degradation.** With one configured thread (or one
//!    task) every helper degenerates to the plain serial loop — same
//!    code path, zero spawns.
//!
//! The thread budget comes from, in order: [`set_threads`], the
//! `AMOE_THREADS` environment variable, and
//! [`std::thread::available_parallelism`]. It is a *budget per parallel
//! region*, not a persistent worker set: threads are spawned scoped per
//! call, which costs ~10–20 µs per region on Linux and is amortised by
//! the size thresholds the callers apply (large matmuls, per-expert
//! batched forwards, whole eval batches).
//!
//! When [`amoe_obs`] telemetry is enabled (`AMOE_OBS=...`), every
//! parallel region records its wall time (`pool.region` /
//! `pool.row_blocks` histograms, nanoseconds), its spawn overhead
//! (`pool.spawn_ns` — the ROADMAP's open question about scoped-spawn
//! cost on small regions), and running `pool.regions` / `pool.tasks` /
//! `pool.workers_spawned` counters. With telemetry off the
//! instrumentation is a single relaxed atomic load per region.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Thread-count override; 0 means "not set, consult the environment".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The number of threads parallel regions may use.
///
/// Resolution order: [`set_threads`] override, then `AMOE_THREADS`
/// (ignored unless it parses to a positive integer), then
/// [`std::thread::available_parallelism`], then 1.
#[must_use]
pub fn threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("AMOE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Forces the thread budget for subsequent parallel regions (overrides
/// `AMOE_THREADS`). Intended for benches sweeping thread counts and for
/// determinism tests; production code should prefer the environment.
///
/// # Panics
/// Panics if `n == 0`.
pub fn set_threads(n: usize) {
    assert!(n > 0, "pool::set_threads: thread count must be positive");
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Clears a [`set_threads`] override, returning control to the
/// environment.
pub fn clear_threads_override() {
    THREAD_OVERRIDE.store(0, Ordering::Relaxed);
}

/// Runs `f(task_index)` for every task in `0..n_tasks` and returns the
/// results **in task order**, regardless of which worker ran what.
///
/// Tasks are distributed dynamically (an atomic cursor), so uneven task
/// costs balance across workers; determinism is preserved because each
/// result lands in its task's slot, not in arrival order.
pub fn map_tasks<T, F>(n_tasks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads().min(n_tasks);
    if workers <= 1 {
        return (0..n_tasks).map(f).collect();
    }
    let _region = amoe_obs::Span::enter("pool.region");
    amoe_obs::counter_add("pool.regions", 1);
    amoe_obs::counter_add("pool.tasks", n_tasks as u64);
    amoe_obs::counter_add("pool.workers_spawned", workers as u64);
    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n_tasks).map(|_| None).collect();
    std::thread::scope(|s| {
        let spawn_start = amoe_obs::enabled().then(Instant::now);
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n_tasks {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        if let Some(t) = spawn_start {
            amoe_obs::histogram_record("pool.spawn_ns", t.elapsed().as_nanos() as f64);
        }
        for h in handles {
            for (i, v) in h.join().expect("pool::map_tasks: worker panicked") {
                slots[i] = Some(v);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("pool::map_tasks: every task must produce a value"))
        .collect()
}

/// Runs `f(task_index)` for every task in `0..n_tasks` for its side
/// effects. Same scheduling as [`map_tasks`].
pub fn for_each_task<F>(n_tasks: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    map_tasks(n_tasks, |i| f(i));
}

/// Splits the row-major buffer `out` (logically `rows x row_len`) into
/// one contiguous row block per worker and runs
/// `f(first_row, block_slice)` on each block in parallel.
///
/// Blocks are disjoint `&mut` slices, so no synchronisation of the
/// output is needed and the result is bit-identical to running `f` over
/// the whole buffer serially (callers must make `f` compute a row from
/// inputs and the row's own slice only).
///
/// # Panics
/// Panics if `out.len() != rows * row_len`.
pub fn par_row_blocks<F>(out: &mut [f32], rows: usize, row_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert_eq!(
        out.len(),
        rows * row_len,
        "pool::par_row_blocks: buffer is not rows x row_len"
    );
    let workers = threads().min(rows).max(1);
    if workers <= 1 {
        f(0, out);
        return;
    }
    let _region = amoe_obs::Span::enter("pool.row_blocks");
    amoe_obs::counter_add("pool.regions", 1);
    amoe_obs::counter_add("pool.workers_spawned", workers as u64);
    let rows_per_block = rows.div_ceil(workers);
    std::thread::scope(|s| {
        let spawn_start = amoe_obs::enabled().then(Instant::now);
        for (b, block) in out.chunks_mut(rows_per_block * row_len).enumerate() {
            let f = &f;
            s.spawn(move || f(b * rows_per_block, block));
        }
        if let Some(t) = spawn_start {
            amoe_obs::histogram_record("pool.spawn_ns", t.elapsed().as_nanos() as f64);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_is_positive() {
        assert!(threads() >= 1);
    }

    #[test]
    fn map_tasks_preserves_order() {
        set_threads(4);
        let out = map_tasks(100, |i| i * i);
        clear_threads_override();
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_tasks_serial_matches_parallel() {
        set_threads(1);
        let serial = map_tasks(33, |i| (i as f32).sin());
        set_threads(8);
        let parallel = map_tasks(33, |i| (i as f32).sin());
        clear_threads_override();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn map_tasks_empty_and_single() {
        assert_eq!(map_tasks(0, |i| i), Vec::<usize>::new());
        assert_eq!(map_tasks(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn for_each_task_covers_all_tasks() {
        set_threads(3);
        let hits: Vec<AtomicUsize> = (0..57).map(|_| AtomicUsize::new(0)).collect();
        for_each_task(57, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        clear_threads_override();
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_row_blocks_disjoint_and_complete() {
        let (rows, cols) = (37, 5);
        for t in [1usize, 2, 4, 16] {
            set_threads(t);
            let mut buf = vec![0f32; rows * cols];
            par_row_blocks(&mut buf, rows, cols, |first_row, block| {
                for (local, row) in block.chunks_mut(cols).enumerate() {
                    let r = first_row + local;
                    for (c, v) in row.iter_mut().enumerate() {
                        *v = (r * cols + c) as f32;
                    }
                }
            });
            clear_threads_override();
            let expect: Vec<f32> = (0..rows * cols).map(|i| i as f32).collect();
            assert_eq!(buf, expect, "thread count {t}");
        }
    }

    #[test]
    #[should_panic(expected = "rows x row_len")]
    fn par_row_blocks_rejects_bad_shape() {
        let mut buf = vec![0f32; 7];
        par_row_blocks(&mut buf, 2, 4, |_, _| {});
    }
}
