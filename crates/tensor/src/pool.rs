//! Persistent-worker parallel runtime over `std::thread`.
//!
//! The workspace must build offline with no external crates, so it
//! carries its own fork/join primitives instead of rayon. The design
//! constraints, in priority order:
//!
//! 1. **Determinism.** Results must be bit-identical for every thread
//!    count. Workers therefore only ever write to *disjoint* output
//!    regions (contiguous row blocks, or per-task slots merged in task
//!    order); there is no atomic float accumulation and no
//!    reduction whose association depends on scheduling.
//! 2. **Cheap regions.** Worker threads are created lazily on the first
//!    parallel region, then parked on a condvar and reused: entering a
//!    region is a wake, not a `thread::spawn`. The PR-2 `pool.spawn_ns`
//!    histograms showed scoped spawn (~10–20 µs per region on Linux)
//!    dominating small regions; a condvar wake is an order of magnitude
//!    cheaper, which is what lets training fan out per-expert
//!    forward/backward work and lets serving fuse its gate and
//!    expert-dispatch phases into a single region.
//! 3. **Graceful degradation.** With one configured thread (or one
//!    task) every helper degenerates to the plain serial loop — same
//!    code path, zero wakes. Regions started from inside another
//!    region (a worker, or the caller's own task closure) also run
//!    inline serially, so nesting can never deadlock the pool.
//!
//! # Region protocol
//!
//! One region runs at a time (a process-wide region slot; concurrent
//! callers queue on it, measured by the `pool.queue_wait_ns`
//! histogram). The calling thread is itself one of the region's lanes:
//! a region with budget `W` uses the caller plus `W - 1` parked
//! workers. Tasks are claimed from an atomic cursor, so uneven task
//! costs balance dynamically; determinism is preserved because each
//! task writes only its own slot or block, and merges happen in task
//! order on the caller.
//!
//! [`fused_region`] extends the protocol with a second phase: workers
//! stay attached across an internal barrier while the caller runs a
//! serial splice (e.g. building routing tables between the gate and
//! expert-dispatch phases of sparse serving), then both the caller and
//! the workers drain the second task queue — two parallel phases for
//! one wake.
//!
//! # Thread budget
//!
//! The budget comes from, in order: [`set_threads`], the `AMOE_THREADS`
//! environment variable, and [`std::thread::available_parallelism`].
//! The environment is resolved **once** (the first [`threads`] call)
//! and cached; changing `AMOE_THREADS` after that has no effect.
//! [`set_threads`] may be called at any time, including after the pool
//! has started: the worker set grows lazily to match the largest budget
//! a region actually needs, and a smaller budget simply leaves the
//! extra workers parked (they are never torn down).
//!
//! # Safety
//!
//! Task closures borrow the caller's stack (models, matrices, result
//! slots), while the persistent workers are `'static` threads — the
//! one combination safe Rust cannot express, and the reason every
//! persistent work-sharing runtime (rayon, crossbeam) contains a
//! lifetime-erasure site. This module keeps exactly **one** `unsafe`
//! expression ([`erase`]), made sound by the region protocol: the
//! caller never returns (or unwinds) past the region until every
//! worker has detached, so the erased borrow cannot outlive the frame
//! it points into. See [`erase`] for the full argument; everything
//! else — slot writes, parking, panic propagation — is safe code.
//!
//! # Telemetry
//!
//! When [`amoe_obs`] telemetry is enabled (`AMOE_OBS=...`), every
//! parallel region records its wall time (`pool.region` /
//! `pool.row_blocks` / `pool.fused` histograms, nanoseconds), the time
//! spent queueing for the region slot (`pool.queue_wait_ns`), and
//! running `pool.regions` / `pool.tasks` / `pool.workers_started` /
//! `pool.region_reuse` counters — the reuse counter is the direct
//! replacement for PR-2's spawn-centric `pool.spawn_ns` question:
//! steady-state, every region should be a reuse. With telemetry off
//! the instrumentation is a single relaxed atomic load per region.
//! Independently, when request tracing is active and the serving
//! batcher has marked an active batch ([`amoe_obs::trace`]), each
//! region records one trace event under its histogram name, tagged
//! with that batch id.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Thread-count override; 0 means "not set, consult the environment".
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The environment-derived budget, resolved once per process.
static ENV_BUDGET: OnceLock<usize> = OnceLock::new();

/// The number of threads parallel regions may use.
///
/// Resolution order: [`set_threads`] override, then `AMOE_THREADS`
/// (ignored unless it parses to a positive integer), then
/// [`std::thread::available_parallelism`], then 1. The environment is
/// consulted exactly once per process and cached; later changes to
/// `AMOE_THREADS` are invisible (use [`set_threads`] to retune at
/// runtime).
#[must_use]
pub fn threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    *ENV_BUDGET.get_or_init(|| {
        if let Ok(v) = std::env::var("AMOE_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    })
}

/// Forces the thread budget for subsequent parallel regions (overrides
/// `AMOE_THREADS`). Intended for benches sweeping thread counts and for
/// determinism tests; production code should prefer the environment.
///
/// May be called before or after the pool's first region: raising the
/// budget makes the next region that needs them spawn additional
/// persistent workers; lowering it leaves existing workers parked and
/// unused. It never tears a worker down.
///
/// # Panics
/// Panics if `n == 0`.
pub fn set_threads(n: usize) {
    assert!(n > 0, "pool::set_threads: thread count must be positive");
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Clears a [`set_threads`] override, returning control to the
/// (cached) environment budget.
pub fn clear_threads_override() {
    THREAD_OVERRIDE.store(0, Ordering::Relaxed);
}

/// The number of lanes (caller + workers) a region of `n_tasks` tasks
/// actually uses: `min(threads(), n_tasks)`, at least 1. This is the
/// honest parallelism figure for instrumentation — a 64-thread budget
/// dispatching 8 experts still runs 8 lanes.
#[must_use]
pub fn effective_workers(n_tasks: usize) -> usize {
    threads().min(n_tasks).max(1)
}

/// Number of persistent worker threads currently alive (parked or
/// working). Grows lazily with demand; never shrinks. Diagnostic /
/// test accessor.
#[must_use]
pub fn workers_alive() -> usize {
    shared().state.lock().map_or(0, |st| st.workers)
}

// ---------------------------------------------------------------------------
// Public task helpers
// ---------------------------------------------------------------------------

/// Runs `f(task_index)` for every task in `0..n_tasks` and returns the
/// results **in task order**, regardless of which lane ran what.
///
/// Tasks are distributed dynamically (an atomic cursor), so uneven task
/// costs balance across lanes; determinism is preserved because each
/// result lands in its task's slot, not in arrival order.
pub fn map_tasks<T, F>(n_tasks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if effective_workers(n_tasks) <= 1 || !outside_region() {
        return (0..n_tasks).map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n_tasks).map(|_| Mutex::new(None)).collect();
    let task = |i: usize| {
        *lock(&slots[i]) = Some(f(i));
    };
    run_region("pool.region", n_tasks, &task);
    slots
        .into_iter()
        .map(|s| lock_owned(s).expect("pool::map_tasks: every task must produce a value"))
        .collect()
}

/// Runs `f(task_index)` for every task in `0..n_tasks` for its side
/// effects. Same scheduling as [`map_tasks`], but with no result slots
/// and **zero allocation** on the caller: the closure is handed to the
/// region as-is.
pub fn for_each_task<F>(n_tasks: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    if effective_workers(n_tasks) <= 1 || !outside_region() {
        for i in 0..n_tasks {
            f(i);
        }
        return;
    }
    run_region("pool.region", n_tasks, &f);
}

/// Splits the row-major buffer `out` (logically `rows x row_len`) into
/// one contiguous row block per lane and runs `f(first_row,
/// block_slice)` on each block in parallel.
///
/// Blocks are disjoint `&mut` slices, so no synchronisation of the
/// output is needed and the result is bit-identical to running `f` over
/// the whole buffer serially (callers must make `f` compute a row from
/// inputs and the row's own slice only).
///
/// # Panics
/// Panics if `out.len() != rows * row_len`.
pub fn par_row_blocks<F>(out: &mut [f32], rows: usize, row_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert_eq!(
        out.len(),
        rows * row_len,
        "pool::par_row_blocks: buffer is not rows x row_len"
    );
    let workers = threads().min(rows).max(1);
    if workers <= 1 || !outside_region() {
        f(0, out);
        return;
    }
    // Take-once slot holding `(first_row, block_slice)` for one lane.
    type BlockSlot<'a> = Mutex<Option<(usize, &'a mut [f32])>>;
    let rows_per_block = rows.div_ceil(workers);
    let blocks: Vec<BlockSlot<'_>> = out
        .chunks_mut(rows_per_block * row_len)
        .enumerate()
        .map(|(b, chunk)| Mutex::new(Some((b * rows_per_block, chunk))))
        .collect();
    let task = |i: usize| {
        let (first_row, block) = lock(&blocks[i])
            .take()
            .expect("pool::par_row_blocks: block claimed twice");
        f(first_row, block);
    };
    run_region("pool.row_blocks", blocks.len(), &task);
}

/// Runs two dependent parallel phases in **one** region: the lanes
/// drain phase one (`f1` over `0..n1`), the caller runs the serial
/// splice `mid` while the workers wait at an internal barrier, then
/// the lanes drain phase two (`f2` over `0..n2`). One wake for both
/// phases — the shape of sparse serving's gate → routing-table →
/// expert-dispatch pipeline.
///
/// Determinism follows from the same discipline as the other helpers:
/// each task writes only its own slot, `mid` runs exactly once on the
/// caller after *all* of phase one, and phase two starts only after
/// `mid` returns.
pub fn fused_region<F1, M, F2>(n1: usize, f1: F1, mid: M, n2: usize, f2: F2)
where
    F1: Fn(usize) + Sync,
    M: FnOnce(),
    F2: Fn(usize) + Sync,
{
    let workers = threads().min(n1.max(n2)).max(1);
    if workers <= 1 || !outside_region() {
        for i in 0..n1 {
            f1(i);
        }
        mid();
        for i in 0..n2 {
            f2(i);
        }
        return;
    }
    let mut mid_slot = Some(mid);
    let mut mid_dyn = || {
        (mid_slot
            .take()
            .expect("pool::fused_region: mid runs exactly once"))();
    };
    drive_region(
        "pool.fused",
        n1,
        &f1,
        Some(&mut mid_dyn),
        n2,
        Some(&f2),
        workers,
    );
}

// ---------------------------------------------------------------------------
// Pool internals
// ---------------------------------------------------------------------------

/// The erased (`'static`) task closure stored in a [`RegionJob`].
type TaskFn = dyn Fn(usize) + Sync + 'static;

/// A borrowed task closure as passed in by callers; the only type that
/// crosses the caller/worker boundary (after [`erase`]).
type TaskRef<'a> = &'a (dyn Fn(usize) + Sync + 'a);

/// Where the current thread stands relative to the pool. Regions only
/// start from `Outside`; anything else runs inline serially.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Ctx {
    /// Not involved in any region.
    Outside,
    /// Driving a region (and executing its tasks).
    Caller,
    /// A persistent pool worker.
    Worker,
}

thread_local! {
    static CTX: Cell<Ctx> = const { Cell::new(Ctx::Outside) };
}

fn outside_region() -> bool {
    CTX.with(|c| c.get() == Ctx::Outside)
}

/// One parallel region's shared bookkeeping. Reached by workers
/// through an `Arc` handed out under the pool state lock.
struct RegionJob {
    /// Phase-one task closure (lifetime-erased; see [`erase`]).
    f1: &'static TaskFn,
    n1: usize,
    cursor1: AtomicUsize,
    done1: AtomicUsize,
    /// Phase-two closure for fused regions.
    f2: Option<&'static TaskFn>,
    n2: usize,
    cursor2: AtomicUsize,
    done2: AtomicUsize,
    /// 1 while phase one runs; 2 once the caller opened phase two.
    phase: AtomicUsize,
    /// Stop claiming tasks (caller unwind or worker panic).
    cancelled: AtomicBool,
    /// A lane's task closure panicked; the caller re-raises.
    panicked: AtomicBool,
    /// Guards the two region condvars below.
    sync: Mutex<()>,
    /// Workers wait here for phase two (fused regions only).
    gate_cv: Condvar,
    /// The caller waits here for phase completion.
    done_cv: Condvar,
}

impl RegionJob {
    fn new(f1: &'static TaskFn, n1: usize, f2: Option<&'static TaskFn>, n2: usize) -> Self {
        RegionJob {
            f1,
            n1,
            cursor1: AtomicUsize::new(0),
            done1: AtomicUsize::new(0),
            f2,
            n2,
            cursor2: AtomicUsize::new(0),
            done2: AtomicUsize::new(0),
            phase: AtomicUsize::new(1),
            cancelled: AtomicBool::new(false),
            panicked: AtomicBool::new(false),
            sync: Mutex::new(()),
            gate_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }
    }
}

/// Pool-wide state guarded by one mutex.
struct PoolState {
    /// The active region, if any.
    job: Option<Arc<RegionJob>>,
    /// Bumped per region so a worker attaches at most once per region.
    epoch: u64,
    /// How many more workers may still attach to the active region.
    attach_budget: usize,
    /// Workers currently attached to the active region.
    active: usize,
    /// Persistent workers alive (parked or working).
    workers: usize,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers park here waiting for a region.
    work_cv: Condvar,
    /// The caller's quiescence wait (all workers detached).
    done_cv: Condvar,
    /// One region at a time; concurrent callers queue here.
    region_lock: Mutex<()>,
}

static SHARED: OnceLock<Arc<Shared>> = OnceLock::new();

fn shared() -> &'static Arc<Shared> {
    SHARED.get_or_init(|| {
        Arc::new(Shared {
            state: Mutex::new(PoolState {
                job: None,
                epoch: 0,
                attach_budget: 0,
                active: 0,
                workers: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            region_lock: Mutex::new(()),
        })
    })
}

/// Mutex lock that shrugs off poisoning: the pool's own invariants are
/// maintained by atomics and the quiescence protocol, not by the data
/// behind these mutexes, so a panicked lane must not wedge the pool.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Consumes a slot mutex (poison-tolerant `into_inner`).
fn lock_owned<T>(m: Mutex<Option<T>>) -> Option<T> {
    m.into_inner().unwrap_or_else(PoisonError::into_inner)
}

fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(PoisonError::into_inner)
}

/// Erases the lifetime of a borrowed task closure so it can be shared
/// with the persistent (`'static`) worker threads.
///
/// # Safety
///
/// The caller must guarantee the referent outlives every use of the
/// returned reference. [`drive_region`] upholds this with its
/// quiescence protocol:
///
/// * the erased reference is reachable only through the pool's job
///   slot and the `Arc<RegionJob>` clones held by attached workers;
/// * a worker increments `active` (under the state lock) *before* it
///   can observe the job, and decrements it only after its last use of
///   the closure (the `Arc` is dropped first — dropping a reference is
///   not a use);
/// * [`RegionGuard`] — which runs on normal return *and* unwind —
///   cancels the region, blocks until `active == 0`, and clears the
///   job slot before the caller's frame (and with it the referent) can
///   die.
///
/// Hence no worker can dereference the erased borrow after
/// `drive_region` returns, which is exactly the scope of the original
/// lifetime. This is the module's single `unsafe` expression.
unsafe fn erase<'a>(f: TaskRef<'a>) -> &'static TaskFn {
    // SAFETY: see above; lifetime-only transmute of a fat reference.
    unsafe { std::mem::transmute::<TaskRef<'a>, &'static TaskFn>(f) }
}

/// Single-phase region entry (the common case).
fn run_region(name: &'static str, n_tasks: usize, f: TaskRef<'_>) {
    let workers = threads().min(n_tasks).max(1);
    drive_region(name, n_tasks, f, None, 0, None, workers);
}

/// Drives one region: installs the job, participates as a lane, fences
/// the phases, and quiesces. `workers` is the total lane count
/// (caller + parked workers) and must be ≥ 2.
fn drive_region(
    name: &'static str,
    n1: usize,
    f1: TaskRef<'_>,
    mid: Option<&mut (dyn FnMut() + '_)>,
    n2: usize,
    f2: Option<TaskRef<'_>>,
    workers: usize,
) {
    debug_assert!(workers >= 2, "drive_region: serial paths stay inline");
    let _region_span = amoe_obs::Span::enter(name);
    // When the serving batcher marked an active traced batch, the
    // region shows up in the request trace under its own name — a
    // single check + two clock reads, nothing when tracing is off.
    let trace_batch = amoe_obs::trace::active_batch();
    let trace_t0 = (trace_batch != 0).then(amoe_obs::trace::now_ns);
    amoe_obs::counter_add("pool.regions", 1);
    amoe_obs::counter_add("pool.tasks", (n1 + n2) as u64);
    let shared = shared();
    let queue_start = amoe_obs::enabled().then(Instant::now);
    let _region_slot = lock(&shared.region_lock);
    if let Some(t) = queue_start {
        amoe_obs::histogram_record("pool.queue_wait_ns", t.elapsed().as_nanos() as f64);
    }
    ensure_workers(shared, workers - 1);

    // SAFETY: `RegionGuard` below quiesces all workers before this
    // frame is left, on return and on unwind alike — see `erase`.
    let f1_static = unsafe { erase(f1) };
    let f2_static = f2.map(|f| unsafe { erase(f) });
    let job = Arc::new(RegionJob::new(f1_static, n1, f2_static, n2));
    {
        let mut st = lock(&shared.state);
        st.job = Some(Arc::clone(&job));
        st.epoch = st.epoch.wrapping_add(1);
        st.attach_budget = workers - 1;
    }
    shared.work_cv.notify_all();

    // From here to RegionGuard::drop the caller counts as inside the
    // region: a nested region started by one of its own tasks (e.g. a
    // matmul inside an expert closure) must run inline, not re-enter
    // the region slot this thread already holds.
    CTX.with(|c| c.set(Ctx::Caller));
    let _quiesce = RegionGuard { shared, job: &job };
    // The caller is lane zero.
    claim_loop(job.f1, &job.cursor1, job.n1, &job.done1, &job.cancelled);
    wait_phase(&job, &job.done1, job.n1);
    if !job.cancelled.load(Ordering::SeqCst) {
        if let Some(mid) = mid {
            mid();
        }
        if let Some(f2) = job.f2 {
            job.phase.store(2, Ordering::SeqCst);
            drop(lock(&job.sync));
            job.gate_cv.notify_all();
            claim_loop(f2, &job.cursor2, job.n2, &job.done2, &job.cancelled);
            wait_phase(&job, &job.done2, job.n2);
        }
    }
    drop(_quiesce);
    if let Some(t0) = trace_t0 {
        amoe_obs::trace::record(
            0,
            trace_batch,
            name,
            t0,
            amoe_obs::trace::now_ns(),
            (n1 + n2) as u64,
        );
    }
    if job.panicked.load(Ordering::SeqCst) {
        panic!("pool: worker panicked in parallel region");
    }
}

/// Spawns persistent workers until at least `extra` exist.
fn ensure_workers(shared: &'static Arc<Shared>, extra: usize) {
    let mut st = lock(&shared.state);
    if st.workers >= extra {
        amoe_obs::counter_add("pool.region_reuse", 1);
        return;
    }
    let need = extra - st.workers;
    for _ in 0..need {
        let sh = Arc::clone(shared);
        std::thread::Builder::new()
            .name(format!("amoe-pool-{}", st.workers))
            .spawn(move || worker_main(&sh))
            .expect("pool: failed to spawn persistent worker");
        st.workers += 1;
    }
    amoe_obs::counter_add("pool.workers_started", need as u64);
}

/// Claims tasks off `cursor` until the queue is drained or the region
/// is cancelled. Each successful task bumps `done`.
fn claim_loop(
    f: TaskRef<'_>,
    cursor: &AtomicUsize,
    n: usize,
    done: &AtomicUsize,
    cancelled: &AtomicBool,
) {
    loop {
        if cancelled.load(Ordering::SeqCst) {
            return;
        }
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            return;
        }
        f(i);
        done.fetch_add(1, Ordering::SeqCst);
    }
}

/// Caller-side wait for `done == n` (or cancellation).
fn wait_phase(job: &RegionJob, done: &AtomicUsize, n: usize) {
    if done.load(Ordering::SeqCst) >= n {
        return;
    }
    let mut g = lock(&job.sync);
    while done.load(Ordering::SeqCst) < n && !job.cancelled.load(Ordering::SeqCst) {
        g = wait(&job.done_cv, g);
    }
}

/// Wakes every lane blocked on the region and stops further claims.
fn cancel(job: &RegionJob) {
    job.cancelled.store(true, Ordering::SeqCst);
    drop(lock(&job.sync));
    job.gate_cv.notify_all();
    job.done_cv.notify_all();
}

/// Region cleanup that runs on return and unwind: cancel (a no-op for
/// a completed region), wait until every worker detached, clear the
/// job slot, restore the thread context. Only after this may the
/// caller's frame — which the erased closures borrow — be left.
struct RegionGuard<'a> {
    shared: &'a Shared,
    job: &'a Arc<RegionJob>,
}

impl Drop for RegionGuard<'_> {
    fn drop(&mut self) {
        cancel(self.job);
        let mut st = lock(&self.shared.state);
        while st.active > 0 {
            st = wait(&self.shared.done_cv, st);
        }
        st.attach_budget = 0;
        st.job = None;
        drop(st);
        CTX.with(|c| c.set(Ctx::Outside));
    }
}

/// The persistent worker body: park, attach to at most one region per
/// epoch, run its phases, detach, repeat forever.
fn worker_main(shared: &Arc<Shared>) {
    CTX.with(|c| c.set(Ctx::Worker));
    let mut last_epoch = 0u64;
    loop {
        let job = {
            let mut st = lock(&shared.state);
            loop {
                if st.epoch != last_epoch && st.attach_budget > 0 {
                    if let Some(j) = st.job.clone() {
                        st.attach_budget -= 1;
                        st.active += 1;
                        last_epoch = st.epoch;
                        break j;
                    }
                }
                st = wait(&shared.work_cv, st);
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| worker_run(&job)));
        if outcome.is_err() {
            job.panicked.store(true, Ordering::SeqCst);
            cancel(&job);
        }
        // Last use of the erased closures was above; drop our handle
        // before detaching so the caller's quiescence wait is exact.
        drop(job);
        {
            let mut st = lock(&shared.state);
            st.active -= 1;
        }
        shared.done_cv.notify_all();
    }
}

/// One worker's share of a region: drain phase one, signal, wait at
/// the phase gate (fused regions), drain phase two, signal.
fn worker_run(job: &RegionJob) {
    claim_loop(job.f1, &job.cursor1, job.n1, &job.done1, &job.cancelled);
    signal_done(job);
    let Some(f2) = job.f2 else { return };
    {
        let mut g = lock(&job.sync);
        while job.phase.load(Ordering::SeqCst) < 2 && !job.cancelled.load(Ordering::SeqCst) {
            g = wait(&job.gate_cv, g);
        }
    }
    if job.cancelled.load(Ordering::SeqCst) {
        return;
    }
    claim_loop(f2, &job.cursor2, job.n2, &job.done2, &job.cancelled);
    signal_done(job);
}

/// Wakes the caller's phase wait (lock/unlock pairs with `wait_phase`
/// to close the missed-wakeup window).
fn signal_done(job: &RegionJob) {
    drop(lock(&job.sync));
    job.done_cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_is_positive() {
        assert!(threads() >= 1);
    }

    #[test]
    fn map_tasks_preserves_order() {
        set_threads(4);
        let out = map_tasks(100, |i| i * i);
        clear_threads_override();
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_tasks_serial_matches_parallel() {
        set_threads(1);
        let serial = map_tasks(33, |i| (i as f32).sin());
        set_threads(8);
        let parallel = map_tasks(33, |i| (i as f32).sin());
        clear_threads_override();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn map_tasks_empty_and_single() {
        assert_eq!(map_tasks(0, |i| i), Vec::<usize>::new());
        assert_eq!(map_tasks(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn for_each_task_covers_all_tasks() {
        set_threads(3);
        let hits: Vec<AtomicUsize> = (0..57).map(|_| AtomicUsize::new(0)).collect();
        for_each_task(57, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        clear_threads_override();
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_row_blocks_disjoint_and_complete() {
        let (rows, cols) = (37, 5);
        for t in [1usize, 2, 4, 16] {
            set_threads(t);
            let mut buf = vec![0f32; rows * cols];
            par_row_blocks(&mut buf, rows, cols, |first_row, block| {
                for (local, row) in block.chunks_mut(cols).enumerate() {
                    let r = first_row + local;
                    for (c, v) in row.iter_mut().enumerate() {
                        *v = (r * cols + c) as f32;
                    }
                }
            });
            clear_threads_override();
            let expect: Vec<f32> = (0..rows * cols).map(|i| i as f32).collect();
            assert_eq!(buf, expect, "thread count {t}");
        }
    }

    #[test]
    #[should_panic(expected = "rows x row_len")]
    fn par_row_blocks_rejects_bad_shape() {
        let mut buf = vec![0f32; 7];
        par_row_blocks(&mut buf, 2, 4, |_, _| {});
    }

    #[test]
    fn fused_region_runs_both_phases_in_order() {
        for t in [1usize, 4] {
            set_threads(t);
            let phase1: Vec<AtomicUsize> = (0..23).map(|_| AtomicUsize::new(0)).collect();
            let mid_seen = AtomicUsize::new(0);
            let phase2: Vec<AtomicUsize> = (0..9).map(|_| AtomicUsize::new(0)).collect();
            fused_region(
                23,
                |i| {
                    phase1[i].fetch_add(1, Ordering::SeqCst);
                },
                || {
                    // Every phase-one task must be visible before mid.
                    let sum: usize = phase1.iter().map(|h| h.load(Ordering::SeqCst)).sum();
                    mid_seen.store(sum, Ordering::SeqCst);
                },
                9,
                |i| {
                    // And mid must have run before any phase-two task.
                    assert_eq!(mid_seen.load(Ordering::SeqCst), 23);
                    phase2[i].fetch_add(1, Ordering::SeqCst);
                },
            );
            clear_threads_override();
            assert!(
                phase1.iter().all(|h| h.load(Ordering::SeqCst) == 1),
                "t={t}"
            );
            assert_eq!(mid_seen.load(Ordering::SeqCst), 23, "t={t}");
            assert!(
                phase2.iter().all(|h| h.load(Ordering::SeqCst) == 1),
                "t={t}"
            );
        }
    }

    #[test]
    fn nested_region_from_task_runs_inline() {
        set_threads(4);
        let hits: Vec<AtomicUsize> = (0..12).map(|_| AtomicUsize::new(0)).collect();
        let out = map_tasks(4, |outer| {
            // A nested region (as matmul inside an expert task would
            // start) must degrade to the serial loop, not deadlock.
            let inner = map_tasks(3, |i| outer * 3 + i);
            for &v in &inner {
                hits[v].fetch_add(1, Ordering::SeqCst);
            }
            inner.iter().sum::<usize>()
        });
        clear_threads_override();
        assert_eq!(out.len(), 4);
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn workers_survive_across_regions() {
        set_threads(3);
        let _ = map_tasks(16, |i| i);
        let alive_after_first = workers_alive();
        assert!(alive_after_first >= 2, "expected persistent workers");
        for _ in 0..5 {
            let _ = map_tasks(16, |i| i + 1);
        }
        // Reuse, not respawn: the worker set did not grow.
        assert_eq!(workers_alive(), alive_after_first.max(workers_alive()));
        assert!(workers_alive() >= alive_after_first);
        clear_threads_override();
    }

    #[test]
    fn set_threads_after_first_use_resizes() {
        set_threads(2);
        let _ = map_tasks(8, |i| i);
        let before = workers_alive();
        set_threads(4);
        let _ = map_tasks(8, |i| i);
        assert!(
            workers_alive() >= before && workers_alive() >= 3,
            "budget raise must grow the worker set ({} -> {})",
            before,
            workers_alive()
        );
        clear_threads_override();
    }

    #[test]
    fn worker_panic_propagates_and_pool_recovers() {
        set_threads(4);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            for_each_task(64, |i| {
                assert!(i != 13, "boom");
            });
        }));
        assert!(caught.is_err(), "task panic must propagate to the caller");
        // The pool must remain usable after a panicked region.
        let out = map_tasks(32, |i| i * 2);
        clear_threads_override();
        assert_eq!(out, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }
}
