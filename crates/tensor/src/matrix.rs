//! The [`Matrix`] type: a row-major, heap-allocated 2-D `f32` array.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major 2-D array of `f32`.
///
/// `Matrix` is the only tensor type in the workspace. Vectors are
/// represented as `1 x n` or `n x 1` matrices and scalars as `1 x 1`,
/// which keeps the op set small and shapes explicit.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// Error returned by fallible constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// `rows * cols` does not equal the length of the provided buffer.
    LengthMismatch {
        /// Requested row count.
        rows: usize,
        /// Requested column count.
        cols: usize,
        /// Length of the buffer that was supplied.
        len: usize,
    },
    /// A zero dimension was provided where a non-empty matrix is required.
    EmptyDimension {
        /// Requested row count.
        rows: usize,
        /// Requested column count.
        cols: usize,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::LengthMismatch { rows, cols, len } => write!(
                f,
                "buffer of length {len} cannot be viewed as a {rows}x{cols} matrix"
            ),
            MatrixError::EmptyDimension { rows, cols } => {
                write!(f, "matrix dimensions must be non-zero, got {rows}x{cols}")
            }
        }
    }
}

impl std::error::Error for MatrixError {}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Creates a `rows x cols` matrix filled with ones.
    #[must_use]
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        assert!(
            rows > 0 && cols > 0,
            "Matrix::filled: dimensions must be non-zero, got {rows}x{cols}"
        );
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        Self::try_from_vec(rows, cols, data).unwrap_or_else(|e| panic!("Matrix::from_vec: {e}"))
    }

    /// Fallible version of [`Matrix::from_vec`].
    pub fn try_from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, MatrixError> {
        if rows == 0 || cols == 0 {
            return Err(MatrixError::EmptyDimension { rows, cols });
        }
        if data.len() != rows * cols {
            return Err(MatrixError::LengthMismatch {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from nested row slices (convenient in tests).
    ///
    /// # Panics
    /// Panics if rows are empty or ragged.
    #[must_use]
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "Matrix::from_rows: no rows");
        let cols = rows[0].len();
        assert!(cols > 0, "Matrix::from_rows: empty first row");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "Matrix::from_rows: row {i} has {} cols, expected {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a `1 x 1` matrix holding `value`.
    #[must_use]
    pub fn scalar(value: f32) -> Self {
        Matrix {
            rows: 1,
            cols: 1,
            data: vec![value],
        }
    }

    /// Creates an `n x n` identity matrix.
    #[must_use]
    pub fn eye(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Always `false`: zero-sized matrices cannot be constructed.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The backing row-major buffer.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the backing row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow of row `r` as a contiguous slice.
    ///
    /// # Panics
    /// Panics if `r >= rows`.
    #[inline]
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "Matrix::row: row {r} out of {}", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a contiguous slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(
            r < self.rows,
            "Matrix::row_mut: row {r} out of {}",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a fresh `rows x 1` matrix.
    #[must_use]
    pub fn col(&self, c: usize) -> Matrix {
        assert!(c < self.cols, "Matrix::col: col {c} out of {}", self.cols);
        let mut out = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            out.push(self.data[r * self.cols + c]);
        }
        Matrix::from_vec(self.rows, 1, out)
    }

    /// Returns a new matrix that is the transpose of `self`.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            let src = self.row(r);
            for (c, &v) in src.iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
        out
    }

    /// Returns a copy of the selected rows, in the given order (rows may
    /// repeat — this is a gather).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    #[must_use]
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        assert!(!indices.is_empty(), "Matrix::gather_rows: empty index set");
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            assert!(
                i < self.rows,
                "Matrix::gather_rows: row {i} out of {}",
                self.rows
            );
            data.extend_from_slice(self.row(i));
        }
        Matrix::from_vec(indices.len(), self.cols, data)
    }

    /// Horizontally concatenates `parts` (all must share the row count).
    ///
    /// # Panics
    /// Panics if `parts` is empty or row counts disagree.
    #[must_use]
    pub fn hcat(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "Matrix::hcat: no parts");
        let rows = parts[0].rows;
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let dst = out.row_mut(r);
            let mut off = 0;
            for p in parts {
                assert_eq!(
                    p.rows, rows,
                    "Matrix::hcat: part has {} rows, expected {rows}",
                    p.rows
                );
                dst[off..off + p.cols].copy_from_slice(p.row(r));
                off += p.cols;
            }
        }
        out
    }

    /// Vertically concatenates `parts` (all must share the column count).
    #[must_use]
    pub fn vcat(parts: &[&Matrix]) -> Matrix {
        assert!(!parts.is_empty(), "Matrix::vcat: no parts");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(
                p.cols, cols,
                "Matrix::vcat: part has {} cols, expected {cols}",
                p.cols
            );
            data.extend_from_slice(p.as_slice());
        }
        Matrix::from_vec(rows, cols, data)
    }

    /// Returns the sub-matrix consisting of columns `[start, end)`.
    #[must_use]
    pub fn slice_cols(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start < end && end <= self.cols,
            "Matrix::slice_cols: bad range {start}..{end} for {} cols",
            self.cols
        );
        let w = end - start;
        let mut data = Vec::with_capacity(self.rows * w);
        for r in 0..self.rows {
            data.extend_from_slice(&self.row(r)[start..end]);
        }
        Matrix::from_vec(self.rows, w, data)
    }

    /// True if every element is finite (no NaN / infinity).
    #[must_use]
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Frobenius norm.
    #[must_use]
    pub fn frob_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Fills the matrix with `value` in place.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|v| *v = value);
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for r in 0..max_rows {
            write!(f, "  [")?;
            let max_cols = 10.min(self.cols);
            for c in 0..max_cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self[(r, c)])?;
            }
            if self.cols > max_cols {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_index() {
        let m = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(1), &[4., 5., 6.]);
    }

    #[test]
    fn try_from_vec_errors() {
        assert!(matches!(
            Matrix::try_from_vec(2, 2, vec![1.0; 3]),
            Err(MatrixError::LengthMismatch { .. })
        ));
        assert!(matches!(
            Matrix::try_from_vec(0, 2, vec![]),
            Err(MatrixError::EmptyDimension { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "Matrix::from_vec")]
    fn from_vec_panics_on_mismatch() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 5]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1., 2., 3.], &[4., 5., 6.]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(0, 1)], 4.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn gather_rows_repeats() {
        let m = Matrix::from_rows(&[&[1., 2.], &[3., 4.], &[5., 6.]]);
        let g = m.gather_rows(&[2, 0, 2]);
        assert_eq!(g.row(0), &[5., 6.]);
        assert_eq!(g.row(1), &[1., 2.]);
        assert_eq!(g.row(2), &[5., 6.]);
    }

    #[test]
    fn hcat_vcat() {
        let a = Matrix::from_rows(&[&[1., 2.], &[3., 4.]]);
        let b = Matrix::from_rows(&[&[5.], &[6.]]);
        let h = Matrix::hcat(&[&a, &b]);
        assert_eq!(h.shape(), (2, 3));
        assert_eq!(h.row(0), &[1., 2., 5.]);
        let c = Matrix::from_rows(&[&[7., 8.]]);
        let v = Matrix::vcat(&[&a, &c]);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.row(2), &[7., 8.]);
    }

    #[test]
    fn slice_cols_and_col() {
        let m = Matrix::from_rows(&[&[1., 2., 3.], &[4., 5., 6.]]);
        let s = m.slice_cols(1, 3);
        assert_eq!(s.row(0), &[2., 3.]);
        let c = m.col(2);
        assert_eq!(c.shape(), (2, 1));
        assert_eq!(c[(1, 0)], 6.0);
    }

    #[test]
    fn eye_and_norm() {
        let i = Matrix::eye(3);
        assert_eq!(i[(1, 1)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert!((i.frob_norm() - 3f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn finite_check() {
        let mut m = Matrix::ones(2, 2);
        assert!(m.all_finite());
        m[(0, 1)] = f32::NAN;
        assert!(!m.all_finite());
    }
}
