//! Top-k selection per row — the primitive behind noisy top-K gating.

use crate::Matrix;

/// Indices of the `k` largest values in `row`, in descending value order.
/// Ties are broken by smaller index first (deterministic).
///
/// # Panics
/// Panics if `k == 0`, `k > row.len()`, or the row contains NaN.
#[must_use]
pub fn top_k_indices(row: &[f32], k: usize) -> Vec<usize> {
    assert!(
        k > 0 && k <= row.len(),
        "top_k_indices: k={k} out of range for row of {}",
        row.len()
    );
    let mut idx: Vec<usize> = (0..row.len()).collect();
    idx.sort_by(|&a, &b| {
        row[b]
            .partial_cmp(&row[a])
            .expect("top_k_indices: NaN in row")
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

/// The `k`-th largest value of `row` (1-indexed: `k = 1` is the max).
#[must_use]
pub fn kth_largest(row: &[f32], k: usize) -> f32 {
    let idx = top_k_indices(row, k);
    row[idx[k - 1]]
}

/// A 0/1 mask matrix with ones at the top-`k` entries of each row of `a`.
#[must_use]
pub fn row_topk_mask(a: &Matrix, k: usize) -> Matrix {
    let mut mask = Matrix::zeros(a.rows(), a.cols());
    for r in 0..a.rows() {
        for &c in &top_k_indices(a.row(r), k) {
            mask[(r, c)] = 1.0;
        }
    }
    mask
}

/// Replaces entries of `a` outside each row's top-`k` with `-inf`
/// (preparing a masked softmax, Eq. 6 of the paper).
#[must_use]
pub fn mask_non_topk_neg_inf(a: &Matrix, k: usize) -> Matrix {
    let mut out = Matrix::filled(a.rows(), a.cols(), f32::NEG_INFINITY);
    for r in 0..a.rows() {
        for &c in &top_k_indices(a.row(r), k) {
            out[(r, c)] = a[(r, c)];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_largest_descending() {
        let row = [0.1, 5.0, -2.0, 3.0, 4.0];
        assert_eq!(top_k_indices(&row, 3), vec![1, 4, 3]);
        assert_eq!(kth_largest(&row, 1), 5.0);
        assert_eq!(kth_largest(&row, 3), 3.0);
    }

    #[test]
    fn ties_break_by_index() {
        let row = [2.0, 2.0, 2.0];
        assert_eq!(top_k_indices(&row, 2), vec![0, 1]);
    }

    #[test]
    fn k_equals_len() {
        let row = [1.0, 3.0, 2.0];
        assert_eq!(top_k_indices(&row, 3), vec![1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn k_zero_panics() {
        let _ = top_k_indices(&[1.0], 0);
    }

    #[test]
    fn mask_has_k_ones_per_row() {
        let a = Matrix::from_rows(&[&[1., 4., 2., 3.], &[9., 1., 8., 7.]]);
        let m = row_topk_mask(&a, 2);
        for r in 0..2 {
            let ones: f32 = m.row(r).iter().sum();
            assert_eq!(ones, 2.0);
        }
        assert_eq!(m[(0, 1)], 1.0);
        assert_eq!(m[(0, 3)], 1.0);
        assert_eq!(m[(1, 0)], 1.0);
        assert_eq!(m[(1, 2)], 1.0);
    }

    #[test]
    fn neg_inf_mask_keeps_topk_values() {
        let a = Matrix::from_rows(&[&[1., 4., 2., 3.]]);
        let m = mask_non_topk_neg_inf(&a, 2);
        assert_eq!(m[(0, 1)], 4.0);
        assert_eq!(m[(0, 3)], 3.0);
        assert_eq!(m[(0, 0)], f32::NEG_INFINITY);
        assert_eq!(m[(0, 2)], f32::NEG_INFINITY);
    }
}
