//! Top-k selection per row — the primitive behind noisy top-K gating.

use crate::Matrix;

/// Indices of the `k` largest values in `row`, in descending value order.
/// Ties are broken by smaller index first (deterministic).
///
/// Uses partial selection (`select_nth_unstable_by` to split off the
/// winning `k`, then a sort of that prefix only), so the gate hot path
/// pays `O(n + k log k)` per row instead of a full `O(n log n)` sort.
/// The comparator is a strict total order (descending value, ties by
/// ascending index), so the output is *identical* to fully sorting the
/// row and truncating — the partial and full algorithms cannot disagree
/// on membership or order.
///
/// # Panics
/// Panics if `k == 0`, `k > row.len()`, or the row contains NaN.
#[must_use]
pub fn top_k_indices(row: &[f32], k: usize) -> Vec<usize> {
    assert!(
        k > 0 && k <= row.len(),
        "top_k_indices: k={k} out of range for row of {}",
        row.len()
    );
    let cmp = |&a: &usize, &b: &usize| {
        row[b]
            .partial_cmp(&row[a])
            .expect("top_k_indices: NaN in row")
            .then(a.cmp(&b))
    };
    let mut idx: Vec<usize> = (0..row.len()).collect();
    if k < idx.len() {
        idx.select_nth_unstable_by(k - 1, cmp);
        idx.truncate(k);
    }
    idx.sort_unstable_by(cmp);
    idx
}

/// The `k`-th largest value of `row` (1-indexed: `k = 1` is the max).
#[must_use]
pub fn kth_largest(row: &[f32], k: usize) -> f32 {
    let idx = top_k_indices(row, k);
    row[idx[k - 1]]
}

/// A 0/1 mask matrix with ones at the top-`k` entries of each row of `a`.
#[must_use]
pub fn row_topk_mask(a: &Matrix, k: usize) -> Matrix {
    let mut mask = Matrix::zeros(a.rows(), a.cols());
    for r in 0..a.rows() {
        for &c in &top_k_indices(a.row(r), k) {
            mask[(r, c)] = 1.0;
        }
    }
    mask
}

/// Replaces entries of `a` outside each row's top-`k` with `-inf`
/// (preparing a masked softmax, Eq. 6 of the paper).
#[must_use]
pub fn mask_non_topk_neg_inf(a: &Matrix, k: usize) -> Matrix {
    let mut out = Matrix::filled(a.rows(), a.cols(), f32::NEG_INFINITY);
    for r in 0..a.rows() {
        for &c in &top_k_indices(a.row(r), k) {
            out[(r, c)] = a[(r, c)];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_largest_descending() {
        let row = [0.1, 5.0, -2.0, 3.0, 4.0];
        assert_eq!(top_k_indices(&row, 3), vec![1, 4, 3]);
        assert_eq!(kth_largest(&row, 1), 5.0);
        assert_eq!(kth_largest(&row, 3), 3.0);
    }

    #[test]
    fn ties_break_by_index() {
        let row = [2.0, 2.0, 2.0];
        assert_eq!(top_k_indices(&row, 2), vec![0, 1]);
    }

    #[test]
    fn k_equals_len() {
        let row = [1.0, 3.0, 2.0];
        assert_eq!(top_k_indices(&row, 3), vec![1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn k_zero_panics() {
        let _ = top_k_indices(&[1.0], 0);
    }

    /// The pre-optimisation implementation: full sort, then truncate.
    /// Kept as the test oracle for the partial-selection fast path.
    fn top_k_indices_full_sort(row: &[f32], k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..row.len()).collect();
        idx.sort_by(|&a, &b| {
            row[b]
                .partial_cmp(&row[a])
                .expect("top_k_indices: NaN in row")
                .then(a.cmp(&b))
        });
        idx.truncate(k);
        idx
    }

    #[test]
    fn partial_selection_matches_full_sort() {
        // Pseudo-random rows (LCG; no external crates) across lengths
        // and k values, plus heavy ties — membership AND order must
        // match the old full-sort implementation exactly.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        for len in [1usize, 2, 3, 7, 16, 64] {
            for trial in 0..20 {
                let row: Vec<f32> = (0..len)
                    .map(|_| {
                        let v = next();
                        // Every third trial quantises hard to force ties.
                        if trial % 3 == 0 {
                            (v * 4.0).round() / 4.0
                        } else {
                            v
                        }
                    })
                    .collect();
                for k in 1..=len {
                    assert_eq!(
                        top_k_indices(&row, k),
                        top_k_indices_full_sort(&row, k),
                        "len={len} k={k} row={row:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn partial_selection_matches_full_sort_on_all_equal() {
        let row = [1.5f32; 9];
        for k in 1..=9 {
            assert_eq!(
                top_k_indices(&row, k),
                top_k_indices_full_sort(&row, k),
                "k={k}"
            );
            assert_eq!(top_k_indices(&row, k), (0..k).collect::<Vec<_>>());
        }
    }

    #[test]
    #[should_panic(expected = "NaN in row")]
    fn nan_still_panics_with_partial_selection() {
        let _ = top_k_indices(&[1.0, f32::NAN, 2.0, 0.5], 2);
    }

    #[test]
    fn mask_has_k_ones_per_row() {
        let a = Matrix::from_rows(&[&[1., 4., 2., 3.], &[9., 1., 8., 7.]]);
        let m = row_topk_mask(&a, 2);
        for r in 0..2 {
            let ones: f32 = m.row(r).iter().sum();
            assert_eq!(ones, 2.0);
        }
        assert_eq!(m[(0, 1)], 1.0);
        assert_eq!(m[(0, 3)], 1.0);
        assert_eq!(m[(1, 0)], 1.0);
        assert_eq!(m[(1, 2)], 1.0);
    }

    #[test]
    fn neg_inf_mask_keeps_topk_values() {
        let a = Matrix::from_rows(&[&[1., 4., 2., 3.]]);
        let m = mask_non_topk_neg_inf(&a, 2);
        assert_eq!(m[(0, 1)], 4.0);
        assert_eq!(m[(0, 3)], 3.0);
        assert_eq!(m[(0, 0)], f32::NEG_INFINITY);
        assert_eq!(m[(0, 2)], f32::NEG_INFINITY);
    }
}
