//! Reductions over rows, columns and the whole matrix.

use crate::Matrix;

/// Sum of all elements.
#[must_use]
pub fn sum(a: &Matrix) -> f32 {
    a.as_slice().iter().sum()
}

/// Mean of all elements.
#[must_use]
pub fn mean(a: &Matrix) -> f32 {
    sum(a) / a.len() as f32
}

/// Population variance of all elements.
#[must_use]
pub fn variance(a: &Matrix) -> f32 {
    let mu = mean(a);
    a.as_slice()
        .iter()
        .map(|v| (v - mu) * (v - mu))
        .sum::<f32>()
        / a.len() as f32
}

/// Row sums: `m x n -> m x 1`.
#[must_use]
pub fn row_sum(a: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), 1);
    for r in 0..a.rows() {
        out[(r, 0)] = a.row(r).iter().sum();
    }
    out
}

/// Row means: `m x n -> m x 1`.
#[must_use]
pub fn row_mean(a: &Matrix) -> Matrix {
    let mut out = row_sum(a);
    let inv = 1.0 / a.cols() as f32;
    out.as_mut_slice().iter_mut().for_each(|v| *v *= inv);
    out
}

/// Column sums: `m x n -> 1 x n`.
#[must_use]
pub fn col_sum(a: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(1, a.cols());
    for r in 0..a.rows() {
        let dst = out.row_mut(0);
        for (d, &v) in dst.iter_mut().zip(a.row(r)) {
            *d += v;
        }
    }
    out
}

/// Column means: `m x n -> 1 x n`.
#[must_use]
pub fn col_mean(a: &Matrix) -> Matrix {
    let mut out = col_sum(a);
    let inv = 1.0 / a.rows() as f32;
    out.as_mut_slice().iter_mut().for_each(|v| *v *= inv);
    out
}

/// Index of the maximum element in each row.
#[must_use]
pub fn row_argmax(a: &Matrix) -> Vec<usize> {
    (0..a.rows())
        .map(|r| {
            a.row(r)
                .iter()
                .enumerate()
                .max_by(|x, y| x.1.partial_cmp(y.1).expect("row_argmax: NaN in row"))
                .map(|(i, _)| i)
                .expect("row_argmax: empty row")
        })
        .collect()
}

/// Maximum element of the whole matrix.
///
/// # Panics
/// Panics on NaN.
#[must_use]
pub fn max(a: &Matrix) -> f32 {
    a.as_slice()
        .iter()
        .copied()
        .fold(f32::NEG_INFINITY, |m, v| {
            assert!(!v.is_nan(), "max: NaN element");
            m.max(v)
        })
}

/// Minimum element of the whole matrix.
///
/// # Panics
/// Panics on NaN.
#[must_use]
pub fn min(a: &Matrix) -> f32 {
    a.as_slice().iter().copied().fold(f32::INFINITY, |m, v| {
        assert!(!v.is_nan(), "min: NaN element");
        m.min(v)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> Matrix {
        Matrix::from_rows(&[&[1., 2., 3.], &[4., 5., 6.]])
    }

    #[test]
    fn scalar_reductions() {
        assert_eq!(sum(&m()), 21.0);
        assert_eq!(mean(&m()), 3.5);
        assert!((variance(&m()) - 35.0 / 12.0).abs() < 1e-6);
        assert_eq!(max(&m()), 6.0);
        assert_eq!(min(&m()), 1.0);
    }

    #[test]
    fn axis_reductions() {
        let rs = row_sum(&m());
        assert_eq!(rs.as_slice(), &[6.0, 15.0]);
        let cs = col_sum(&m());
        assert_eq!(cs.as_slice(), &[5.0, 7.0, 9.0]);
        let rm = row_mean(&m());
        assert_eq!(rm.as_slice(), &[2.0, 5.0]);
        let cm = col_mean(&m());
        assert_eq!(cm.as_slice(), &[2.5, 3.5, 4.5]);
    }

    #[test]
    fn argmax_rows() {
        let a = Matrix::from_rows(&[&[1., 9., 3.], &[7., 5., 6.]]);
        assert_eq!(row_argmax(&a), vec![1, 0]);
    }
}
