//! Minimal seeded property-testing harness.
//!
//! The workspace builds offline with no external crates, so the
//! proptest-style tests are driven by this helper instead: a fixed
//! number of cases, each derived from a per-case seed, with the failing
//! seed reported so a collapse can be replayed as a one-liner.
//!
//! ```
//! use amoe_tensor::check::{self, Checker};
//!
//! Checker::new("add_commutes").run(|rng| {
//!     let (r, c) = check::dims(rng, 1, 8);
//!     let a = check::matrix(rng, r, c, 10.0);
//!     let b = check::matrix(rng, r, c, 10.0);
//!     check::ensure(
//!         amoe_tensor::ops::add(&a, &b) == amoe_tensor::ops::add(&b, &a),
//!         "addition must commute",
//!     )
//! });
//! ```
//!
//! Environment knobs: `AMOE_CHECK_CASES` overrides the case count,
//! `AMOE_CHECK_SEED` pins the base seed (use the value printed by a
//! failure report to replay it).

use crate::rng::{splitmix64, Rng};
use crate::Matrix;

/// Default number of generated cases per property.
pub const DEFAULT_CASES: usize = 256;

/// Outcome of one property evaluation: `Err` carries the message shown
/// in the failure report.
pub type CaseResult = Result<(), String>;

/// Convenience constructor for property results.
///
/// # Errors
/// Returns `Err(msg)` when `cond` is false.
pub fn ensure(cond: bool, msg: impl Into<String>) -> CaseResult {
    if cond {
        Ok(())
    } else {
        Err(msg.into())
    }
}

/// A property runner: evaluates a closure over many seeded cases and
/// panics with a replayable report on the first failure.
pub struct Checker {
    label: String,
    cases: usize,
    base_seed: u64,
}

impl Checker {
    /// Creates a runner for the property `label`, honouring the
    /// `AMOE_CHECK_CASES` / `AMOE_CHECK_SEED` environment overrides.
    /// The default base seed is derived from the label so distinct
    /// properties explore distinct inputs.
    #[must_use]
    pub fn new(label: &str) -> Self {
        let cases = std::env::var("AMOE_CHECK_CASES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_CASES);
        let base_seed = std::env::var("AMOE_CHECK_SEED")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| {
                let mut h = 0xA0E5_EED5_u64;
                for b in label.bytes() {
                    h = splitmix64(&mut h) ^ u64::from(b);
                }
                h
            });
        Checker {
            label: label.to_string(),
            cases,
            base_seed,
        }
    }

    /// Overrides the number of cases (e.g. for expensive properties).
    #[must_use]
    pub fn cases(mut self, cases: usize) -> Self {
        self.cases = cases;
        self
    }

    /// Evaluates the property once per case, each case seeded with
    /// `splitmix64(base_seed + case_index)`.
    ///
    /// # Panics
    /// Panics on the first failing case, reporting the property label,
    /// case index, message, and the `AMOE_CHECK_SEED` value that replays
    /// exactly that case (with `AMOE_CHECK_CASES=1`).
    pub fn run(&self, mut property: impl FnMut(&mut Rng) -> CaseResult) {
        for case in 0..self.cases {
            let mut state = self.base_seed.wrapping_add(case as u64);
            let case_seed = splitmix64(&mut state);
            let mut rng = Rng::seed_from(case_seed);
            if let Err(msg) = property(&mut rng) {
                panic!(
                    "property '{}' failed at case {}/{}: {}\n  replay with: \
                     AMOE_CHECK_SEED={} AMOE_CHECK_CASES=1",
                    self.label,
                    case,
                    self.cases,
                    msg,
                    self.base_seed.wrapping_add(case as u64),
                );
            }
        }
    }
}

/// Draws a `(rows, cols)` pair uniformly in `[lo, hi]` each.
#[must_use]
pub fn dims(rng: &mut Rng, lo: usize, hi: usize) -> (usize, usize) {
    assert!(lo >= 1 && lo <= hi, "check::dims: bad range {lo}..={hi}");
    let span = hi - lo + 1;
    (lo + rng.below(span), lo + rng.below(span))
}

/// A `rows x cols` matrix with entries uniform in `[-amplitude, amplitude)`.
#[must_use]
pub fn matrix(rng: &mut Rng, rows: usize, cols: usize, amplitude: f32) -> Matrix {
    rng.uniform_matrix(rows, cols, -amplitude, amplitude)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0usize;
        Checker::new("always_true").cases(17).run(|_| {
            seen += 1;
            Ok(())
        });
        assert_eq!(seen, 17);
    }

    #[test]
    #[should_panic(expected = "property 'always_false' failed at case 0")]
    fn failing_property_reports_seed() {
        Checker::new("always_false")
            .cases(4)
            .run(|_| Err("intentional".to_string()));
    }

    #[test]
    fn dims_in_range() {
        let mut rng = Rng::seed_from(1);
        for _ in 0..100 {
            let (r, c) = dims(&mut rng, 2, 9);
            assert!((2..=9).contains(&r) && (2..=9).contains(&c));
        }
    }

    #[test]
    fn matrix_respects_amplitude() {
        let mut rng = Rng::seed_from(2);
        let m = matrix(&mut rng, 6, 6, 2.5);
        assert!(m.as_slice().iter().all(|v| (-2.5..2.5).contains(v)));
    }
}
