//! Minimal seeded property-testing harness.
//!
//! The workspace builds offline with no external crates, so the
//! proptest-style tests are driven by this helper instead: a fixed
//! number of cases, each derived from a per-case seed, with the failing
//! seed reported so a collapse can be replayed as a one-liner.
//!
//! ```
//! use amoe_tensor::check::{self, Checker};
//!
//! Checker::new("add_commutes").run(|rng| {
//!     let (r, c) = check::dims(rng, 1, 8);
//!     let a = check::matrix(rng, r, c, 10.0);
//!     let b = check::matrix(rng, r, c, 10.0);
//!     check::ensure(
//!         amoe_tensor::ops::add(&a, &b) == amoe_tensor::ops::add(&b, &a),
//!         "addition must commute",
//!     )
//! });
//! ```
//!
//! Environment knobs: `AMOE_CHECK_CASES` overrides the case count,
//! `AMOE_CHECK_SEED` pins the base seed (use the value printed by a
//! failure report to replay it).

use crate::rng::{splitmix64, Rng};
use crate::Matrix;

/// Default number of generated cases per property.
pub const DEFAULT_CASES: usize = 256;

/// Outcome of one property evaluation: `Err` carries the message shown
/// in the failure report.
pub type CaseResult = Result<(), String>;

/// Convenience constructor for property results.
///
/// # Errors
/// Returns `Err(msg)` when `cond` is false.
pub fn ensure(cond: bool, msg: impl Into<String>) -> CaseResult {
    if cond {
        Ok(())
    } else {
        Err(msg.into())
    }
}

/// A property runner: evaluates a closure over many seeded cases and
/// panics with a replayable report on the first failure.
pub struct Checker {
    label: String,
    cases: usize,
    base_seed: u64,
}

impl Checker {
    /// Creates a runner for the property `label`, honouring the
    /// `AMOE_CHECK_CASES` / `AMOE_CHECK_SEED` environment overrides.
    /// The default base seed is derived from the label so distinct
    /// properties explore distinct inputs.
    #[must_use]
    pub fn new(label: &str) -> Self {
        let cases = std::env::var("AMOE_CHECK_CASES")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_CASES);
        let base_seed = std::env::var("AMOE_CHECK_SEED")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| {
                let mut h = 0xA0E5_EED5_u64;
                for b in label.bytes() {
                    h = splitmix64(&mut h) ^ u64::from(b);
                }
                h
            });
        Checker {
            label: label.to_string(),
            cases,
            base_seed,
        }
    }

    /// Overrides the number of cases (e.g. for expensive properties).
    #[must_use]
    pub fn cases(mut self, cases: usize) -> Self {
        self.cases = cases;
        self
    }

    /// Evaluates the property once per case, each case seeded with
    /// `splitmix64(base_seed + case_index)`.
    ///
    /// # Panics
    /// Panics on the first failing case, reporting the property label,
    /// case index, message, and the `AMOE_CHECK_SEED` value that replays
    /// exactly that case (with `AMOE_CHECK_CASES=1`).
    pub fn run(&self, mut property: impl FnMut(&mut Rng) -> CaseResult) {
        for case in 0..self.cases {
            let mut state = self.base_seed.wrapping_add(case as u64);
            let case_seed = splitmix64(&mut state);
            let mut rng = Rng::seed_from(case_seed);
            if let Err(msg) = property(&mut rng) {
                panic!(
                    "property '{}' failed at case {}/{}: {}\n  replay with: \
                     AMOE_CHECK_SEED={} AMOE_CHECK_CASES=1",
                    self.label,
                    case,
                    self.cases,
                    msg,
                    self.base_seed.wrapping_add(case as u64),
                );
            }
        }
    }
}

/// Asserts `|a - b| <= atol + rtol * |b|` (the [`crate::is_close`]
/// contract), panicking with the context string and both values.
///
/// The workspace's tests used to hand-roll `(a - b).abs() < eps`
/// comparisons with inconsistent epsilons; this is the one spelling
/// they migrate to. `#[track_caller]` points the panic at the test
/// line, not here.
///
/// # Panics
/// Panics when the values are not close (NaNs are never close).
#[track_caller]
pub fn assert_close_rel(a: f32, b: f32, rtol: f32, atol: f32, context: &str) {
    assert!(
        crate::is_close(a, b, rtol, atol),
        "{context}: {a} vs {b} (rtol {rtol}, atol {atol}, |diff| {})",
        (a - b).abs()
    );
}

/// Slice form of [`assert_close_rel`]: asserts equal lengths and
/// element-wise closeness, reporting the first offending index.
///
/// # Panics
/// Panics on a length mismatch or the first element pair that is not
/// close.
#[track_caller]
pub fn assert_close_rel_slice(a: &[f32], b: &[f32], rtol: f32, atol: f32, context: &str) {
    assert_eq!(
        a.len(),
        b.len(),
        "{context}: length mismatch {} vs {}",
        a.len(),
        b.len()
    );
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        assert!(
            crate::is_close(x, y, rtol, atol),
            "{context}: index {i}: {x} vs {y} (rtol {rtol}, atol {atol}, |diff| {})",
            (x - y).abs()
        );
    }
}

/// Draws a `(rows, cols)` pair uniformly in `[lo, hi]` each.
#[must_use]
pub fn dims(rng: &mut Rng, lo: usize, hi: usize) -> (usize, usize) {
    assert!(lo >= 1 && lo <= hi, "check::dims: bad range {lo}..={hi}");
    let span = hi - lo + 1;
    (lo + rng.below(span), lo + rng.below(span))
}

/// A `rows x cols` matrix with entries uniform in `[-amplitude, amplitude)`.
#[must_use]
pub fn matrix(rng: &mut Rng, rows: usize, cols: usize, amplitude: f32) -> Matrix {
    rng.uniform_matrix(rows, cols, -amplitude, amplitude)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0usize;
        Checker::new("always_true").cases(17).run(|_| {
            seen += 1;
            Ok(())
        });
        assert_eq!(seen, 17);
    }

    #[test]
    #[should_panic(expected = "property 'always_false' failed at case 0")]
    fn failing_property_reports_seed() {
        Checker::new("always_false")
            .cases(4)
            .run(|_| Err("intentional".to_string()));
    }

    #[test]
    fn dims_in_range() {
        let mut rng = Rng::seed_from(1);
        for _ in 0..100 {
            let (r, c) = dims(&mut rng, 2, 9);
            assert!((2..=9).contains(&r) && (2..=9).contains(&c));
        }
    }

    #[test]
    fn assert_close_rel_accepts_close_values() {
        assert_close_rel(1.0, 1.0001, 1e-3, 0.0, "relative slack");
        assert_close_rel(0.0, 1e-9, 0.0, 1e-8, "absolute slack");
        assert_close_rel_slice(&[1.0, 2.0], &[1.0, 2.0], 0.0, 0.0, "exact");
    }

    #[test]
    #[should_panic(expected = "drift: 1 vs 1.1")]
    fn assert_close_rel_rejects_far_values() {
        assert_close_rel(1.0, 1.1, 1e-3, 0.0, "drift");
    }

    #[test]
    #[should_panic(expected = "lens: length mismatch 2 vs 1")]
    fn assert_close_rel_slice_rejects_length_mismatch() {
        assert_close_rel_slice(&[1.0, 2.0], &[1.0], 1e-3, 0.0, "lens");
    }

    #[test]
    fn matrix_respects_amplitude() {
        let mut rng = Rng::seed_from(2);
        let m = matrix(&mut rng, 6, 6, 2.5);
        assert!(m.as_slice().iter().all(|v| (-2.5..2.5).contains(v)));
    }
}
