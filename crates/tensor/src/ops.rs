//! Element-wise operations, broadcasts and maps on [`Matrix`].
//!
//! All binary ops validate shapes and panic with the operation name on
//! mismatch; broadcasting is explicit (dedicated `*_row` / `*_col`
//! functions) rather than implicit numpy-style, which keeps gradients in
//! the autograd layer unambiguous.

use crate::Matrix;

macro_rules! binary_op {
    ($name:ident, $op:tt) => {
        /// Element-wise binary operation; returns a new matrix.
        ///
        /// # Panics
        /// Panics if shapes differ.
        #[must_use]
        pub fn $name(a: &Matrix, b: &Matrix) -> Matrix {
            assert_eq!(
                a.shape(),
                b.shape(),
                concat!(stringify!($name), ": shape mismatch {:?} vs {:?}"),
                a.shape(),
                b.shape()
            );
            let mut out = a.clone();
            // The assignment must stay in `x = x op y` form: `$op` is a
            // generic binary operator token, for which no compound
            // assignment token exists in macro position.
            #[allow(clippy::assign_op_pattern)]
            out.as_mut_slice()
                .iter_mut()
                .zip(b.as_slice())
                .for_each(|(x, &y)| *x = *x $op y);
            out
        }
    };
}

binary_op!(add, +);
binary_op!(sub, -);
binary_op!(mul, *);
binary_op!(div, /);

/// In-place `a += b`.
pub fn add_assign(a: &mut Matrix, b: &Matrix) {
    assert_eq!(
        a.shape(),
        b.shape(),
        "add_assign: shape mismatch {:?} vs {:?}",
        a.shape(),
        b.shape()
    );
    a.as_mut_slice()
        .iter_mut()
        .zip(b.as_slice())
        .for_each(|(x, &y)| *x += y);
}

/// In-place `a += s * b` (axpy).
pub fn axpy(a: &mut Matrix, s: f32, b: &Matrix) {
    assert_eq!(
        a.shape(),
        b.shape(),
        "axpy: shape mismatch {:?} vs {:?}",
        a.shape(),
        b.shape()
    );
    a.as_mut_slice()
        .iter_mut()
        .zip(b.as_slice())
        .for_each(|(x, &y)| *x += s * y);
}

/// Returns `a * s` element-wise.
#[must_use]
pub fn scale(a: &Matrix, s: f32) -> Matrix {
    map(a, |v| v * s)
}

/// Returns `a + s` element-wise.
#[must_use]
pub fn add_scalar(a: &Matrix, s: f32) -> Matrix {
    map(a, |v| v + s)
}

/// Applies `f` element-wise, producing a new matrix.
#[must_use]
pub fn map(a: &Matrix, f: impl Fn(f32) -> f32) -> Matrix {
    let mut out = a.clone();
    out.as_mut_slice().iter_mut().for_each(|v| *v = f(*v));
    out
}

/// Applies `f` to corresponding elements of two same-shape matrices.
#[must_use]
pub fn zip_map(a: &Matrix, b: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
    assert_eq!(
        a.shape(),
        b.shape(),
        "zip_map: shape mismatch {:?} vs {:?}",
        a.shape(),
        b.shape()
    );
    let mut out = a.clone();
    out.as_mut_slice()
        .iter_mut()
        .zip(b.as_slice())
        .for_each(|(x, &y)| *x = f(*x, y));
    out
}

/// Adds a `1 x n` row vector to every row of an `m x n` matrix.
///
/// # Panics
/// Panics if `row` is not `1 x a.cols()`.
#[must_use]
pub fn add_row_broadcast(a: &Matrix, row: &Matrix) -> Matrix {
    assert_eq!(
        (1, a.cols()),
        row.shape(),
        "add_row_broadcast: expected 1x{} row, got {:?}",
        a.cols(),
        row.shape()
    );
    let mut out = a.clone();
    let rv = row.as_slice();
    for r in 0..out.rows() {
        out.row_mut(r)
            .iter_mut()
            .zip(rv)
            .for_each(|(x, &y)| *x += y);
    }
    out
}

/// Multiplies every row of an `m x n` matrix by an `m x 1` column vector
/// (each row scaled by its own factor).
///
/// # Panics
/// Panics if `col` is not `a.rows() x 1`.
#[must_use]
pub fn mul_col_broadcast(a: &Matrix, col: &Matrix) -> Matrix {
    assert_eq!(
        (a.rows(), 1),
        col.shape(),
        "mul_col_broadcast: expected {}x1 col, got {:?}",
        a.rows(),
        col.shape()
    );
    let mut out = a.clone();
    for r in 0..out.rows() {
        let s = col[(r, 0)];
        out.row_mut(r).iter_mut().for_each(|x| *x *= s);
    }
    out
}

/// Numerically stable logistic sigmoid.
#[inline]
#[must_use]
pub fn sigmoid_scalar(x: f32) -> f32 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

/// Element-wise logistic sigmoid.
#[must_use]
pub fn sigmoid(a: &Matrix) -> Matrix {
    map(a, sigmoid_scalar)
}

/// Element-wise ReLU.
#[must_use]
pub fn relu(a: &Matrix) -> Matrix {
    map(a, |v| v.max(0.0))
}

/// Numerically stable softplus `ln(1 + e^x)`.
#[inline]
#[must_use]
pub fn softplus_scalar(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// Element-wise softplus.
#[must_use]
pub fn softplus(a: &Matrix) -> Matrix {
    map(a, softplus_scalar)
}

/// Row-wise numerically stable softmax. Entries equal to `f32::NEG_INFINITY`
/// receive exactly zero probability (used by top-K masking).
///
/// # Panics
/// Panics if a row is entirely `-inf` (the distribution would be undefined).
#[must_use]
pub fn softmax_rows(a: &Matrix) -> Matrix {
    let mut out = a.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        assert!(
            max > f32::NEG_INFINITY,
            "softmax_rows: row {r} is entirely -inf"
        );
        let mut sum = 0.0;
        for v in row.iter_mut() {
            if *v == f32::NEG_INFINITY {
                *v = 0.0;
            } else {
                *v = (*v - max).exp();
                sum += *v;
            }
        }
        let inv = 1.0 / sum;
        row.iter_mut().for_each(|v| *v *= inv);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assert_close;

    fn m(rows: &[&[f32]]) -> Matrix {
        Matrix::from_rows(rows)
    }

    #[test]
    fn arithmetic() {
        let a = m(&[&[1., 2.], &[3., 4.]]);
        let b = m(&[&[5., 6.], &[7., 8.]]);
        assert_eq!(add(&a, &b).row(0), &[6., 8.]);
        assert_eq!(sub(&b, &a).row(1), &[4., 4.]);
        assert_eq!(mul(&a, &b).row(0), &[5., 12.]);
        assert_eq!(div(&b, &a).row(1), &[7. / 3., 2.]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let _ = add(&Matrix::ones(2, 2), &Matrix::ones(2, 3));
    }

    #[test]
    fn axpy_and_assign() {
        let mut a = m(&[&[1., 1.]]);
        add_assign(&mut a, &m(&[&[2., 3.]]));
        assert_eq!(a.row(0), &[3., 4.]);
        axpy(&mut a, -2.0, &m(&[&[1., 1.]]));
        assert_eq!(a.row(0), &[1., 2.]);
    }

    #[test]
    fn broadcasts() {
        let a = m(&[&[1., 2.], &[3., 4.]]);
        let r = add_row_broadcast(&a, &m(&[&[10., 20.]]));
        assert_eq!(r.row(1), &[13., 24.]);
        let c = mul_col_broadcast(&a, &Matrix::from_vec(2, 1, vec![2., 3.]));
        assert_eq!(c.row(0), &[2., 4.]);
        assert_eq!(c.row(1), &[9., 12.]);
    }

    #[test]
    fn sigmoid_stability() {
        assert!((sigmoid_scalar(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid_scalar(100.0) > 0.9999);
        assert!(sigmoid_scalar(-100.0) < 1e-4);
        assert!(sigmoid_scalar(-1000.0).is_finite());
        assert!(sigmoid_scalar(1000.0).is_finite());
    }

    #[test]
    fn softplus_stability() {
        assert!((softplus_scalar(0.0) - (2f32).ln()).abs() < 1e-6);
        assert!((softplus_scalar(50.0) - 50.0).abs() < 1e-4);
        assert!(softplus_scalar(-50.0) >= 0.0);
        assert!(softplus_scalar(-50.0) < 1e-6);
    }

    #[test]
    fn softmax_sums_to_one() {
        let s = softmax_rows(&m(&[&[1., 2., 3.], &[-1., 0., 1.]]));
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        assert!(s[(0, 2)] > s[(0, 1)] && s[(0, 1)] > s[(0, 0)]);
    }

    #[test]
    fn softmax_neg_inf_masked() {
        let s = softmax_rows(&m(&[&[1.0, f32::NEG_INFINITY, 3.0]]));
        assert_eq!(s[(0, 1)], 0.0);
        assert!((s.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_large_values_stable() {
        let s = softmax_rows(&m(&[&[1000.0, 1000.0]]));
        assert_close(&s, &m(&[&[0.5, 0.5]]), 1e-5, 1e-6);
    }

    #[test]
    fn relu_clamps() {
        let r = relu(&m(&[&[-1.0, 0.0, 2.5]]));
        assert_eq!(r.row(0), &[0.0, 0.0, 2.5]);
    }
}
