//! Plain `std::time::Instant` micro-benchmark harness.
//!
//! The workspace builds offline with no external crates, so the bench
//! targets time closures directly: a few warm-up runs, then `reps`
//! measured runs, reporting the minimum (least-noise) and mean wall
//! time. Set `AMOE_BENCH_SMOKE=1` (or pass `--smoke` to the bench
//! binaries) to shrink repetitions to a CI-friendly smoke pass.

use std::hint::black_box;
use std::time::Instant;

/// Repetition policy for one benchmark run.
#[derive(Clone, Copy, Debug)]
pub struct Timer {
    /// Unmeasured warm-up invocations.
    pub warmup: usize,
    /// Measured invocations.
    pub reps: usize,
}

impl Timer {
    /// Full-fidelity defaults.
    #[must_use]
    pub fn standard() -> Self {
        Timer {
            warmup: 3,
            reps: 15,
        }
    }

    /// Minimal repetitions for CI smoke runs.
    #[must_use]
    pub fn smoke() -> Self {
        Timer { warmup: 1, reps: 2 }
    }

    /// Picks [`Timer::smoke`] when `AMOE_BENCH_SMOKE=1` is set or
    /// `--smoke` appears in the process arguments.
    #[must_use]
    pub fn from_env() -> Self {
        let smoke = std::env::var("AMOE_BENCH_SMOKE").is_ok_and(|v| v.trim() == "1")
            || std::env::args().any(|a| a == "--smoke");
        if smoke {
            Self::smoke()
        } else {
            Self::standard()
        }
    }

    /// Times `f`, returning `(min_ms, mean_ms)` over the measured reps.
    pub fn measure_ms<T>(&self, mut f: impl FnMut() -> T) -> (f64, f64) {
        for _ in 0..self.warmup {
            black_box(f());
        }
        let mut total = 0.0f64;
        let mut min = f64::INFINITY;
        for _ in 0..self.reps.max(1) {
            let t = Instant::now();
            black_box(f());
            let ms = t.elapsed().as_secs_f64() * 1e3;
            total += ms;
            min = min.min(ms);
        }
        (min, total / self.reps.max(1) as f64)
    }

    /// Times `f` and prints one aligned report row.
    pub fn report<T>(&self, label: &str, f: impl FnMut() -> T) -> (f64, f64) {
        let (min, mean) = self.measure_ms(f);
        println!("{label:<44} {min:>10.3} ms min {mean:>10.3} ms mean");
        (min, mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_positive_times() {
        let t = Timer { warmup: 0, reps: 3 };
        let (min, mean) = t.measure_ms(|| (0..1000).map(|i| i as f64).sum::<f64>());
        assert!(min >= 0.0 && mean >= min);
    }

    #[test]
    fn smoke_uses_fewer_reps() {
        assert!(Timer::smoke().reps < Timer::standard().reps);
    }
}
