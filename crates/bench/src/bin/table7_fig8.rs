//! Regenerates Table 7 / Figure 8 (per-expert case study).
fn main() {
    let cli = amoe_bench::parse_cli("table7_fig8");
    println!("{}", amoe_experiments::case_study::run(&cli.config));
}
