//! Load generator and latency harness for the `amoe-serve` service.
//!
//! By default the binary is fully self-contained: it trains a small
//! model on the synthetic dataset, starts an in-process [`Server`] on
//! an ephemeral loopback port, and drives it over real TCP through
//! six stages:
//!
//! 1. **closed-loop sweep** — N client threads, each firing the next
//!    request as soon as the previous reply lands; reports p50/p95/p99
//!    latency and throughput per client count;
//! 2. **open-loop stage** — paced senders at a fixed aggregate request
//!    rate (arrival process independent of service time);
//! 3. **reload-under-load** — a `RELOAD` hot-swap is issued while the
//!    closed-loop clients run; every in-flight request must succeed;
//! 4. **sharded sweep** — an open-loop pass against a server per
//!    shard count (1/2/4 batcher shards), reporting throughput and
//!    p99 vs shard count and cross-checking the v3 per-shard batcher
//!    counters against the aggregate snapshot;
//! 5. **scrape-under-load** — a server with the HTTP observability
//!    listener enabled takes identical open-loop passes with and
//!    without a concurrent 20 Hz `/metrics` scraper; every scrape must
//!    return 200 and pass the Prometheus exposition linter, scrape
//!    latency is bounded, and the best-of-N throughput delta between
//!    the two configurations must stay under 1 % (the scrape overhead
//!    contract);
//! 6. **overload burst** — a second server with a tiny queue and a
//!    throttled batcher takes a burst that must shed load with
//!    `OVERLOADED` replies;
//! 7. **quantized serving** — a server with `quantized: true` scores
//!    the probe rows; TCP-returned scores must stay within the
//!    documented tolerance of a local f32 oracle on identical weights
//!    (emitted as a `quant_parity` record), and a closed-loop pass
//!    reports int8-path latency.
//!
//! Each stage prints a human line and emits a `load_sweep_row` JSONL
//! event. When `AMOE_OBS` is set the run ends by flushing the sink and
//! validating the emitted `serve_request` records with the same
//! schema checks as `obs_smoke` (exit 1 on violation). Pass
//! `--addr HOST:PORT` to drive an external server instead (stages 3-7
//! and the JSONL validation are skipped: they need server-side
//! control). `--smoke` / `AMOE_BENCH_SMOKE=1` shrinks the workload for
//! CI.

use std::path::Path;
use std::process::exit;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use amoe_bench::obs_check;
use amoe_core::ranker::OptimConfig;
use amoe_core::serving::{ServingMoe, QUANT_SCORE_TOLERANCE};
use amoe_core::{MoeConfig, MoeModel, Ranker, TowerConfig};
use amoe_dataset::{generate, Batch, Dataset, Example, GeneratorConfig};
use amoe_obs::json::Value;
use amoe_serve::{Client, FeatureRow, ModelSpec, OverloadPolicy, ServeConfig, ServeError, Server};

fn fail(msg: &str) -> ! {
    eprintln!("load_sweep: FAIL: {msg}");
    exit(1);
}

fn smoke() -> bool {
    std::env::var("AMOE_BENCH_SMOKE").is_ok_and(|v| v.trim() == "1")
        || std::env::args().any(|a| a == "--smoke")
}

fn arg_value(key: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn to_feature_row(e: &Example) -> FeatureRow {
    FeatureRow {
        sc: e.pred_sc as u32,
        tc: e.pred_tc as u32,
        brand: e.brand as u32,
        shop: e.shop as u32,
        user_segment: e.user_segment as u32,
        price_bucket: e.price_bucket as u32,
        query: e.query,
        numeric: e.numeric.to_vec(),
    }
}

fn percentile_us(sorted: &[u64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64
}

struct StageResult {
    latencies_us: Vec<u64>,
    wall: Duration,
    sent: u64,
    overloaded: u64,
}

/// Runs `clients` closed-loop threads, each sending `requests`
/// score calls of `rows_per_req` rows. `OVERLOADED` replies are
/// counted and retried-as-skipped; any other failure aborts.
fn closed_loop(
    addr: std::net::SocketAddr,
    pool: &Arc<Vec<FeatureRow>>,
    clients: usize,
    requests: usize,
    rows_per_req: usize,
) -> StageResult {
    let overloaded = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        let pool = Arc::clone(pool);
        let overloaded = Arc::clone(&overloaded);
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr)
                .unwrap_or_else(|e| fail(&format!("client {c}: connect: {e}")));
            let mut latencies = Vec::with_capacity(requests);
            for r in 0..requests {
                let start = (c * requests + r) * rows_per_req % (pool.len() - rows_per_req);
                let rows = &pool[start..start + rows_per_req];
                let t = Instant::now();
                match client.score(rows) {
                    Ok(scores) => {
                        if scores.len() != rows_per_req {
                            fail(&format!("client {c}: wrong score count"));
                        }
                        latencies.push(t.elapsed().as_micros() as u64);
                    }
                    Err(ServeError::Overloaded) => {
                        overloaded.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(e) => fail(&format!("client {c}: request {r}: {e}")),
                }
            }
            latencies
        }));
    }
    let mut latencies_us = Vec::new();
    for h in handles {
        latencies_us.extend(h.join().unwrap_or_else(|_| fail("client thread panicked")));
    }
    latencies_us.sort_unstable();
    StageResult {
        latencies_us,
        wall: t0.elapsed(),
        sent: (clients * requests) as u64,
        overloaded: overloaded.load(Ordering::Relaxed),
    }
}

/// Paced senders at `rate_rps` aggregate, split across `clients`
/// threads. Send times follow a fixed schedule, so queueing delay
/// shows up in latency rather than shifting the arrival process.
fn open_loop(
    addr: std::net::SocketAddr,
    pool: &Arc<Vec<FeatureRow>>,
    clients: usize,
    requests: usize,
    rows_per_req: usize,
    rate_rps: f64,
) -> StageResult {
    let per_client_interval = Duration::from_secs_f64(clients as f64 / rate_rps);
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        let pool = Arc::clone(pool);
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr)
                .unwrap_or_else(|e| fail(&format!("open-loop client {c}: connect: {e}")));
            let base = Instant::now();
            let mut latencies = Vec::with_capacity(requests);
            for r in 0..requests {
                let due = base + per_client_interval.mul_f64(r as f64);
                if let Some(wait) = due.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                let start = (c * requests + r) * rows_per_req % (pool.len() - rows_per_req);
                let t = Instant::now();
                match client.score(&pool[start..start + rows_per_req]) {
                    Ok(_) => latencies.push(t.elapsed().as_micros() as u64),
                    Err(ServeError::Overloaded) => {}
                    Err(e) => fail(&format!("open-loop client {c}: {e}")),
                }
            }
            latencies
        }));
    }
    let mut latencies_us = Vec::new();
    for h in handles {
        latencies_us.extend(h.join().unwrap_or_else(|_| fail("client thread panicked")));
    }
    latencies_us.sort_unstable();
    StageResult {
        latencies_us,
        wall: t0.elapsed(),
        sent: (clients * requests) as u64,
        overloaded: 0,
    }
}

fn report(mode: &str, clients: usize, rows_per_req: usize, shards: usize, result: &StageResult) {
    if result.latencies_us.is_empty() {
        fail(&format!("{mode}: no successful requests"));
    }
    let p50 = percentile_us(&result.latencies_us, 0.50);
    let p95 = percentile_us(&result.latencies_us, 0.95);
    let p99 = percentile_us(&result.latencies_us, 0.99);
    let throughput = result.latencies_us.len() as f64 / result.wall.as_secs_f64();
    if !(p50.is_finite() && p95.is_finite() && p99.is_finite() && throughput.is_finite()) {
        fail(&format!("{mode}: non-finite latency statistics"));
    }
    if throughput <= 0.0 {
        fail(&format!("{mode}: zero throughput"));
    }
    println!(
        "load_sweep[{mode}] clients={clients} rows/req={rows_per_req} shards={shards} \
         ok={} overloaded={} p50={p50:.0}us p95={p95:.0}us p99={p99:.0}us {throughput:.0} req/s",
        result.latencies_us.len(),
        result.overloaded,
    );
    amoe_obs::emit(
        &amoe_obs::Event::new("load_sweep_row")
            .str("mode", mode)
            .u64("clients", clients as u64)
            .u64("rows_per_req", rows_per_req as u64)
            .u64("shards", shards as u64)
            .u64("sent", result.sent)
            .u64("ok", result.latencies_us.len() as u64)
            .u64("overloaded", result.overloaded)
            .f64("p50_us", p50)
            .f64("p95_us", p95)
            .f64("p99_us", p99)
            .f64("throughput_rps", throughput),
    );
}

fn build_model(dataset: &Dataset, steps: usize) -> (MoeModel, MoeConfig) {
    let config = MoeConfig {
        n_experts: 6,
        top_k: 2,
        tower: TowerConfig {
            hidden: vec![12, 6],
        },
        ..MoeConfig::default()
    };
    let mut model = MoeModel::new(&dataset.meta, config.clone(), OptimConfig::default());
    let n = dataset.train.len().min(256);
    let batch = Batch::from_split(&dataset.train, &(0..n).collect::<Vec<_>>());
    for _ in 0..steps {
        model.train_step(&batch);
    }
    (model, config)
}

fn main() {
    let smoke = smoke();
    let rows_per_req: usize = arg_value("--rows")
        .map(|v| v.parse().unwrap_or_else(|_| fail("--rows: bad integer")))
        .unwrap_or(4);
    let requests: usize = arg_value("--requests")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| fail("--requests: bad integer"))
        })
        .unwrap_or(if smoke { 40 } else { 400 });
    let client_counts: Vec<usize> = if smoke { vec![1, 4] } else { vec![1, 2, 4, 8] };

    // The request pool comes from the synthetic test split, so ids are
    // always in-vocabulary for the self-spawned server.
    let dataset = generate(&GeneratorConfig::tiny(41));
    let pool: Arc<Vec<FeatureRow>> =
        Arc::new(dataset.test.examples.iter().map(to_feature_row).collect());
    if pool.len() <= rows_per_req {
        fail("request pool smaller than --rows");
    }

    let external = arg_value("--addr");
    if let Some(addr) = external {
        // External mode: closed- and open-loop only.
        let addr: std::net::SocketAddr = addr
            .parse()
            .unwrap_or_else(|_| fail("--addr: expected HOST:PORT"));
        for &clients in &client_counts {
            let result = closed_loop(addr, &pool, clients, requests, rows_per_req);
            report("closed", clients, rows_per_req, 1, &result);
        }
        let result = open_loop(addr, &pool, 2, requests, rows_per_req, 200.0);
        report("open", 2, rows_per_req, 1, &result);
        println!("load_sweep: OK (external server)");
        return;
    }

    // ---- self-contained mode ----------------------------------------
    let (model, config) = build_model(&dataset, if smoke { 6 } else { 20 });

    // A second checkpoint (a few more steps) for the hot-swap stage.
    let ckpt_dir = Path::new("target/load_sweep");
    std::fs::create_dir_all(ckpt_dir).unwrap_or_else(|e| fail(&format!("mkdir: {e}")));
    let ckpt_b = ckpt_dir.join("model_b.amoe");
    {
        let (mut model_b, _) = build_model(&dataset, if smoke { 6 } else { 20 });
        let batch = Batch::from_split(&dataset.train, &(0..64).collect::<Vec<_>>());
        model_b.train_step(&batch);
        model_b
            .params()
            .save(&ckpt_b)
            .unwrap_or_else(|e| fail(&format!("save checkpoint: {e}")));
        ModelSpec {
            meta: dataset.meta.clone(),
            config: config.clone(),
            serve_quantized: false,
        }
        .save(ckpt_dir.join("model_b.spec"))
        .unwrap_or_else(|e| fail(&format!("save spec: {e}")));
    }

    let server = Server::start(
        "127.0.0.1:0",
        model,
        dataset.meta.clone(),
        ServeConfig::default(),
    )
    .unwrap_or_else(|e| fail(&format!("server start: {e}")));
    let addr = server.local_addr();
    println!("load_sweep: serving on {addr}");

    for &clients in &client_counts {
        let result = closed_loop(addr, &pool, clients, requests, rows_per_req);
        report("closed", clients, rows_per_req, 1, &result);
    }

    let result = open_loop(addr, &pool, 2, requests, rows_per_req, 200.0);
    report("open", 2, rows_per_req, 1, &result);

    // Reload under load: swap checkpoints while closed-loop clients
    // hammer the server. closed_loop() aborts on any non-OVERLOADED
    // error, so surviving this stage is the zero-failures check.
    {
        let reloader = {
            let ckpt = ckpt_b.to_string_lossy().into_owned();
            std::thread::spawn(move || {
                let mut admin =
                    Client::connect(addr).unwrap_or_else(|e| fail(&format!("admin connect: {e}")));
                std::thread::sleep(Duration::from_millis(5));
                admin
                    .reload(&ckpt)
                    .unwrap_or_else(|e| fail(&format!("reload: {e}")));
            })
        };
        let result = closed_loop(addr, &pool, 4, requests, rows_per_req);
        reloader
            .join()
            .unwrap_or_else(|_| fail("reloader panicked"));
        report("reload", 4, rows_per_req, 1, &result);
    }

    let stats = {
        let mut admin =
            Client::connect(addr).unwrap_or_else(|e| fail(&format!("stats connect: {e}")));
        let stats = admin
            .stats()
            .unwrap_or_else(|e| fail(&format!("stats: {e}")));
        admin
            .shutdown()
            .unwrap_or_else(|e| fail(&format!("shutdown: {e}")));
        stats
    };
    server.join();
    if stats.reloads != 1 {
        fail(&format!(
            "expected 1 reload, server counted {}",
            stats.reloads
        ));
    }

    // Sharded sweep: the same deterministic model served with 1/2/4
    // batcher shards under an identical open-loop arrival schedule, so
    // the reported throughput/p99 differences are attributable to the
    // shard count alone. The v3 per-shard counters must account for
    // every batch and show work on every shard.
    for shards in [1usize, 2, 4] {
        let (model, _) = build_model(&dataset, if smoke { 6 } else { 20 });
        let shard_server = Server::start(
            "127.0.0.1:0",
            model,
            dataset.meta.clone(),
            ServeConfig {
                shards,
                ..ServeConfig::default()
            },
        )
        .unwrap_or_else(|e| fail(&format!("sharded server start ({shards} shards): {e}")));
        let shard_addr = shard_server.local_addr();
        let result = open_loop(shard_addr, &pool, 4, requests, rows_per_req, 400.0);
        report("sharded", 4, rows_per_req, shards, &result);

        let mut admin = Client::connect(shard_addr)
            .unwrap_or_else(|e| fail(&format!("sharded admin connect: {e}")));
        let (snapshot, _, shard_stats) = admin
            .stats_report()
            .unwrap_or_else(|e| fail(&format!("sharded stats: {e}")));
        let shard_stats =
            shard_stats.unwrap_or_else(|| fail("v3 stats reply is missing the shard block"));
        if shard_stats.len() != shards {
            fail(&format!(
                "expected {shards} shard stat entries, got {}",
                shard_stats.len()
            ));
        }
        let batch_sum: u64 = shard_stats.iter().map(|s| s.batches).sum();
        if batch_sum != snapshot.batches {
            fail(&format!(
                "per-shard batches sum to {batch_sum}, aggregate counted {}",
                snapshot.batches
            ));
        }
        // Client ids are sequential from 1, and shard_of spreads
        // them, so with hundreds of requests every shard batches.
        for (i, s) in shard_stats.iter().enumerate() {
            if s.batches == 0 {
                fail(&format!("shard {i}/{shards} never ran a batch"));
            }
        }
        admin
            .shutdown()
            .unwrap_or_else(|e| fail(&format!("sharded shutdown: {e}")));
        shard_server.join();
    }

    // Scrape-under-load: the observability listener must not cost
    // serving throughput. Identical open-loop schedules run with and
    // without a concurrent ~20 Hz /metrics scraper; open-loop arrivals
    // are schedule-determined, so comparing the best-of-N throughput
    // of each configuration isolates the listener's cost from
    // scheduler noise. Every scraped page must be a 200 that passes
    // the Prometheus exposition linter.
    {
        let (model, _) = build_model(&dataset, if smoke { 6 } else { 20 });
        let obs_server = Server::start(
            "127.0.0.1:0",
            model,
            dataset.meta.clone(),
            ServeConfig {
                obs_addr: Some("127.0.0.1:0".into()),
                ..ServeConfig::default()
            },
        )
        .unwrap_or_else(|e| fail(&format!("scrape server start: {e}")));
        let s_addr = obs_server.local_addr();
        let obs_addr = obs_server
            .obs_addr()
            .unwrap_or_else(|| fail("scrape server did not start an obs listener"));

        for path in ["/healthz", "/readyz"] {
            let (status, _) = amoe_serve::http_get(obs_addr, path, Duration::from_secs(5))
                .unwrap_or_else(|e| fail(&format!("GET {path}: {e}")));
            if status != 200 {
                fail(&format!("GET {path}: HTTP {status}, expected 200"));
            }
        }
        // One warm-up scrape with family spot-checks before the timed
        // passes: the page must carry the build-info gauge and the
        // per-shard windowed latency family the dashboards key on.
        let (status, page) = amoe_serve::http_get(obs_addr, "/metrics", Duration::from_secs(5))
            .unwrap_or_else(|e| fail(&format!("GET /metrics: {e}")));
        if status != 200 {
            fail(&format!("GET /metrics: HTTP {status}"));
        }
        obs_check::validate_exposition(&page)
            .unwrap_or_else(|e| fail(&format!("/metrics fails exposition lint: {e}")));
        for family in [
            "amoe_build_info{",
            "amoe_uptime_seconds",
            "amoe_serve_window_request_latency_seconds_bucket",
        ] {
            if !page.contains(family) {
                fail(&format!("/metrics page is missing {family}"));
            }
        }

        let rate = if smoke { 100.0 } else { 200.0 };
        let trials = if smoke { 2 } else { 3 };
        let mut best_base = 0.0f64;
        let mut best_scraped = 0.0f64;
        let mut scrape_lat_us: Vec<u64> = Vec::new();
        for _ in 0..trials {
            let base = open_loop(s_addr, &pool, 2, requests, rows_per_req, rate);
            best_base = best_base.max(base.latencies_us.len() as f64 / base.wall.as_secs_f64());

            let stop = Arc::new(AtomicBool::new(false));
            let scraper = {
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut lat = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        let t = Instant::now();
                        let (status, body) =
                            amoe_serve::http_get(obs_addr, "/metrics", Duration::from_secs(5))
                                .unwrap_or_else(|e| fail(&format!("scrape /metrics: {e}")));
                        lat.push(t.elapsed().as_micros() as u64);
                        if status != 200 {
                            fail(&format!("scrape /metrics under load: HTTP {status}"));
                        }
                        obs_check::validate_exposition(&body).unwrap_or_else(|e| {
                            fail(&format!("scraped page fails exposition lint: {e}"))
                        });
                        std::thread::sleep(Duration::from_millis(50));
                    }
                    lat
                })
            };
            let scraped = open_loop(s_addr, &pool, 2, requests, rows_per_req, rate);
            stop.store(true, Ordering::Relaxed);
            scrape_lat_us.extend(
                scraper
                    .join()
                    .unwrap_or_else(|_| fail("scraper thread panicked")),
            );
            best_scraped =
                best_scraped.max(scraped.latencies_us.len() as f64 / scraped.wall.as_secs_f64());
        }
        if scrape_lat_us.is_empty() {
            fail("scrape stage performed no scrapes under load");
        }
        scrape_lat_us.sort_unstable();
        let scrape_p99_us = percentile_us(&scrape_lat_us, 0.99);
        // Rendering is a lock-snapshot plus string formatting; half a
        // second of p99 headroom on loopback only trips on pathological
        // lock contention or O(page) blow-ups.
        if scrape_p99_us > 500_000.0 {
            fail(&format!("scrape p99 {scrape_p99_us:.0}us exceeds 500ms"));
        }
        let overhead = (best_base - best_scraped) / best_base;
        if overhead >= 0.01 {
            fail(&format!(
                "scraping costs {:.2}% throughput (contract: <1%): \
                 baseline {best_base:.1} rps vs scraped {best_scraped:.1} rps",
                overhead * 100.0
            ));
        }
        println!(
            "load_sweep[scrape] {} scrapes p99={scrape_p99_us:.0}us \
             baseline={best_base:.0} rps scraped={best_scraped:.0} rps delta={:+.2}%",
            scrape_lat_us.len(),
            overhead * 100.0,
        );
        amoe_obs::emit(
            &amoe_obs::Event::new("scrape_row")
                .u64("scrapes", scrape_lat_us.len() as u64)
                .f64("scrape_p99_us", scrape_p99_us)
                .f64("baseline_rps", best_base)
                .f64("scraped_rps", best_scraped)
                .f64("overhead_frac", overhead),
        );

        let mut admin =
            Client::connect(s_addr).unwrap_or_else(|e| fail(&format!("scrape admin connect: {e}")));
        admin
            .shutdown()
            .unwrap_or_else(|e| fail(&format!("scrape shutdown: {e}")));
        obs_server.join();
        // join() stops the listener last; afterwards the obs port must
        // actually be closed, not leaked.
        if amoe_serve::http_get(obs_addr, "/healthz", Duration::from_millis(500)).is_ok() {
            fail("obs listener still answering after Server::join()");
        }
    }

    // Overload burst: tiny queue + throttled batcher guarantees the
    // queue fills; the burst must see OVERLOADED, not errors or hangs.
    {
        let (model, _) = build_model(&dataset, 2);
        let over_server = Server::start(
            "127.0.0.1:0",
            model,
            dataset.meta.clone(),
            ServeConfig {
                max_batch_rows: 4,
                queue_cap: 2,
                overload: OverloadPolicy::Reject,
                batcher_delay: Some(Duration::from_millis(30)),
                ..ServeConfig::default()
            },
        )
        .unwrap_or_else(|e| fail(&format!("overload server start: {e}")));
        let over_addr = over_server.local_addr();
        let result = closed_loop(over_addr, &pool, 8, if smoke { 6 } else { 12 }, 1);
        report("overload", 8, 1, 1, &result);
        let mut admin = Client::connect(over_addr)
            .unwrap_or_else(|e| fail(&format!("overload admin connect: {e}")));
        let stats = admin
            .stats()
            .unwrap_or_else(|e| fail(&format!("overload stats: {e}")));
        admin
            .shutdown()
            .unwrap_or_else(|e| fail(&format!("overload shutdown: {e}")));
        over_server.join();
        if result.overloaded == 0 || stats.overloaded == 0 {
            fail("overload burst produced no OVERLOADED replies");
        }
        println!(
            "load_sweep[overload] server counted {} overloaded / {} requests",
            stats.overloaded, stats.requests
        );
    }

    // Quantized serving: a server with int8 expert weights must return
    // scores within the documented tolerance of a local f32 oracle on
    // identical weights. build_model is deterministic, so rebuilding
    // with the same step count reproduces the first server's weights;
    // the oracle is computed locally before the model moves into the
    // server.
    {
        let steps = if smoke { 6 } else { 20 };
        let (model_q, _) = build_model(&dataset, steps);
        let probe_rows = 32.min(pool.len() - 1);
        let probe_batch = Batch::from_split(&dataset.test, &(0..probe_rows).collect::<Vec<_>>());
        let f32_scores = ServingMoe::new(&model_q).predict(&probe_batch);

        let q_server = Server::start(
            "127.0.0.1:0",
            model_q,
            dataset.meta.clone(),
            ServeConfig {
                quantized: true,
                ..ServeConfig::default()
            },
        )
        .unwrap_or_else(|e| fail(&format!("quantized server start: {e}")));
        let q_addr = q_server.local_addr();

        let mut probe = Client::connect(q_addr)
            .unwrap_or_else(|e| fail(&format!("quantized probe connect: {e}")));
        let served = probe
            .score(&pool[..probe_rows])
            .unwrap_or_else(|e| fail(&format!("quantized probe score: {e}")));
        if served.len() != probe_rows {
            fail("quantized probe: wrong score count");
        }
        let max_abs_err = f32_scores
            .iter()
            .zip(&served)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        if max_abs_err > QUANT_SCORE_TOLERANCE {
            fail(&format!(
                "quantized scores drift {max_abs_err} from f32 oracle \
                 (tolerance {QUANT_SCORE_TOLERANCE})"
            ));
        }
        println!(
            "load_sweep[quant] {probe_rows} probe rows within tolerance: \
             max|dscore| {max_abs_err:.2e} <= {QUANT_SCORE_TOLERANCE}"
        );
        amoe_obs::emit(
            &amoe_obs::Event::new("quant_parity")
                .u64("rows", probe_rows as u64)
                .f64("max_abs_err", f64::from(max_abs_err))
                .f64("tolerance", f64::from(QUANT_SCORE_TOLERANCE)),
        );

        let result = closed_loop(q_addr, &pool, 2, requests, rows_per_req);
        report("quant", 2, rows_per_req, 1, &result);

        probe
            .shutdown()
            .unwrap_or_else(|e| fail(&format!("quantized shutdown: {e}")));
        q_server.join();
    }

    // When telemetry is on, the run log must honour the sink contract
    // and contain well-formed serve_request records.
    if let Ok(path) = std::env::var("AMOE_OBS") {
        amoe_obs::sink::set_sink_path(None); // flush + close
        let body = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        let records = obs_check::validate_jsonl(&body).unwrap_or_else(|e| fail(&e));
        let mut serve_requests = 0usize;
        let mut quant_parity = 0usize;
        let mut sharded_rows = 0usize;
        let mut scrape_rows = 0usize;
        for r in &records {
            let checked = match r.kind.as_str() {
                "serve_request" => {
                    serve_requests += 1;
                    obs_check::require_fields(
                        &r.value,
                        "serve_request",
                        &["request_id", "rows", "shard", "latency_us", "queue_depth"],
                    )
                }
                "serve_batch" => obs_check::require_fields(
                    &r.value,
                    "serve_batch",
                    &[
                        "shard",
                        "requests",
                        "rows",
                        "queue_wait_us_max",
                        "queue_depth",
                    ],
                ),
                "load_sweep_row" => {
                    if r.value.get("mode").and_then(Value::as_str) == Some("sharded") {
                        sharded_rows += 1;
                    }
                    obs_check::require_fields(
                        &r.value,
                        "load_sweep_row",
                        &[
                            "mode",
                            "clients",
                            "shards",
                            "p50_us",
                            "p95_us",
                            "p99_us",
                            "throughput_rps",
                        ],
                    )
                }
                "quant_parity" => {
                    quant_parity += 1;
                    obs_check::require_fields(
                        &r.value,
                        "quant_parity",
                        &["rows", "max_abs_err", "tolerance"],
                    )
                }
                "scrape_row" => {
                    scrape_rows += 1;
                    obs_check::require_fields(
                        &r.value,
                        "scrape_row",
                        &[
                            "scrapes",
                            "scrape_p99_us",
                            "baseline_rps",
                            "scraped_rps",
                            "overhead_frac",
                        ],
                    )
                }
                _ => Ok(()),
            };
            checked.unwrap_or_else(|e| fail(&e));
        }
        if serve_requests == 0 {
            fail(&format!("no serve_request record in {path}"));
        }
        if quant_parity == 0 {
            fail(&format!("no quant_parity record in {path}"));
        }
        if sharded_rows < 3 {
            fail(&format!(
                "expected a load_sweep_row per shard count (1/2/4), found {sharded_rows} in {path}"
            ));
        }
        if scrape_rows == 0 {
            fail(&format!("no scrape_row record in {path}"));
        }
        println!(
            "load_sweep: OK — {} JSONL records ({} serve_request, {} sharded rows) \
             validated in {path}",
            records.len(),
            serve_requests,
            sharded_rows
        );
    } else {
        println!("load_sweep: OK");
    }
}
