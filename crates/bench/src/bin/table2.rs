//! Regenerates Table 2 (seven-model full evaluation).
fn main() {
    let cli = amoe_bench::parse_cli("table2");
    println!("{}", amoe_experiments::table2::run(&cli.config));
}
