//! Serving throughput sweep over expert count `N` and thread count.
//!
//! Demonstrates the two serving claims at once:
//!
//! * **Constant cost in `N`** (paper Sec. 4.2): at fixed `K`, sparse
//!   top-K throughput stays roughly flat as `N` grows.
//! * **Parallel speedup**: the per-expert dispatch fans out across the
//!   pool runtime, so throughput scales with threads (up to the number
//!   of physical cores — on a 1-core host every thread count ties).
//!
//! Usage: `cargo run --release --bin serving_sweep -- [--smoke]`
//!
//! `--smoke` shrinks the measurement for CI. The sweep always verifies
//! that logits are bit-identical across thread counts before timing.
//!
//! With `AMOE_OBS=sweep.jsonl` set, every printed row is also emitted
//! as a `serving_sweep_row` JSONL record and the run ends with a
//! `metrics_snapshot` (per-phase span histograms, pool counters), so
//! two sweeps can be diffed record-by-record — the baseline workflow
//! for perf PRs (see README "Observability").

use std::hint::black_box;
use std::time::Instant;

use amoe_bench::timing::Timer;
use amoe_core::ranker::OptimConfig;
use amoe_core::serving::ServingMoe;
use amoe_core::{MoeConfig, MoeModel};
use amoe_dataset::{generate, Batch, GeneratorConfig};
use amoe_tensor::pool;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let timer = Timer::from_env();
    let smoke = timer.reps <= Timer::smoke().reps;
    let d = generate(&GeneratorConfig::tiny(88));
    let batch_len = if smoke { 128 } else { 512 }.min(d.test.len());
    let idx: Vec<usize> = (0..batch_len).collect();
    let batch = Batch::from_split(&d.test, &idx);
    let expert_counts: &[usize] = if smoke { &[8, 32] } else { &[8, 16, 32, 64] };
    let reps = if smoke { 3 } else { 30 };

    println!(
        "serving sweep: batch {batch_len}, K=2, host parallelism {}",
        std::thread::available_parallelism().map_or(1, usize::from)
    );
    println!(
        "{:>4} {:>8} {:>14} {:>14} {:>10}",
        "N", "threads", "ms/batch", "examples/s", "speedup"
    );

    for &n in expert_counts {
        let cfg = MoeConfig {
            n_experts: n,
            top_k: 2,
            ..MoeConfig::default()
        };
        let model = MoeModel::new(&d.meta, cfg, OptimConfig::default());
        let serving = ServingMoe::new(&model);

        // Determinism gate: every thread count must produce bitwise
        // identical logits before any of them is worth timing.
        pool::set_threads(1);
        let reference = serving.predict_logits(&batch);
        for &t in &THREAD_COUNTS[1..] {
            pool::set_threads(t);
            assert_eq!(
                serving.predict_logits(&batch),
                reference,
                "logits diverged at N={n}, {t} threads"
            );
        }

        let mut baseline_ms = f64::NAN;
        for &t in &THREAD_COUNTS {
            pool::set_threads(t);
            // Warm-up, then time the whole rep loop for a stable mean.
            black_box(serving.predict_logits(&batch));
            let start = Instant::now();
            for _ in 0..reps {
                black_box(serving.predict_logits(&batch));
            }
            let ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(reps);
            if t == 1 {
                baseline_ms = ms;
            }
            let throughput = batch_len as f64 / (ms / 1e3);
            println!(
                "{n:>4} {t:>8} {ms:>14.3} {throughput:>14.0} {:>9.2}x",
                baseline_ms / ms
            );
            amoe_obs::emit(
                &amoe_obs::Event::new("serving_sweep_row")
                    .u64("n_experts", n as u64)
                    .u64("threads", t as u64)
                    .u64("batch", batch_len as u64)
                    .u64("reps", reps as u64)
                    .f64("ms_per_batch", ms)
                    .f64("examples_per_sec", throughput)
                    .f64("speedup", baseline_ms / ms),
            );
        }
        pool::clear_threads_override();
    }

    dispatch_compare(smoke);

    // Per-phase span histograms (serving.gate/experts/scatter,
    // pool.region, pool.queue_wait_ns) and pool counters
    // (pool.regions, pool.region_reuse, pool.workers_started) land
    // next to the sweep rows.
    amoe_obs::emit_metrics_snapshot();
}

/// Micro-benchmark of region dispatch overhead: many regions of
/// trivial tasks through the persistent pool versus spawning a fresh
/// `std::thread::scope` per region (the pre-persistent-pool runtime).
/// The task bodies are ~free, so the per-region figure is almost pure
/// dispatch cost — the quantity the persistent pool exists to shrink.
fn dispatch_compare(smoke: bool) {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let regions = if smoke { 200u32 } else { 2000 };
    let n_tasks = 8usize;
    let workers = pool::threads().min(n_tasks);
    let sink = AtomicUsize::new(0);

    // Warm the pool so worker start-up is not billed to the first region.
    pool::for_each_task(n_tasks, |i| {
        black_box(i);
    });

    let start = Instant::now();
    for _ in 0..regions {
        pool::for_each_task(n_tasks, |i| {
            sink.fetch_add(i, Ordering::Relaxed);
        });
    }
    let persistent_us = start.elapsed().as_secs_f64() * 1e6 / f64::from(regions);

    let start = Instant::now();
    for _ in 0..regions {
        let cursor = AtomicUsize::new(0);
        let claim = || loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n_tasks {
                break;
            }
            sink.fetch_add(i, Ordering::Relaxed);
        };
        std::thread::scope(|s| {
            for _ in 1..workers {
                s.spawn(claim);
            }
            claim();
        });
    }
    let scoped_us = start.elapsed().as_secs_f64() * 1e6 / f64::from(regions);
    black_box(sink.load(Ordering::Relaxed));

    println!();
    println!("dispatch overhead ({regions} regions x {n_tasks} trivial tasks, {workers} lanes)");
    println!("{:>12} {:>14}", "mode", "us/region");
    for (mode, us) in [("persistent", persistent_us), ("scoped", scoped_us)] {
        println!("{mode:>12} {us:>14.2}");
        amoe_obs::emit(
            &amoe_obs::Event::new("dispatch_compare")
                .str("mode", mode)
                .u64("regions", u64::from(regions))
                .u64("tasks_per_region", n_tasks as u64)
                .u64("lanes", workers as u64)
                .f64("us_per_region", us)
                .f64("speedup_vs_scoped", scoped_us / us),
        );
    }
}
