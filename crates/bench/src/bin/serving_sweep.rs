//! Serving throughput sweep over expert count `N` and thread count.
//!
//! Demonstrates the two serving claims at once:
//!
//! * **Constant cost in `N`** (paper Sec. 4.2): at fixed `K`, sparse
//!   top-K throughput stays roughly flat as `N` grows.
//! * **Parallel speedup**: the per-expert dispatch fans out across the
//!   pool runtime, so throughput scales with threads (up to the number
//!   of physical cores — on a 1-core host every thread count ties).
//!
//! Usage: `cargo run --release --bin serving_sweep -- [--smoke]`
//!
//! `--smoke` shrinks the measurement for CI. The sweep always verifies
//! that logits are bit-identical across thread counts before timing.
//!
//! Two kernel stages follow the sweep: a GEMM micro-bench (blocked
//! packed kernel vs the naive reference, exact-equality gated) and a
//! quantized-vs-f32 serving comparison (speedup plus logit- and
//! score-level max-abs error, gated on the documented tolerance).
//!
//! With `AMOE_OBS=sweep.jsonl` set, every printed row is also emitted
//! as a `serving_sweep_row` JSONL record and the run ends with a
//! `metrics_snapshot` (per-phase span histograms, pool counters), so
//! two sweeps can be diffed record-by-record — the baseline workflow
//! for perf PRs (see README "Observability").

use std::hint::black_box;
use std::time::Instant;

use amoe_bench::{obs_check, timing::Timer};
use amoe_core::ranker::OptimConfig;
use amoe_core::serving::{QuantizedExperts, ServingMoe, QUANT_SCORE_TOLERANCE};
use amoe_core::{MoeConfig, MoeModel, TowerConfig};
use amoe_dataset::{generate, Batch, GeneratorConfig};
use amoe_tensor::{matmul, pool, Rng};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let timer = Timer::from_env();
    let smoke = timer.reps <= Timer::smoke().reps;
    let d = generate(&GeneratorConfig::tiny(88));
    let batch_len = if smoke { 128 } else { 512 }.min(d.test.len());
    let idx: Vec<usize> = (0..batch_len).collect();
    let batch = Batch::from_split(&d.test, &idx);
    let expert_counts: &[usize] = if smoke { &[8, 32] } else { &[8, 16, 32, 64] };
    let reps = if smoke { 3 } else { 30 };

    println!(
        "serving sweep: batch {batch_len}, K=2, host parallelism {}",
        std::thread::available_parallelism().map_or(1, usize::from)
    );
    println!(
        "{:>4} {:>8} {:>14} {:>14} {:>10}",
        "N", "threads", "ms/batch", "examples/s", "speedup"
    );

    for &n in expert_counts {
        let cfg = MoeConfig {
            n_experts: n,
            top_k: 2,
            ..MoeConfig::default()
        };
        let model = MoeModel::new(&d.meta, cfg, OptimConfig::default());
        let serving = ServingMoe::new(&model);

        // Determinism gate: every thread count must produce bitwise
        // identical logits before any of them is worth timing.
        pool::set_threads(1);
        let reference = serving.predict_logits(&batch);
        for &t in &THREAD_COUNTS[1..] {
            pool::set_threads(t);
            assert_eq!(
                serving.predict_logits(&batch),
                reference,
                "logits diverged at N={n}, {t} threads"
            );
        }

        let mut baseline_ms = f64::NAN;
        for &t in &THREAD_COUNTS {
            pool::set_threads(t);
            // Warm-up, then time the whole rep loop for a stable mean.
            black_box(serving.predict_logits(&batch));
            let start = Instant::now();
            for _ in 0..reps {
                black_box(serving.predict_logits(&batch));
            }
            let ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(reps);
            if t == 1 {
                baseline_ms = ms;
            }
            let throughput = batch_len as f64 / (ms / 1e3);
            println!(
                "{n:>4} {t:>8} {ms:>14.3} {throughput:>14.0} {:>9.2}x",
                baseline_ms / ms
            );
            amoe_obs::emit(
                &amoe_obs::Event::new("serving_sweep_row")
                    .u64("n_experts", n as u64)
                    .u64("threads", t as u64)
                    .u64("batch", batch_len as u64)
                    .u64("reps", reps as u64)
                    .f64("ms_per_batch", ms)
                    .f64("examples_per_sec", throughput)
                    .f64("speedup", baseline_ms / ms),
            );
        }
        pool::clear_threads_override();
    }

    dispatch_compare(smoke);
    gemm_bench(smoke);
    quantized_stage(smoke);
    trace_overhead_stage(smoke);

    // Per-phase span histograms (serving.gate/experts/scatter,
    // pool.region, pool.queue_wait_ns) and pool counters
    // (pool.regions, pool.region_reuse, pool.workers_started) land
    // next to the sweep rows.
    amoe_obs::emit_metrics_snapshot();

    validate_run_log();
}

/// Kernel micro-bench: the packed blocked GEMM against the naive
/// seed-style oracle (`matmul::reference`), single-threaded so the
/// numbers are pure kernel quality, not pool scheduling. Results are
/// gated on exact equality first — a fast wrong kernel scores zero.
fn gemm_bench(smoke: bool) {
    let reps = if smoke { 3u32 } else { 20 };
    // Serving-shaped, cache-pressure, and deliberately awkward shapes
    // (odd dims exercise every tile-edge path).
    let shapes: &[(usize, usize, usize)] = &[
        (64, 96, 128),
        (120, 33, 17),
        (256, 256, 256),
        (384, 512, 64),
    ];
    let mut rng = Rng::seed_from(61);

    pool::set_threads(1);
    println!();
    println!("gemm micro-bench (1 thread, {reps} reps, blocked vs naive reference)");
    println!(
        "{:>16} {:>14} {:>14} {:>10}",
        "m x k x n", "reference_ms", "blocked_ms", "speedup"
    );
    for &(m, k, n) in shapes {
        let a = rng.normal_matrix(m, k, 0.0, 1.0);
        let b = rng.normal_matrix(k, n, 0.0, 1.0);
        let at = rng.normal_matrix(k, m, 0.0, 1.0);
        let bt = rng.normal_matrix(n, k, 0.0, 1.0);
        // Correctness gate for every flavour at this shape.
        assert_eq!(
            matmul::matmul(&a, &b),
            matmul::reference::matmul(&a, &b),
            "blocked matmul diverged at {m}x{k}x{n}"
        );
        assert_eq!(
            matmul::matmul_tn(&at, &b),
            matmul::reference::matmul_tn(&at, &b),
            "blocked matmul_tn diverged at {m}x{k}x{n}"
        );
        assert_eq!(
            matmul::matmul_nt(&a, &bt),
            matmul::reference::matmul_nt(&a, &bt),
            "blocked matmul_nt diverged at {m}x{k}x{n}"
        );

        black_box(matmul::reference::matmul(&a, &b));
        let start = Instant::now();
        for _ in 0..reps {
            black_box(matmul::reference::matmul(&a, &b));
        }
        let reference_ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(reps);

        black_box(matmul::matmul(&a, &b));
        let start = Instant::now();
        for _ in 0..reps {
            black_box(matmul::matmul(&a, &b));
        }
        let blocked_ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(reps);

        let speedup = reference_ms / blocked_ms;
        println!(
            "{:>16} {reference_ms:>14.3} {blocked_ms:>14.3} {speedup:>9.2}x",
            format!("{m}x{k}x{n}")
        );
        amoe_obs::emit(
            &amoe_obs::Event::new("gemm_bench_row")
                .u64("m", m as u64)
                .u64("k", k as u64)
                .u64("n", n as u64)
                .u64("reps", u64::from(reps))
                .f64("reference_ms", reference_ms)
                .f64("blocked_ms", blocked_ms)
                .f64("speedup", speedup),
        );
    }
    pool::clear_threads_override();
}

/// Quantized-vs-f32 serving stage: one model with towers wide enough
/// for the expert GEMMs to dominate, scored by the f32 oracle and the
/// int8 path. Reports speedup plus max-abs error at the logit and
/// score (post-sigmoid) level; the score error is asserted against the
/// documented tolerance, so this stage is a gate as well as a bench.
fn quantized_stage(smoke: bool) {
    let reps = if smoke { 3u32 } else { 20 };
    let d = generate(&GeneratorConfig::tiny(99));
    let batch_len = 256.min(d.test.len());
    let batch = Batch::from_split(&d.test, &(0..batch_len).collect::<Vec<_>>());
    let cfg = MoeConfig {
        n_experts: 16,
        top_k: 2,
        tower: TowerConfig {
            hidden: vec![128, 64],
        },
        ..MoeConfig::default()
    };
    let model = MoeModel::new(&d.meta, cfg, OptimConfig::default());
    let oracle = ServingMoe::new(&model);
    let quant = QuantizedExperts::from_model(&model);
    let quantized = ServingMoe::with_quantized(&model, &quant);

    // Determinism gate: the int8 path must be a pure function of its
    // inputs (fixed-order lane accumulation), rep to rep.
    let q_logits = quantized.predict_logits(&batch);
    assert_eq!(
        quantized.predict_logits(&batch),
        q_logits,
        "quantized serving is not deterministic"
    );

    let f_logits = oracle.predict_logits(&batch);
    let logit_max_abs_err = f_logits
        .iter()
        .zip(&q_logits)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    let sigmoid = |v: f32| 1.0 / (1.0 + (-v).exp());
    let score_max_abs_err = f_logits
        .iter()
        .zip(&q_logits)
        .map(|(&a, &b)| (sigmoid(a) - sigmoid(b)).abs())
        .fold(0.0f32, f32::max);
    assert!(
        score_max_abs_err <= QUANT_SCORE_TOLERANCE,
        "quantized score error {score_max_abs_err} exceeds documented \
         tolerance {QUANT_SCORE_TOLERANCE}"
    );

    let time_ms = |serving: &ServingMoe| {
        black_box(serving.predict_logits(&batch));
        let start = Instant::now();
        for _ in 0..reps {
            black_box(serving.predict_logits(&batch));
        }
        start.elapsed().as_secs_f64() * 1e3 / f64::from(reps)
    };
    let f32_ms = time_ms(&oracle);
    let quant_ms = time_ms(&quantized);

    println!();
    println!(
        "quantized serving (N=16, towers 128x64, batch {batch_len}): \
         f32 {f32_ms:.3} ms, int8 {quant_ms:.3} ms, {:.2}x, \
         max|dlogit| {logit_max_abs_err:.2e}, max|dscore| {score_max_abs_err:.2e}",
        f32_ms / quant_ms
    );
    amoe_obs::emit(
        &amoe_obs::Event::new("quant_serving_row")
            .u64("n_experts", 16)
            .u64("batch", batch_len as u64)
            .u64("reps", u64::from(reps))
            .f64("f32_ms", f32_ms)
            .f64("quant_ms", quant_ms)
            .f64("speedup", f32_ms / quant_ms)
            .f64("logit_max_abs_err", f64::from(logit_max_abs_err))
            .f64("score_max_abs_err", f64::from(score_max_abs_err))
            .f64("score_tolerance", f64::from(QUANT_SCORE_TOLERANCE))
            .u64("quant_bytes", quant.bytes() as u64),
    );
}

/// Tracing overhead stage: the serving hot path timed with request
/// tracing off versus on at the documented 1-in-16 sample rate
/// (simulated by marking an active traced batch on every 16th rep —
/// exactly what the serve batcher does for sampled requests). Trials
/// interleave the two modes and the minimum per mode is compared, so
/// ambient load cancels out; if the first round still reads over the
/// bar (a few µs of scheduler noise on a shared 1-core host is enough
/// at this batch size), up to two more rounds of paired trials fold
/// into the minima before the verdict — a *real* regression persists
/// through every round. Gates the overhead contract from DESIGN.md:
/// sampled tracing costs < 2% end to end. Also asserts the parity
/// contract — logits are bit-identical with tracing on.
fn trace_overhead_stage(smoke: bool) {
    use amoe_obs::trace;

    const SAMPLE: u32 = 16;
    let reps = if smoke { 96u32 } else { 192 };
    let trials = if smoke { 7 } else { 9 };
    let d = generate(&GeneratorConfig::tiny(77));
    let batch_len = 128.min(d.test.len());
    let batch = Batch::from_split(&d.test, &(0..batch_len).collect::<Vec<_>>());
    let cfg = MoeConfig {
        n_experts: 16,
        top_k: 2,
        ..MoeConfig::default()
    };
    let model = MoeModel::new(&d.meta, cfg, OptimConfig::default());
    let serving = ServingMoe::new(&model);
    let was_enabled = trace::enabled();

    // Parity gate: tracing observes, it must never perturb scores.
    trace::set_enabled(false);
    let reference = serving.predict_logits(&batch);
    trace::set_enabled(true);
    trace::reset();
    trace::set_active_batch(1);
    assert_eq!(
        serving.predict_logits(&batch),
        reference,
        "logits changed with tracing enabled"
    );
    trace::set_active_batch(0);
    let traced_events = trace::events_written();
    assert!(traced_events > 0, "traced batch recorded no events");
    trace::reset();

    let run = |traced: bool| -> f64 {
        trace::set_enabled(traced);
        black_box(serving.predict_logits(&batch));
        let start = Instant::now();
        for rep in 0..reps {
            if traced && rep % SAMPLE == 0 {
                trace::set_active_batch(u64::from(rep) + 1);
            }
            black_box(serving.predict_logits(&batch));
            if traced {
                trace::set_active_batch(0);
            }
        }
        let ms = start.elapsed().as_secs_f64() * 1e3 / f64::from(reps);
        if traced {
            trace::reset();
        }
        ms
    };

    let (mut untraced_ms, mut traced_ms) = (f64::INFINITY, f64::INFINITY);
    let mut overhead = f64::INFINITY;
    for round in 0..3 {
        for _ in 0..trials {
            untraced_ms = untraced_ms.min(run(false));
            traced_ms = traced_ms.min(run(true));
        }
        overhead = traced_ms / untraced_ms - 1.0;
        if overhead < 0.02 {
            break;
        }
        eprintln!(
            "trace overhead round {} read {:+.2}%, re-measuring",
            round + 1,
            overhead * 100.0
        );
    }
    trace::set_enabled(was_enabled);
    trace::reset();
    println!();
    println!(
        "trace overhead (1/{SAMPLE} sampled, {trials} trials x {reps} reps, min): \
         untraced {untraced_ms:.3} ms, traced {traced_ms:.3} ms, {:+.2}%",
        overhead * 100.0
    );
    amoe_obs::emit(
        &amoe_obs::Event::new("trace_overhead_row")
            .u64("sample", u64::from(SAMPLE))
            .u64("reps", u64::from(reps))
            .u64("trials", trials as u64)
            .u64("batch", batch_len as u64)
            .f64("untraced_ms", untraced_ms)
            .f64("traced_ms", traced_ms)
            .f64("overhead_frac", overhead),
    );
    assert!(
        overhead < 0.02,
        "sampled tracing overhead {:.2}% breaks the < 2% contract",
        overhead * 100.0
    );
}

/// When `AMOE_OBS` is set, re-read the run log and hold it to the sink
/// contract plus the schemas of this binary's own row kinds — the CI
/// kernel-smoke stage depends on this self-check (exit 1 on violation).
fn validate_run_log() {
    let Ok(path) = std::env::var("AMOE_OBS") else {
        return;
    };
    let fail = |msg: &str| -> ! {
        eprintln!("serving_sweep: FAIL: {msg}");
        std::process::exit(1);
    };
    amoe_obs::sink::set_sink_path(None); // flush + close
    let body = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let records = obs_check::validate_jsonl(&body).unwrap_or_else(|e| fail(&e));
    let (mut sweep_rows, mut gemm_rows, mut quant_rows, mut trace_rows) =
        (0usize, 0usize, 0usize, 0usize);
    for r in &records {
        let checked = match r.kind.as_str() {
            "serving_sweep_row" => {
                sweep_rows += 1;
                obs_check::require_fields(
                    &r.value,
                    "serving_sweep_row",
                    &["n_experts", "threads", "ms_per_batch", "examples_per_sec"],
                )
            }
            "gemm_bench_row" => {
                gemm_rows += 1;
                obs_check::require_fields(
                    &r.value,
                    "gemm_bench_row",
                    &["m", "k", "n", "reference_ms", "blocked_ms", "speedup"],
                )
            }
            "quant_serving_row" => {
                quant_rows += 1;
                obs_check::require_fields(
                    &r.value,
                    "quant_serving_row",
                    &[
                        "f32_ms",
                        "quant_ms",
                        "speedup",
                        "logit_max_abs_err",
                        "score_max_abs_err",
                    ],
                )
            }
            "trace_overhead_row" => {
                trace_rows += 1;
                obs_check::require_fields(
                    &r.value,
                    "trace_overhead_row",
                    &["sample", "untraced_ms", "traced_ms", "overhead_frac"],
                )
            }
            _ => Ok(()),
        };
        checked.unwrap_or_else(|e| fail(&e));
    }
    if sweep_rows == 0 || gemm_rows == 0 || quant_rows == 0 || trace_rows == 0 {
        fail(&format!(
            "run log {path} incomplete: {sweep_rows} sweep, {gemm_rows} gemm, \
             {quant_rows} quant, {trace_rows} trace rows"
        ));
    }
    println!(
        "serving_sweep: OK — {} JSONL records ({sweep_rows} sweep, {gemm_rows} gemm, \
         {quant_rows} quant, {trace_rows} trace) validated in {path}",
        records.len()
    );
}

/// Micro-benchmark of region dispatch overhead: many regions of
/// trivial tasks through the persistent pool versus spawning a fresh
/// `std::thread::scope` per region (the pre-persistent-pool runtime).
/// The task bodies are ~free, so the per-region figure is almost pure
/// dispatch cost — the quantity the persistent pool exists to shrink.
fn dispatch_compare(smoke: bool) {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let regions = if smoke { 200u32 } else { 2000 };
    let n_tasks = 8usize;
    let workers = pool::threads().min(n_tasks);
    let sink = AtomicUsize::new(0);

    // Warm the pool so worker start-up is not billed to the first region.
    pool::for_each_task(n_tasks, |i| {
        black_box(i);
    });

    let start = Instant::now();
    for _ in 0..regions {
        pool::for_each_task(n_tasks, |i| {
            sink.fetch_add(i, Ordering::Relaxed);
        });
    }
    let persistent_us = start.elapsed().as_secs_f64() * 1e6 / f64::from(regions);

    let start = Instant::now();
    for _ in 0..regions {
        let cursor = AtomicUsize::new(0);
        let claim = || loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n_tasks {
                break;
            }
            sink.fetch_add(i, Ordering::Relaxed);
        };
        std::thread::scope(|s| {
            for _ in 1..workers {
                s.spawn(claim);
            }
            claim();
        });
    }
    let scoped_us = start.elapsed().as_secs_f64() * 1e6 / f64::from(regions);
    black_box(sink.load(Ordering::Relaxed));

    println!();
    println!("dispatch overhead ({regions} regions x {n_tasks} trivial tasks, {workers} lanes)");
    println!("{:>12} {:>14}", "mode", "us/region");
    for (mode, us) in [("persistent", persistent_us), ("scoped", scoped_us)] {
        println!("{mode:>12} {us:>14.2}");
        amoe_obs::emit(
            &amoe_obs::Event::new("dispatch_compare")
                .str("mode", mode)
                .u64("regions", u64::from(regions))
                .u64("tasks_per_region", n_tasks as u64)
                .u64("lanes", workers as u64)
                .f64("us_per_region", us)
                .f64("speedup_vs_scoped", scoped_us / us),
        );
    }
}
