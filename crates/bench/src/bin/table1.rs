//! Regenerates Table 1 (dataset statistics).
fn main() {
    let cli = amoe_bench::parse_cli("table1");
    println!("{}", amoe_experiments::table1::run(&cli.config));
}
