//! Regenerates Table 6 (lambda1 x lambda2 grid search).
fn main() {
    let cli = amoe_bench::parse_cli("table6");
    println!("{}", amoe_experiments::table6::run(&cli.config));
}
