//! Regenerates Figure 2 (feature importance inter vs intra category).
fn main() {
    let cli = amoe_bench::parse_cli("fig2");
    println!("{}", amoe_experiments::fig2::run(&cli.config));
}
