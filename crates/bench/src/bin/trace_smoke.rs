//! Tracing smoke gate: a live server with `AMOE_TRACE` on, traffic
//! with both server-sampled and client-supplied trace ids, then the
//! two export paths — the `TRACE_DUMP` protocol frame and the
//! drain-time `AMOE_TRACE` file — validated against the Chrome
//! trace-event contract (schema, finite numbers, monotone per-thread
//! timestamps) by [`amoe_bench::obs_check::validate_chrome_trace`].
//!
//! Exit status is the contract: `0` means the tracing pipeline is
//! healthy end-to-end; any violation aborts with a message and status
//! `1`. `scripts/ci.sh` runs this with `AMOE_TRACE` pointing into
//! `target/`.

use std::path::Path;
use std::process::exit;

use amoe_bench::obs_check;
use amoe_core::ranker::{OptimConfig, Ranker};
use amoe_core::{MoeConfig, MoeModel, TowerConfig};
use amoe_dataset::{generate, Batch, Dataset, GeneratorConfig};
use amoe_obs::json::{parse, Value};
use amoe_obs::trace;
use amoe_serve::{Client, FeatureRow, ServeConfig, Server};

fn fail(msg: &str) -> ! {
    eprintln!("trace_smoke: FAIL: {msg}");
    exit(1);
}

fn feature_rows(d: &Dataset, n: usize) -> Vec<FeatureRow> {
    d.test.examples[..n]
        .iter()
        .map(|e| FeatureRow {
            sc: e.pred_sc as u32,
            tc: e.pred_tc as u32,
            brand: e.brand as u32,
            shop: e.shop as u32,
            user_segment: e.user_segment as u32,
            price_bucket: e.price_bucket as u32,
            query: e.query,
            numeric: e.numeric.to_vec(),
        })
        .collect()
}

fn main() {
    // Honour AMOE_TRACE when the caller (CI) set it; fall back to a
    // file under target/. Start from a clean file either way.
    let path =
        std::env::var("AMOE_TRACE").unwrap_or_else(|_| "target/trace_smoke.json".to_string());
    let _ = std::fs::remove_file(&path);
    trace::set_trace_path(Some(Path::new(&path))); // also enables tracing
    trace::set_sample(1);
    trace::reset();

    let d = generate(&GeneratorConfig::tiny(41));
    let cfg = MoeConfig {
        n_experts: 6,
        top_k: 2,
        tower: TowerConfig {
            hidden: vec![12, 6],
        },
        ..MoeConfig::default()
    };
    let mut model = MoeModel::new(&d.meta, cfg, OptimConfig::default());
    let batch = Batch::from_split(&d.train, &(0..128).collect::<Vec<_>>());
    for _ in 0..5 {
        model.train_step(&batch);
    }

    let server = Server::start("127.0.0.1:0", model, d.meta.clone(), ServeConfig::default())
        .unwrap_or_else(|e| fail(&format!("server start: {e}")));
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap_or_else(|e| fail(&format!("connect: {e}")));
    if client.negotiated_version() < 2 {
        fail("client+server must negotiate protocol v2");
    }

    let rows = feature_rows(&d, 8);
    // Server-sampled requests plus explicit client trace ids.
    for _ in 0..6 {
        client
            .score(&rows)
            .unwrap_or_else(|e| fail(&format!("score: {e}")));
    }
    const CLIENT_TRACE_ID: u64 = 0xC0FFEE;
    client
        .score_traced(&rows, CLIENT_TRACE_ID)
        .unwrap_or_else(|e| fail(&format!("score_traced: {e}")));

    // Export path 1: the TRACE_DUMP protocol frame.
    let dump = client
        .trace_dump()
        .unwrap_or_else(|e| fail(&format!("trace_dump: {e}")));
    let n_live = obs_check::validate_chrome_trace(&dump).unwrap_or_else(|e| fail(&e));
    if n_live == 0 {
        fail("TRACE_DUMP returned zero events with tracing on");
    }
    check_stage_chain(&dump, CLIENT_TRACE_ID);

    // Windowed quantiles must be live on the same connection.
    let (snapshot, window) = client
        .stats_full()
        .unwrap_or_else(|e| fail(&format!("stats: {e}")));
    let Some(window) = window else {
        fail("v2 STATS reply carried no windowed block");
    };
    if snapshot.ok < 7 || window.request_latency_us.count == 0 {
        fail(&format!(
            "stats incomplete: ok={} windowed latency count={}",
            snapshot.ok, window.request_latency_us.count
        ));
    }

    client
        .shutdown()
        .unwrap_or_else(|e| fail(&format!("shutdown: {e}")));
    server.join();

    // Export path 2: the drain-time AMOE_TRACE file.
    let body =
        std::fs::read_to_string(&path).unwrap_or_else(|e| fail(&format!("read {path}: {e}")));
    let n_file = obs_check::validate_chrome_trace(&body).unwrap_or_else(|e| fail(&e));
    if n_file < n_live {
        fail(&format!(
            "drain dump lost events: file has {n_file}, TRACE_DUMP saw {n_live}"
        ));
    }
    trace::set_trace_path(None);
    trace::set_enabled(false);
    println!(
        "trace_smoke: OK — {n_file} trace events validated in {path} \
         (windowed p95 latency {:.0} us over {:.0}s)",
        window.request_latency_us.p95, window.window_secs
    );
}

/// Asserts the full request-stage chain for one trace id inside a
/// Chrome trace document, in pipeline order.
fn check_stage_chain(dump: &str, trace_id: u64) {
    let doc = parse(dump).unwrap_or_else(|e| fail(&format!("dump reparse: {e}")));
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .unwrap_or_else(|| fail("dump has no traceEvents"));
    let mine: Vec<&Value> = events
        .iter()
        .filter(|e| {
            e.get("args")
                .and_then(|a| a.get("trace_id"))
                .and_then(Value::as_f64)
                == Some(trace_id as f64)
        })
        .collect();
    let mut batch_id = 0.0;
    for stage in [
        "admitted",
        "enqueued",
        "queue_exit",
        "batch_assembled",
        "reply_written",
    ] {
        let Some(ev) = mine
            .iter()
            .find(|e| e.get("name").and_then(Value::as_str) == Some(stage))
        else {
            fail(&format!("trace id {trace_id} has no '{stage}' event"));
        };
        if stage == "batch_assembled" {
            batch_id = ev
                .get("args")
                .and_then(|a| a.get("batch_id"))
                .and_then(Value::as_f64)
                .unwrap_or(0.0);
            if batch_id <= 0.0 {
                fail("batch_assembled carries no batch id");
            }
        }
    }
    // The batch that carried the request must have compute-side events
    // (gate / expert / scatter) tagged with its id.
    for stage in ["gate", "expert", "scatter"] {
        let found = events.iter().any(|e| {
            e.get("name").and_then(Value::as_str) == Some(stage)
                && e.get("args")
                    .and_then(|a| a.get("batch_id"))
                    .and_then(Value::as_f64)
                    == Some(batch_id)
        });
        if !found {
            fail(&format!("batch {batch_id} has no '{stage}' event"));
        }
    }
}
