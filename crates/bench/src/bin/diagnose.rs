//! Diagnostics for the HSC/Adv mechanisms: gate specialization by
//! category and per-size-bucket AUC. Scratch tool, not a paper artefact.

use amoe_core::{MoeConfig, MoeModel, Trainer};
use amoe_dataset::buckets::size_buckets;
use amoe_dataset::Batch;
use amoe_metrics::silhouette_score;
use amoe_tensor::Rng;

fn main() {
    let cli = amoe_bench::parse_cli("diagnose");
    let cfg = &cli.config;
    let dataset = cfg.dataset();
    let trainer = Trainer::new(cfg.train_config());
    let o = cfg.optim;
    let base = cfg.moe_config();

    let (members, totals) = size_buckets(&dataset.train, dataset.hierarchy.num_tc(), 4);
    eprintln!("bucket sizes: {totals:?}");
    let bucket_tests: Vec<_> = members
        .iter()
        .map(|tcs| dataset.test.filter_tcs(tcs))
        .collect();

    // Sample for gate clustering.
    let mut rng = Rng::seed_from(999);
    let n_sample = 400.min(dataset.test.len());
    let idx = rng.sample_distinct(dataset.test.len(), n_sample);
    let tc_labels: Vec<usize> = idx
        .iter()
        .map(|&i| dataset.test.examples[i].true_tc)
        .collect();
    let batch = Batch::from_split(&dataset.test, &idx);

    let probe = |label: &str, mc: MoeConfig| {
        let mut m = MoeModel::new(&dataset.meta, mc, o);
        trainer.fit(&mut m, &dataset.train);
        let r = trainer.evaluate(&m, &dataset.test);
        let gate = m.gate_probs_full(&batch);
        let sil = silhouette_score(&gate, &tc_labels).unwrap_or(f64::NAN);
        let bucket_auc: Vec<String> = bucket_tests
            .iter()
            .map(|s| format!("{:.4}", trainer.evaluate(&m, s).auc))
            .collect();
        println!(
            "{label:<22} AUC {:.4} NDCG {:.4} | gate-sil(TC) {sil:+.3} | bucket AUC {}",
            r.auc,
            r.ndcg,
            bucket_auc.join(" ")
        );
    };

    probe("MoE", base.clone());
    probe(
        "HSC-MoE l1=1e-2",
        MoeConfig {
            hsc: true,
            lambda1: 1e-2,
            ..base.clone()
        },
    );
    probe(
        "HSC-MoE l1=1e-1",
        MoeConfig {
            hsc: true,
            lambda1: 1e-1,
            ..base.clone()
        },
    );
    probe(
        "MoE K=2",
        MoeConfig {
            top_k: 2,
            ..base.clone()
        },
    );
    probe(
        "HSC K=2 l1=1e-2",
        MoeConfig {
            top_k: 2,
            hsc: true,
            lambda1: 1e-2,
            ..base.clone()
        },
    );
    probe(
        "MoE nolb",
        MoeConfig {
            load_balance: 0.0,
            ..base.clone()
        },
    );
    probe(
        "MoE nonoise",
        MoeConfig {
            noisy_gating: false,
            ..base.clone()
        },
    );
    probe(
        "HSC nonoise l1=1e-2",
        MoeConfig {
            noisy_gating: false,
            hsc: true,
            lambda1: 1e-2,
            ..base
        },
    );
}
