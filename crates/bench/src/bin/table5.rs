//! Regenerates Table 5 (gate-input-feature ablation).
fn main() {
    let cli = amoe_bench::parse_cli("table5");
    println!("{}", amoe_experiments::table5::run(&cli.config));
}
