//! Regenerates Figure 5 (AUC gains by category-size bucket).
fn main() {
    let cli = amoe_bench::parse_cli("fig5");
    println!("{}", amoe_experiments::fig5::run(&cli.config));
}
