//! Regenerates Figure 6 + Table 4 (gate-vector t-SNE clustering).
fn main() {
    let cli = amoe_bench::parse_cli("fig6");
    let fig = amoe_experiments::fig6::run(&cli.config);
    println!("{fig}");
    match fig.write_csv(&cli.out_dir) {
        Ok(()) => println!("2-D points written to {}/fig6_*.csv", cli.out_dir.display()),
        Err(e) => eprintln!("could not write CSVs: {e}"),
    }
}
