//! Runs the design-choice ablations (noisy gating, load balance, the
//! two regularizers) for the Adv & HSC-MoE model.
fn main() {
    let cli = amoe_bench::parse_cli("ablations");
    println!("{}", amoe_experiments::ablations::run(&cli.config));
}
