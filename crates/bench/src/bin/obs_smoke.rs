//! Telemetry smoke gate: runs a tiny training job plus one sparse
//! serving call with the JSONL sink on, then re-reads the emitted file
//! and validates it — every line parses as JSON, the expected record
//! types are present, and no number is non-finite (`null` stands in
//! for non-finite floats by the schema, and must not appear in the
//! records this run produces).
//!
//! Exit status is the contract: `0` means the telemetry pipeline is
//! healthy end-to-end; any schema violation aborts with a message and
//! status `1`. `scripts/ci.sh` runs this with `AMOE_OBS` pointing into
//! `target/`.

use std::path::Path;
use std::process::exit;

use amoe_bench::obs_check;
use amoe_core::ranker::OptimConfig;
use amoe_core::serving::ServingMoe;
use amoe_core::{MoeConfig, MoeModel, TrainConfig, Trainer};
use amoe_dataset::{generate, Batch, GeneratorConfig};

fn fail(msg: &str) -> ! {
    eprintln!("obs_smoke: FAIL: {msg}");
    exit(1);
}

fn main() {
    // Honour AMOE_OBS when the caller (CI) set it; fall back to a file
    // under the target dir. Start from a clean file either way so the
    // validation below sees exactly this run.
    let path = std::env::var("AMOE_OBS").unwrap_or_else(|_| "target/obs_smoke.jsonl".to_string());
    let _ = std::fs::remove_file(&path);
    amoe_obs::sink::set_sink_path(Some(Path::new(&path)));

    // Tiny Adv & HSC-MoE run: exercises every loss component, the gate
    // telemetry, the pool spans and the sparse serving path.
    let d = generate(&GeneratorConfig::tiny(77));
    let cfg = MoeConfig {
        n_experts: 6,
        top_k: 2,
        adversarial: true,
        hsc: true,
        ..MoeConfig::default()
    };
    let mut model = MoeModel::new(&d.meta, cfg, OptimConfig::default());
    let trainer = Trainer::new(TrainConfig {
        epochs: 1,
        batch_size: 128,
        ..TrainConfig::default()
    });
    trainer.fit(&mut model, &d.train);
    let batch = Batch::from_split(&d.test, &(0..64.min(d.test.len())).collect::<Vec<_>>());
    let (_logits, stats) = ServingMoe::new(&model).predict_logits_with_stats(&batch);
    if !stats.examples_per_sec().is_finite() {
        fail("Stats::examples_per_sec returned a non-finite value");
    }
    amoe_obs::emit_metrics_snapshot();
    amoe_obs::sink::set_sink_path(None); // flush + close

    // Validate the run log.
    let body = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let records = obs_check::validate_jsonl(&body).unwrap_or_else(|e| fail(&e));
    for r in &records {
        let checked = match r.kind.as_str() {
            "train_epoch" => obs_check::require_fields(
                &r.value,
                "train_epoch",
                &[
                    "model",
                    "epoch",
                    "loss",
                    "ce",
                    "hsc",
                    "adv",
                    "load_balance",
                    "gate_entropy",
                    "dispatch",
                ],
            ),
            "serving_predict" => obs_check::require_fields(
                &r.value,
                "serving_predict",
                &[
                    "examples",
                    "threads",
                    "gate_ns",
                    "expert_ns",
                    "scatter_ns",
                    "examples_per_sec",
                    "dispatch",
                ],
            ),
            _ => Ok(()),
        };
        checked.unwrap_or_else(|e| fail(&e));
    }
    for expected in ["train_epoch", "serving_predict", "metrics_snapshot"] {
        if !records.iter().any(|r| r.kind == expected) {
            fail(&format!("no {expected} record in {path}"));
        }
    }
    println!(
        "obs_smoke: OK — {} records ({} train_epoch, {} serving_predict) validated in {path}",
        records.len(),
        records.iter().filter(|r| r.kind == "train_epoch").count(),
        records
            .iter()
            .filter(|r| r.kind == "serving_predict")
            .count(),
    );
}
