//! Telemetry smoke gate: runs a tiny training job plus one sparse
//! serving call with the JSONL sink on, then re-reads the emitted file
//! and validates it — every line parses as JSON, the expected record
//! types are present, and no number is non-finite (`null` stands in
//! for non-finite floats by the schema, and must not appear in the
//! records this run produces).
//!
//! Exit status is the contract: `0` means the telemetry pipeline is
//! healthy end-to-end; any schema violation aborts with a message and
//! status `1`. `scripts/ci.sh` runs this with `AMOE_OBS` pointing into
//! `target/`.

use std::path::Path;
use std::process::exit;

use amoe_core::ranker::OptimConfig;
use amoe_core::serving::ServingMoe;
use amoe_core::{MoeConfig, MoeModel, TrainConfig, Trainer};
use amoe_dataset::{generate, Batch, GeneratorConfig};
use amoe_obs::json::{parse, Value};

fn fail(msg: &str) -> ! {
    eprintln!("obs_smoke: FAIL: {msg}");
    exit(1);
}

/// Recursively asserts that every number in `v` is finite. The JSON
/// writer maps non-finite floats to `null`, so also reject `null`:
/// a well-formed record never needs it.
fn assert_finite(v: &Value, context: &str) {
    match v {
        Value::Null => fail(&format!(
            "{context}: null value (non-finite number emitted?)"
        )),
        Value::Num(n) if !n.is_finite() => fail(&format!("{context}: non-finite number")),
        Value::Arr(items) => items.iter().for_each(|i| assert_finite(i, context)),
        Value::Obj(map) => map.values().for_each(|i| assert_finite(i, context)),
        _ => {}
    }
}

fn require_fields(record: &Value, kind: &str, fields: &[&str]) {
    for f in fields {
        if record.get(f).is_none() {
            fail(&format!("{kind} record is missing field '{f}'"));
        }
    }
}

fn main() {
    // Honour AMOE_OBS when the caller (CI) set it; fall back to a file
    // under the target dir. Start from a clean file either way so the
    // validation below sees exactly this run.
    let path = std::env::var("AMOE_OBS").unwrap_or_else(|_| "target/obs_smoke.jsonl".to_string());
    let _ = std::fs::remove_file(&path);
    amoe_obs::sink::set_sink_path(Some(Path::new(&path)));

    // Tiny Adv & HSC-MoE run: exercises every loss component, the gate
    // telemetry, the pool spans and the sparse serving path.
    let d = generate(&GeneratorConfig::tiny(77));
    let cfg = MoeConfig {
        n_experts: 6,
        top_k: 2,
        adversarial: true,
        hsc: true,
        ..MoeConfig::default()
    };
    let mut model = MoeModel::new(&d.meta, cfg, OptimConfig::default());
    let trainer = Trainer::new(TrainConfig {
        epochs: 1,
        batch_size: 128,
        ..TrainConfig::default()
    });
    trainer.fit(&mut model, &d.train);
    let batch = Batch::from_split(&d.test, &(0..64.min(d.test.len())).collect::<Vec<_>>());
    let (_logits, stats) = ServingMoe::new(&model).predict_logits_with_stats(&batch);
    if !stats.examples_per_sec().is_finite() {
        fail("Stats::examples_per_sec returned a non-finite value");
    }
    amoe_obs::emit_metrics_snapshot();
    amoe_obs::sink::set_sink_path(None); // flush + close

    // Validate the run log.
    let body = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let mut kinds: Vec<String> = Vec::new();
    for (lineno, line) in body.lines().enumerate() {
        let record = parse(line)
            .unwrap_or_else(|e| fail(&format!("line {}: invalid JSON: {e}", lineno + 1)));
        let kind = record
            .get("event")
            .and_then(Value::as_str)
            .unwrap_or_else(|| fail(&format!("line {}: missing 'event'", lineno + 1)))
            .to_string();
        if record.get("ts").and_then(Value::as_f64).is_none() {
            fail(&format!("line {}: missing 'ts'", lineno + 1));
        }
        assert_finite(&record, &format!("line {} ({kind})", lineno + 1));
        match kind.as_str() {
            "train_epoch" => require_fields(
                &record,
                "train_epoch",
                &[
                    "model",
                    "epoch",
                    "loss",
                    "ce",
                    "hsc",
                    "adv",
                    "load_balance",
                    "gate_entropy",
                    "dispatch",
                ],
            ),
            "serving_predict" => require_fields(
                &record,
                "serving_predict",
                &[
                    "examples",
                    "threads",
                    "gate_ns",
                    "expert_ns",
                    "scatter_ns",
                    "examples_per_sec",
                    "dispatch",
                ],
            ),
            _ => {}
        }
        kinds.push(kind);
    }
    for expected in ["train_epoch", "serving_predict", "metrics_snapshot"] {
        if !kinds.iter().any(|k| k == expected) {
            fail(&format!("no {expected} record in {path}"));
        }
    }
    println!(
        "obs_smoke: OK — {} records ({} train_epoch, {} serving_predict) validated in {path}",
        kinds.len(),
        kinds.iter().filter(|k| *k == "train_epoch").count(),
        kinds.iter().filter(|k| *k == "serving_predict").count(),
    );
}
