//! Runs the complete reproduction: every table and figure, sharing one
//! trained model zoo where the paper reuses the same models.
use amoe_experiments::{
    case_study, fig2, fig3, fig5, fig6, fig7, table1, table2, table3, table5, table6,
};

fn main() {
    let cli = amoe_bench::parse_cli("repro_all");
    let cfg = &cli.config;
    let t0 = std::time::Instant::now();

    println!("{}\n", table1::run(cfg));
    println!("{}\n", fig2::run(cfg));
    println!("{}\n", fig3::run(cfg));

    eprintln!("== training the 7-model zoo ({} seed(s)) ==", cfg.n_seeds);
    let (t2, zoo) = table2::run_with_zoo(cfg);
    println!("{t2}\n");
    println!("{}\n", fig5::evaluate(cfg, &zoo));
    let f6 = fig6::evaluate(cfg, &zoo);
    println!("{f6}\n");
    if let Err(e) = f6.write_csv(&cli.out_dir) {
        eprintln!("could not write fig6 CSVs: {e}");
    }
    println!("{}\n", case_study::evaluate(&zoo));

    println!("{}\n", table3::run(cfg));
    println!("{}\n", table5::run(cfg));
    println!("{}\n", table6::run(cfg));
    println!("{}\n", fig7::run(cfg));

    eprintln!(
        "total reproduction time: {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}
