//! Regenerates Figure 7 ((N, K, D) hyper-parameter sweep).
fn main() {
    let cli = amoe_bench::parse_cli("fig7");
    println!("{}", amoe_experiments::fig7::run(&cli.config));
}
