//! Staleness bench: what does *not* retraining cost, and what does a
//! hot-swap cost the serving path?
//!
//! Fully self-contained. The bench trains a seed model on the static
//! snapshot (tick-0 distribution), freezes it, and starts an
//! in-process [`Server`] from its exported checkpoint. It then replays
//! one deterministic drifting stream ([`amoe_dataset::DriftWorld`])
//! through an [`OnlineLoop`] driven via `step_window` — the exact
//! refit/export path the `amoe-online` daemon runs — while measuring,
//! per window:
//!
//! * **frozen AUC** — the seed model scored on the window (a deployment
//!   that never retrains);
//! * **fresh AUC** — the loop's warm-started, continuously refitted
//!   model on the same window;
//!
//! and, per refit, the serving disruption of deploying it: closed-loop
//! clients hammer the server while the new generation is `RELOAD`ed,
//! and latencies are bucketed into before / during / after the swap.
//! Every admitted request must be answered — a non-`OVERLOADED`
//! failure anywhere aborts the bench.
//!
//! Output: one human line plus a JSONL record per window
//! (`online_window_row`), per swap (`online_swap_row`), and a final
//! `online_summary` whose `auc_margin` (mean fresh − frozen AUC over
//! post-first-swap windows) is the price of staleness; the bench fails
//! unless it is positive. When `AMOE_OBS` is set the run log is
//! re-validated with the same schema checks as the other benches.
//! `--smoke` / `AMOE_BENCH_SMOKE=1` shrinks the workload for CI.

use std::process::exit;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use amoe_bench::obs_check;
use amoe_core::ranker::OptimConfig;
use amoe_core::{MoeConfig, MoeModel, Ranker, TowerConfig, TrainConfig, Trainer};
use amoe_dataset::{generate, DriftConfig, GeneratorConfig, Split};
use amoe_metrics::roc_auc;
use amoe_obs::json::Value;
use amoe_online::daemon::feature_row;
use amoe_online::{OnlineConfig, OnlineLoop};
use amoe_serve::{Client, FeatureRow, ServeConfig, ServeError, Server};

fn fail(msg: &str) -> ! {
    eprintln!("online_sweep: FAIL: {msg}");
    exit(1);
}

fn smoke() -> bool {
    std::env::var("AMOE_BENCH_SMOKE").is_ok_and(|v| v.trim() == "1")
        || std::env::args().any(|a| a == "--smoke")
}

fn percentile_us(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)] as f64
}

/// Global AUC of `model` on a window, `None` when single-class.
fn window_auc(trainer: &Trainer, model: &dyn Ranker, split: &Split) -> Option<f64> {
    let scores = trainer.score_split(model, split);
    let labels: Vec<bool> = split.examples.iter().map(|e| e.label).collect();
    roc_auc(&scores, &labels)
}

/// Continuous closed-loop hammer against `addr`; every sample is
/// timestamped so the caller can bucket it around a swap instant.
struct Hammer {
    stop: Arc<AtomicBool>,
    overloaded: Arc<AtomicU64>,
    handles: Vec<std::thread::JoinHandle<Vec<(Instant, u64)>>>,
}

impl Hammer {
    fn start(addr: std::net::SocketAddr, pool: Arc<Vec<FeatureRow>>, clients: usize) -> Hammer {
        let stop = Arc::new(AtomicBool::new(false));
        let overloaded = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for c in 0..clients {
            let pool = Arc::clone(&pool);
            let stop = Arc::clone(&stop);
            let overloaded = Arc::clone(&overloaded);
            handles.push(std::thread::spawn(move || {
                let mut client = Client::connect(addr)
                    .unwrap_or_else(|e| fail(&format!("hammer {c}: connect: {e}")));
                let rows = &pool[..pool.len().min(8)];
                let mut samples = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let t = Instant::now();
                    match client.score(rows) {
                        Ok(scores) => {
                            if scores.len() != rows.len() {
                                fail(&format!(
                                    "hammer {c}: {} scores for {} rows",
                                    scores.len(),
                                    rows.len()
                                ));
                            }
                            samples.push((t, t.elapsed().as_micros() as u64));
                        }
                        Err(ServeError::Overloaded) => {
                            overloaded.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => fail(&format!(
                            "hammer {c}: request failed during swap window: {e}"
                        )),
                    }
                }
                samples
            }));
        }
        Hammer {
            stop,
            overloaded,
            handles,
        }
    }

    fn finish(self) -> (Vec<(Instant, u64)>, u64) {
        self.stop.store(true, Ordering::Relaxed);
        let mut samples = Vec::new();
        for h in self.handles {
            samples.extend(h.join().unwrap_or_else(|_| fail("hammer thread panicked")));
        }
        samples.sort_by_key(|&(t, _)| t);
        (samples, self.overloaded.load(Ordering::Relaxed))
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let smoke = smoke();
    let (ticks, sessions_per_tick, refit_every, epochs, hammer_clients) = if smoke {
        (9u64, 16, 3u64, 2, 2)
    } else {
        (18u64, 24, 3u64, 3, 3)
    };
    let seed = 41u64;

    let base = GeneratorConfig::tiny(seed);
    // Harder drift than the daemon default: the bench exists to expose
    // the staleness gap, so every drift channel is turned up.
    let drift = DriftConfig {
        emerging_boost: 4.0,
        brand_shift_per_tick: 0.12,
        season_amplitude: 1.3,
        ..DriftConfig::default()
    };

    // The frozen deployment: a model trained once on the static
    // snapshot, exported, and never touched again.
    let dataset = generate(&base);
    let model_config = MoeConfig {
        n_experts: 6,
        top_k: 2,
        tower: TowerConfig {
            hidden: vec![12, 6],
        },
        seed,
        ..MoeConfig::default()
    };
    let trainer = Trainer::new(TrainConfig {
        batch_size: 64,
        verbose: false,
        ..TrainConfig::default()
    });
    let mut frozen = MoeModel::new(&dataset.meta, model_config.clone(), OptimConfig::default());
    trainer.fit(&mut frozen, &dataset.train);

    let export_dir = std::env::temp_dir().join(format!("amoe-online-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&export_dir);
    std::fs::create_dir_all(&export_dir).unwrap_or_else(|e| fail(&format!("export dir: {e}")));
    let seed_ckpt = export_dir.join("gen-000000.amoe");
    frozen
        .params()
        .save_atomic(&seed_ckpt)
        .unwrap_or_else(|e| fail(&format!("seed export: {e}")));

    // Serve the frozen checkpoint; the swap stages RELOAD fresher
    // generations into this process.
    let boot = MoeModel::from_checkpoint(
        &dataset.meta,
        model_config.clone(),
        OptimConfig::default(),
        &seed_ckpt,
    )
    .unwrap_or_else(|e| fail(&format!("boot model: {e}")));
    let server = Server::start(
        "127.0.0.1:0",
        boot,
        dataset.meta.clone(),
        ServeConfig::default(),
    )
    .unwrap_or_else(|e| fail(&format!("server start: {e}")));
    let addr = server.local_addr();
    println!("online_sweep: serving frozen generation on {addr}");

    // The refit path: identical to the daemon's, but offline — this
    // bench owns the RELOAD push so it can wrap it in a hammer.
    let mut config = OnlineConfig::demo(base, &export_dir);
    config.drift = drift;
    config.sessions_per_tick = sessions_per_tick;
    config.refit_every = refit_every;
    config.refit_epochs = epochs;
    config.model = model_config;
    config.seed_checkpoint = Some(seed_ckpt);
    config.serve_addr = None;
    config.probe_rows = 0;
    let mut lp = OnlineLoop::new(config).unwrap_or_else(|e| fail(&e));

    let mut admin = Client::connect(addr).unwrap_or_else(|e| fail(&format!("admin connect: {e}")));

    let mut frozen_aucs: Vec<f64> = Vec::new();
    let mut fresh_aucs: Vec<f64> = Vec::new();
    let mut swaps = 0u64;
    let mut reload_us_max = 0u64;

    for tick in 0..ticks {
        let window = lp.stream().window_at(tick);
        let pool: Arc<Vec<FeatureRow>> =
            Arc::new(window.split.examples.iter().map(feature_row).collect());

        let gen_before = lp.generation();
        let f_auc = window_auc(&trainer, &frozen, &window.split);
        let g_auc = window_auc(&trainer, lp.model(), &window.split);

        let report = lp.step().unwrap_or_else(|e| fail(&e));
        assert_eq!(report.tick, tick, "bench and loop streams must agree");

        if let (Some(f), Some(g)) = (f_auc, g_auc) {
            // The staleness comparison only counts windows scored by a
            // genuinely refreshed model (the first refit hasn't landed
            // before then, so fresh == frozen by construction).
            if gen_before > 0 {
                frozen_aucs.push(f);
                fresh_aucs.push(g);
            }
            println!(
                "online_sweep[window] tick={tick} gen={} frozen_auc={f:.4} fresh_auc={g:.4}",
                lp.generation(),
            );
            amoe_obs::emit(
                &amoe_obs::Event::new("online_window_row")
                    .u64("tick", tick)
                    .u64("generation", lp.generation())
                    .u64("examples", window.split.len() as u64)
                    .f64("frozen_auc", f)
                    .f64("fresh_auc", g),
            );
        }

        // A refit landed this tick: deploy it under load and price the
        // swap. The hammer runs before, across, and after the RELOAD;
        // any non-OVERLOADED failure aborts inside the hammer thread.
        if let Some(refit) = &report.refit {
            let hammer = Hammer::start(addr, Arc::clone(&pool), hammer_clients);
            std::thread::sleep(Duration::from_millis(if smoke { 60 } else { 120 }));
            let path = refit
                .export_path
                .to_str()
                .unwrap_or_else(|| fail("non-utf8 export path"));
            let t_reload = Instant::now();
            admin
                .reload(path)
                .unwrap_or_else(|e| fail(&format!("reload gen {}: {e}", refit.generation)));
            let reload_us = t_reload.elapsed().as_micros() as u64;
            let t_done = Instant::now();
            std::thread::sleep(Duration::from_millis(if smoke { 60 } else { 120 }));
            let (samples, overloaded) = hammer.finish();

            let mut before = Vec::new();
            let mut during = Vec::new();
            let mut after = Vec::new();
            for &(t, us) in &samples {
                if t < t_reload {
                    before.push(us);
                } else if t <= t_done {
                    during.push(us);
                } else {
                    after.push(us);
                }
            }
            before.sort_unstable();
            during.sort_unstable();
            after.sort_unstable();
            if before.is_empty() || after.is_empty() {
                fail(&format!(
                    "swap gen {}: hammer produced no samples on both sides of the reload \
                     ({} before, {} after)",
                    refit.generation,
                    before.len(),
                    after.len()
                ));
            }
            swaps += 1;
            reload_us_max = reload_us_max.max(reload_us);
            let p99_before = percentile_us(&before, 0.99);
            let p99_during = percentile_us(&during, 0.99);
            let p99_after = percentile_us(&after, 0.99);
            println!(
                "online_sweep[swap] gen={} fit_ms={:.1} reload_us={reload_us} \
                 p99_before={p99_before:.0}us p99_during={p99_during:.0}us \
                 p99_after={p99_after:.0}us ok={} overloaded={overloaded}",
                refit.generation,
                refit.fit_ms,
                samples.len(),
            );
            amoe_obs::emit(
                &amoe_obs::Event::new("online_swap_row")
                    .u64("generation", refit.generation)
                    .u64("tick", tick)
                    .f64("fit_ms", refit.fit_ms)
                    .u64("reload_us", reload_us)
                    .u64("ok", samples.len() as u64)
                    .u64("overloaded", overloaded)
                    .f64("p99_before_us", p99_before)
                    .f64("p99_during_us", p99_during)
                    .f64("p99_after_us", p99_after),
            );
        }
    }

    if swaps == 0 {
        fail("no refit/RELOAD cycle completed");
    }
    if frozen_aucs.is_empty() {
        fail("no comparable windows after the first swap");
    }
    let frozen_mean = frozen_aucs.iter().sum::<f64>() / frozen_aucs.len() as f64;
    let fresh_mean = fresh_aucs.iter().sum::<f64>() / fresh_aucs.len() as f64;
    let margin = fresh_mean - frozen_mean;
    let stats = lp.stats();
    println!(
        "online_sweep[summary] ticks={ticks} swaps={swaps} windows={} \
         frozen_auc={frozen_mean:.4} fresh_auc={fresh_mean:.4} auc_margin={margin:+.4} \
         reload_us_max={reload_us_max}",
        frozen_aucs.len(),
    );
    amoe_obs::emit(
        &amoe_obs::Event::new("online_summary")
            .u64("ticks", ticks)
            .u64("swaps", swaps)
            .u64("refits", stats.refits)
            .u64("windows", frozen_aucs.len() as u64)
            .f64("frozen_auc", frozen_mean)
            .f64("fresh_auc", fresh_mean)
            .f64("auc_margin", margin)
            .u64("reload_us_max", reload_us_max),
    );
    if margin <= 0.0 {
        fail(&format!(
            "staleness margin not positive: fresh {fresh_mean:.4} vs frozen {frozen_mean:.4} \
             — the refreshed model must beat the frozen seed under drift"
        ));
    }

    admin
        .shutdown()
        .unwrap_or_else(|e| fail(&format!("shutdown: {e}")));
    server.join();
    let _ = std::fs::remove_dir_all(&export_dir);

    // With telemetry on, the emitted rows must honour the schema.
    if let Ok(path) = std::env::var("AMOE_OBS") {
        amoe_obs::sink::set_sink_path(None); // flush + close
        let body = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        let records = obs_check::validate_jsonl(&body).unwrap_or_else(|e| fail(&e));
        let mut windows = 0usize;
        let mut swap_rows = 0usize;
        let mut summaries = 0usize;
        for r in &records {
            let checked = match r.kind.as_str() {
                "online_window_row" => {
                    windows += 1;
                    obs_check::require_fields(
                        &r.value,
                        "online_window_row",
                        &["tick", "generation", "examples", "frozen_auc", "fresh_auc"],
                    )
                }
                "online_swap_row" => {
                    swap_rows += 1;
                    obs_check::require_fields(
                        &r.value,
                        "online_swap_row",
                        &[
                            "generation",
                            "fit_ms",
                            "reload_us",
                            "p99_before_us",
                            "p99_during_us",
                            "p99_after_us",
                        ],
                    )
                }
                "online_summary" => {
                    summaries += 1;
                    let checked = obs_check::require_fields(
                        &r.value,
                        "online_summary",
                        &["swaps", "frozen_auc", "fresh_auc", "auc_margin"],
                    );
                    if checked.is_ok()
                        && r.value
                            .get("auc_margin")
                            .and_then(Value::as_f64)
                            .unwrap_or(-1.0)
                            <= 0.0
                    {
                        fail("online_summary.auc_margin must be positive");
                    }
                    checked
                }
                _ => Ok(()),
            };
            checked.unwrap_or_else(|e| fail(&e));
        }
        if windows == 0 || swap_rows == 0 || summaries != 1 {
            fail(&format!(
                "incomplete run log: {windows} window rows, {swap_rows} swap rows, \
                 {summaries} summaries in {path}"
            ));
        }
        println!("online_sweep: run log OK ({} records)", records.len());
    }
    println!("online_sweep: PASS");
}
