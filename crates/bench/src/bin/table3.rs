//! Regenerates Table 3 (cross-category transfer).
fn main() {
    let cli = amoe_bench::parse_cli("table3");
    println!("{}", amoe_experiments::table3::run(&cli.config));
}
