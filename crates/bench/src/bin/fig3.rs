//! Regenerates Figure 3 (brand sales concentration).
fn main() {
    let cli = amoe_bench::parse_cli("fig3");
    println!("{}", amoe_experiments::fig3::run(&cli.config));
}
