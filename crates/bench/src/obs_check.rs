//! Shared JSONL run-log validation for the smoke gates.
//!
//! `obs_smoke` and `load_sweep` both end by re-reading the file the
//! telemetry sink produced and checking the schema contract: every
//! line parses as JSON, carries `event` and `ts`, and contains no
//! non-finite number (the writer serialises those as `null`, so a
//! `null` anywhere is a violation). Helpers return `Err(String)`
//! rather than exiting so callers own the failure policy.
//!
//! [`validate_chrome_trace`] applies the same policy to the Chrome
//! trace-event JSON exported by `AMOE_TRACE` / `TRACE_DUMP`: schema
//! (name/cat/ph/ts/dur/pid/tid/args), finiteness, non-negative
//! durations, and per-thread monotone timestamps.
//!
//! [`validate_exposition`] does the same for the Prometheus text
//! `/metrics` pages scraped off the observability listener (grammar,
//! `amoe_*` naming, finite values, monotone cumulative buckets,
//! exemplar syntax). The implementation lives in
//! [`amoe_obs::expose`] — next to the renderer it polices — and is
//! re-exported here so the smoke gates keep one validation entry
//! point per format.

use amoe_obs::json::{parse, Value};

pub use amoe_obs::expose::validate_exposition;

/// One validated record: its `event` kind plus the parsed object.
pub struct Record {
    /// The record's `event` field.
    pub kind: String,
    /// The full parsed JSON object.
    pub value: Value,
}

/// Recursively checks that every number in `v` is finite and no value
/// is `null` (the writer's stand-in for non-finite floats).
pub fn check_finite(v: &Value, context: &str) -> Result<(), String> {
    match v {
        Value::Null => Err(format!(
            "{context}: null value (non-finite number emitted?)"
        )),
        Value::Num(n) if !n.is_finite() => Err(format!("{context}: non-finite number")),
        Value::Arr(items) => items.iter().try_for_each(|i| check_finite(i, context)),
        Value::Obj(map) => map.values().try_for_each(|i| check_finite(i, context)),
        _ => Ok(()),
    }
}

/// Checks that `record` carries every field in `fields`.
pub fn require_fields(record: &Value, kind: &str, fields: &[&str]) -> Result<(), String> {
    for f in fields {
        if record.get(f).is_none() {
            return Err(format!("{kind} record is missing field '{f}'"));
        }
    }
    Ok(())
}

/// Validates a whole JSONL body against the sink contract and returns
/// the records for caller-specific checks.
pub fn validate_jsonl(body: &str) -> Result<Vec<Record>, String> {
    let mut records = Vec::new();
    for (lineno, line) in body.lines().enumerate() {
        let record = parse(line).map_err(|e| format!("line {}: invalid JSON: {e}", lineno + 1))?;
        let kind = record
            .get("event")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {}: missing 'event'", lineno + 1))?
            .to_string();
        if record.get("ts").and_then(Value::as_f64).is_none() {
            return Err(format!("line {}: missing 'ts'", lineno + 1));
        }
        check_finite(&record, &format!("line {} ({kind})", lineno + 1))?;
        records.push(Record {
            kind,
            value: record,
        });
    }
    Ok(records)
}

/// Validates a Chrome trace-event JSON document (the `AMOE_TRACE` /
/// `TRACE_DUMP` export format) and returns the number of events.
///
/// Checks, per event: the complete-event schema (`name`, `cat`, `ph`
/// == `"X"`, `ts`, `dur`, `pid`, `tid`, `args` with `trace_id` /
/// `batch_id` / `aux`), every number finite and non-negative where it
/// must be, and — per `tid` — non-decreasing start timestamps (the
/// export is globally sorted by start, so any per-thread order
/// violation is a clock bug).
pub fn validate_chrome_trace(body: &str) -> Result<usize, String> {
    let doc = parse(body).map_err(|e| format!("invalid trace JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("trace document is missing 'traceEvents' array")?;
    let mut last_ts: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let ctx = format!("trace event {i}");
        check_finite(ev, &ctx)?;
        for field in ["name", "cat", "ph", "ts", "dur", "pid", "tid", "args"] {
            if ev.get(field).is_none() {
                return Err(format!("{ctx}: missing '{field}'"));
            }
        }
        if ev.get("ph").and_then(Value::as_str) != Some("X") {
            return Err(format!("{ctx}: ph must be \"X\" (complete event)"));
        }
        // Non-numeric ts/dur read as NaN; check_finite above already
        // rejected finite-but-NaN values, so `< 0.0 || is_nan` covers
        // both "negative" and "not a number at all".
        let ts = ev.get("ts").and_then(Value::as_f64).unwrap_or(f64::NAN);
        let dur = ev.get("dur").and_then(Value::as_f64).unwrap_or(f64::NAN);
        if ts < 0.0 || ts.is_nan() || dur < 0.0 || dur.is_nan() {
            return Err(format!(
                "{ctx}: ts/dur must be non-negative (ts={ts} dur={dur})"
            ));
        }
        let args = ev.get("args").ok_or_else(|| format!("{ctx}: no args"))?;
        for field in ["trace_id", "batch_id", "aux"] {
            if args.get(field).and_then(Value::as_f64).is_none() {
                return Err(format!("{ctx}: args missing numeric '{field}'"));
            }
        }
        let tid = ev.get("tid").and_then(Value::as_f64).unwrap_or(-1.0);
        if tid < 0.0 {
            return Err(format!("{ctx}: bad tid"));
        }
        let tid = tid as u64;
        if let Some(&prev) = last_ts.get(&tid) {
            if ts < prev {
                return Err(format!(
                    "{ctx}: timestamps not monotone on tid {tid} ({ts} < {prev})"
                ));
            }
        }
        last_ts.insert(tid, ts);
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_body_passes() {
        let body = "{\"event\":\"x\",\"ts\":0.5,\"n\":3}\n{\"event\":\"y\",\"ts\":1.0}";
        let records = validate_jsonl(body).expect("valid");
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].kind, "x");
    }

    #[test]
    fn null_value_is_a_violation() {
        let body = "{\"event\":\"x\",\"ts\":0.5,\"n\":null}";
        assert!(validate_jsonl(body).is_err());
    }

    #[test]
    fn missing_event_is_a_violation() {
        assert!(validate_jsonl("{\"ts\":0.5}").is_err());
    }

    #[test]
    fn missing_required_field_reported() {
        let records = validate_jsonl("{\"event\":\"x\",\"ts\":0.5,\"a\":1}").unwrap();
        assert!(require_fields(&records[0].value, "x", &["a"]).is_ok());
        assert!(require_fields(&records[0].value, "x", &["b"]).is_err());
    }

    #[test]
    fn chrome_trace_round_trips_through_the_validator() {
        amoe_obs::trace::set_enabled(true);
        amoe_obs::trace::reset();
        amoe_obs::trace::record(1, 1, "gate", 100, 300, 4);
        amoe_obs::trace::record(1, 1, "scatter", 300, 400, 4);
        let body = amoe_obs::trace::chrome_json();
        amoe_obs::trace::set_enabled(false);
        amoe_obs::trace::reset();
        assert_eq!(validate_chrome_trace(&body), Ok(2));
        // The empty document is valid (zero events).
        assert_eq!(
            validate_chrome_trace("{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}"),
            Ok(0)
        );
    }

    #[test]
    fn chrome_trace_violations_detected() {
        // Missing args field.
        let bad = "{\"traceEvents\":[{\"name\":\"g\",\"cat\":\"amoe\",\"ph\":\"X\",\
                    \"ts\":1.0,\"dur\":1.0,\"pid\":1,\"tid\":1,\"args\":{}}]}";
        assert!(validate_chrome_trace(bad).is_err());
        // Non-monotone timestamps on one tid.
        let args = "{\"trace_id\":1,\"batch_id\":1,\"aux\":0}";
        let bad = format!(
            "{{\"traceEvents\":[\
             {{\"name\":\"a\",\"cat\":\"amoe\",\"ph\":\"X\",\"ts\":5.0,\"dur\":0.0,\"pid\":1,\"tid\":1,\"args\":{args}}},\
             {{\"name\":\"b\",\"cat\":\"amoe\",\"ph\":\"X\",\"ts\":4.0,\"dur\":0.0,\"pid\":1,\"tid\":1,\"args\":{args}}}]}}"
        );
        assert!(validate_chrome_trace(&bad).is_err());
        // Wrong phase type.
        let bad = format!(
            "{{\"traceEvents\":[{{\"name\":\"a\",\"cat\":\"amoe\",\"ph\":\"B\",\
             \"ts\":1.0,\"dur\":0.0,\"pid\":1,\"tid\":1,\"args\":{args}}}]}}"
        );
        assert!(validate_chrome_trace(&bad).is_err());
    }
}
