//! Shared JSONL run-log validation for the smoke gates.
//!
//! `obs_smoke` and `load_sweep` both end by re-reading the file the
//! telemetry sink produced and checking the schema contract: every
//! line parses as JSON, carries `event` and `ts`, and contains no
//! non-finite number (the writer serialises those as `null`, so a
//! `null` anywhere is a violation). Helpers return `Err(String)`
//! rather than exiting so callers own the failure policy.

use amoe_obs::json::{parse, Value};

/// One validated record: its `event` kind plus the parsed object.
pub struct Record {
    /// The record's `event` field.
    pub kind: String,
    /// The full parsed JSON object.
    pub value: Value,
}

/// Recursively checks that every number in `v` is finite and no value
/// is `null` (the writer's stand-in for non-finite floats).
pub fn check_finite(v: &Value, context: &str) -> Result<(), String> {
    match v {
        Value::Null => Err(format!(
            "{context}: null value (non-finite number emitted?)"
        )),
        Value::Num(n) if !n.is_finite() => Err(format!("{context}: non-finite number")),
        Value::Arr(items) => items.iter().try_for_each(|i| check_finite(i, context)),
        Value::Obj(map) => map.values().try_for_each(|i| check_finite(i, context)),
        _ => Ok(()),
    }
}

/// Checks that `record` carries every field in `fields`.
pub fn require_fields(record: &Value, kind: &str, fields: &[&str]) -> Result<(), String> {
    for f in fields {
        if record.get(f).is_none() {
            return Err(format!("{kind} record is missing field '{f}'"));
        }
    }
    Ok(())
}

/// Validates a whole JSONL body against the sink contract and returns
/// the records for caller-specific checks.
pub fn validate_jsonl(body: &str) -> Result<Vec<Record>, String> {
    let mut records = Vec::new();
    for (lineno, line) in body.lines().enumerate() {
        let record = parse(line).map_err(|e| format!("line {}: invalid JSON: {e}", lineno + 1))?;
        let kind = record
            .get("event")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("line {}: missing 'event'", lineno + 1))?
            .to_string();
        if record.get("ts").and_then(Value::as_f64).is_none() {
            return Err(format!("line {}: missing 'ts'", lineno + 1));
        }
        check_finite(&record, &format!("line {} ({kind})", lineno + 1))?;
        records.push(Record {
            kind,
            value: record,
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_body_passes() {
        let body = "{\"event\":\"x\",\"ts\":0.5,\"n\":3}\n{\"event\":\"y\",\"ts\":1.0}";
        let records = validate_jsonl(body).expect("valid");
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].kind, "x");
    }

    #[test]
    fn null_value_is_a_violation() {
        let body = "{\"event\":\"x\",\"ts\":0.5,\"n\":null}";
        assert!(validate_jsonl(body).is_err());
    }

    #[test]
    fn missing_event_is_a_violation() {
        assert!(validate_jsonl("{\"ts\":0.5}").is_err());
    }

    #[test]
    fn missing_required_field_reported() {
        let records = validate_jsonl("{\"event\":\"x\",\"ts\":0.5,\"a\":1}").unwrap();
        assert!(require_fields(&records[0].value, "x", &["a"]).is_ok());
        assert!(require_fields(&records[0].value, "x", &["b"]).is_err());
    }
}
