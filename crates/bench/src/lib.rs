//! Shared command-line plumbing for the experiment binaries.
//!
//! Every binary accepts:
//!
//! ```text
//! --seed <u64>      dataset seed            (default 20210407)
//! --model-seed <u64> model-init seed        (default 17)
//! --scale <f64>     dataset volume factor   (default 1.0)
//! --epochs <usize>  training epochs         (default 2)
//! --batch <usize>   mini-batch size         (default 256)
//! --out <dir>       CSV output directory    (default results)
//! --quiet           suppress progress logs
//! ```

pub mod obs_check;
pub mod timing;

use amoe_experiments::SuiteConfig;

/// Parsed common flags.
pub struct Cli {
    /// The suite configuration implied by the flags.
    pub config: SuiteConfig,
    /// Output directory for CSV artefacts.
    pub out_dir: std::path::PathBuf,
}

/// Parses `std::env::args`, exiting with a usage message on error.
#[must_use]
pub fn parse_cli(binary: &str) -> Cli {
    let mut config = SuiteConfig {
        verbose: true,
        ..SuiteConfig::default()
    };
    let mut out_dir = std::path::PathBuf::from("results");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let usage = || -> ! {
        eprintln!(
            "usage: {binary} [--seed u64] [--model-seed u64] [--scale f64] \
             [--epochs n] [--batch n] [--out dir] [--quiet]"
        );
        std::process::exit(2);
    };
    while i < args.len() {
        let need_value = |i: usize| -> &str {
            args.get(i + 1)
                .map(String::as_str)
                .unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--seed" => {
                config.data_seed = need_value(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--model-seed" => {
                config.model_seed = need_value(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--scale" => {
                config.scale = need_value(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--epochs" => {
                config.epochs = need_value(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--batch" => {
                config.batch_size = need_value(i).parse().unwrap_or_else(|_| usage());
                i += 2;
            }
            "--out" => {
                out_dir = need_value(i).into();
                i += 2;
            }
            "--quiet" => {
                config.verbose = false;
                i += 1;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    Cli { config, out_dir }
}
