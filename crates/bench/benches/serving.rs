//! Serving-path benchmarks: the paper's design constraint is constant
//! serving cost in the number of experts `N` at fixed `K`. The sparse
//! expert-major path should stay roughly flat as `N` grows, while the
//! dense path grows linearly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use amoe_core::ranker::OptimConfig;
use amoe_core::serving::ServingMoe;
use amoe_core::{MoeConfig, MoeModel, Ranker};
use amoe_dataset::{generate, Batch, GeneratorConfig};

fn bench_sparse_vs_dense(c: &mut Criterion) {
    let d = generate(&GeneratorConfig::tiny(88));
    let idx: Vec<usize> = (0..256.min(d.test.len())).collect();
    let batch = Batch::from_split(&d.test, &idx);
    let optim = OptimConfig::default();

    let mut group = c.benchmark_group("serving_b256");
    group.sample_size(30);
    for n in [8usize, 16, 32, 64] {
        let cfg = MoeConfig {
            n_experts: n,
            top_k: 4,
            ..MoeConfig::default()
        };
        let model = MoeModel::new(&d.meta, cfg, optim);
        group.bench_with_input(BenchmarkId::new("sparse_topk", n), &model, |b, m| {
            let serving = ServingMoe::new(m);
            b.iter(|| black_box(serving.predict(&batch)));
        });
        group.bench_with_input(BenchmarkId::new("dense_all_experts", n), &model, |b, m| {
            b.iter(|| black_box(m.predict(&batch)));
        });
    }
    group.finish();
}

fn bench_serving_latency_small_batch(c: &mut Criterion) {
    // Online ranking latency regime: one session (~16 candidates).
    let d = generate(&GeneratorConfig::tiny(89));
    let idx: Vec<usize> = (0..16.min(d.test.len())).collect();
    let batch = Batch::from_split(&d.test, &idx);
    let model = MoeModel::new(
        &d.meta,
        MoeConfig {
            n_experts: 10,
            top_k: 4,
            ..MoeConfig::default()
        },
        OptimConfig::default(),
    );
    let serving = ServingMoe::new(&model);
    c.bench_function("serving_session_16items", |b| {
        b.iter(|| black_box(serving.predict(&batch)));
    });
}

criterion_group!(benches, bench_sparse_vs_dense, bench_serving_latency_small_batch);
criterion_main!(benches);
