//! Serving-path benchmarks: the paper's design constraint is constant
//! serving cost in the number of experts `N` at fixed `K`. The sparse
//! expert-major path should stay roughly flat as `N` grows, while the
//! dense path grows linearly. Run with `cargo bench --bench serving`
//! (`--smoke` for a quick pass); the companion `serving_sweep` binary
//! adds the thread-count dimension.

use amoe_bench::timing::Timer;
use amoe_core::ranker::OptimConfig;
use amoe_core::serving::ServingMoe;
use amoe_core::{MoeConfig, MoeModel, Ranker};
use amoe_dataset::{generate, Batch, GeneratorConfig};

fn bench_sparse_vs_dense(t: &Timer) {
    println!("== sparse top-K vs dense, batch 256, K=4 ==");
    let d = generate(&GeneratorConfig::tiny(88));
    let idx: Vec<usize> = (0..256.min(d.test.len())).collect();
    let batch = Batch::from_split(&d.test, &idx);
    let optim = OptimConfig::default();

    for n in [8usize, 16, 32, 64] {
        let cfg = MoeConfig {
            n_experts: n,
            top_k: 4,
            ..MoeConfig::default()
        };
        let model = MoeModel::new(&d.meta, cfg, optim);
        let serving = ServingMoe::new(&model);
        t.report(&format!("serving/sparse_topk/N={n}"), || {
            serving.predict(&batch)
        });
        t.report(&format!("serving/dense_all_experts/N={n}"), || {
            model.predict(&batch)
        });
    }
}

fn bench_serving_latency_small_batch(t: &Timer) {
    // Online ranking latency regime: one session (~16 candidates).
    println!("== per-session latency ==");
    let d = generate(&GeneratorConfig::tiny(89));
    let idx: Vec<usize> = (0..16.min(d.test.len())).collect();
    let batch = Batch::from_split(&d.test, &idx);
    let model = MoeModel::new(
        &d.meta,
        MoeConfig {
            n_experts: 10,
            top_k: 4,
            ..MoeConfig::default()
        },
        OptimConfig::default(),
    );
    let serving = ServingMoe::new(&model);
    t.report("serving/session_16items", || serving.predict(&batch));
}

fn main() {
    let t = Timer::from_env();
    bench_sparse_vs_dense(&t);
    bench_serving_latency_small_batch(&t);
}
