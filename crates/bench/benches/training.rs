//! Training-step throughput for every model in the zoo — the cost side
//! of the paper's Table 2 comparison ("the computational complexity of
//! 4-MMoE is approximately the same as the MoE-based model ...").
//! Run with `cargo bench --bench training` (`--smoke` for a quick pass).

use amoe_bench::timing::Timer;
use amoe_core::ranker::OptimConfig;
use amoe_core::{DnnModel, MmoeModel, MoeConfig, MoeModel, Ranker};
use amoe_dataset::buckets::equal_count_task_buckets;
use amoe_dataset::{generate, Batch, GeneratorConfig};

fn setup() -> (amoe_dataset::Dataset, Batch) {
    let d = generate(&GeneratorConfig::tiny(77));
    let idx: Vec<usize> = (0..256.min(d.train.len())).collect();
    let batch = Batch::from_split(&d.train, &idx);
    (d, batch)
}

fn bench_train_step(t: &Timer) {
    println!("== train_step, batch 256 ==");
    let (d, batch) = setup();
    let optim = OptimConfig::default();
    let base = MoeConfig::default();

    let mut dnn = DnnModel::new(&d.meta, &base, optim);
    t.report("train_step/DNN", || dnn.train_step(&batch));

    for (label, cfg) in [
        ("MoE", MoeConfig::moe()),
        ("Adv-MoE", MoeConfig::adv_moe()),
        ("HSC-MoE", MoeConfig::hsc_moe()),
        ("Adv&HSC-MoE", MoeConfig::adv_hsc_moe()),
    ] {
        let mut model = MoeModel::new(&d.meta, cfg, optim);
        t.report(&format!("train_step/{label}"), || model.train_step(&batch));
    }

    let tasks = equal_count_task_buckets(&d.train, d.hierarchy.num_tc(), 10);
    for n in [4usize, 10] {
        let mut mmoe = MmoeModel::new(&d.meta, &base, n, tasks.clone(), optim);
        t.report(&format!("train_step/MMoE-{n}"), || mmoe.train_step(&batch));
    }
}

fn bench_train_step_vs_n(t: &Timer) {
    // Dense training cost grows with N (all experts computed); the
    // companion `serving_sweep` bin shows the sparse path does not.
    println!("== train_step vs N (Adv&HSC) ==");
    let (d, batch) = setup();
    let optim = OptimConfig::default();
    for n in [10usize, 16, 32] {
        let cfg = MoeConfig {
            n_experts: n,
            top_k: 4,
            adversarial: true,
            hsc: true,
            ..MoeConfig::default()
        };
        let mut model = MoeModel::new(&d.meta, cfg, optim);
        t.report(&format!("train_step_vs_n/{n}"), || model.train_step(&batch));
    }
}

fn main() {
    let t = Timer::from_env();
    bench_train_step(&t);
    bench_train_step_vs_n(&t);
}
