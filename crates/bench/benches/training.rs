//! Training-step throughput for every model in the zoo — the cost side
//! of the paper's Table 2 comparison ("the computational complexity of
//! 4-MMoE is approximately the same as the MoE-based model ...").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use amoe_core::ranker::OptimConfig;
use amoe_core::{DnnModel, MmoeModel, MoeConfig, MoeModel, Ranker};
use amoe_dataset::buckets::equal_count_task_buckets;
use amoe_dataset::{generate, Batch, GeneratorConfig};

fn setup() -> (amoe_dataset::Dataset, Batch) {
    let d = generate(&GeneratorConfig::tiny(77));
    let idx: Vec<usize> = (0..256.min(d.train.len())).collect();
    let batch = Batch::from_split(&d.train, &idx);
    (d, batch)
}

fn bench_train_step(c: &mut Criterion) {
    let (d, batch) = setup();
    let optim = OptimConfig::default();
    let base = MoeConfig::default();
    let mut group = c.benchmark_group("train_step_b256");
    group.sample_size(20);

    let mut dnn = DnnModel::new(&d.meta, &base, optim);
    group.bench_function("DNN", |b| {
        b.iter(|| black_box(dnn.train_step(&batch)));
    });

    for (label, cfg) in [
        ("MoE", MoeConfig::moe()),
        ("Adv-MoE", MoeConfig::adv_moe()),
        ("HSC-MoE", MoeConfig::hsc_moe()),
        ("Adv&HSC-MoE", MoeConfig::adv_hsc_moe()),
    ] {
        let mut model = MoeModel::new(&d.meta, cfg, optim);
        group.bench_function(label, |b| {
            b.iter(|| black_box(model.train_step(&batch)));
        });
    }

    let tasks = equal_count_task_buckets(&d.train, d.hierarchy.num_tc(), 10);
    for n in [4usize, 10] {
        let mut mmoe = MmoeModel::new(&d.meta, &base, n, tasks.clone(), optim);
        group.bench_function(BenchmarkId::new("MMoE", n), |b| {
            b.iter(|| black_box(mmoe.train_step(&batch)));
        });
    }
    group.finish();
}

fn bench_train_step_vs_n(c: &mut Criterion) {
    // Dense training cost grows with N (all experts computed); the
    // companion `serving` bench shows the sparse path does not.
    let (d, batch) = setup();
    let optim = OptimConfig::default();
    let mut group = c.benchmark_group("train_step_vs_n");
    group.sample_size(15);
    for n in [10usize, 16, 32] {
        let cfg = MoeConfig {
            n_experts: n,
            top_k: 4,
            adversarial: true,
            hsc: true,
            ..MoeConfig::default()
        };
        let mut model = MoeModel::new(&d.meta, cfg, optim);
        group.bench_with_input(BenchmarkId::from_parameter(n), &(), |b, ()| {
            b.iter(|| black_box(model.train_step(&batch)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_train_step, bench_train_step_vs_n);
criterion_main!(benches);
