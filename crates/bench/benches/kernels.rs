//! Micro-benchmarks of the numeric substrate: mat-mul flavours, softmax,
//! top-k selection, and a t-SNE iteration — the kernels every training
//! step is built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use amoe_tensor::{matmul, ops, topk, Rng};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &(m, k, n) in &[(256usize, 48usize, 32usize), (256, 32, 16), (1024, 48, 32)] {
        let mut rng = Rng::seed_from(1);
        let a = rng.normal_matrix(m, k, 0.0, 1.0);
        let b = rng.normal_matrix(k, n, 0.0, 1.0);
        group.bench_with_input(
            BenchmarkId::new("nn", format!("{m}x{k}x{n}")),
            &(&a, &b),
            |bench, (a, b)| bench.iter(|| black_box(matmul::matmul(a, b))),
        );
        // The backward-pass flavours.
        let g = rng.normal_matrix(m, n, 0.0, 1.0);
        group.bench_with_input(
            BenchmarkId::new("nt", format!("{m}x{k}x{n}")),
            &(&g, &b),
            |bench, (g, b)| bench.iter(|| black_box(matmul::matmul_nt(g, b))),
        );
        group.bench_with_input(
            BenchmarkId::new("tn", format!("{m}x{k}x{n}")),
            &(&a, &g),
            |bench, (a, g)| bench.iter(|| black_box(matmul::matmul_tn(a, g))),
        );
    }
    group.finish();
}

fn bench_softmax_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("gating_kernels");
    let mut rng = Rng::seed_from(2);
    for &n in &[10usize, 16, 32] {
        let logits = rng.normal_matrix(256, n, 0.0, 1.0);
        group.bench_with_input(BenchmarkId::new("softmax_rows", n), &logits, |b, l| {
            b.iter(|| black_box(ops::softmax_rows(l)));
        });
        group.bench_with_input(BenchmarkId::new("topk_mask_k4", n), &logits, |b, l| {
            b.iter(|| black_box(topk::row_topk_mask(l, 4.min(n))));
        });
    }
    group.finish();
}

fn bench_tsne(c: &mut Criterion) {
    let mut rng = Rng::seed_from(3);
    let data = rng.normal_matrix(150, 10, 0.0, 1.0);
    c.bench_function("tsne_150pts_50iter", |b| {
        b.iter(|| {
            let cfg = amoe_tsne::TsneConfig {
                perplexity: 20.0,
                iterations: 50,
                ..Default::default()
            };
            black_box(amoe_tsne::tsne(&data, &cfg))
        });
    });
}

fn bench_session_metrics(c: &mut Criterion) {
    let mut rng = Rng::seed_from(4);
    let scores: Vec<f32> = (0..2000).map(|_| rng.uniform() as f32).collect();
    let labels: Vec<bool> = (0..2000).map(|_| rng.bernoulli(0.12)).collect();
    c.bench_function("roc_auc_2000", |b| {
        b.iter(|| black_box(amoe_metrics::roc_auc(&scores, &labels)));
    });
    c.bench_function("ndcg_2000", |b| {
        b.iter(|| black_box(amoe_metrics::ndcg(&scores, &labels, Some(10))));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul, bench_softmax_topk, bench_tsne, bench_session_metrics
}
criterion_main!(benches);
