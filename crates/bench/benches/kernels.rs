//! Micro-benchmarks of the numeric substrate: mat-mul flavours, softmax,
//! top-k selection, and a t-SNE iteration — the kernels every training
//! step is built from. Run with `cargo bench --bench kernels`
//! (`--smoke` for a quick pass).

use amoe_bench::timing::Timer;
use amoe_tensor::{matmul, ops, topk, Rng};

fn bench_matmul(t: &Timer) {
    println!("== matmul flavours ==");
    for &(m, k, n) in &[(256usize, 48usize, 32usize), (256, 32, 16), (1024, 48, 32)] {
        let mut rng = Rng::seed_from(1);
        let a = rng.normal_matrix(m, k, 0.0, 1.0);
        let b = rng.normal_matrix(k, n, 0.0, 1.0);
        let g = rng.normal_matrix(m, n, 0.0, 1.0);
        t.report(&format!("matmul/nn/{m}x{k}x{n}"), || matmul::matmul(&a, &b));
        // The backward-pass flavours.
        t.report(&format!("matmul/nt/{m}x{k}x{n}"), || {
            matmul::matmul_nt(&g, &b)
        });
        t.report(&format!("matmul/tn/{m}x{k}x{n}"), || {
            matmul::matmul_tn(&a, &g)
        });
    }
}

fn bench_softmax_topk(t: &Timer) {
    println!("== gating kernels ==");
    let mut rng = Rng::seed_from(2);
    for &n in &[10usize, 16, 32] {
        let logits = rng.normal_matrix(256, n, 0.0, 1.0);
        t.report(&format!("softmax_rows/{n}"), || ops::softmax_rows(&logits));
        t.report(&format!("topk_mask_k4/{n}"), || {
            topk::row_topk_mask(&logits, 4.min(n))
        });
    }
}

fn bench_tsne(t: &Timer) {
    println!("== t-SNE ==");
    let mut rng = Rng::seed_from(3);
    let data = rng.normal_matrix(150, 10, 0.0, 1.0);
    t.report("tsne_150pts_50iter", || {
        let cfg = amoe_tsne::TsneConfig {
            perplexity: 20.0,
            iterations: 50,
            ..Default::default()
        };
        amoe_tsne::tsne(&data, &cfg)
    });
}

fn bench_session_metrics(t: &Timer) {
    println!("== session metrics ==");
    let mut rng = Rng::seed_from(4);
    let scores: Vec<f32> = (0..2000).map(|_| rng.uniform() as f32).collect();
    let labels: Vec<bool> = (0..2000).map(|_| rng.bernoulli(0.12)).collect();
    t.report("roc_auc_2000", || amoe_metrics::roc_auc(&scores, &labels));
    t.report("ndcg_2000", || {
        amoe_metrics::ndcg(&scores, &labels, Some(10))
    });
}

fn main() {
    let t = Timer::from_env();
    bench_matmul(&t);
    bench_softmax_topk(&t);
    bench_tsne(&t);
    bench_session_metrics(&t);
}
