//! Finite-difference verification of the *complete* combined objective
//! (Eq. 14): CE + λ₁·HSC − λ₂·AdvLoss over a miniature MoE built from
//! scratch — embeddings, two-layer experts, both gates, masked top-K
//! softmax. This is the strongest correctness statement in the
//! reproduction: every gradient the training loop uses is validated
//! against numerics, including the paper's routing rules.

use amoe_autograd::gradcheck::assert_gradients;
use amoe_autograd::{Tape, Var};
use amoe_core::losses::{adversarial_loss, hsc_loss, sample_adversarial_mask};
use amoe_tensor::{matmul, topk, Matrix, Rng};

const B: usize = 4; // batch
const N: usize = 5; // experts
const K: usize = 2; // top-k
const D: usize = 2; // adversarial
const EMB: usize = 3;
const IN: usize = 6; // model input width (emb + numeric)
const H: usize = 4; // expert hidden width

struct Fixture {
    sc_table: Matrix,
    tc_table: Matrix,
    w_gate: Matrix,
    w_cgate: Matrix,
    expert_w1: Vec<Matrix>,
    expert_w2: Vec<Matrix>,
    numeric: Matrix,
    labels: Matrix,
    sc_idx: Vec<usize>,
    tc_idx: Vec<usize>,
    topk_mask: Matrix,
    adv_mask: Matrix,
}

fn fixture(seed: u64) -> Fixture {
    let mut rng = Rng::seed_from(seed);
    let sc_table = rng.normal_matrix(7, EMB, 0.0, 0.5);
    let tc_table = rng.normal_matrix(3, EMB, 0.0, 0.5);
    let w_gate = rng.normal_matrix(EMB, N, 0.0, 0.8);
    let w_cgate = rng.normal_matrix(EMB, N, 0.0, 0.8);
    let expert_w1: Vec<Matrix> = (0..N).map(|_| rng.normal_matrix(IN, H, 0.0, 0.6)).collect();
    let expert_w2: Vec<Matrix> = (0..N).map(|_| rng.normal_matrix(H, 1, 0.0, 0.6)).collect();
    let numeric = rng.normal_matrix(B, IN - EMB, 0.0, 1.0);
    let labels = Matrix::from_vec(
        B,
        1,
        (0..B).map(|i| f32::from(u8::from(i % 2 == 0))).collect(),
    );
    let sc_idx = vec![0usize, 3, 3, 6];
    let tc_idx = vec![0usize, 1, 1, 2];

    // Fix the gating masks from the unperturbed weights so that finite
    // differences never cross a top-K boundary (the masks are constants
    // in the training loop too — they come from the noisy forward pass).
    let sc_emb = sc_table.gather_rows(&sc_idx);
    let logits = matmul::matmul(&sc_emb, &w_gate);
    let topk_mask = topk::row_topk_mask(&logits, K);
    let adv_mask = sample_adversarial_mask(&topk_mask, D, &mut rng);

    Fixture {
        sc_table,
        tc_table,
        w_gate,
        w_cgate,
        expert_w1,
        expert_w2,
        numeric,
        labels,
        sc_idx,
        tc_idx,
        topk_mask,
        adv_mask,
    }
}

/// Builds the full Eq. 14 objective on a tape from parameter leaves.
/// Input order: sc_table, tc_table, w_gate, w_cgate, then per expert
/// (w1, w2).
fn build_loss<'t>(
    f: &Fixture,
    tape: &'t Tape,
    v: &[Var<'t>],
    lambda1: f32,
    lambda2: f32,
) -> Var<'t> {
    let (sc_table, tc_table, w_gate, w_cgate) = (v[0], v[1], v[2], v[3]);
    let sc_emb = sc_table.embed(&f.sc_idx);
    let tc_emb = tc_table.embed(&f.tc_idx);
    let numeric = tape.leaf(f.numeric.clone()).detach();
    let x = Var::concat_cols(&[sc_emb, numeric]);

    let gate_logits = sc_emb.matmul(w_gate);
    let probs = gate_logits.masked_softmax_rows(&f.topk_mask);

    let outs: Vec<Var<'t>> = (0..N)
        .map(|e| {
            let w1 = v[4 + 2 * e];
            let w2 = v[5 + 2 * e];
            x.matmul(w1).relu().matmul(w2)
        })
        .collect();
    let experts = Var::concat_cols(&outs);
    let logit = (probs * experts).row_sum();
    let ce = logit.bce_with_logits(&f.labels);

    let c_logits = tc_emb.matmul(w_cgate);
    let hsc = hsc_loss(gate_logits, c_logits, &f.topk_mask);
    let adv = adversarial_loss(experts, &f.topk_mask, &f.adv_mask, K, D);

    (ce + hsc.scale(lambda1) - adv.scale(lambda2)).mean_all()
}

fn inputs(f: &Fixture) -> Vec<Matrix> {
    let mut ins = vec![
        f.sc_table.clone(),
        f.tc_table.clone(),
        f.w_gate.clone(),
        f.w_cgate.clone(),
    ];
    for e in 0..N {
        ins.push(f.expert_w1[e].clone());
        ins.push(f.expert_w2[e].clone());
    }
    ins
}

#[test]
fn combined_objective_gradcheck() {
    let f = fixture(2024);
    let ins = inputs(&f);
    assert_gradients(
        |tape, v| build_loss(&f, tape, v, 0.5, 0.3).into(),
        &ins,
        5e-3,
        3e-2,
    );
}

#[test]
fn ce_only_gradcheck() {
    let f = fixture(77);
    let ins = inputs(&f);
    assert_gradients(
        |tape, v| build_loss(&f, tape, v, 0.0, 0.0).into(),
        &ins,
        5e-3,
        3e-2,
    );
}

#[test]
fn hsc_gradient_routing_matches_eq15() {
    // Eq. 15: expert weights receive no HSC gradient. Compare expert
    // gradients with λ₁ = 0 vs λ₁ large — they must be identical, while
    // the gate gradients must differ.
    let f = fixture(99);
    let ins = inputs(&f);

    let grads_for = |lambda1: f32| -> Vec<Matrix> {
        let tape = Tape::new();
        let vars: Vec<Var<'_>> = ins.iter().map(|m| tape.leaf(m.clone())).collect();
        let loss = build_loss(&f, &tape, &vars, lambda1, 0.0);
        let grads = tape.backward(loss);
        vars.iter()
            .map(|&v| {
                let (r, c) = v.shape();
                grads.get_or_zeros(v, r, c)
            })
            .collect()
    };

    let g0 = grads_for(0.0);
    let g1 = grads_for(10.0);

    // Expert tower weights: identical gradients (no HSC flow).
    for e in 0..N {
        for slot in [4 + 2 * e, 5 + 2 * e] {
            amoe_tensor::assert_close(&g0[slot], &g1[slot], 1e-5, 1e-6);
        }
    }
    // Inference gate and constraint gate: gradients must change.
    let diff_gate = amoe_tensor::ops::sub(&g0[2], &g1[2]).frob_norm();
    let diff_cgate = amoe_tensor::ops::sub(&g0[3], &g1[3]).frob_norm();
    assert!(diff_gate > 1e-4, "inference gate unaffected by HSC");
    assert!(diff_cgate > 1e-4, "constraint gate unaffected by HSC");
}

#[test]
fn adv_gradient_reaches_both_expert_sets() {
    // Eq. 12/15: the adversarial term must push gradients into top-K
    // experts AND the sampled disagreeing experts, but not into experts
    // outside both sets.
    let f = fixture(123);
    let ins = inputs(&f);

    let grads_for = |lambda2: f32| -> Vec<Matrix> {
        let tape = Tape::new();
        let vars: Vec<Var<'_>> = ins.iter().map(|m| tape.leaf(m.clone())).collect();
        let loss = build_loss(&f, &tape, &vars, 0.0, lambda2);
        let grads = tape.backward(loss);
        vars.iter()
            .map(|&v| {
                let (r, c) = v.shape();
                grads.get_or_zeros(v, r, c)
            })
            .collect()
    };
    let g0 = grads_for(0.0);
    let g1 = grads_for(5.0);

    // Classify experts by whether any example selects them in either mask.
    for e in 0..N {
        let in_topk = (0..B).any(|r| f.topk_mask[(r, e)] == 1.0);
        let in_adv = (0..B).any(|r| f.adv_mask[(r, e)] == 1.0);
        let diff = amoe_tensor::ops::sub(&g0[4 + 2 * e], &g1[4 + 2 * e]).frob_norm();
        if in_topk || in_adv {
            assert!(
                diff > 1e-6,
                "expert {e} (topk={in_topk}, adv={in_adv}) got no adv gradient"
            );
        } else {
            assert!(
                diff < 1e-6,
                "untouched expert {e} received adv gradient {diff}"
            );
        }
    }
}
