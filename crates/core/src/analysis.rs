//! Post-training analysis of gate behaviour and expert specialisation —
//! the library form of the inspection the paper does in Sec. 5.3 and
//! Fig. 6 (which experts each category activates and how decisively).

use std::collections::HashMap;

use amoe_dataset::{Batch, Split};
use amoe_tensor::Matrix;

use crate::models::MoeModel;

/// Mean full-support gate distribution per top-category, plus each
/// category's favourite (highest mean probability) experts.
pub struct GateProfile {
    /// `num_tc x n_experts` mean gate probabilities.
    pub mean_probs: Matrix,
    /// Number of examples that contributed per top-category.
    pub support: Vec<usize>,
}

impl GateProfile {
    /// The `k` experts a top-category relies on most.
    #[must_use]
    pub fn top_experts(&self, tc: usize, k: usize) -> Vec<usize> {
        amoe_tensor::topk::top_k_indices(self.mean_probs.row(tc), k)
    }

    /// Jaccard overlap of two categories' top-`k` expert sets — the
    /// quantity HSC is designed to raise for siblings.
    #[must_use]
    pub fn expert_overlap(&self, tc_a: usize, tc_b: usize, k: usize) -> f64 {
        let a = self.top_experts(tc_a, k);
        let b = self.top_experts(tc_b, k);
        let inter = a.iter().filter(|e| b.contains(e)).count();
        inter as f64 / (a.len() + b.len() - inter) as f64
    }
}

/// Computes the per-top-category gate profile of a trained model over
/// (up to `max_per_tc` examples of) a split.
///
/// # Panics
/// Panics if the split is empty.
#[must_use]
pub fn gate_profile(
    model: &MoeModel,
    split: &Split,
    num_tc: usize,
    max_per_tc: usize,
) -> GateProfile {
    assert!(!split.is_empty(), "gate_profile: empty split");
    let mut by_tc: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, e) in split.examples.iter().enumerate() {
        let bucket = by_tc.entry(e.true_tc).or_default();
        if bucket.len() < max_per_tc {
            bucket.push(i);
        }
    }
    let n = model.config().n_experts;
    let mut mean_probs = Matrix::zeros(num_tc, n);
    let mut support = vec![0usize; num_tc];
    for (&tc, idx) in &by_tc {
        if idx.is_empty() {
            continue;
        }
        let batch = Batch::from_split(split, idx);
        let probs = model.gate_probs_full(&batch);
        let dst = mean_probs.row_mut(tc);
        for r in 0..probs.rows() {
            for (d, &v) in dst.iter_mut().zip(probs.row(r)) {
                *d += v / probs.rows() as f32;
            }
        }
        support[tc] = idx.len();
    }
    GateProfile {
        mean_probs,
        support,
    }
}

/// Summary statistics of expert-to-category specialisation.
#[derive(Clone, Debug)]
pub struct SpecializationReport {
    /// Mean top-K expert overlap (Jaccard) between *sibling-class* TC
    /// pairs (same semantic grouping would need the hierarchy; here:
    /// all pairs are reported separately).
    pub mean_overlap_all_pairs: f64,
    /// Mean entropy of the per-TC mean gate distribution (low =
    /// decisive routing).
    pub mean_gate_entropy: f64,
}

/// Computes specialisation statistics from a gate profile.
#[must_use]
pub fn specialization_report(profile: &GateProfile, k: usize) -> SpecializationReport {
    let num_tc = profile.mean_probs.rows();
    let mut overlap = 0.0;
    let mut pairs = 0usize;
    for a in 0..num_tc {
        for b in a + 1..num_tc {
            if profile.support[a] == 0 || profile.support[b] == 0 {
                continue;
            }
            overlap += profile.expert_overlap(a, b, k);
            pairs += 1;
        }
    }
    let mut entropy = 0.0;
    let mut counted = 0usize;
    for tc in 0..num_tc {
        if profile.support[tc] == 0 {
            continue;
        }
        let h: f64 = profile
            .mean_probs
            .row(tc)
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| -f64::from(p) * f64::from(p).ln())
            .sum();
        entropy += h;
        counted += 1;
    }
    SpecializationReport {
        mean_overlap_all_pairs: overlap / pairs.max(1) as f64,
        mean_gate_entropy: entropy / counted.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MoeConfig, TowerConfig};
    use crate::ranker::{OptimConfig, Ranker};
    use amoe_dataset::{generate, GeneratorConfig};

    fn trained() -> (amoe_dataset::Dataset, MoeModel) {
        let d = generate(&GeneratorConfig {
            train_sessions: 400,
            test_sessions: 120,
            ..GeneratorConfig::tiny(77)
        });
        let cfg = MoeConfig {
            n_experts: 6,
            top_k: 2,
            tower: TowerConfig {
                hidden: vec![12, 6],
            },
            ..MoeConfig::default()
        };
        let mut m = MoeModel::new(&d.meta, cfg, OptimConfig::default());
        let batch = Batch::from_split(&d.train, &(0..256).collect::<Vec<_>>());
        for _ in 0..10 {
            m.train_step(&batch);
        }
        (d, m)
    }

    #[test]
    fn profile_rows_are_distributions() {
        let (d, m) = trained();
        let p = gate_profile(&m, &d.test, d.hierarchy.num_tc(), 100);
        for tc in 0..d.hierarchy.num_tc() {
            if p.support[tc] == 0 {
                continue;
            }
            let sum: f32 = p.mean_probs.row(tc).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4, "tc {tc}: {sum}");
        }
    }

    #[test]
    fn top_experts_sorted_by_mass() {
        let (d, m) = trained();
        let p = gate_profile(&m, &d.test, d.hierarchy.num_tc(), 100);
        let tc = (0..d.hierarchy.num_tc())
            .find(|&t| p.support[t] > 0)
            .unwrap();
        let top = p.top_experts(tc, 3);
        assert_eq!(top.len(), 3);
        assert!(p.mean_probs[(tc, top[0])] >= p.mean_probs[(tc, top[1])]);
    }

    #[test]
    fn overlap_bounds() {
        let (d, m) = trained();
        let p = gate_profile(&m, &d.test, d.hierarchy.num_tc(), 100);
        let tcs: Vec<usize> = (0..d.hierarchy.num_tc())
            .filter(|&t| p.support[t] > 0)
            .take(2)
            .collect();
        if tcs.len() == 2 {
            let o = p.expert_overlap(tcs[0], tcs[1], 2);
            assert!((0.0..=1.0).contains(&o));
            assert!((p.expert_overlap(tcs[0], tcs[0], 2) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn specialization_report_sane() {
        let (d, m) = trained();
        let p = gate_profile(&m, &d.test, d.hierarchy.num_tc(), 100);
        let r = specialization_report(&p, 2);
        assert!((0.0..=1.0).contains(&r.mean_overlap_all_pairs));
        let max_entropy = (m.config().n_experts as f64).ln();
        assert!(r.mean_gate_entropy >= 0.0 && r.mean_gate_entropy <= max_entropy + 1e-9);
    }
}
