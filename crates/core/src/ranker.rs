//! The [`Ranker`] abstraction every model in the zoo implements.

use amoe_dataset::Batch;

/// Optimizer hyper-parameters shared by all models (the paper uses AdamW
/// with a constant learning rate for every model, Sec. 5.1.4).
#[derive(Clone, Copy, Debug)]
pub struct OptimConfig {
    /// AdamW learning rate.
    pub lr: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Global-norm gradient clip (0 disables).
    pub clip_norm: f32,
}

impl Default for OptimConfig {
    fn default() -> Self {
        OptimConfig {
            lr: 3e-3,
            weight_decay: 1e-5,
            clip_norm: 5.0,
        }
    }
}

/// Loss components observed during one training step.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepStats {
    /// The full objective J (Eq. 14).
    pub loss: f32,
    /// Cross-entropy component (Eq. 13).
    pub ce: f32,
    /// Hierarchical Soft Constraint component (before λ₁).
    pub hsc: f32,
    /// Adversarial component (before λ₂; enters J negatively).
    pub adv: f32,
    /// Load-balance component (before its weight).
    pub load_balance: f32,
}

/// Gate-behaviour telemetry accumulated across training steps — the
/// quantities the paper's Fig. 5–7 analyses (gate concentration under
/// HSC, expert diversification under AdvLoss) are read from.
///
/// Gated models accumulate one entry per [`Ranker::train_step`] while
/// [`amoe_obs`] telemetry is enabled; [`Ranker::take_gate_telemetry`]
/// drains the accumulator (typically once per epoch, by the trainer).
#[derive(Clone, Debug, Default)]
pub struct GateTelemetry {
    /// Training steps that contributed.
    pub steps: usize,
    /// Sum over steps of the batch-mean entropy (nats) of the top-K
    /// masked gate distribution. Low entropy = concentrated routing.
    pub entropy_sum: f64,
    /// Examples routed to each expert (length `N`), summed over steps.
    pub dispatch: Vec<u64>,
}

impl GateTelemetry {
    /// Mean per-step gate entropy in nats (`0.0` when no steps).
    #[must_use]
    pub fn mean_entropy(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.entropy_sum / self.steps as f64
        }
    }
}

/// A trainable ranking model scoring (query, product) candidates.
///
/// `Sync` is a supertrait so evaluation can shard batches across the
/// [`amoe_tensor::pool`] runtime; models hold plain data (tapes are
/// created per call), so every implementor satisfies it for free.
pub trait Ranker: Sync {
    /// Model name for reports (e.g. `"Adv & HSC-MoE"`).
    fn name(&self) -> String;

    /// Runs one optimisation step on a mini-batch and returns the loss
    /// decomposition.
    fn train_step(&mut self, batch: &Batch) -> StepStats;

    /// Predicted purchase probabilities for a batch (evaluation mode:
    /// deterministic, no gating noise).
    fn predict(&self, batch: &Batch) -> Vec<f32>;

    /// Total scalar parameter count (model capacity, Sec. 5.2).
    fn num_parameters(&self) -> usize;

    /// Drains gate telemetry accumulated since the last call. `None`
    /// for gateless models (DNN) and for gated models when telemetry
    /// was off for every step since the last drain.
    fn take_gate_telemetry(&mut self) -> Option<GateTelemetry> {
        None
    }
}
