//! The [`Ranker`] abstraction every model in the zoo implements.

use amoe_dataset::Batch;

/// Optimizer hyper-parameters shared by all models (the paper uses AdamW
/// with a constant learning rate for every model, Sec. 5.1.4).
#[derive(Clone, Copy, Debug)]
pub struct OptimConfig {
    /// AdamW learning rate.
    pub lr: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
    /// Global-norm gradient clip (0 disables).
    pub clip_norm: f32,
}

impl Default for OptimConfig {
    fn default() -> Self {
        OptimConfig {
            lr: 3e-3,
            weight_decay: 1e-5,
            clip_norm: 5.0,
        }
    }
}

/// Loss components observed during one training step.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepStats {
    /// The full objective J (Eq. 14).
    pub loss: f32,
    /// Cross-entropy component (Eq. 13).
    pub ce: f32,
    /// Hierarchical Soft Constraint component (before λ₁).
    pub hsc: f32,
    /// Adversarial component (before λ₂; enters J negatively).
    pub adv: f32,
    /// Load-balance component (before its weight).
    pub load_balance: f32,
}

/// A trainable ranking model scoring (query, product) candidates.
///
/// `Sync` is a supertrait so evaluation can shard batches across the
/// [`amoe_tensor::pool`] runtime; models hold plain data (tapes are
/// created per call), so every implementor satisfies it for free.
pub trait Ranker: Sync {
    /// Model name for reports (e.g. `"Adv & HSC-MoE"`).
    fn name(&self) -> String;

    /// Runs one optimisation step on a mini-batch and returns the loss
    /// decomposition.
    fn train_step(&mut self, batch: &Batch) -> StepStats;

    /// Predicted purchase probabilities for a batch (evaluation mode:
    /// deterministic, no gating noise).
    fn predict(&self, batch: &Batch) -> Vec<f32>;

    /// Total scalar parameter count (model capacity, Sec. 5.2).
    fn num_parameters(&self) -> usize;
}
