//! Tape-free sparse serving for the MoE family.
//!
//! The paper's motivating constraint (Sec. 1, Sec. 4.2) is that only the
//! top-K expert towers are computed at serving time, so capacity can grow
//! with `N` at constant cost. [`ServingMoe`] implements that path:
//! expert-major batching — for each expert, gather the examples that
//! routed to it, run one batched MLP forward, and scatter the weighted
//! outputs back. No autograd tape, no per-op value cloning.
//!
//! The `serving_scaling` bench demonstrates the constant-cost property by
//! sweeping `N` at fixed `K`.

use amoe_dataset::Batch;
use amoe_tensor::{ops, topk, Matrix};

use crate::models::MoeModel;

/// A frozen, inference-only view of a trained [`MoeModel`].
///
/// Borrows the model; build it after training (weights are read through
/// the model's parameter set on every call, so no state is copied).
pub struct ServingMoe<'m> {
    model: &'m MoeModel,
}

impl<'m> ServingMoe<'m> {
    /// Wraps a trained model.
    #[must_use]
    pub fn new(model: &'m MoeModel) -> Self {
        ServingMoe { model }
    }

    /// Predicted purchase probabilities, computing only the top-K experts
    /// per example.
    #[must_use]
    pub fn predict(&self, batch: &Batch) -> Vec<f32> {
        ops::sigmoid(&Matrix::from_vec(
            batch.len(),
            1,
            self.predict_logits(batch),
        ))
        .into_vec()
    }

    /// Raw ensemble logits (pre-sigmoid) via the sparse path.
    #[must_use]
    pub fn predict_logits(&self, batch: &Batch) -> Vec<f32> {
        let model = self.model;
        let params = model.params();
        let cfg = model.config();
        let b = batch.len();

        // Dense input once; gating from the SC embedding.
        let x = model.encoder_input_infer(batch);
        let gate_in = model.gate_input_infer(batch);
        let logits = model.gate_logits_infer(&gate_in);

        // Per-example top-K selection + masked softmax weights.
        let mut weights = vec![vec![0f32; 0]; b];
        let mut selected = vec![vec![0usize; 0]; b];
        for r in 0..b {
            let idx = topk::top_k_indices(logits.row(r), cfg.top_k);
            // Softmax over the selected logits only (Eq. 6–7).
            let max = logits[(r, idx[0])];
            let mut exps: Vec<f32> = idx
                .iter()
                .map(|&c| (logits[(r, c)] - max).exp())
                .collect();
            let sum: f32 = exps.iter().sum();
            exps.iter_mut().for_each(|e| *e /= sum);
            weights[r] = exps;
            selected[r] = idx;
        }

        // Expert-major batching: run each expert once over its routed rows.
        let mut out = vec![0f32; b];
        for (e_idx, expert) in model.experts().iter().enumerate() {
            let mut rows = Vec::new();
            let mut coeffs = Vec::new();
            for r in 0..b {
                if let Some(pos) = selected[r].iter().position(|&c| c == e_idx) {
                    rows.push(r);
                    coeffs.push(weights[r][pos]);
                }
            }
            if rows.is_empty() {
                continue;
            }
            let xe = x.gather_rows(&rows);
            let ye = expert.infer(params, &xe);
            for ((&r, &w), row) in rows.iter().zip(&coeffs).zip(0..ye.rows()) {
                out[r] += w * ye[(row, 0)];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MoeConfig, TowerConfig};
    use crate::ranker::{OptimConfig, Ranker};
    use amoe_dataset::{generate, GeneratorConfig};

    fn trained_model() -> (amoe_dataset::Dataset, MoeModel) {
        let d = generate(&GeneratorConfig::tiny(41));
        let cfg = MoeConfig {
            n_experts: 6,
            top_k: 2,
            tower: TowerConfig { hidden: vec![12, 6] },
            ..MoeConfig::default()
        };
        let mut m = MoeModel::new(&d.meta, cfg, OptimConfig::default());
        let batch = Batch::from_split(&d.train, &(0..128).collect::<Vec<_>>());
        for _ in 0..10 {
            m.train_step(&batch);
        }
        (d, m)
    }

    #[test]
    fn sparse_serving_matches_dense_training_path() {
        let (d, m) = trained_model();
        let batch = Batch::from_split(&d.test, &(0..50).collect::<Vec<_>>());
        let dense = m.predict(&batch);
        let sparse = ServingMoe::new(&m).predict(&batch);
        for (i, (a, b)) in dense.iter().zip(&sparse).enumerate() {
            assert!(
                (a - b).abs() < 1e-5,
                "prediction {i} differs: dense {a} vs sparse {b}"
            );
        }
    }

    #[test]
    fn serving_logits_finite() {
        let (d, m) = trained_model();
        let batch = Batch::from_split(&d.test, &(0..20).collect::<Vec<_>>());
        let logits = ServingMoe::new(&m).predict_logits(&batch);
        assert_eq!(logits.len(), 20);
        assert!(logits.iter().all(|v| v.is_finite()));
    }
}
