//! Tape-free sparse serving for the MoE family.
//!
//! The paper's motivating constraint (Sec. 1, Sec. 4.2) is that only the
//! top-K expert towers are computed at serving time, so capacity can grow
//! with `N` at constant cost. [`ServingMoe`] implements that path:
//! expert-major batching — for each expert, gather the examples that
//! routed to it, run one batched MLP forward, and scatter the weighted
//! outputs back. No autograd tape, no per-op value cloning.
//!
//! The gate cut and the expert dispatch are both parallel and share one
//! [`amoe_tensor::pool::fused_region`]: the lanes drain the per-row
//! top-K + masked-softmax tasks, the caller splices the routing tables
//! together while the workers hold at the region's internal barrier,
//! and the same lanes then drain the per-expert forwards — one pool
//! wake for the whole call instead of one per phase. The scatter that
//! mixes expert outputs back into the ensemble logit runs serially in
//! expert order, which keeps the floating-point accumulation order — and
//! therefore the logits — bit-identical for every `AMOE_THREADS` value.
//! (The row partitioning of the gate phase varies with the thread
//! budget, but each row's cut is computed independently, so the routing
//! tables it produces do not.)
//!
//! The `serving_sweep` bench demonstrates the constant-cost property by
//! sweeping `N` at fixed `K`, and the parallel speedup by sweeping the
//! thread count.
//!
//! # Quantized expert weights (opt-in)
//!
//! [`QuantizedExperts`] snapshots every expert tower's weights as int8
//! with one f32 scale per output unit ([`amoe_tensor::quant`]), and
//! [`ServingMoe::with_quantized`] swaps the expert forwards onto the
//! dequant-on-the-fly kernel. The **gate stays f32**, so routing —
//! which experts fire for which example — is identical to the oracle;
//! only the tower arithmetic is approximate, and the end-to-end score
//! error stays within [`QUANT_SCORE_TOLERANCE`] (asserted by
//! `tests/kernel_oracle.rs` and the bench quant stages). Training and
//! the default f32 serving path never touch the quantized types.
//! [`ServingModel`] is the owned bundle `amoe-serve` holds: it
//! quantizes once at load/reload, not per batch.
//!
//! # Telemetry
//!
//! Per-phase wall times (gate, expert dispatch, scatter) always reach
//! the returned [`Stats`] and additionally feed the `serving.gate` /
//! `serving.experts` / `serving.scatter` histograms plus one
//! `serving_predict` JSONL event per call whenever `AMOE_OBS` is set.
//! The gate/expert boundary is a clock read inside the fused region's
//! mid splice, so the two phases stay separately attributed even
//! though they share a region.
//!
//! When request tracing is active ([`amoe_obs::trace`]) and the caller
//! (the `amoe-serve` batcher) has marked an active batch, the forward
//! path additionally records `gate` / per-expert `expert` / `scatter`
//! trace events tagged with that batch id — observation only, never
//! touching the data path, so scores stay bit-identical with tracing
//! on.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use amoe_dataset::Batch;
use amoe_nn::{Activation, Mlp, ParamSet};
use amoe_obs::trace;
use amoe_tensor::quant::{matmul_nt_q, QuantMatrix};
use amoe_tensor::{ops, pool, topk, Matrix};

use crate::models::MoeModel;

/// Documented bound on `|quantized score - f32 score|` for sigmoid
/// outputs of [`ServingMoe::predict`] with int8 expert weights, for the
/// model scales exercised in this repo (towers ≤ 512 wide, trained
/// weights). Derivation: each quantized product is off by at most
/// `0.5 * scale_j * ‖a_i‖₁` per output unit (see [`amoe_tensor::quant`]),
/// errors compound once per tower layer, and the sigmoid is
/// 1/4-Lipschitz. Tests and the bench quant stages assert against this
/// constant, so it is a contract, not a guess.
pub const QUANT_SCORE_TOLERANCE: f32 = 5e-2;

/// One gate-phase block: `(top-K indices, masked-softmax weights)` for
/// each row of a contiguous row block.
type GateBlock = Vec<(Vec<usize>, Vec<f32>)>;
/// One expert's routing table: the example rows it serves and their
/// gate coefficients, in example order.
type Routing = (Vec<usize>, Vec<f32>);
/// One expert's finished dispatch: its routing table plus the batched
/// tower output (`None` when no rows routed to it).
type ExpertOut = (Vec<usize>, Vec<f32>, Option<Matrix>);

/// Lightweight instrumentation of one sparse-serving call.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Number of examples scored.
    pub examples: usize,
    /// Lanes the expert phase actually used:
    /// `min(pool budget, n_experts)`. A 64-thread budget dispatching 8
    /// experts still runs 8 lanes, and that is the number reported here.
    pub threads: usize,
    /// Wall time encoding inputs and computing gate logits.
    pub gate_time: Duration,
    /// Wall time of the parallel per-expert gather + MLP forwards.
    pub expert_time: Duration,
    /// Wall time of the serial weighted scatter.
    pub scatter_time: Duration,
    /// Examples routed to each expert (length `N`; sums to ≈ `K·examples`).
    pub dispatch: Vec<usize>,
    /// Whether the expert forwards ran on int8 quantized weights.
    pub quantized: bool,
}

impl Stats {
    /// Total wall time across the instrumented phases.
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.gate_time + self.expert_time + self.scatter_time
    }

    /// End-to-end throughput in examples per second.
    ///
    /// Contract: the result is always **finite and non-negative**, so
    /// it can flow into JSONL records (whose schema forbids non-finite
    /// numbers). When the instrumented phases are below clock
    /// resolution the rate is unmeasurable and reads `0.0` — callers
    /// should treat zero as "too fast to measure", not as stalled.
    #[must_use]
    pub fn examples_per_sec(&self) -> f64 {
        let secs = self.total_time().as_secs_f64();
        if secs > 0.0 {
            self.examples as f64 / secs
        } else {
            0.0
        }
    }

    /// Number of experts that received at least one example.
    #[must_use]
    pub fn active_experts(&self) -> usize {
        self.dispatch.iter().filter(|&&n| n > 0).count()
    }

    /// The `serving_predict` telemetry record for this call (phase
    /// nanoseconds, throughput, per-expert dispatch histogram).
    #[must_use]
    pub fn to_event(&self) -> amoe_obs::Event {
        amoe_obs::Event::new("serving_predict")
            .u64("examples", self.examples as u64)
            .u64("threads", self.threads as u64)
            .u64("gate_ns", self.gate_time.as_nanos() as u64)
            .u64("expert_ns", self.expert_time.as_nanos() as u64)
            .u64("scatter_ns", self.scatter_time.as_nanos() as u64)
            .u64("total_ns", self.total_time().as_nanos() as u64)
            .f64("examples_per_sec", self.examples_per_sec())
            .u64("active_experts", self.active_experts() as u64)
            .u64("quantized", u64::from(self.quantized))
            .u64_array("dispatch", self.dispatch.iter().map(|&d| d as u64))
    }

    /// Emits [`Stats::to_event`] to the JSONL sink (no-op when
    /// telemetry is off).
    pub fn emit_event(&self) {
        amoe_obs::emit(&self.to_event());
    }
}

/// One expert tower's weights snapshotted as int8: per layer the
/// quantized weight (stored `out x in` so the `nt` kernel walks codes
/// contiguously) and the f32 bias, plus the tower's activation.
struct QuantTower {
    layers: Vec<(QuantMatrix, Option<Matrix>)>,
    activation: Activation,
}

impl QuantTower {
    fn from_mlp(ps: &ParamSet, mlp: &Mlp) -> QuantTower {
        let layers = mlp
            .layers()
            .iter()
            .map(|l| {
                let qw = QuantMatrix::from_transposed(ps.value(l.weight()));
                let bias = l.bias().map(|b| ps.value(b).clone());
                (qw, bias)
            })
            .collect();
        QuantTower {
            layers,
            activation: mlp.activation(),
        }
    }

    /// Tape-free forward mirroring [`Mlp::infer`], with the f32 matmul
    /// swapped for the dequant-on-the-fly kernel. Biases and the
    /// activation stay f32.
    fn infer(&self, x: &Matrix) -> Matrix {
        let mut h: Option<Matrix> = None;
        let last = self.layers.len() - 1;
        for (i, (qw, bias)) in self.layers.iter().enumerate() {
            let mut y = matmul_nt_q(h.as_ref().unwrap_or(x), qw);
            if let Some(b) = bias {
                y = ops::add_row_broadcast(&y, b);
            }
            if i < last {
                y = self.activation.apply_matrix(&y);
            }
            h = Some(y);
        }
        h.expect("Mlp has at least one layer")
    }
}

/// Int8 snapshots of every expert tower of a model (the gate is *not*
/// quantized — routing must match the f32 oracle exactly).
///
/// Build once after training or checkpoint load and reuse across
/// requests: quantization walks every expert weight, so it belongs at
/// load time, not on the per-batch hot path.
pub struct QuantizedExperts {
    towers: Vec<QuantTower>,
}

impl QuantizedExperts {
    /// Quantizes all expert towers of `model`.
    #[must_use]
    pub fn from_model(model: &MoeModel) -> QuantizedExperts {
        let ps = model.params();
        QuantizedExperts {
            towers: model
                .experts()
                .iter()
                .map(|mlp| QuantTower::from_mlp(ps, mlp))
                .collect(),
        }
    }

    /// Total heap bytes of the int8 codes + scales (the bench's memory
    /// story versus 4 bytes/weight for f32).
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.towers
            .iter()
            .flat_map(|t| t.layers.iter())
            .map(|(qw, bias)| qw.bytes() + bias.as_ref().map_or(0, |b| b.rows() * b.cols() * 4))
            .sum()
    }
}

/// A frozen, inference-only view of a trained [`MoeModel`].
///
/// Borrows the model; build it after training (weights are read through
/// the model's parameter set on every call, so no state is copied).
/// Optionally carries a [`QuantizedExperts`] snapshot, in which case the
/// expert forwards run on int8 weights (gate and scatter unchanged).
pub struct ServingMoe<'m> {
    model: &'m MoeModel,
    quant: Option<&'m QuantizedExperts>,
}

impl<'m> ServingMoe<'m> {
    /// Wraps a trained model (f32 oracle path).
    #[must_use]
    pub fn new(model: &'m MoeModel) -> Self {
        ServingMoe { model, quant: None }
    }

    /// Wraps a trained model with pre-quantized expert weights; expert
    /// forwards use the int8 kernel, everything else is unchanged.
    ///
    /// # Panics
    /// Panics if the snapshot's expert count differs from the model's.
    #[must_use]
    pub fn with_quantized(model: &'m MoeModel, quant: &'m QuantizedExperts) -> Self {
        assert_eq!(
            quant.towers.len(),
            model.experts().len(),
            "with_quantized: snapshot has {} towers, model has {} experts",
            quant.towers.len(),
            model.experts().len()
        );
        ServingMoe {
            model,
            quant: Some(quant),
        }
    }

    /// Predicted purchase probabilities, computing only the top-K experts
    /// per example.
    #[must_use]
    pub fn predict(&self, batch: &Batch) -> Vec<f32> {
        ops::sigmoid(&Matrix::from_vec(
            batch.len(),
            1,
            self.predict_logits(batch),
        ))
        .into_vec()
    }

    /// Raw ensemble logits (pre-sigmoid) via the sparse path.
    #[must_use]
    pub fn predict_logits(&self, batch: &Batch) -> Vec<f32> {
        self.predict_logits_with_stats(batch).0
    }

    /// Scores several independent requests in **one** model call and
    /// scatters the results back per request — the micro-batching
    /// primitive behind `amoe-serve`.
    ///
    /// The coalesced call is bit-identical to predicting each part on
    /// its own: every stage of the sparse path treats rows
    /// independently (per-row top-K gating, row-blocked matmuls whose
    /// per-row accumulation order is shape-invariant, and a scatter
    /// that only ever accumulates into a row's own slot in fixed expert
    /// order). The loopback parity test in `tests/serve_loopback.rs`
    /// asserts this end-to-end over TCP for several thread budgets.
    ///
    /// # Panics
    /// Panics if `parts` is empty (batches are never empty by
    /// construction).
    #[must_use]
    pub fn predict_many(&self, parts: &[&Batch]) -> Vec<Vec<f32>> {
        self.predict_many_with_stats(parts).0
    }

    /// [`ServingMoe::predict_many`] plus the [`Stats`] of the single
    /// coalesced forward, so callers (the serve batcher shards) can
    /// attribute gate/expert/scatter time per batch without a second
    /// instrumentation pass.
    ///
    /// # Panics
    /// Panics if `parts` is empty (batches are never empty by
    /// construction).
    #[must_use]
    pub fn predict_many_with_stats(&self, parts: &[&Batch]) -> (Vec<Vec<f32>>, Stats) {
        assert!(!parts.is_empty(), "predict_many: no request parts");
        let merged;
        let whole: &Batch = if parts.len() == 1 {
            parts[0]
        } else {
            merged = Batch::concat(parts);
            &merged
        };
        let (logits, stats) = self.predict_logits_with_stats(whole);
        let scores = ops::sigmoid(&Matrix::from_vec(whole.len(), 1, logits)).into_vec();
        let mut out = Vec::with_capacity(parts.len());
        let mut offset = 0;
        for p in parts {
            out.push(scores[offset..offset + p.len()].to_vec());
            offset += p.len();
        }
        (out, stats)
    }

    /// Raw ensemble logits plus per-call instrumentation.
    #[must_use]
    pub fn predict_logits_with_stats(&self, batch: &Batch) -> (Vec<f32>, Stats) {
        let model = self.model;
        let params = model.params();
        let cfg = model.config();
        let b = batch.len();
        let n_experts = model.experts().len();
        let mut stats = Stats {
            examples: b,
            threads: pool::effective_workers(n_experts),
            dispatch: vec![0; n_experts],
            quantized: self.quant.is_some(),
            ..Stats::default()
        };
        if b == 0 {
            return (Vec::new(), stats);
        }
        // Non-zero only while the batcher computes a traced batch: the
        // forward path tags its stage events with that batch id without
        // any id plumbed through the call chain.
        let tb = trace::active_batch();

        let gate_start = Instant::now();
        // Dense input once; gating from the SC embedding. The matmuls run
        // their own row-block regions before the fused region opens.
        let x = model.encoder_input_infer(batch);
        let gate_in = model.gate_input_infer(batch);
        let logits = model.gate_logits_infer(&gate_in);

        // Per-row-block slots for the gate phase: block `i` holds the
        // `(top-K indices, masked-softmax weights)` of its contiguous
        // rows. The partitioning follows the thread budget, but every
        // row's cut is computed independently, so the assembled routing
        // tables are budget-invariant.
        let rows_per_block = b.div_ceil(pool::effective_workers(b));
        let n_blocks = b.div_ceil(rows_per_block);
        let gate_blocks: Vec<Mutex<GateBlock>> =
            (0..n_blocks).map(|_| Mutex::new(Vec::new())).collect();
        // Per-expert routing slots (the mid splice fills, the expert
        // phase drains) and output slots (the expert phase fills, the
        // scatter drains). Slot `e` is only ever touched by expert `e`'s
        // task, so the locks are uncontended.
        let routing: Vec<Mutex<Option<Routing>>> =
            (0..n_experts).map(|_| Mutex::new(None)).collect();
        let outputs: Vec<Mutex<Option<ExpertOut>>> =
            (0..n_experts).map(|_| Mutex::new(None)).collect();
        let mut gate_end = gate_start;

        // One pool wake covers both parallel phases: per-row gating
        // tasks, the serial routing-table splice on the caller, then
        // the per-expert gather + batched MLP forwards — the dominant
        // cost — on the same lanes.
        pool::fused_region(
            n_blocks,
            |blk| {
                let first = blk * rows_per_block;
                let rows = rows_per_block.min(b - first);
                let mut cut = Vec::with_capacity(rows);
                for r in first..first + rows {
                    let idx = topk::top_k_indices(logits.row(r), cfg.top_k);
                    // Softmax over the selected logits only (Eq. 6–7).
                    let max = logits[(r, idx[0])];
                    let mut exps: Vec<f32> =
                        idx.iter().map(|&c| (logits[(r, c)] - max).exp()).collect();
                    let sum: f32 = exps.iter().sum();
                    exps.iter_mut().for_each(|e| *e /= sum);
                    cut.push((idx, exps));
                }
                *gate_blocks[blk].lock().unwrap() = cut;
            },
            || {
                gate_end = Instant::now();
                // Routing tables spliced in global row order: their
                // order defines the deterministic scatter below.
                let mut rows: Vec<Vec<usize>> = vec![Vec::new(); n_experts];
                let mut coeffs: Vec<Vec<f32>> = vec![Vec::new(); n_experts];
                for (blk, slot) in gate_blocks.iter().enumerate() {
                    let first = blk * rows_per_block;
                    for (j, (idx, w)) in slot.lock().unwrap().iter().enumerate() {
                        for (pos, &e_idx) in idx.iter().enumerate() {
                            rows[e_idx].push(first + j);
                            coeffs[e_idx].push(w[pos]);
                        }
                    }
                }
                for (e_idx, pair) in rows.into_iter().zip(coeffs).enumerate() {
                    *routing[e_idx].lock().unwrap() = Some(pair);
                }
            },
            n_experts,
            |e_idx| {
                let trace_t0 = (tb != 0).then(trace::now_ns);
                let (rows, coeffs) = routing[e_idx]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("routing slot filled by the mid splice");
                let ye = (!rows.is_empty()).then(|| {
                    let xe = x.gather_rows(&rows);
                    match self.quant {
                        Some(q) => q.towers[e_idx].infer(&xe),
                        None => model.experts()[e_idx].infer(params, &xe),
                    }
                });
                *outputs[e_idx].lock().unwrap() = Some((rows, coeffs, ye));
                if let Some(t0) = trace_t0 {
                    trace::record(0, tb, "expert", t0, trace::now_ns(), e_idx as u64);
                }
            },
        );
        stats.gate_time = gate_end.duration_since(gate_start);
        stats.expert_time = gate_end.elapsed();
        if tb != 0 {
            trace::record(
                0,
                tb,
                "gate",
                trace::instant_ns(gate_start),
                trace::instant_ns(gate_end),
                b as u64,
            );
        }
        if amoe_obs::enabled() {
            amoe_obs::histogram_record("serving.gate", stats.gate_time.as_nanos() as f64);
            amoe_obs::histogram_record("serving.experts", stats.expert_time.as_nanos() as f64);
        }

        // Serial scatter in expert order: every thread count accumulates
        // each `out[r]` in the same order, so logits are bit-identical.
        let scatter_start = Instant::now();
        let (out, scatter_time) = amoe_obs::timed("serving.scatter", || {
            let mut out = vec![0f32; b];
            for (e_idx, slot) in outputs.iter().enumerate() {
                let (rows, coeffs, ye) = slot
                    .lock()
                    .unwrap()
                    .take()
                    .expect("output slot filled by the expert phase");
                stats.dispatch[e_idx] = rows.len();
                let Some(ye) = ye else { continue };
                for ((&r, &w), row) in rows.iter().zip(&coeffs).zip(0..ye.rows()) {
                    out[r] += w * ye[(row, 0)];
                }
            }
            out
        });
        stats.scatter_time = scatter_time;
        if tb != 0 {
            trace::record(
                0,
                tb,
                "scatter",
                trace::instant_ns(scatter_start),
                trace::now_ns(),
                b as u64,
            );
        }
        if amoe_obs::enabled() {
            stats.emit_event();
        }
        (out, stats)
    }
}

/// An owned model bundle for long-running servers: the trained model
/// plus (when enabled) its int8 expert snapshot, quantized exactly once
/// at construction. `amoe-serve` holds one behind an `Arc` and swaps it
/// atomically on checkpoint reload.
pub struct ServingModel {
    model: MoeModel,
    quant: Option<QuantizedExperts>,
}

impl ServingModel {
    /// Bundles `model`, quantizing its expert towers when `quantized`
    /// is set.
    #[must_use]
    pub fn new(model: MoeModel, quantized: bool) -> ServingModel {
        let quant = quantized.then(|| QuantizedExperts::from_model(&model));
        ServingModel { model, quant }
    }

    /// The wrapped model.
    #[must_use]
    pub fn model(&self) -> &MoeModel {
        &self.model
    }

    /// True when expert forwards run on int8 weights.
    #[must_use]
    pub fn is_quantized(&self) -> bool {
        self.quant.is_some()
    }

    /// A serving view over this bundle (quantized iff the bundle is).
    #[must_use]
    pub fn serving(&self) -> ServingMoe<'_> {
        match &self.quant {
            Some(q) => ServingMoe::with_quantized(&self.model, q),
            None => ServingMoe::new(&self.model),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MoeConfig, TowerConfig};
    use crate::ranker::{OptimConfig, Ranker};
    use amoe_dataset::{generate, GeneratorConfig};
    use amoe_tensor::check::assert_close_rel;

    fn trained_model() -> (amoe_dataset::Dataset, MoeModel) {
        let d = generate(&GeneratorConfig::tiny(41));
        let cfg = MoeConfig {
            n_experts: 6,
            top_k: 2,
            tower: TowerConfig {
                hidden: vec![12, 6],
            },
            ..MoeConfig::default()
        };
        let mut m = MoeModel::new(&d.meta, cfg, OptimConfig::default());
        let batch = Batch::from_split(&d.train, &(0..128).collect::<Vec<_>>());
        for _ in 0..10 {
            m.train_step(&batch);
        }
        (d, m)
    }

    #[test]
    fn sparse_serving_matches_dense_training_path() {
        let (d, m) = trained_model();
        let batch = Batch::from_split(&d.test, &(0..50).collect::<Vec<_>>());
        let dense = m.predict(&batch);
        let sparse = ServingMoe::new(&m).predict(&batch);
        for (i, (a, b)) in dense.iter().zip(&sparse).enumerate() {
            assert_close_rel(
                *a,
                *b,
                0.0,
                1e-5,
                &format!("prediction {i} dense vs sparse"),
            );
        }
    }

    #[test]
    fn sparse_serving_matches_dense_for_every_gate_input() {
        use crate::config::GateInput;
        let d = generate(&GeneratorConfig::tiny(43));
        for which in [
            GateInput::Sc,
            GateInput::TcSc,
            GateInput::QueryTcSc,
            GateInput::UserTcSc,
            GateInput::All,
        ] {
            let cfg = MoeConfig {
                n_experts: 4,
                top_k: 2,
                gate_input: which,
                tower: TowerConfig { hidden: vec![8] },
                ..MoeConfig::default()
            };
            let mut m = MoeModel::new(&d.meta, cfg, OptimConfig::default());
            let batch = Batch::from_split(&d.train, &(0..64).collect::<Vec<_>>());
            for _ in 0..4 {
                m.train_step(&batch);
            }
            let probe = Batch::from_split(&d.test, &(0..32).collect::<Vec<_>>());
            let dense = m.predict(&probe);
            let sparse = ServingMoe::new(&m).predict(&probe);
            for (i, (a, b)) in dense.iter().zip(&sparse).enumerate() {
                assert_close_rel(*a, *b, 0.0, 1e-5, &format!("{which:?} prediction {i}"));
            }
        }
    }

    #[test]
    fn predict_many_with_stats_is_bit_identical_to_predict_many() {
        let (d, m) = trained_model();
        let a = Batch::from_split(&d.test, &(0..7).collect::<Vec<_>>());
        let b = Batch::from_split(&d.test, &(7..19).collect::<Vec<_>>());
        let serving = ServingMoe::new(&m);
        let plain = serving.predict_many(&[&a, &b]);
        let (with_stats, stats) = serving.predict_many_with_stats(&[&a, &b]);
        assert_eq!(plain, with_stats);
        assert_eq!(stats.examples, 19);
    }

    #[test]
    fn quantized_serving_stays_within_documented_tolerance() {
        let (d, m) = trained_model();
        let batch = Batch::from_split(&d.test, &(0..50).collect::<Vec<_>>());
        let oracle = ServingMoe::new(&m).predict(&batch);
        let quant = QuantizedExperts::from_model(&m);
        let (scores, stats) =
            ServingMoe::with_quantized(&m, &quant).predict_logits_with_stats(&batch);
        assert!(stats.quantized, "stats must flag the quantized path");
        let probs = ops::sigmoid(&Matrix::from_vec(batch.len(), 1, scores)).into_vec();
        for (i, (a, b)) in oracle.iter().zip(&probs).enumerate() {
            assert_close_rel(
                *a,
                *b,
                0.0,
                QUANT_SCORE_TOLERANCE,
                &format!("score {i} f32 vs quantized"),
            );
        }
    }

    #[test]
    fn quantized_snapshot_shrinks_expert_weights() {
        let (_, m) = trained_model();
        let quant = QuantizedExperts::from_model(&m);
        let f32_bytes: usize = m
            .experts()
            .iter()
            .flat_map(|e| e.layers())
            .map(|l| {
                let w = m.params().value(l.weight());
                let b = l.bias().map_or(0, |b| {
                    let b = m.params().value(b);
                    b.rows() * b.cols() * 4
                });
                w.rows() * w.cols() * 4 + b
            })
            .sum();
        // Biases stay f32, so the bound is looser than 4x, but the
        // snapshot must be well under half the f32 footprint.
        assert!(
            quant.bytes() * 2 < f32_bytes,
            "quantized {} bytes vs f32 {f32_bytes} bytes",
            quant.bytes()
        );
    }

    #[test]
    fn serving_model_bundle_round_trips_both_modes() {
        let (d, m) = trained_model();
        let batch = Batch::from_split(&d.test, &(0..30).collect::<Vec<_>>());
        let oracle = ServingMoe::new(&m).predict(&batch);

        let plain = ServingModel::new(m, false);
        assert!(!plain.is_quantized());
        assert_eq!(
            plain.serving().predict(&batch),
            oracle,
            "f32 bundle drifted"
        );

        let quantized = ServingModel::new(
            MoeModel::from_params(
                &d.meta,
                plain.model().config().clone(),
                OptimConfig::default(),
                plain.model().params(),
            )
            .expect("params round-trip within the same model"),
            true,
        );
        assert!(quantized.is_quantized());
        let scores = quantized.serving().predict(&batch);
        for (i, (a, b)) in oracle.iter().zip(&scores).enumerate() {
            assert_close_rel(
                *a,
                *b,
                0.0,
                QUANT_SCORE_TOLERANCE,
                &format!("bundle score {i}"),
            );
        }
    }

    #[test]
    fn serving_logits_finite() {
        let (d, m) = trained_model();
        let batch = Batch::from_split(&d.test, &(0..20).collect::<Vec<_>>());
        let logits = ServingMoe::new(&m).predict_logits(&batch);
        assert_eq!(logits.len(), 20);
        assert!(logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn stats_account_for_dispatch() {
        let (d, m) = trained_model();
        let batch = Batch::from_split(&d.test, &(0..40).collect::<Vec<_>>());
        let (logits, stats) = ServingMoe::new(&m).predict_logits_with_stats(&batch);
        assert_eq!(logits.len(), 40);
        assert_eq!(stats.examples, 40);
        assert_eq!(stats.dispatch.len(), m.config().n_experts);
        // Every example activates exactly K experts.
        let routed: usize = stats.dispatch.iter().sum();
        assert_eq!(routed, 40 * m.config().top_k);
        assert!(stats.active_experts() >= 1);
        assert!(stats.threads >= 1);
        assert!(stats.examples_per_sec() > 0.0);
    }

    #[test]
    fn predict_many_is_bit_identical_to_per_request_predict() {
        let (d, m) = trained_model();
        let serving = ServingMoe::new(&m);
        // Mixed-size request parts, including a single-row request.
        let parts: Vec<Batch> = [&[0usize, 1, 2][..], &[3], &[4, 5, 6, 7, 8], &[9, 10]]
            .iter()
            .map(|idx| Batch::from_split(&d.test, idx))
            .collect();
        let refs: Vec<&Batch> = parts.iter().collect();
        let coalesced = serving.predict_many(&refs);
        assert_eq!(coalesced.len(), parts.len());
        for (part, scores) in parts.iter().zip(&coalesced) {
            assert_eq!(scores, &serving.predict(part), "coalesced scores differ");
        }
    }

    #[test]
    fn logits_identical_across_thread_counts() {
        let (d, m) = trained_model();
        let batch = Batch::from_split(&d.test, &(0..60).collect::<Vec<_>>());
        let serving = ServingMoe::new(&m);
        amoe_tensor::pool::set_threads(1);
        let reference = serving.predict_logits(&batch);
        for t in [2usize, 4, 8] {
            amoe_tensor::pool::set_threads(t);
            assert_eq!(
                serving.predict_logits(&batch),
                reference,
                "logits diverged at {t} threads"
            );
        }
        amoe_tensor::pool::clear_threads_override();
    }
}
