//! Tape-free sparse serving for the MoE family.
//!
//! The paper's motivating constraint (Sec. 1, Sec. 4.2) is that only the
//! top-K expert towers are computed at serving time, so capacity can grow
//! with `N` at constant cost. [`ServingMoe`] implements that path:
//! expert-major batching — for each expert, gather the examples that
//! routed to it, run one batched MLP forward, and scatter the weighted
//! outputs back. No autograd tape, no per-op value cloning.
//!
//! Experts are mutually independent, so the per-expert batched forwards
//! fan out across the [`amoe_tensor::pool`] runtime. The scatter that
//! mixes expert outputs back into the ensemble logit runs serially in
//! expert order, which keeps the floating-point accumulation order — and
//! therefore the logits — bit-identical for every `AMOE_THREADS` value.
//!
//! The `serving_sweep` bench demonstrates the constant-cost property by
//! sweeping `N` at fixed `K`, and the parallel speedup by sweeping the
//! thread count.
//!
//! # Telemetry
//!
//! The three phases (gate, expert dispatch, scatter) run under
//! [`amoe_obs::timed`] spans, so per-phase wall times always reach the
//! returned [`Stats`] and additionally feed the `serving.gate` /
//! `serving.experts` / `serving.scatter` histograms plus one
//! `serving_predict` JSONL event per call whenever `AMOE_OBS` is set.

use std::time::Duration;

use amoe_dataset::Batch;
use amoe_tensor::{ops, pool, topk, Matrix};

use crate::models::MoeModel;

/// Lightweight instrumentation of one sparse-serving call.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Number of examples scored.
    pub examples: usize,
    /// Threads the pool was allowed to use.
    pub threads: usize,
    /// Wall time encoding inputs and computing gate logits.
    pub gate_time: Duration,
    /// Wall time of the parallel per-expert gather + MLP forwards.
    pub expert_time: Duration,
    /// Wall time of the serial weighted scatter.
    pub scatter_time: Duration,
    /// Examples routed to each expert (length `N`; sums to ≈ `K·examples`).
    pub dispatch: Vec<usize>,
}

impl Stats {
    /// Total wall time across the instrumented phases.
    #[must_use]
    pub fn total_time(&self) -> Duration {
        self.gate_time + self.expert_time + self.scatter_time
    }

    /// End-to-end throughput in examples per second.
    ///
    /// Contract: the result is always **finite and non-negative**, so
    /// it can flow into JSONL records (whose schema forbids non-finite
    /// numbers). When the instrumented phases are below clock
    /// resolution the rate is unmeasurable and reads `0.0` — callers
    /// should treat zero as "too fast to measure", not as stalled.
    #[must_use]
    pub fn examples_per_sec(&self) -> f64 {
        let secs = self.total_time().as_secs_f64();
        if secs > 0.0 {
            self.examples as f64 / secs
        } else {
            0.0
        }
    }

    /// Number of experts that received at least one example.
    #[must_use]
    pub fn active_experts(&self) -> usize {
        self.dispatch.iter().filter(|&&n| n > 0).count()
    }

    /// The `serving_predict` telemetry record for this call (phase
    /// nanoseconds, throughput, per-expert dispatch histogram).
    #[must_use]
    pub fn to_event(&self) -> amoe_obs::Event {
        amoe_obs::Event::new("serving_predict")
            .u64("examples", self.examples as u64)
            .u64("threads", self.threads as u64)
            .u64("gate_ns", self.gate_time.as_nanos() as u64)
            .u64("expert_ns", self.expert_time.as_nanos() as u64)
            .u64("scatter_ns", self.scatter_time.as_nanos() as u64)
            .u64("total_ns", self.total_time().as_nanos() as u64)
            .f64("examples_per_sec", self.examples_per_sec())
            .u64("active_experts", self.active_experts() as u64)
            .u64_array("dispatch", self.dispatch.iter().map(|&d| d as u64))
    }

    /// Emits [`Stats::to_event`] to the JSONL sink (no-op when
    /// telemetry is off).
    pub fn emit_event(&self) {
        amoe_obs::emit(&self.to_event());
    }
}

/// A frozen, inference-only view of a trained [`MoeModel`].
///
/// Borrows the model; build it after training (weights are read through
/// the model's parameter set on every call, so no state is copied).
pub struct ServingMoe<'m> {
    model: &'m MoeModel,
}

impl<'m> ServingMoe<'m> {
    /// Wraps a trained model.
    #[must_use]
    pub fn new(model: &'m MoeModel) -> Self {
        ServingMoe { model }
    }

    /// Predicted purchase probabilities, computing only the top-K experts
    /// per example.
    #[must_use]
    pub fn predict(&self, batch: &Batch) -> Vec<f32> {
        ops::sigmoid(&Matrix::from_vec(
            batch.len(),
            1,
            self.predict_logits(batch),
        ))
        .into_vec()
    }

    /// Raw ensemble logits (pre-sigmoid) via the sparse path.
    #[must_use]
    pub fn predict_logits(&self, batch: &Batch) -> Vec<f32> {
        self.predict_logits_with_stats(batch).0
    }

    /// Raw ensemble logits plus per-call instrumentation.
    #[must_use]
    pub fn predict_logits_with_stats(&self, batch: &Batch) -> (Vec<f32>, Stats) {
        let model = self.model;
        let params = model.params();
        let cfg = model.config();
        let b = batch.len();
        let n_experts = model.experts().len();
        let mut stats = Stats {
            examples: b,
            threads: pool::threads(),
            dispatch: vec![0; n_experts],
            ..Stats::default()
        };

        // Dense input once; gating from the SC embedding.
        let ((x, weights, selected), gate_time) = amoe_obs::timed("serving.gate", || {
            let x = model.encoder_input_infer(batch);
            let gate_in = model.gate_input_infer(batch);
            let logits = model.gate_logits_infer(&gate_in);

            // Per-example top-K selection + masked softmax weights.
            let mut weights = vec![vec![0f32; 0]; b];
            let mut selected = vec![vec![0usize; 0]; b];
            for r in 0..b {
                let idx = topk::top_k_indices(logits.row(r), cfg.top_k);
                // Softmax over the selected logits only (Eq. 6–7).
                let max = logits[(r, idx[0])];
                let mut exps: Vec<f32> =
                    idx.iter().map(|&c| (logits[(r, c)] - max).exp()).collect();
                let sum: f32 = exps.iter().sum();
                exps.iter_mut().for_each(|e| *e /= sum);
                weights[r] = exps;
                selected[r] = idx;
            }
            (x, weights, selected)
        });
        stats.gate_time = gate_time;

        // Expert-major batching. Routing tables are built serially (cheap,
        // and their order defines the deterministic scatter below); the
        // per-expert gather + batched MLP forward — the dominant cost —
        // fans out across the pool, one independent task per expert.
        let mut routed_rows: Vec<Vec<usize>> = vec![Vec::new(); n_experts];
        let mut routed_coeffs: Vec<Vec<f32>> = vec![Vec::new(); n_experts];
        let (expert_outputs, expert_time) = amoe_obs::timed("serving.experts", || {
            for r in 0..b {
                for (pos, &e_idx) in selected[r].iter().enumerate() {
                    routed_rows[e_idx].push(r);
                    routed_coeffs[e_idx].push(weights[r][pos]);
                }
            }
            let outputs: Vec<Option<Matrix>> = pool::map_tasks(n_experts, |e_idx| {
                let rows = &routed_rows[e_idx];
                if rows.is_empty() {
                    return None;
                }
                let xe = x.gather_rows(rows);
                Some(model.experts()[e_idx].infer(params, &xe))
            });
            outputs
        });
        stats.expert_time = expert_time;
        for (e_idx, rows) in routed_rows.iter().enumerate() {
            stats.dispatch[e_idx] = rows.len();
        }

        // Serial scatter in expert order: every thread count accumulates
        // each `out[r]` in the same order, so logits are bit-identical.
        let (out, scatter_time) = amoe_obs::timed("serving.scatter", || {
            let mut out = vec![0f32; b];
            for (e_idx, ye) in expert_outputs.iter().enumerate() {
                let Some(ye) = ye else { continue };
                for ((&r, &w), row) in routed_rows[e_idx]
                    .iter()
                    .zip(&routed_coeffs[e_idx])
                    .zip(0..ye.rows())
                {
                    out[r] += w * ye[(row, 0)];
                }
            }
            out
        });
        stats.scatter_time = scatter_time;
        if amoe_obs::enabled() {
            stats.emit_event();
        }
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MoeConfig, TowerConfig};
    use crate::ranker::{OptimConfig, Ranker};
    use amoe_dataset::{generate, GeneratorConfig};

    fn trained_model() -> (amoe_dataset::Dataset, MoeModel) {
        let d = generate(&GeneratorConfig::tiny(41));
        let cfg = MoeConfig {
            n_experts: 6,
            top_k: 2,
            tower: TowerConfig {
                hidden: vec![12, 6],
            },
            ..MoeConfig::default()
        };
        let mut m = MoeModel::new(&d.meta, cfg, OptimConfig::default());
        let batch = Batch::from_split(&d.train, &(0..128).collect::<Vec<_>>());
        for _ in 0..10 {
            m.train_step(&batch);
        }
        (d, m)
    }

    #[test]
    fn sparse_serving_matches_dense_training_path() {
        let (d, m) = trained_model();
        let batch = Batch::from_split(&d.test, &(0..50).collect::<Vec<_>>());
        let dense = m.predict(&batch);
        let sparse = ServingMoe::new(&m).predict(&batch);
        for (i, (a, b)) in dense.iter().zip(&sparse).enumerate() {
            assert!(
                (a - b).abs() < 1e-5,
                "prediction {i} differs: dense {a} vs sparse {b}"
            );
        }
    }

    #[test]
    fn serving_logits_finite() {
        let (d, m) = trained_model();
        let batch = Batch::from_split(&d.test, &(0..20).collect::<Vec<_>>());
        let logits = ServingMoe::new(&m).predict_logits(&batch);
        assert_eq!(logits.len(), 20);
        assert!(logits.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn stats_account_for_dispatch() {
        let (d, m) = trained_model();
        let batch = Batch::from_split(&d.test, &(0..40).collect::<Vec<_>>());
        let (logits, stats) = ServingMoe::new(&m).predict_logits_with_stats(&batch);
        assert_eq!(logits.len(), 40);
        assert_eq!(stats.examples, 40);
        assert_eq!(stats.dispatch.len(), m.config().n_experts);
        // Every example activates exactly K experts.
        let routed: usize = stats.dispatch.iter().sum();
        assert_eq!(routed, 40 * m.config().top_k);
        assert!(stats.active_experts() >= 1);
        assert!(stats.threads >= 1);
        assert!(stats.examples_per_sec() > 0.0);
    }

    #[test]
    fn logits_identical_across_thread_counts() {
        let (d, m) = trained_model();
        let batch = Batch::from_split(&d.test, &(0..60).collect::<Vec<_>>());
        let serving = ServingMoe::new(&m);
        amoe_tensor::pool::set_threads(1);
        let reference = serving.predict_logits(&batch);
        for t in [2usize, 4, 8] {
            amoe_tensor::pool::set_threads(t);
            assert_eq!(
                serving.predict_logits(&batch),
                reference,
                "logits diverged at {t} threads"
            );
        }
        amoe_tensor::pool::clear_threads_override();
    }
}
