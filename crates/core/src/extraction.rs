//! Category-dedicated model extraction.
//!
//! The paper's introduction motivates transparent expert↔category
//! assignment because it "opens up the possibility for subsequent
//! extraction and tweaking of category-dedicated models from the unified
//! ensemble". This module implements that: [`extract_category_model`]
//! reads the trained inference gate's distribution for one sub-category,
//! freezes the top-K experts and their mixture weights, and yields a
//! compact standalone scorer ([`CategoryModel`]) that serves that
//! category without the gate networks or the other `N − K` towers.

use amoe_dataset::Batch;
use amoe_tensor::{ops, reduce, topk, Matrix};

use crate::models::MoeModel;

/// A compact, frozen, single-category scorer extracted from a trained
/// [`MoeModel`]: the K experts the gate assigns to the category plus
/// their (renormalised) mixture weights.
pub struct CategoryModel {
    /// The sub-category this model is dedicated to.
    pub sc: usize,
    /// Indices of the retained experts in the source ensemble.
    pub expert_indices: Vec<usize>,
    /// Mixture weight per retained expert (sums to 1).
    pub weights: Vec<f32>,
    /// Expert tower weights: for each retained expert, its layers as
    /// `(w, b)` matrices, in forward order.
    layers: Vec<Vec<(Matrix, Matrix)>>,
    /// Snapshot of the embedding tables needed to assemble the input.
    embeddings: ExtractedEmbeddings,
}

struct ExtractedEmbeddings {
    sc: Matrix,
    brand: Matrix,
    shop: Matrix,
    user_segment: Matrix,
    price_bucket: Matrix,
}

/// Extracts a dedicated model for sub-category `sc` from a trained MoE.
///
/// The gate is evaluated once on the SC embedding (its true input in the
/// deployed configuration); the top-K experts and their masked-softmax
/// weights become the fixed mixture. Since the paper's gate depends only
/// on the query's sub-category, this reproduces the ensemble's scoring
/// for that category *exactly* (up to gate noise, which is off at
/// serving time).
///
/// # Panics
/// Panics if the model uses a non-SC gate input (no single per-category
/// gate value exists then) or `sc` is out of vocabulary.
#[must_use]
pub fn extract_category_model(model: &MoeModel, sc: usize) -> CategoryModel {
    assert!(
        matches!(model.config().gate_input, crate::config::GateInput::Sc),
        "extraction requires the SC-only gate input (the deployed configuration)"
    );
    let params = model.params();
    let sc_table = params
        .find("emb.sc.table")
        .expect("SC embedding table exists");
    let sc_vocab = params.value(sc_table).rows();
    assert!(
        sc < sc_vocab,
        "sub-category {sc} out of vocabulary {sc_vocab}"
    );

    // Gate distribution for this SC.
    let sc_emb = params.value(sc_table).gather_rows(&[sc]);
    let logits = model.gate_logits_infer(&sc_emb);
    let k = model.config().top_k;
    let expert_indices = topk::top_k_indices(logits.row(0), k);
    let max = logits[(0, expert_indices[0])];
    let mut weights: Vec<f32> = expert_indices
        .iter()
        .map(|&e| (logits[(0, e)] - max).exp())
        .collect();
    let wsum: f32 = weights.iter().sum();
    weights.iter_mut().for_each(|w| *w /= wsum);

    // Snapshot retained expert towers.
    let layers = expert_indices
        .iter()
        .map(|&e| {
            model.experts()[e]
                .layers()
                .iter()
                .map(|l| {
                    let w = params.value(l.weight()).clone();
                    let b = l
                        .bias()
                        .map(|b| params.value(b).clone())
                        .expect("expert layers have biases");
                    (w, b)
                })
                .collect()
        })
        .collect();

    let table = |name: &str| params.value(params.find(name).expect(name)).clone();
    CategoryModel {
        sc,
        expert_indices,
        weights,
        layers,
        embeddings: ExtractedEmbeddings {
            sc: table("emb.sc.table"),
            brand: table("emb.brand.table"),
            shop: table("emb.shop.table"),
            user_segment: table("emb.user_segment.table"),
            price_bucket: table("emb.price_bucket.table"),
        },
    }
}

impl CategoryModel {
    /// Scalar parameter count of the extracted model (for comparing
    /// against the full ensemble).
    #[must_use]
    pub fn num_parameters(&self) -> usize {
        let towers: usize = self
            .layers
            .iter()
            .flat_map(|t| t.iter().map(|(w, b)| w.len() + b.len()))
            .sum();
        let emb = self.embeddings.sc.len()
            + self.embeddings.brand.len()
            + self.embeddings.shop.len()
            + self.embeddings.user_segment.len()
            + self.embeddings.price_bucket.len();
        towers + emb
    }

    /// Predicted purchase probabilities for a batch of candidates in the
    /// dedicated category.
    #[must_use]
    pub fn predict(&self, batch: &Batch) -> Vec<f32> {
        ops::sigmoid(&Matrix::from_vec(
            batch.len(),
            1,
            self.predict_logits(batch),
        ))
        .into_vec()
    }

    /// Raw ensemble logits under the frozen mixture.
    #[must_use]
    pub fn predict_logits(&self, batch: &Batch) -> Vec<f32> {
        let e = &self.embeddings;
        let x = Matrix::hcat(&[
            &e.sc.gather_rows(&batch.sc),
            &e.brand.gather_rows(&batch.brand),
            &e.shop.gather_rows(&batch.shop),
            &e.user_segment.gather_rows(&batch.user_segment),
            &e.price_bucket.gather_rows(&batch.price_bucket),
            &batch.numeric,
        ]);
        let mut out = Matrix::zeros(batch.len(), 1);
        for (tower, &w) in self.layers.iter().zip(&self.weights) {
            let mut h = x.clone();
            for (i, (wm, bm)) in tower.iter().enumerate() {
                h = ops::add_row_broadcast(&amoe_tensor::matmul::matmul(&h, wm), bm);
                if i + 1 < tower.len() {
                    h = ops::relu(&h);
                }
            }
            ops::axpy(&mut out, w, &h);
        }
        out.into_vec()
    }

    /// Mean mixture entropy — a diagnostic for how decisively the gate
    /// assigned this category (low entropy = concentrated on few experts).
    #[must_use]
    pub fn mixture_entropy(&self) -> f64 {
        -self
            .weights
            .iter()
            .filter(|&&w| w > 0.0)
            .map(|&w| f64::from(w) * f64::from(w).ln())
            .sum::<f64>()
    }
}

/// Agreement between the extracted model and the full ensemble on a
/// batch from the dedicated category: maximum absolute score difference.
#[must_use]
pub fn extraction_fidelity(model: &MoeModel, extracted: &CategoryModel, batch: &Batch) -> f32 {
    use crate::ranker::Ranker as _;
    let full = model.predict(batch);
    let compact = extracted.predict(batch);
    full.iter()
        .zip(&compact)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f32::max)
}

/// Convenience: per-expert usage share across a set of categories —
/// `reduce::col_mean` of the gate distribution over all SC embeddings.
/// Useful for auditing which experts a deployment could prune.
#[must_use]
pub fn expert_usage(model: &MoeModel) -> Vec<f32> {
    let params = model.params();
    let sc_table = params.find("emb.sc.table").expect("SC table");
    let all = params.value(sc_table).clone();
    let logits = model.gate_logits_infer(&all);
    let k = model.config().top_k;
    let masked = topk::mask_non_topk_neg_inf(&logits, k);
    let probs = ops::softmax_rows(&masked);
    reduce::col_mean(&probs).into_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MoeConfig, TowerConfig};
    use crate::ranker::{OptimConfig, Ranker};
    use amoe_dataset::{generate, GeneratorConfig};

    fn trained() -> (amoe_dataset::Dataset, MoeModel) {
        let d = generate(&GeneratorConfig::tiny(55));
        let cfg = MoeConfig {
            n_experts: 6,
            top_k: 2,
            tower: TowerConfig {
                hidden: vec![12, 6],
            },
            ..MoeConfig::default()
        };
        let mut m = MoeModel::new(&d.meta, cfg, OptimConfig::default());
        let batch = amoe_dataset::Batch::from_split(&d.train, &(0..256).collect::<Vec<_>>());
        for _ in 0..8 {
            m.train_step(&batch);
        }
        (d, m)
    }

    /// Examples from the test split whose *predicted* SC (the gate
    /// input) equals `sc`.
    fn batch_for_sc(d: &amoe_dataset::Dataset, sc: usize) -> Option<amoe_dataset::Batch> {
        let idx: Vec<usize> = d
            .test
            .examples
            .iter()
            .enumerate()
            .filter(|(_, e)| e.pred_sc == sc)
            .map(|(i, _)| i)
            .take(40)
            .collect();
        (idx.len() >= 5).then(|| amoe_dataset::Batch::from_split(&d.test, &idx))
    }

    #[test]
    fn extraction_matches_full_model_exactly() {
        let (d, m) = trained();
        // Pick an SC that actually occurs in the test split.
        let sc = d.test.examples[0].pred_sc;
        let extracted = extract_category_model(&m, sc);
        let batch = batch_for_sc(&d, sc).expect("SC occurs in test data");
        let fid = extraction_fidelity(&m, &extracted, &batch);
        assert!(fid < 1e-5, "extracted model diverges by {fid}");
    }

    #[test]
    fn extraction_is_smaller_than_ensemble() {
        let (d, m) = trained();
        let sc = d.test.examples[0].pred_sc;
        let extracted = extract_category_model(&m, sc);
        assert!(extracted.num_parameters() < m.num_parameters());
        assert_eq!(extracted.expert_indices.len(), m.config().top_k);
        let wsum: f32 = extracted.weights.iter().sum();
        assert!((wsum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn mixture_entropy_bounded() {
        let (d, m) = trained();
        let sc = d.test.examples[0].pred_sc;
        let extracted = extract_category_model(&m, sc);
        let h = extracted.mixture_entropy();
        let max_h = (m.config().top_k as f64).ln();
        assert!(
            h >= 0.0 && h <= max_h + 1e-9,
            "entropy {h} out of [0, {max_h}]"
        );
    }

    #[test]
    fn expert_usage_is_distribution() {
        let (_d, m) = trained();
        let usage = expert_usage(&m);
        assert_eq!(usage.len(), m.config().n_experts);
        let total: f32 = usage.iter().sum();
        assert!((total - 1.0).abs() < 1e-4, "usage sums to {total}");
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn bad_sc_panics() {
        let (_d, m) = trained();
        let _ = extract_category_model(&m, 10_000);
    }
}
