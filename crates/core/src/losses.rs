//! The paper's training-loss components.
//!
//! * [`hsc_loss`] — Hierarchical Soft Constraint (Eq. 9–11).
//! * [`adversarial_loss`] — disagreement reward between top-K and sampled
//!   idle experts (Eq. 12).
//! * [`load_balance_loss`] — Shazeer-style importance CV² regulariser,
//!   inherited from the paper's ref \[24\].
//! * [`sample_adversarial_mask`] — the per-example random choice of `D`
//!   disagreeing experts with `U_d ∩ U_topK = ∅`.

use amoe_autograd::Var;
use amoe_tensor::{Matrix, Rng};

/// Hierarchical Soft Constraint (Eq. 9–11):
///
/// ```text
/// p_I = softmax(G_I(x_sc))        (full support)
/// p_C = softmax(G_C(x_tc))        (full support)
/// HSC  = Σ_{i ∈ U_topK} (p_I[i] − p_C[i])²     per example
/// ```
///
/// Returns the per-example `B x 1` penalty. Both gates receive gradients
/// (Eq. 16); the expert towers cannot, because no expert output enters
/// the expression (Eq. 15).
#[must_use]
pub fn hsc_loss<'t>(
    inference_logits: Var<'t>,
    constraint_logits: Var<'t>,
    topk_mask: &Matrix,
) -> Var<'t> {
    let p_i = inference_logits.softmax_rows();
    let p_c = constraint_logits.softmax_rows();
    let gap = p_i - p_c;
    (gap * gap).mul_const(topk_mask).row_sum()
}

/// Samples the adversarial (disagreeing) expert mask: for each row, `d`
/// ones placed uniformly at random on coordinates where `topk_mask` is
/// zero (`U_d ∩ U_topK = ∅` by construction).
///
/// # Panics
/// Panics if any row has fewer than `d` idle experts.
#[must_use]
pub fn sample_adversarial_mask(topk_mask: &Matrix, d: usize, rng: &mut Rng) -> Matrix {
    let (rows, cols) = topk_mask.shape();
    let mut mask = Matrix::zeros(rows, cols);
    let mut idle: Vec<usize> = Vec::with_capacity(cols);
    for r in 0..rows {
        idle.clear();
        idle.extend((0..cols).filter(|&c| topk_mask[(r, c)] == 0.0));
        assert!(
            idle.len() >= d,
            "sample_adversarial_mask: row {r} has {} idle experts, need {d}",
            idle.len()
        );
        for &pick in rng.sample_distinct(idle.len(), d).iter() {
            mask[(r, idle[pick])] = 1.0;
        }
    }
    mask
}

/// Adversarial loss (Eq. 12):
///
/// ```text
/// AdvLoss = Σ_{i ∈ U_topK} Σ_{j ∈ U_d} (σ(E_i(X)) − σ(E_j(X)))²
/// ```
///
/// computed per example over the `B x N` matrix of expert logits via the
/// mask-algebra expansion
///
/// ```text
/// Σ_{i∈M} Σ_{j∈A} (s_i − s_j)²
///   = |A|·Σ_M s² − 2·(Σ_M s)(Σ_A s) + |M|·Σ_A s²
/// ```
///
/// which keeps the whole expression differentiable w.r.t. every involved
/// expert (both the top-K and the disagreeing ones) while the masks stay
/// constants. Returns the per-example `B x 1` reward (subtracted from
/// the objective, Eq. 14).
///
/// # Panics
/// Panics if the masks' shapes differ from the expert matrix.
#[must_use]
pub fn adversarial_loss<'t>(
    expert_logits: Var<'t>,
    topk_mask: &Matrix,
    adv_mask: &Matrix,
    k: usize,
    d: usize,
) -> Var<'t> {
    assert_eq!(expert_logits.shape(), topk_mask.shape());
    assert_eq!(expert_logits.shape(), adv_mask.shape());
    let s = expert_logits.sigmoid();
    let s2 = s * s;
    let sum_m = s.mul_const(topk_mask).row_sum();
    let sum_a = s.mul_const(adv_mask).row_sum();
    let sum_m2 = s2.mul_const(topk_mask).row_sum();
    let sum_a2 = s2.mul_const(adv_mask).row_sum();
    sum_m2.scale(d as f32) - (sum_m * sum_a).scale(2.0) + sum_a2.scale(k as f32)
}

/// Generalised multi-level Hierarchical Soft Constraint (the paper's
/// Sec. 6 future-work item: deeper hierarchies / knowledge graphs as
/// chains of soft constraints).
///
/// `level_logits[0]` is the inference gate (finest level, e.g.
/// sub-category); each subsequent entry is the constraint gate of the
/// next coarser ancestor (top-category, department, ...). Adjacent
/// levels are pulled together on the top-K coordinates of the finest
/// gate, with per-link weights:
///
/// ```text
/// HSC_chain = Σ_l w_l · Σ_{i ∈ U_topK} (p_l[i] − p_{l+1}[i])²
/// ```
///
/// With two levels and `weights = [1.0]` this reduces exactly to
/// [`hsc_loss`]. Returns the per-example `B x 1` penalty.
///
/// # Panics
/// Panics if fewer than two levels are given or
/// `weights.len() != level_logits.len() - 1`.
#[must_use]
pub fn hsc_chain_loss<'t>(
    level_logits: &[Var<'t>],
    weights: &[f32],
    topk_mask: &Matrix,
) -> Var<'t> {
    assert!(
        level_logits.len() >= 2,
        "hsc_chain_loss: need at least 2 levels, got {}",
        level_logits.len()
    );
    assert_eq!(
        weights.len(),
        level_logits.len() - 1,
        "hsc_chain_loss: {} weights for {} links",
        weights.len(),
        level_logits.len() - 1
    );
    let probs: Vec<Var<'t>> = level_logits.iter().map(|l| l.softmax_rows()).collect();
    let mut total: Option<Var<'t>> = None;
    for (link, &w) in weights.iter().enumerate() {
        let gap = probs[link] - probs[link + 1];
        let term = (gap * gap).mul_const(topk_mask).row_sum().scale(w);
        total = Some(match total {
            Some(acc) => acc + term,
            None => term,
        });
    }
    total.expect("at least one link")
}

/// Load-balancing loss over the batch: the squared coefficient of
/// variation of per-expert importance (column sums of the gate
/// probabilities), `CV²(imp) = N·Σimp² / (Σimp)² − 1`.
///
/// Returns a scalar (`1 x 1`) node.
#[must_use]
pub fn load_balance_loss<'t>(probs: Var<'t>) -> Var<'t> {
    let n = probs.shape().1 as f32;
    let imp = probs.col_sum();
    let sum_sq = (imp * imp).sum_all();
    let sq_sum = {
        let s = imp.sum_all();
        s * s
    };
    (sum_sq / sq_sum).scale(n).add_scalar(-1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoe_autograd::gradcheck::assert_gradients;
    use amoe_autograd::Tape;
    use amoe_tensor::topk;

    #[test]
    fn hsc_zero_when_gates_agree() {
        let tape = Tape::new();
        let logits = Matrix::from_rows(&[&[1.0, 2.0, 0.5, -1.0]]);
        let a = tape.leaf(logits.clone());
        let b = tape.leaf(logits.clone());
        let mask = topk::row_topk_mask(&logits, 2);
        let h = hsc_loss(a, b, &mask);
        assert!(h.value()[(0, 0)].abs() < 1e-7);
    }

    #[test]
    fn hsc_positive_when_gates_disagree() {
        let tape = Tape::new();
        let a = tape.leaf(Matrix::from_rows(&[&[3.0, 0.0, 0.0]]));
        let b = tape.leaf(Matrix::from_rows(&[&[0.0, 3.0, 0.0]]));
        let mask = Matrix::from_rows(&[&[1.0, 1.0, 0.0]]);
        let h = hsc_loss(a, b, &mask).value()[(0, 0)];
        assert!(h > 0.1, "h = {h}");
    }

    #[test]
    fn hsc_only_counts_topk_coordinates() {
        let tape = Tape::new();
        // Gates agree on coordinate 0, disagree on 2; mask selects only 0.
        let a = tape.leaf(Matrix::from_rows(&[&[2.0, 0.0, -5.0]]));
        let b = tape.leaf(Matrix::from_rows(&[&[2.0, 0.0, 5.0]]));
        let mask = Matrix::from_rows(&[&[1.0, 0.0, 0.0]]);
        let h = hsc_loss(a, b, &mask).value()[(0, 0)];
        // Probabilities still differ on coordinate 0 because softmax is
        // normalised over all coordinates — but the gap is modest.
        let full_mask = Matrix::from_rows(&[&[1.0, 1.0, 1.0]]);
        let tape2 = Tape::new();
        let a2 = tape2.leaf(Matrix::from_rows(&[&[2.0, 0.0, -5.0]]));
        let b2 = tape2.leaf(Matrix::from_rows(&[&[2.0, 0.0, 5.0]]));
        let h_full = hsc_loss(a2, b2, &full_mask).value()[(0, 0)];
        assert!(h < h_full);
    }

    #[test]
    fn hsc_gradcheck() {
        let mut rng = Rng::seed_from(1);
        let gi = rng.normal_matrix(3, 5, 0.0, 1.0);
        let gc = rng.normal_matrix(3, 5, 0.0, 1.0);
        let mask = topk::row_topk_mask(&gi, 2);
        assert_gradients(
            move |_t, v| hsc_loss(v[0], v[1], &mask).mean_all().into(),
            &[gi.clone(), gc],
            1e-2,
            2e-2,
        );
    }

    #[test]
    fn adversarial_mask_disjoint_and_sized() {
        let mut rng = Rng::seed_from(2);
        let logits = rng.normal_matrix(20, 10, 0.0, 1.0);
        let m = topk::row_topk_mask(&logits, 4);
        let a = sample_adversarial_mask(&m, 2, &mut rng);
        for r in 0..20 {
            let ones: f32 = a.row(r).iter().sum();
            assert_eq!(ones, 2.0, "row {r}");
            for c in 0..10 {
                assert!(
                    !(m[(r, c)] == 1.0 && a[(r, c)] == 1.0),
                    "overlap at ({r},{c})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "idle experts")]
    fn adversarial_mask_panics_when_no_idle() {
        let m = Matrix::ones(1, 4); // everything selected
        let mut rng = Rng::seed_from(3);
        let _ = sample_adversarial_mask(&m, 1, &mut rng);
    }

    #[test]
    fn adversarial_loss_matches_naive_double_sum() {
        let mut rng = Rng::seed_from(4);
        let logits = rng.normal_matrix(6, 8, 0.0, 1.5);
        let m = topk::row_topk_mask(&logits, 3);
        let a = sample_adversarial_mask(&m, 2, &mut rng);
        let tape = Tape::new();
        let e = tape.leaf(logits.clone());
        let fast = adversarial_loss(e, &m, &a, 3, 2).value();
        // Naive reference.
        for r in 0..6 {
            let mut naive = 0.0f32;
            for i in 0..8 {
                for j in 0..8 {
                    if m[(r, i)] == 1.0 && a[(r, j)] == 1.0 {
                        let si = amoe_tensor::ops::sigmoid_scalar(logits[(r, i)]);
                        let sj = amoe_tensor::ops::sigmoid_scalar(logits[(r, j)]);
                        naive += (si - sj) * (si - sj);
                    }
                }
            }
            assert!(
                (fast[(r, 0)] - naive).abs() < 1e-4,
                "row {r}: {} vs {naive}",
                fast[(r, 0)]
            );
        }
    }

    #[test]
    fn adversarial_loss_gradcheck() {
        let mut rng = Rng::seed_from(5);
        let logits = rng.normal_matrix(3, 6, 0.0, 1.0);
        let m = topk::row_topk_mask(&logits, 2);
        let a = sample_adversarial_mask(&m, 2, &mut rng);
        assert_gradients(
            move |_t, v| adversarial_loss(v[0], &m, &a, 2, 2).mean_all().into(),
            std::slice::from_ref(&logits),
            1e-2,
            2e-2,
        );
    }

    #[test]
    fn adversarial_loss_zero_when_experts_identical() {
        let tape = Tape::new();
        let e = tape.leaf(Matrix::filled(2, 5, 0.7));
        let m = Matrix::from_rows(&[&[1., 1., 0., 0., 0.], &[0., 1., 1., 0., 0.]]);
        let a = Matrix::from_rows(&[&[0., 0., 1., 0., 0.], &[0., 0., 0., 1., 0.]]);
        let v = adversarial_loss(e, &m, &a, 2, 1).value();
        assert!(v.as_slice().iter().all(|x| x.abs() < 1e-7));
    }

    #[test]
    fn hsc_chain_two_levels_equals_hsc() {
        let mut rng = Rng::seed_from(31);
        let gi = rng.normal_matrix(3, 5, 0.0, 1.0);
        let gc = rng.normal_matrix(3, 5, 0.0, 1.0);
        let mask = topk::row_topk_mask(&gi, 2);
        let tape = Tape::new();
        let a = tape.leaf(gi.clone());
        let b = tape.leaf(gc.clone());
        let chain = hsc_chain_loss(&[a, b], &[1.0], &mask).value();
        let plain = hsc_loss(a, b, &mask).value();
        amoe_tensor::assert_close(&chain, &plain, 1e-6, 1e-7);
    }

    #[test]
    fn hsc_chain_three_levels_sums_links() {
        let mut rng = Rng::seed_from(32);
        let l0 = rng.normal_matrix(2, 4, 0.0, 1.0);
        let l1 = rng.normal_matrix(2, 4, 0.0, 1.0);
        let l2 = rng.normal_matrix(2, 4, 0.0, 1.0);
        let mask = topk::row_topk_mask(&l0, 2);
        let tape = Tape::new();
        let (a, b, c) = (
            tape.leaf(l0.clone()),
            tape.leaf(l1.clone()),
            tape.leaf(l2.clone()),
        );
        let chain = hsc_chain_loss(&[a, b, c], &[0.7, 0.3], &mask).value();
        let expect = amoe_tensor::ops::add(
            &hsc_loss(a, b, &mask).scale(0.7).value(),
            &hsc_loss(b, c, &mask).scale(0.3).value(),
        );
        amoe_tensor::assert_close(&chain, &expect, 1e-5, 1e-6);
    }

    #[test]
    fn hsc_chain_gradcheck() {
        let mut rng = Rng::seed_from(33);
        let l0 = rng.normal_matrix(2, 5, 0.0, 1.0);
        let l1 = rng.normal_matrix(2, 5, 0.0, 1.0);
        let l2 = rng.normal_matrix(2, 5, 0.0, 1.0);
        let mask = topk::row_topk_mask(&l0, 2);
        assert_gradients(
            move |_t, v| {
                hsc_chain_loss(&[v[0], v[1], v[2]], &[0.5, 0.5], &mask)
                    .mean_all()
                    .into()
            },
            &[l0.clone(), l1, l2],
            1e-2,
            2e-2,
        );
    }

    #[test]
    #[should_panic(expected = "need at least 2 levels")]
    fn hsc_chain_single_level_panics() {
        let tape = Tape::new();
        let a = tape.leaf(Matrix::ones(1, 3));
        let mask = Matrix::ones(1, 3);
        let _ = hsc_chain_loss(&[a], &[], &mask);
    }

    #[test]
    fn load_balance_zero_when_uniform() {
        let tape = Tape::new();
        let p = tape.leaf(Matrix::filled(4, 5, 0.2));
        let l = load_balance_loss(p).value()[(0, 0)];
        assert!(l.abs() < 1e-6, "l = {l}");
    }

    #[test]
    fn load_balance_positive_when_skewed() {
        let tape = Tape::new();
        let p = tape.leaf(Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[1.0, 0.0, 0.0]]));
        let l = load_balance_loss(p).value()[(0, 0)];
        assert!(l > 1.0, "l = {l}");
    }

    #[test]
    fn load_balance_gradcheck() {
        let mut rng = Rng::seed_from(6);
        // Positive probabilities (softmax output in practice).
        let logits = rng.normal_matrix(4, 5, 0.0, 1.0);
        assert_gradients(
            move |_t, v| load_balance_loss(v[0].softmax_rows()).into(),
            std::slice::from_ref(&logits),
            1e-2,
            2e-2,
        );
    }
}
