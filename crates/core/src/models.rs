//! The model zoo (paper Sec. 5.1.3): DNN, MoE variants and MMoE.

use amoe_autograd::{Tape, Var};
use amoe_dataset::{Batch, DatasetMeta};
use amoe_nn::optim::{Adam, Optimizer};
use amoe_nn::{Activation, Mlp, ParamId, ParamSet};
use amoe_tensor::{ops, pool, Matrix, Rng};

use std::sync::Mutex;

use crate::config::MoeConfig;
use crate::features::FeatureEncoder;
use crate::gating::{GateOutput, NoisyTopKGate};
use crate::losses::{adversarial_loss, hsc_loss, load_balance_loss, sample_adversarial_mask};
use crate::ranker::{GateTelemetry, OptimConfig, Ranker, StepStats};

/// Builds one expert tower's layer dims from the config.
fn tower_dims(input_dim: usize, hidden: &[usize]) -> Vec<usize> {
    let mut dims = Vec::with_capacity(hidden.len() + 2);
    dims.push(input_dim);
    dims.extend_from_slice(hidden);
    dims.push(1);
    dims
}

// ---------------------------------------------------------------------------
// MoE family: MoE / Adv-MoE / HSC-MoE / Adv & HSC-MoE
// ---------------------------------------------------------------------------

/// The unified MoE model. [`MoeConfig::adversarial`] and
/// [`MoeConfig::hsc`] select the paper's four variants.
pub struct MoeModel {
    config: MoeConfig,
    params: ParamSet,
    encoder: FeatureEncoder,
    experts: Vec<Mlp>,
    inference_gate: NoisyTopKGate,
    /// Present iff `config.hsc`: identical structure to the inference
    /// gate, fed with the TC embedding, never noisy (it is a target
    /// distribution, not a router).
    constraint_gate: Option<NoisyTopKGate>,
    optimizer: Adam,
    clip_norm: f32,
    rng: Rng,
    /// Gate-routing telemetry accumulated while `amoe_obs` is enabled;
    /// drained per epoch through [`Ranker::take_gate_telemetry`].
    gate_telemetry: GateTelemetry,
}

/// Everything a forward pass produces that losses and analyses consume.
struct MoeForward<'t> {
    gate: GateOutput<'t>,
    /// `B x N` matrix of raw expert logits.
    expert_matrix: Var<'t>,
    /// `B x 1` ensemble logits.
    logit: Var<'t>,
}

impl MoeModel {
    /// Builds the model for a dataset schema.
    ///
    /// # Panics
    /// Panics if the config is inconsistent with the schema.
    #[must_use]
    pub fn new(meta: &DatasetMeta, config: MoeConfig, optim: OptimConfig) -> Self {
        config.validate(meta);
        let mut rng = Rng::seed_from(config.seed);
        let mut init_rng = rng.fork(1);
        let noise_rng = rng.fork(2);
        let mut params = ParamSet::new();
        let encoder = FeatureEncoder::new(&mut params, meta, &config, &mut init_rng);
        let input_dim = config.input_dim(meta);
        let dims = tower_dims(input_dim, &config.tower.hidden);
        let experts: Vec<Mlp> = (0..config.n_experts)
            .map(|i| {
                Mlp::new(
                    &mut params,
                    &format!("expert{i}"),
                    &dims,
                    Activation::Relu,
                    &mut init_rng,
                )
            })
            .collect();
        let inference_gate = NoisyTopKGate::new(
            &mut params,
            "gate.inference",
            config.gate_input_dim(meta),
            config.n_experts,
            config.noisy_gating,
            &mut init_rng,
        );
        let constraint_gate = config.hsc.then(|| {
            NoisyTopKGate::new(
                &mut params,
                "gate.constraint",
                config.emb_dim,
                config.n_experts,
                false,
                &mut init_rng,
            )
        });
        MoeModel {
            config,
            params,
            encoder,
            experts,
            inference_gate,
            constraint_gate,
            optimizer: Adam::adamw(optim.lr, optim.weight_decay),
            clip_norm: optim.clip_norm,
            rng: noise_rng,
            gate_telemetry: GateTelemetry::default(),
        }
    }

    /// Builds an inference-ready model from checkpointed weights: the
    /// structure comes from `(meta, config)`, the values from `params`
    /// (by name — extra tensors in `params` are ignored, missing or
    /// mis-shaped ones are a typed [`amoe_nn::LoadError::Mismatch`]).
    ///
    /// This is the one constructor shared by the trainer's export path
    /// (save `model.params()`, reload for analysis/fine-tuning) and the
    /// `amoe-serve` hot-swap path (`RELOAD <ckpt>` builds the new model
    /// off the serving thread, then an `Arc` swap publishes it).
    /// Construction touches only `(meta, config)`-sized state — no
    /// dataset, no training history — so a reload is milliseconds even
    /// when the original trainer process is long gone.
    ///
    /// # Panics
    /// Panics if `config` is inconsistent with `meta` (same contract as
    /// [`MoeModel::new`]); file-shaped problems are returned as errors.
    pub fn from_params(
        meta: &DatasetMeta,
        config: MoeConfig,
        optim: OptimConfig,
        params: &ParamSet,
    ) -> Result<Self, amoe_nn::LoadError> {
        let mut model = Self::new(meta, config, optim);
        model.params.load_values_from(params)?;
        Ok(model)
    }

    /// Warm-starts a model from a checkpoint file: the entry point the
    /// online refit loop uses to resume from the previously exported
    /// generation. Weights come from the file; optimizer state starts
    /// fresh (it is not checkpointed).
    ///
    /// # Panics
    /// Panics if `config` is inconsistent with `meta` (same contract
    /// as [`MoeModel::new`]); file problems are returned as errors.
    pub fn from_checkpoint(
        meta: &DatasetMeta,
        config: MoeConfig,
        optim: OptimConfig,
        path: impl AsRef<std::path::Path>,
    ) -> Result<Self, amoe_nn::LoadError> {
        let params = ParamSet::load(path)?;
        Self::from_params(meta, config, optim, &params)
    }

    /// The model's configuration.
    #[must_use]
    pub fn config(&self) -> &MoeConfig {
        &self.config
    }

    /// Read access to the parameters (checkpointing, serving export).
    #[must_use]
    pub fn params(&self) -> &ParamSet {
        &self.params
    }

    /// Mutable access to the parameters (checkpoint restore).
    pub fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn forward<'t>(
        &self,
        tape: &'t Tape,
        bound: &amoe_nn::Bound<'t>,
        batch: &Batch,
        noise_rng: Option<&mut Rng>,
    ) -> MoeForward<'t> {
        let x = self.encoder.input(tape, bound, batch);
        let gate_in = self
            .encoder
            .gate_input(tape, bound, batch, self.config.gate_input);
        let gate = self
            .inference_gate
            .forward(tape, bound, gate_in, self.config.top_k, noise_rng);
        let outs: Vec<Var<'t>> = self.experts.iter().map(|e| e.forward(bound, x)).collect();
        let expert_matrix = Var::concat_cols(&outs);
        let logit = (gate.probs * expert_matrix).row_sum();
        MoeForward {
            gate,
            expert_matrix,
            logit,
        }
    }

    /// Full-support softmax of the clean inference-gate logits for a
    /// batch — the "inference MoE gate values" clustered in Fig. 6.
    #[must_use]
    pub fn gate_probs_full(&self, batch: &Batch) -> Matrix {
        let tape = Tape::new();
        let bound = self.params.bind(&tape);
        let gate_in = self
            .encoder
            .gate_input(&tape, &bound, batch, self.config.gate_input);
        let logits = gate_in.matmul(bound.var(self.inference_gate.weight()));
        ops::softmax_rows(&logits.value())
    }

    /// Top-K masked gate probabilities (the mixture weights actually used).
    #[must_use]
    pub fn gate_probs_topk(&self, batch: &Batch) -> Matrix {
        let tape = Tape::new();
        let bound = self.params.bind(&tape);
        let gate_in = self
            .encoder
            .gate_input(&tape, &bound, batch, self.config.gate_input);
        self.inference_gate
            .forward(&tape, &bound, gate_in, self.config.top_k, None)
            .probs
            .value()
    }

    /// The expert towers (read-only, used by the serving path).
    #[must_use]
    pub fn experts(&self) -> &[Mlp] {
        &self.experts
    }

    /// Tape-free dense input assembly (Eq. 2) for serving.
    #[must_use]
    pub fn encoder_input_infer(&self, batch: &Batch) -> Matrix {
        self.encoder.input_infer(&self.params, batch)
    }

    /// Tape-free inference-gate input for serving, honouring the
    /// configured [`crate::config::GateInput`] ablation (every variant
    /// is servable, matching the tape path column for column).
    #[must_use]
    pub fn gate_input_infer(&self, batch: &Batch) -> Matrix {
        self.encoder
            .gate_input_infer(&self.params, batch, self.config.gate_input)
    }

    /// Tape-free clean gate logits for serving.
    #[must_use]
    pub fn gate_logits_infer(&self, gate_input: &Matrix) -> Matrix {
        self.inference_gate.logits_infer(&self.params, gate_input)
    }

    /// Raw ensemble logits (pre-sigmoid) through the dense training
    /// graph — every expert computed, evaluation mode (no gating noise).
    /// The reference the sparse serving path is tested against.
    #[must_use]
    pub fn predict_logits_dense(&self, batch: &Batch) -> Vec<f32> {
        let tape = Tape::new();
        let bound = self.params.bind(&tape);
        let fwd = self.forward(&tape, &bound, batch, None);
        fwd.logit.value().into_vec()
    }

    /// Raw per-expert logits and the top-K selection mask for a batch
    /// (the case-study visual, Table 7 / Fig. 8).
    #[must_use]
    pub fn expert_logits(&self, batch: &Batch) -> (Matrix, Matrix) {
        let tape = Tape::new();
        let bound = self.params.bind(&tape);
        let fwd = self.forward(&tape, &bound, batch, None);
        (fwd.expert_matrix.value(), fwd.gate.topk_mask)
    }
}

impl Ranker for MoeModel {
    fn name(&self) -> String {
        match (self.config.adversarial, self.config.hsc) {
            (false, false) => "MoE".to_string(),
            (true, false) => "Adv-MoE".to_string(),
            (false, true) => "HSC-MoE".to_string(),
            (true, true) => "Adv & HSC-MoE".to_string(),
        }
    }

    fn train_step(&mut self, batch: &Batch) -> StepStats {
        let stats = self.accumulate_gradients(batch);
        self.optimizer.step(&mut self.params);
        stats
    }

    fn predict(&self, batch: &Batch) -> Vec<f32> {
        let tape = Tape::new();
        let bound = self.params.bind(&tape);
        let fwd = self.forward(&tape, &bound, batch, None);
        ops::sigmoid(&fwd.logit.value()).into_vec()
    }

    fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }

    fn take_gate_telemetry(&mut self) -> Option<GateTelemetry> {
        if self.gate_telemetry.steps == 0 {
            return None;
        }
        Some(std::mem::take(&mut self.gate_telemetry))
    }
}

/// One expert's forward tape, built in parallel and revisited for the
/// seeded backward pass. Carries raw node ids instead of `Var`s so it
/// can cross threads (`Tape` is `Send`; `Var` is not).
struct ExpertFwd {
    tape: Tape,
    /// Leaf holding the shared input `X`.
    x_id: usize,
    /// The tower's `B x 1` output logits.
    out_id: usize,
    /// `(parameter, leaf id)` for every tower weight on this tape.
    leaves: Vec<(ParamId, usize)>,
}

/// One expert's backward result: cotangent of the shared input plus the
/// tower's parameter gradients, merged serially in expert order.
struct ExpertGrad {
    d_x: Matrix,
    param_grads: Vec<(ParamId, Matrix)>,
}

impl MoeModel {
    /// Runs one forward/backward pass, leaving fresh (clipped) gradients
    /// in the parameter set without applying an optimizer update. Used
    /// by [`Ranker::train_step`] and by [`crate::finetune::FineTuner`],
    /// which filters the gradients before stepping its own optimizer.
    ///
    /// # Parallelism
    ///
    /// The computation graph is split at its natural seams so the
    /// mutually independent expert towers can fan out across the
    /// [`pool`] runtime:
    ///
    /// 1. a shared-prefix tape builds the encoder outputs (`X`, the
    ///    gate input, the TC embedding) serially;
    /// 2. each expert forward runs on its **own tape** (bound to just
    ///    that tower's weights, fed the value of `X` as a leaf) — one
    ///    pool task per expert;
    /// 3. a gate/loss tape consumes the expert outputs as leaves,
    ///    builds the gate and all loss terms, and back-propagates —
    ///    serial, and bit-identical to the former single-tape loss
    ///    because the floating-point op sequence is unchanged;
    /// 4. each expert tape back-propagates from its output's cotangent
    ///    — one pool task per expert;
    /// 5. gradients merge serially **in expert order** (never in
    ///    completion order), and one multi-seed sweep pushes the `X` /
    ///    gate-input / TC cotangents through the shared-prefix tape.
    ///
    /// Every cross-thread write lands in a per-expert slot and every
    /// floating-point merge runs on the caller in a fixed order, so
    /// losses and gradients are bit-identical for every thread count.
    pub fn accumulate_gradients(&mut self, batch: &Batch) -> StepStats {
        let b = batch.len();
        let n_experts = self.experts.len();

        // Stage 1: shared-prefix (encoder) tape, serial.
        let enc_tape = Tape::new();
        let enc_bound = self
            .params
            .bind_subset(&enc_tape, &self.encoder.param_ids());
        let x = self.encoder.input(&enc_tape, &enc_bound, batch);
        let gate_in = self
            .encoder
            .gate_input(&enc_tape, &enc_bound, batch, self.config.gate_input);
        let tc_emb = self
            .constraint_gate
            .is_some()
            .then(|| self.encoder.tc_embedding(&enc_bound, batch));
        let x_val = x.value();
        let gate_in_val = gate_in.value();
        let tc_val = tc_emb.map(|v| v.value());

        // Stage 2: per-expert forward tapes, one pool task per expert.
        let experts = &self.experts;
        let params = &self.params;
        let x_ref = &x_val;
        let fwds: Vec<ExpertFwd> = {
            let _span = amoe_obs::Span::enter("train.expert_fwd");
            pool::map_tasks(n_experts, |e| {
                let tape = Tape::new();
                let ids = experts[e].param_ids();
                let bound = params.bind_subset(&tape, &ids);
                let x_leaf = tape.leaf(x_ref.clone());
                let out = experts[e].forward(&bound, x_leaf);
                let leaves = ids.iter().map(|&pid| (pid, bound.leaf_id(pid))).collect();
                ExpertFwd {
                    x_id: x_leaf.id(),
                    out_id: out.id(),
                    leaves,
                    tape,
                }
            })
        };
        // Take-once slots so the backward tasks can reclaim their tape
        // across the pool boundary (`Tape` is `Send` but not `Sync`).
        let mut out_vals = Vec::with_capacity(n_experts);
        let fwd_slots: Vec<Mutex<Option<ExpertFwd>>> = fwds
            .into_iter()
            .map(|f| {
                out_vals.push(f.tape.value(f.out_id));
                Mutex::new(Some(f))
            })
            .collect();

        // Stage 3: gate + loss tape, serial. The RNG draw order (gating
        // noise first, adversarial mask second) matches the former
        // single-tape implementation, so sampled values are unchanged.
        let loss_tape = Tape::new();
        let mut head_ids = self.inference_gate.param_ids();
        if let Some(cg) = &self.constraint_gate {
            head_ids.extend(cg.param_ids());
        }
        let loss_bound = self.params.bind_subset(&loss_tape, &head_ids);
        let gate_in_leaf = loss_tape.leaf(gate_in_val);
        let mut step_rng = self.rng.fork(0);
        let noise = self.config.noisy_gating.then_some(&mut step_rng);
        let gate = self.inference_gate.forward(
            &loss_tape,
            &loss_bound,
            gate_in_leaf,
            self.config.top_k,
            noise,
        );
        let out_leaves: Vec<Var<'_>> = out_vals.into_iter().map(|v| loss_tape.leaf(v)).collect();
        let expert_matrix = Var::concat_cols(&out_leaves);
        let logit = (gate.probs * expert_matrix).row_sum();
        let tc_leaf = tc_val.map(|v| loss_tape.leaf(v));
        let constraint_logits = self.constraint_gate.as_ref().map(|cg| {
            cg.forward(
                &loss_tape,
                &loss_bound,
                tc_leaf.expect("HSC implies a TC embedding"),
                self.config.top_k,
                None,
            )
            .clean_logits
        });

        let ce = logit.bce_with_logits(&batch.labels);
        let mut per_example = ce;
        let mut stats = StepStats::default();

        if let Some(c_logits) = constraint_logits {
            let hsc = hsc_loss(gate.clean_logits, c_logits, &gate.topk_mask);
            stats.hsc = amoe_tensor::reduce::mean(&hsc.value());
            per_example = per_example + hsc.scale(self.config.lambda1);
        }
        if self.config.adversarial {
            let adv_mask =
                sample_adversarial_mask(&gate.topk_mask, self.config.n_adversarial, &mut step_rng);
            let adv = adversarial_loss(
                expert_matrix,
                &gate.topk_mask,
                &adv_mask,
                self.config.top_k,
                self.config.n_adversarial,
            );
            stats.adv = amoe_tensor::reduce::mean(&adv.value());
            per_example = per_example - adv.scale(self.config.lambda2);
        }
        stats.ce = amoe_tensor::reduce::mean(&ce.value());

        let mut loss = per_example.mean_all();
        if self.config.load_balance > 0.0 {
            let lb = load_balance_loss(gate.probs);
            stats.load_balance = lb.value()[(0, 0)];
            loss = loss + lb.scale(self.config.load_balance);
        }
        stats.loss = loss.value()[(0, 0)];

        // Materialise the gate probabilities while the tape is alive;
        // the telemetry accumulator needs `&mut self` and runs last.
        let gate_probs = amoe_obs::enabled().then(|| gate.probs.value());

        let loss_grads = loss_tape.backward(loss);
        self.params.zero_grads();
        self.params.collect_grads(&loss_bound, &loss_grads);

        // Boundary cotangents: one per expert output, plus the gate
        // input and (under HSC) the TC embedding.
        let d_outs: Vec<Matrix> = out_leaves
            .iter()
            .map(|&v| loss_grads.get_or_zeros(v, b, 1))
            .collect();
        let d_gate_in = loss_grads.get_or_zeros(gate_in_leaf, b, gate_in_leaf.shape().1);
        let d_tc = tc_leaf.map(|v| loss_grads.get_or_zeros(v, b, v.shape().1));

        // Stage 4: per-expert backward, one pool task per expert.
        let x_cols = x_val.cols();
        let slots = &fwd_slots;
        let d_outs_ref = &d_outs;
        let backs: Vec<ExpertGrad> = {
            let _span = amoe_obs::Span::enter("train.expert_bwd");
            pool::map_tasks(n_experts, |e| {
                let f = slots[e]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    .expect("expert tape claimed exactly once");
                let g = f
                    .tape
                    .backward_seeded(f.tape.var(f.out_id), d_outs_ref[e].clone());
                let d_x = g.get_or_zeros(f.tape.var(f.x_id), b, x_cols);
                let param_grads = f
                    .leaves
                    .iter()
                    .filter_map(|&(pid, leaf)| g.get(f.tape.var(leaf)).map(|m| (pid, m.clone())))
                    .collect();
                ExpertGrad { d_x, param_grads }
            })
        };

        // Stage 5: deterministic serial merge in expert order.
        let mut d_x = Matrix::zeros(b, x_cols);
        for eg in backs {
            ops::add_assign(&mut d_x, &eg.d_x);
            for (pid, g) in eg.param_grads {
                ops::add_assign(self.params.grad_mut(pid), &g);
            }
        }

        // Stage 6: one multi-seed sweep through the shared prefix.
        let mut seeds = vec![(x, d_x), (gate_in, d_gate_in)];
        if let (Some(tc), Some(d)) = (tc_emb, d_tc) {
            seeds.push((tc, d));
        }
        let enc_grads = enc_tape.backward_multi(seeds);
        self.params.collect_grads(&enc_bound, &enc_grads);

        if self.clip_norm > 0.0 {
            self.params.clip_grad_global_norm(self.clip_norm);
        }
        if let Some(probs) = gate_probs {
            self.record_gate_telemetry(&probs);
        }
        stats
    }

    /// Accumulates routing telemetry from one step's `B x N` top-K
    /// masked gate probabilities: per-expert dispatch counts (positive
    /// entries) and the batch-mean entropy of the masked distribution.
    fn record_gate_telemetry(&mut self, probs: &Matrix) {
        let (b, n) = probs.shape();
        let t = &mut self.gate_telemetry;
        if t.dispatch.len() != n {
            t.dispatch = vec![0; n];
        }
        let mut entropy_total = 0f64;
        for r in 0..b {
            let mut h = 0f64;
            for (e, &p) in probs.row(r).iter().enumerate() {
                if p > 0.0 {
                    t.dispatch[e] += 1;
                    h -= f64::from(p) * f64::from(p).ln();
                }
            }
            entropy_total += h;
        }
        t.entropy_sum += entropy_total / b.max(1) as f64;
        t.steps += 1;
    }
}

// ---------------------------------------------------------------------------
// DNN baseline
// ---------------------------------------------------------------------------

/// The plain feed-forward baseline: the same encoder feeding a single
/// tower of the same shape as one expert (Sec. 5.1.4).
pub struct DnnModel {
    params: ParamSet,
    encoder: FeatureEncoder,
    tower: Mlp,
    optimizer: Adam,
    clip_norm: f32,
}

impl DnnModel {
    /// Builds the baseline for a dataset schema. `config` supplies the
    /// embedding dim and tower shape; gating fields are ignored.
    #[must_use]
    pub fn new(meta: &DatasetMeta, config: &MoeConfig, optim: OptimConfig) -> Self {
        let mut rng = Rng::seed_from(config.seed);
        let mut init_rng = rng.fork(1);
        let mut params = ParamSet::new();
        let encoder = FeatureEncoder::new(&mut params, meta, config, &mut init_rng);
        let dims = tower_dims(config.input_dim(meta), &config.tower.hidden);
        let tower = Mlp::new(&mut params, "dnn", &dims, Activation::Relu, &mut init_rng);
        DnnModel {
            params,
            encoder,
            tower,
            optimizer: Adam::adamw(optim.lr, optim.weight_decay),
            clip_norm: optim.clip_norm,
        }
    }

    /// Read access to the parameters.
    #[must_use]
    pub fn params(&self) -> &ParamSet {
        &self.params
    }
}

impl Ranker for DnnModel {
    fn name(&self) -> String {
        "DNN".to_string()
    }

    fn train_step(&mut self, batch: &Batch) -> StepStats {
        let tape = Tape::new();
        let bound = self.params.bind(&tape);
        let x = self.encoder.input(&tape, &bound, batch);
        let logit = self.tower.forward(&bound, x);
        let loss = logit.bce_with_logits(&batch.labels).mean_all();
        let stats = StepStats {
            loss: loss.value()[(0, 0)],
            ce: loss.value()[(0, 0)],
            ..Default::default()
        };
        let grads = tape.backward(loss);
        self.params.zero_grads();
        self.params.collect_grads(&bound, &grads);
        drop(bound);
        if self.clip_norm > 0.0 {
            self.params.clip_grad_global_norm(self.clip_norm);
        }
        self.optimizer.step(&mut self.params);
        stats
    }

    fn predict(&self, batch: &Batch) -> Vec<f32> {
        let tape = Tape::new();
        let bound = self.params.bind(&tape);
        let x = self.encoder.input(&tape, &bound, batch);
        let logit = self.tower.forward(&bound, x);
        ops::sigmoid(&logit.value()).into_vec()
    }

    fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }
}

// ---------------------------------------------------------------------------
// MMoE baseline
// ---------------------------------------------------------------------------

/// Multi-gate Mixture-of-Experts (Ma et al. 2018, the paper's ref \[18\]):
/// the prediction tasks under different top-category buckets are treated
/// as separate tasks, each with its own softmax gate over the shared
/// experts (paper Sec. 5.1.3–5.1.4).
pub struct MmoeModel {
    n_experts: usize,
    params: ParamSet,
    encoder: FeatureEncoder,
    experts: Vec<Mlp>,
    /// Per-task gate weight matrices (`input_dim x N`, no bias).
    gates: Vec<ParamId>,
    /// `tc → task bucket` assignment.
    task_of_tc: Vec<usize>,
    optimizer: Adam,
    clip_norm: f32,
}

impl MmoeModel {
    /// Builds an MMoE with `n_experts` experts and one gate per task
    /// bucket. `task_of_tc` maps each top-category to its bucket (see
    /// `amoe_dataset::buckets::equal_count_task_buckets`).
    ///
    /// # Panics
    /// Panics if `task_of_tc` is empty or shorter than the TC vocabulary.
    #[must_use]
    pub fn new(
        meta: &DatasetMeta,
        config: &MoeConfig,
        n_experts: usize,
        task_of_tc: Vec<usize>,
        optim: OptimConfig,
    ) -> Self {
        assert_eq!(
            task_of_tc.len(),
            meta.tc_vocab,
            "MmoeModel: task map covers {} TCs, vocabulary has {}",
            task_of_tc.len(),
            meta.tc_vocab
        );
        let n_tasks = task_of_tc.iter().copied().max().unwrap_or(0) + 1;
        let mut rng = Rng::seed_from(config.seed);
        let mut init_rng = rng.fork(1);
        let mut params = ParamSet::new();
        let encoder = FeatureEncoder::new(&mut params, meta, config, &mut init_rng);
        let input_dim = config.input_dim(meta);
        let dims = tower_dims(input_dim, &config.tower.hidden);
        let experts: Vec<Mlp> = (0..n_experts)
            .map(|i| {
                Mlp::new(
                    &mut params,
                    &format!("expert{i}"),
                    &dims,
                    Activation::Relu,
                    &mut init_rng,
                )
            })
            .collect();
        let gates: Vec<ParamId> = (0..n_tasks)
            .map(|t| {
                params.add(
                    format!("gate.task{t}.w"),
                    amoe_nn::Init::XavierUniform.sample(input_dim, n_experts, &mut init_rng),
                )
            })
            .collect();
        MmoeModel {
            n_experts,
            params,
            encoder,
            experts,
            gates,
            task_of_tc,
            optimizer: Adam::adamw(optim.lr, optim.weight_decay),
            clip_norm: optim.clip_norm,
        }
    }

    /// Number of task gates.
    #[must_use]
    pub fn n_tasks(&self) -> usize {
        self.gates.len()
    }

    /// Builds the per-example task-selection masks (`B x N`, rows of a
    /// task's mask are 1 where the example belongs to the task).
    fn task_masks(&self, batch: &Batch) -> Vec<Matrix> {
        let b = batch.len();
        let mut masks = vec![Matrix::zeros(b, self.n_experts); self.gates.len()];
        for (i, &tc) in batch.tc.iter().enumerate() {
            let t = self.task_of_tc[tc];
            masks[t].row_mut(i).fill(1.0);
        }
        masks
    }

    fn forward<'t>(&self, tape: &'t Tape, bound: &amoe_nn::Bound<'t>, batch: &Batch) -> Var<'t> {
        let x = self.encoder.input(tape, bound, batch);
        let masks = self.task_masks(batch);
        // Per-example gate logits: each row comes from its task's gate.
        let mut mixed: Option<Var<'t>> = None;
        for (gate, mask) in self.gates.iter().zip(&masks) {
            let logits_t = x.matmul(bound.var(*gate)).mul_const(mask);
            mixed = Some(match mixed {
                Some(acc) => acc + logits_t,
                None => logits_t,
            });
        }
        let probs = mixed.expect("at least one task gate").softmax_rows();
        let outs: Vec<Var<'t>> = self.experts.iter().map(|e| e.forward(bound, x)).collect();
        let expert_matrix = Var::concat_cols(&outs);
        (probs * expert_matrix).row_sum()
    }
}

impl Ranker for MmoeModel {
    fn name(&self) -> String {
        format!("{}-MMoE", self.n_experts)
    }

    fn train_step(&mut self, batch: &Batch) -> StepStats {
        let tape = Tape::new();
        let bound = self.params.bind(&tape);
        let logit = self.forward(&tape, &bound, batch);
        let loss = logit.bce_with_logits(&batch.labels).mean_all();
        let stats = StepStats {
            loss: loss.value()[(0, 0)],
            ce: loss.value()[(0, 0)],
            ..Default::default()
        };
        let grads = tape.backward(loss);
        self.params.zero_grads();
        self.params.collect_grads(&bound, &grads);
        drop(bound);
        if self.clip_norm > 0.0 {
            self.params.clip_grad_global_norm(self.clip_norm);
        }
        self.optimizer.step(&mut self.params);
        stats
    }

    fn predict(&self, batch: &Batch) -> Vec<f32> {
        let tape = Tape::new();
        let bound = self.params.bind(&tape);
        let logit = self.forward(&tape, &bound, batch);
        ops::sigmoid(&logit.value()).into_vec()
    }

    fn num_parameters(&self) -> usize {
        self.params.num_scalars()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoe_dataset::buckets::equal_count_task_buckets;
    use amoe_dataset::{generate, GeneratorConfig};

    fn data() -> amoe_dataset::Dataset {
        generate(&GeneratorConfig::tiny(21))
    }

    fn small_cfg() -> MoeConfig {
        MoeConfig {
            n_experts: 6,
            top_k: 2,
            tower: crate::config::TowerConfig {
                hidden: vec![16, 8],
            },
            ..MoeConfig::default()
        }
    }

    #[test]
    fn names_match_variants() {
        let d = data();
        let o = OptimConfig::default();
        assert_eq!(MoeModel::new(&d.meta, small_cfg(), o).name(), "MoE");
        let adv = MoeConfig {
            adversarial: true,
            ..small_cfg()
        };
        assert_eq!(MoeModel::new(&d.meta, adv, o).name(), "Adv-MoE");
        let hsc = MoeConfig {
            hsc: true,
            ..small_cfg()
        };
        assert_eq!(MoeModel::new(&d.meta, hsc, o).name(), "HSC-MoE");
        let both = MoeConfig {
            adversarial: true,
            hsc: true,
            ..small_cfg()
        };
        assert_eq!(MoeModel::new(&d.meta, both, o).name(), "Adv & HSC-MoE");
    }

    #[test]
    fn train_step_reduces_loss_over_steps() {
        let d = data();
        let mut model = MoeModel::new(&d.meta, small_cfg(), OptimConfig::default());
        let idx: Vec<usize> = (0..128.min(d.train.len())).collect();
        let batch = Batch::from_split(&d.train, &idx);
        let first = model.train_step(&batch).loss;
        let mut last = first;
        for _ in 0..30 {
            last = model.train_step(&batch).loss;
        }
        assert!(last < first, "loss did not decrease: {first} -> {last}");
        assert!(model.params().all_finite());
    }

    #[test]
    fn hsc_variant_reports_hsc_component() {
        let d = data();
        let cfg = MoeConfig {
            hsc: true,
            ..small_cfg()
        };
        let mut model = MoeModel::new(&d.meta, cfg, OptimConfig::default());
        let batch = Batch::from_split(&d.train, &(0..64).collect::<Vec<_>>());
        let stats = model.train_step(&batch);
        assert!(stats.hsc > 0.0, "hsc component missing: {stats:?}");
        // Plain MoE reports zero HSC.
        let mut plain = MoeModel::new(&d.meta, small_cfg(), OptimConfig::default());
        assert_eq!(plain.train_step(&batch).hsc, 0.0);
    }

    #[test]
    fn adv_variant_reports_adv_component() {
        let d = data();
        let cfg = MoeConfig {
            adversarial: true,
            ..small_cfg()
        };
        let mut model = MoeModel::new(&d.meta, cfg, OptimConfig::default());
        let batch = Batch::from_split(&d.train, &(0..64).collect::<Vec<_>>());
        let stats = model.train_step(&batch);
        assert!(stats.adv >= 0.0);
        // After a few steps the adversarial reward should be non-trivial.
        let mut s = stats;
        for _ in 0..20 {
            s = model.train_step(&batch);
        }
        assert!(s.adv > 0.0, "adv component stayed zero: {s:?}");
    }

    #[test]
    fn from_params_round_trips_predictions() {
        let d = data();
        let mut model = MoeModel::new(&d.meta, small_cfg(), OptimConfig::default());
        let batch = Batch::from_split(&d.train, &(0..64).collect::<Vec<_>>());
        for _ in 0..5 {
            model.train_step(&batch);
        }
        // Rebuild from the exported weights with a *different* seed:
        // the checkpoint values must fully determine the predictions.
        let cfg = MoeConfig {
            seed: 999,
            ..small_cfg()
        };
        let restored =
            MoeModel::from_params(&d.meta, cfg, OptimConfig::default(), model.params()).unwrap();
        assert_eq!(model.predict(&batch), restored.predict(&batch));
    }

    #[test]
    fn from_params_rejects_foreign_checkpoint() {
        let d = data();
        let small = MoeModel::new(&d.meta, small_cfg(), OptimConfig::default());
        // A config with more experts needs tensors the checkpoint lacks.
        let bigger = MoeConfig {
            n_experts: 8,
            ..small_cfg()
        };
        let err = MoeModel::from_params(&d.meta, bigger, OptimConfig::default(), small.params());
        assert!(matches!(err, Err(amoe_nn::LoadError::Mismatch(_))));
    }

    #[test]
    fn predictions_are_probabilities() {
        let d = data();
        let model = MoeModel::new(&d.meta, small_cfg(), OptimConfig::default());
        let batch = Batch::from_split(&d.train, &(0..32).collect::<Vec<_>>());
        let p = model.predict(&batch);
        assert_eq!(p.len(), 32);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn predict_deterministic_in_eval_mode() {
        let d = data();
        let model = MoeModel::new(&d.meta, small_cfg(), OptimConfig::default());
        let batch = Batch::from_split(&d.train, &(0..16).collect::<Vec<_>>());
        assert_eq!(model.predict(&batch), model.predict(&batch));
    }

    #[test]
    fn gate_probs_shapes_and_support() {
        let d = data();
        let cfg = small_cfg();
        let model = MoeModel::new(&d.meta, cfg.clone(), OptimConfig::default());
        let batch = Batch::from_split(&d.train, &(0..10).collect::<Vec<_>>());
        let full = model.gate_probs_full(&batch);
        let topk = model.gate_probs_topk(&batch);
        assert_eq!(full.shape(), (10, cfg.n_experts));
        assert_eq!(topk.shape(), (10, cfg.n_experts));
        for r in 0..10 {
            assert!((full.row(r).iter().sum::<f32>() - 1.0).abs() < 1e-5);
            let nz = topk.row(r).iter().filter(|&&v| v > 0.0).count();
            assert_eq!(nz, cfg.top_k);
        }
    }

    #[test]
    fn dnn_trains_and_predicts() {
        let d = data();
        let mut dnn = DnnModel::new(&d.meta, &small_cfg(), OptimConfig::default());
        let batch = Batch::from_split(&d.train, &(0..64).collect::<Vec<_>>());
        let first = dnn.train_step(&batch).loss;
        let mut last = first;
        for _ in 0..30 {
            last = dnn.train_step(&batch).loss;
        }
        assert!(last < first);
        let p = dnn.predict(&batch);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn mmoe_trains_and_matches_capacity_claim() {
        let d = data();
        let task_of_tc = equal_count_task_buckets(&d.train, d.hierarchy.num_tc(), 4);
        let cfg = small_cfg();
        let mut mmoe = MmoeModel::new(&d.meta, &cfg, 6, task_of_tc, OptimConfig::default());
        assert_eq!(mmoe.name(), "6-MMoE");
        assert_eq!(mmoe.n_tasks(), 4);
        let batch = Batch::from_split(&d.train, &(0..64).collect::<Vec<_>>());
        let first = mmoe.train_step(&batch).loss;
        let mut last = first;
        for _ in 0..30 {
            last = mmoe.train_step(&batch).loss;
        }
        assert!(last < first);
        // Same expert count ⇒ comparable parameter count to the MoE model
        // (MMoE swaps one noisy gate for several task gates).
        let moe = MoeModel::new(&d.meta, cfg, OptimConfig::default());
        let ratio = mmoe.num_parameters() as f64 / moe.num_parameters() as f64;
        assert!((0.8..1.3).contains(&ratio), "capacity ratio {ratio}");
    }

    #[test]
    fn expert_logits_expose_case_study_view() {
        let d = data();
        let cfg = small_cfg();
        let model = MoeModel::new(&d.meta, cfg.clone(), OptimConfig::default());
        let batch = Batch::from_split(&d.train, &(0..5).collect::<Vec<_>>());
        let (scores, mask) = model.expert_logits(&batch);
        assert_eq!(scores.shape(), (5, cfg.n_experts));
        assert_eq!(mask.shape(), (5, cfg.n_experts));
        for r in 0..5 {
            assert_eq!(mask.row(r).iter().filter(|&&v| v > 0.0).count(), cfg.top_k);
        }
    }
}
