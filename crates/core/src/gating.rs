//! Noisy Top-K gating (paper Sec. 4.2–4.3.1, following Shazeer et al.
//! 2017, the paper's ref \[24\]).
//!
//! The inference gate is a single linear map from the gate input (the
//! sub-category embedding by default) to `N` expert logits (Eq. 5).
//! During training, Gaussian noise scaled by a *learned* softplus term is
//! added before the top-K cut (Noisy Top-K Gating), which smooths expert
//! assignment and lets gradient information reach near-miss experts.
//! The top-K logits go through a masked softmax (Eq. 6–7); the rest get
//! exactly zero probability.

use amoe_autograd::{Tape, Var};
use amoe_nn::{Bound, Init, ParamId, ParamSet};
use amoe_tensor::{Matrix, Rng};

/// A linear gate with optional trainable noise.
pub struct NoisyTopKGate {
    w: ParamId,
    w_noise: Option<ParamId>,
    n_experts: usize,
}

/// Everything downstream consumers need from one gating pass.
pub struct GateOutput<'t> {
    /// Raw (noise-free) gate logits `G(x) = x · W` — the input to the
    /// full-support softmax used by the HSC terms (Eq. 9–10).
    pub clean_logits: Var<'t>,
    /// Noisy logits actually used for expert selection (equal to
    /// `clean_logits` when noise is off).
    pub noisy_logits: Var<'t>,
    /// Masked-softmax probabilities over the top-K (Eq. 7); zero outside.
    pub probs: Var<'t>,
    /// The 0/1 top-K selection mask (constant, non-differentiable).
    pub topk_mask: Matrix,
}

impl NoisyTopKGate {
    /// Registers the gate parameters (`name.w`, and `name.w_noise` when
    /// `noisy`): both `in_dim x n_experts` linear maps without bias,
    /// matching Eq. 5.
    #[must_use]
    pub fn new(
        params: &mut ParamSet,
        name: &str,
        in_dim: usize,
        n_experts: usize,
        noisy: bool,
        rng: &mut Rng,
    ) -> Self {
        let w = params.add(
            format!("{name}.w"),
            Init::XavierUniform.sample(in_dim, n_experts, rng),
        );
        // Noise weights start at zero: training begins deterministic and
        // learns where exploration noise helps (Shazeer's initialisation).
        let w_noise =
            noisy.then(|| params.add(format!("{name}.w_noise"), Matrix::zeros(in_dim, n_experts)));
        NoisyTopKGate {
            w,
            w_noise,
            n_experts,
        }
    }

    /// Number of experts this gate routes over.
    #[must_use]
    pub fn n_experts(&self) -> usize {
        self.n_experts
    }

    /// The gate's weight parameter.
    #[must_use]
    pub fn weight(&self) -> ParamId {
        self.w
    }

    /// Every parameter handle of this gate (`w`, plus `w_noise` when the
    /// gate is noisy). Used to bind the gate/loss tape of the
    /// split-graph training path to exactly the gate's weights.
    #[must_use]
    pub fn param_ids(&self) -> Vec<ParamId> {
        std::iter::once(self.w).chain(self.w_noise).collect()
    }

    /// Runs the gate. `noise_rng` enables the noisy path (training);
    /// `None` evaluates deterministically (serving / eval / Fig. 6).
    ///
    /// # Panics
    /// Panics if `k` is out of `1..=n_experts`.
    #[must_use]
    pub fn forward<'t>(
        &self,
        _tape: &'t Tape,
        bound: &Bound<'t>,
        gate_input: Var<'t>,
        k: usize,
        noise_rng: Option<&mut Rng>,
    ) -> GateOutput<'t> {
        assert!(
            k >= 1 && k <= self.n_experts,
            "NoisyTopKGate: k={k} out of 1..={}",
            self.n_experts
        );
        let clean_logits = gate_input.matmul(bound.var(self.w));
        let noisy_logits = match (self.w_noise, noise_rng) {
            (Some(wn), Some(rng)) => {
                // H(x) = G(x) + ε ⊙ softplus(x · W_noise), ε ~ N(0, 1).
                let (rows, cols) = clean_logits.shape();
                let eps = rng.normal_matrix(rows, cols, 0.0, 1.0);
                let noise_scale = gate_input.matmul(bound.var(wn)).softplus();
                clean_logits + noise_scale.mul_const(&eps)
            }
            _ => clean_logits,
        };
        let (probs, topk_mask) = noisy_logits.topk_softmax_rows(k);
        GateOutput {
            clean_logits,
            noisy_logits,
            probs,
            topk_mask,
        }
    }

    /// Tape-free gate logits for serving.
    #[must_use]
    pub fn logits_infer(&self, params: &ParamSet, gate_input: &Matrix) -> Matrix {
        amoe_tensor::matmul::matmul(gate_input, params.value(self.w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amoe_tensor::reduce;

    fn setup(noisy: bool) -> (ParamSet, NoisyTopKGate) {
        let mut ps = ParamSet::new();
        let mut rng = Rng::seed_from(3);
        let gate = NoisyTopKGate::new(&mut ps, "gate", 6, 8, noisy, &mut rng);
        (ps, gate)
    }

    #[test]
    fn probs_are_topk_distributions() {
        let (ps, gate) = setup(false);
        let mut rng = Rng::seed_from(4);
        let x = rng.normal_matrix(5, 6, 0.0, 1.0);
        let tape = Tape::new();
        let bound = ps.bind(&tape);
        let out = gate.forward(&tape, &bound, tape.leaf(x), 3, None);
        let p = out.probs.value();
        for r in 0..5 {
            let nonzero = p.row(r).iter().filter(|&&v| v > 0.0).count();
            assert_eq!(nonzero, 3, "row {r}");
            let sum: f32 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Mask agrees with the nonzero pattern.
        for r in 0..5 {
            for c in 0..8 {
                assert_eq!(out.topk_mask[(r, c)] > 0.0, p[(r, c)] > 0.0);
            }
        }
    }

    #[test]
    fn eval_mode_deterministic() {
        let (ps, gate) = setup(true);
        let mut rng = Rng::seed_from(5);
        let x = rng.normal_matrix(3, 6, 0.0, 1.0);
        let run = || {
            let tape = Tape::new();
            let bound = ps.bind(&tape);
            gate.forward(&tape, &bound, tape.leaf(x.clone()), 2, None)
                .probs
                .value()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn noise_perturbs_selection_sometimes() {
        let (mut ps, gate) = setup(true);
        // Give the noise weights some magnitude so the noisy path is live.
        let wn = ps.find("gate.w_noise").unwrap();
        ps.value_mut(wn).fill(0.8);
        let mut rng = Rng::seed_from(6);
        let x = Rng::seed_from(7).normal_matrix(16, 6, 0.0, 0.2);
        let tape = Tape::new();
        let bound = ps.bind(&tape);
        let clean = gate
            .forward(&tape, &bound, tape.leaf(x.clone()), 2, None)
            .topk_mask;
        let noisy = gate
            .forward(&tape, &bound, tape.leaf(x), 2, Some(&mut rng))
            .topk_mask;
        assert_ne!(clean, noisy, "noise never changed the top-k selection");
    }

    #[test]
    fn clean_logits_unaffected_by_noise() {
        let (mut ps, gate) = setup(true);
        let wn = ps.find("gate.w_noise").unwrap();
        ps.value_mut(wn).fill(1.0);
        let mut rng = Rng::seed_from(8);
        let x = Rng::seed_from(9).normal_matrix(4, 6, 0.0, 1.0);
        let tape = Tape::new();
        let bound = ps.bind(&tape);
        let out = gate.forward(&tape, &bound, tape.leaf(x), 2, Some(&mut rng));
        // Clean logits equal x·W regardless of the noise branch.
        let expect = amoe_tensor::matmul::matmul(&out.clean_logits.value(), &Matrix::eye(8));
        amoe_tensor::assert_close(&out.clean_logits.value(), &expect, 1e-6, 1e-7);
        assert_ne!(out.clean_logits.value(), out.noisy_logits.value());
    }

    #[test]
    fn gate_receives_gradients() {
        let (mut ps, gate) = setup(false);
        let mut rng = Rng::seed_from(10);
        let x = rng.normal_matrix(4, 6, 0.0, 1.0);
        let tape = Tape::new();
        let bound = ps.bind(&tape);
        let out = gate.forward(&tape, &bound, tape.leaf(x), 2, None);
        let weight = rng.normal_matrix(4, 8, 0.0, 1.0);
        let loss = out.probs.mul_const(&weight).sum_all();
        let grads = tape.backward(loss);
        ps.collect_grads(&bound, &grads);
        assert!(ps.grad(gate.weight()).frob_norm() > 0.0);
    }

    #[test]
    fn infer_matches_clean_logits() {
        let (ps, gate) = setup(false);
        let mut rng = Rng::seed_from(11);
        let x = rng.normal_matrix(3, 6, 0.0, 1.0);
        let tape = Tape::new();
        let bound = ps.bind(&tape);
        let out = gate.forward(&tape, &bound, tape.leaf(x.clone()), 2, None);
        amoe_tensor::assert_close(
            &gate.logits_infer(&ps, &x),
            &out.clean_logits.value(),
            1e-6,
            1e-7,
        );
    }

    #[test]
    fn importance_concentrates_without_balance() {
        // Sanity: column sums of probs define the importance vector used
        // by the load-balance loss.
        let (ps, gate) = setup(false);
        let mut rng = Rng::seed_from(12);
        let x = rng.normal_matrix(32, 6, 0.0, 1.0);
        let tape = Tape::new();
        let bound = ps.bind(&tape);
        let out = gate.forward(&tape, &bound, tape.leaf(x), 2, None);
        let imp = reduce::col_sum(&out.probs.value());
        let total: f32 = imp.as_slice().iter().sum();
        assert!((total - 32.0).abs() < 1e-3); // probabilities sum to 1/row
    }
}
